"""Series storage economics and cold-open speed vs N full snapshots.

Builds a 10-release evolved train at paper-tenth scale and measures,
into ``benchmarks/output/BENCH_series.json``:

* **storage** — one delta-encoded ``.rser`` vs storing every release
  as its own full ``.rsnap``.  Gate: the series file must stay under
  40% of the sum of the full snapshots (deltas carry only churn, so
  near-constant release trains compress roughly N-fold);
* **cold open** — bytes-on-disk to a first importance answer for
  every release, walking the delta chain vs opening ten full
  snapshots;
* **identity** — ``series.at(k)`` must answer bit-identically to the
  eagerly evolved release ``k`` (importance tables and package rows)
  for every ``k``, at this scale too, not just the test-sized corpora
  the unit suites cover.
"""

import json
import time

from repro.metrics import importance_table
from repro.series import load_series, write_series
from repro.store import load_snapshot, write_snapshot
from repro.synth import EvolutionConfig, evolve_corpus
from repro.synth.paper import PaperScaleConfig

_N_RELEASES = 10
_MAX_STORAGE_RATIO = 0.40


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def test_series_storage_and_cold_open(output_dir, save, tmp_path):
    build_seconds, ecosystem = _timed(lambda: evolve_corpus(
        EvolutionConfig(
            n_releases=_N_RELEASES,
            base=PaperScaleConfig.at_scale(0.1, seed=2016),
            seed=2016)))
    datasets = ecosystem.datasets()

    series_path = tmp_path / "train.rser"
    series_bytes = write_series(series_path, datasets)
    series = load_series(series_path)

    snapshot_paths = []
    full_bytes = 0
    for release, dataset in enumerate(datasets):
        path = tmp_path / f"release{release:02d}.rsnap"
        full_bytes += write_snapshot(path, dataset,
                                     series.fingerprints[release])
        snapshot_paths.append(path)

    storage_ratio = series_bytes / full_bytes

    # Cold open: process-fresh objects, bytes on disk -> one
    # importance answer per release.
    def open_series():
        train = load_series(series_path)
        return [importance_table(train.at(k))
                for k in range(train.n_releases)]

    def open_snapshots():
        return [importance_table(load_snapshot(path))
                for path in snapshot_paths]

    series_seconds, via_series = _timed(open_series)
    rsnap_seconds, via_snapshots = _timed(open_snapshots)

    # Identity at scale: lazy == eager for every release.
    eager = [importance_table(dataset) for dataset in datasets]
    assert via_series == eager, \
        "series.at(k) importance diverged from the eager release"
    assert via_snapshots == eager
    for release, dataset in enumerate(datasets):
        lazy = series.at(release)
        assert lazy.packages == dataset.packages
        assert lazy.source_fingerprint == \
            series.fingerprints[release]

    payload = {
        "n_releases": _N_RELEASES,
        "packages_per_release": list(series.n_packages),
        "evolve_seconds": build_seconds,
        "series_bytes": series_bytes,
        "full_snapshot_bytes": full_bytes,
        "storage_ratio": storage_ratio,
        "max_storage_ratio": _MAX_STORAGE_RATIO,
        "series_cold_open_seconds": series_seconds,
        "rsnap_cold_open_seconds": rsnap_seconds,
        "cold_open_ratio": series_seconds / rsnap_seconds,
        "identical_all_releases": True,
    }
    (output_dir / "BENCH_series.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    save("series_speed", "\n".join([
        "series storage + cold open (10-release paper-tenth train)",
        f"  packages        {series.n_packages[0]} -> "
        f"{series.n_packages[-1]}",
        f"  .rser bytes     {series_bytes}",
        f"  10x.rsnap bytes {full_bytes}",
        f"  storage ratio   {storage_ratio:.3f} "
        f"(gate < {_MAX_STORAGE_RATIO})",
        f"  series open     {series_seconds * 1000:.1f} ms "
        "(all releases)",
        f"  rsnap opens     {rsnap_seconds * 1000:.1f} ms "
        "(all releases)",
    ]))

    assert storage_ratio < _MAX_STORAGE_RATIO, (
        f"series stores {storage_ratio:.1%} of {_N_RELEASES} full "
        f"snapshots (gate < {_MAX_STORAGE_RATIO:.0%}); "
        f"series={series_bytes} full={full_bytes}")
