"""Robustness: analysis throughput over an adversarial corpus.

Seeds the benchmark ecosystem with every :mod:`repro.synth.corruptor`
mutation class and measures what fault capture costs: a cold serial
run, a cold multi-process run, and a warm run where the negative cache
answers for every known-bad binary.  The quarantine must be identical
in all three regimes — fault tolerance changes wall time, never
results.
"""

from repro.analysis import AnalysisPipeline
from repro.engine import AnalysisEngine, EngineConfig
from repro.reports.text import render_table
from repro.synth import (
    MUTATIONS,
    EcosystemConfig,
    build_ecosystem,
    inject_corrupt_package,
)

_JOBS = 4


def _corrupt_ecosystem():
    ecosystem = build_ecosystem(EcosystemConfig(
        n_filler_packages=60, n_driver_packages=10,
        n_script_packages=30, seed=11))
    inject_corrupt_package(ecosystem.repository, seed=0)
    return ecosystem


def _run(ecosystem, engine):
    return AnalysisPipeline(ecosystem.repository,
                            ecosystem.interpreters,
                            engine=engine).run()


def test_corrupt_corpus_throughput(benchmark, save, tmp_path):
    ecosystem = _corrupt_ecosystem()
    cache_dir = str(tmp_path / "cache")

    serial = _run(ecosystem, AnalysisEngine(EngineConfig()))
    parallel = _run(ecosystem, AnalysisEngine(
        EngineConfig(jobs=_JOBS, backend="process")))
    cold = _run(ecosystem, AnalysisEngine(
        EngineConfig(cache_dir=cache_dir)))

    def warm_run():
        return _run(ecosystem, AnalysisEngine(
            EngineConfig(cache_dir=cache_dir)))

    warm = benchmark.pedantic(warm_run, rounds=3, iterations=1)

    # Identical quarantine and footprints in every regime.
    for other in (parallel, cold, warm):
        assert other.quarantined == serial.quarantined
        assert other.package_footprints == serial.package_footprints
    assert len(serial.quarantined) == len(MUTATIONS)

    # The warm run answers every known-bad binary from the negative
    # cache and re-analyzes nothing.
    stats = warm.engine_stats
    assert stats.binaries_analyzed == 0
    assert stats.negative_cache_hits == len(MUTATIONS)

    def _row(label, result):
        st = result.engine_stats
        return (label, f"{st.total_seconds:.2f}",
                st.binaries_failed, st.negative_cache_hits)

    save("robustness", render_table(
        ["regime", "seconds", "quarantined", "negative hits"],
        [
            _row("serial x1 (cold)", serial),
            _row(f"process x{_JOBS} (cold)", parallel),
            _row("serial x1 (warm cache)", warm),
        ],
        title=f"Corrupt corpus ({len(MUTATIONS)} fault-injected "
              f"binaries, {serial.engine_stats.binaries_total} "
              f"submitted)"))
