"""Table 11 — simple vs. powerful variants of the same call.

Paper: developers prefer the simple option — read 99.9% vs pread64
27.2%; dup2 99.8% vs dup3 8.7%; select 61.5% vs pselect6 4.1%;
chdir 44.6% vs fchdir 2.2%.
"""

from repro.syscalls.table import ALL_NAMES


def test_tab11_simple_powerful(benchmark, study, save):
    output = benchmark(study.tab11_power)
    save("tab11_simple_powerful", output.rendered)
    print(output.rendered)

    usage = study.usage("syscall", universe=ALL_NAMES)
    assert usage["read"] > usage["pread64"]
    assert usage["dup2"] > usage["dup3"]
    assert usage["select"] > usage["pselect6"]
    assert usage["chdir"] > usage["fchdir"]

    summary = study.adoption().data
    assert summary.portable_preferred_count >= 6
