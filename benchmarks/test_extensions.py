"""Extensions beyond the paper's evaluation: dynamic-vs-static
validation, footprint identification, survey-noise bounds, adoption
drift, seccomp filter layouts, and the workload advisor.

These regenerate the quantitative claims the extended modules make.
"""

import statistics

from repro.analysis import validate_over_approximation
from repro.analysis.binary import BinaryAnalysis
from repro.analysis.dynamic import trace_executable
from repro.metrics import UsageDiff, bootstrap_importance, unweighted_importance_table
from repro.compat import coverage_plan, workload_suggestions
from repro.security.seccomp import (
    BpfInterpreter,
    SeccompData,
    generate_policy,
    generate_tree_policy,
)
from repro.syscalls.table import ALL_NAMES, SYSCALLS
from repro.synth import EcosystemConfig, build_ecosystem


def test_dynamic_vs_static_validation(benchmark, study, save):
    """§2.3's spot check at archive scale: every dynamic trace is a
    subset of the static footprint; a single run typically observes
    most, but not all, of it."""
    binaries = []
    for package in list(study.repository)[:80]:
        for artifact in package.executables():
            if artifact.is_elf:
                binaries.append((package.name, artifact.data))
                break

    def run_all():
        coverages = []
        for name, data in binaries:
            analysis = BinaryAnalysis.from_bytes(data)
            if analysis.entry_root() is None:
                continue
            trace = trace_executable(analysis,
                                     study.result.library_index)
            static = study.result.footprint_of(name).syscalls
            assert not validate_over_approximation(static, trace)
            if static:
                coverages.append(len(trace.syscall_set() & static)
                                 / len(static))
        return coverages

    coverages = benchmark.pedantic(run_all, rounds=2, iterations=1)
    mean_coverage = statistics.mean(coverages)
    save("ext_dynamic_vs_static", "\n".join([
        "Dynamic (strace-like) vs. static footprints",
        f"binaries traced            : {len(coverages)}",
        f"superset violations        : 0",
        f"mean dynamic coverage      : {mean_coverage:.1%}",
        "(static over-approximates, as §2.3 requires)",
    ]))
    assert 0.3 <= mean_coverage <= 1.0


def test_signature_identification_rate(benchmark, study, save):
    """§6: footprints as birthmarks — identification rate over the
    archive from full footprints and from dynamic traces."""
    index = study.signature_index()

    def identify_all():
        exact = 0
        total = 0
        for package in study.footprints:
            signature = index.signature_of(package)
            if not signature:
                continue
            total += 1
            if index.identify(signature).exact == package:
                exact += 1
        return exact, total

    exact, total = benchmark(identify_all)
    save("ext_signature_identification", "\n".join([
        "Footprint-signature identification (§6)",
        f"packages with a footprint : {total}",
        f"identified exactly        : {exact} ({exact / total:.1%})",
        f"distinct signatures       : {index.distinct_count()}",
        f"unique signatures         : {index.unique_count()}",
    ]))
    assert exact / total > 0.3  # paper: ~1/3 unique


def test_survey_noise_bounds(benchmark, study, save):
    """§2.4: quantify what the paper only flags — sampling noise in
    the 2.9M-installation survey barely moves the importance bands."""
    subset = dict(list(study.footprints.items())[:200])

    def bootstrap():
        return bootstrap_importance(subset, study.popcon,
                                    n_boot=100, seed=11)

    intervals = benchmark.pedantic(bootstrap, rounds=1, iterations=1)
    widest = max(ci.width for ci in intervals.values())
    unstable = sum(1 for ci in intervals.values()
                   if not ci.band_stable)
    save("ext_survey_noise", "\n".join([
        "Survey sampling-noise bounds (parametric bootstrap)",
        f"APIs measured      : {len(intervals)}",
        f"widest 95% CI      : {widest:.4%}",
        f"band-unstable APIs : {unstable}",
    ]))
    assert widest < 0.05


def test_adoption_drift_release_diff(benchmark, save):
    """§2.4/§6: re-running the methodology on a later 'release' (35%
    migration) shows the legacy->secure movement the paper wants
    kernel developers to track.

    Ported onto :meth:`repro.series.DatasetSeries.release_diff`: each
    release is analyzed exactly once and packed into a delta-encoded
    series, so the benchmarked query reuses the warm train instead of
    rebuilding both ecosystems from scratch per run.  The legacy
    from-scratch computation stays as the regression pin.
    """
    from repro.series import build_series

    def measure(shift):
        ecosystem = build_ecosystem(EcosystemConfig(
            n_filler_packages=60, n_driver_packages=10,
            n_script_packages=20, seed=9, adoption_shift=shift))
        from repro.analysis import AnalysisPipeline
        result = AnalysisPipeline(ecosystem.repository,
                                  ecosystem.interpreters).run()
        return result.package_footprints

    before = measure(0.0)
    after = measure(0.35)
    series = build_series([before, after])

    diff = benchmark(series.release_diff, 0, 1, dimension="syscall",
                     noise_floor=0.03)

    # Regression pin: the series-backed diff must reproduce the old
    # per-run table computation exactly — same fallers, same detected
    # migrations (universe zeros never cross the noise floor).
    legacy = UsageDiff(
        unweighted_importance_table(before, "syscall",
                                    universe=ALL_NAMES),
        unweighted_importance_table(after, "syscall",
                                    universe=ALL_NAMES),
        noise_floor=0.03)
    assert ([(d.api, d.before, d.after) for d in diff.fallers(5)]
            == [(d.api, d.before, d.after)
                for d in legacy.fallers(5)])
    assert ({(v.legacy, v.preferred) for v in diff.migrated_pairs()}
            == {(v.legacy, v.preferred)
                for v in legacy.migrated_pairs()})

    rows = ["Release diff — 35% migration to preferred variants"]
    for delta in diff.fallers(5):
        rows.append(f"  {delta.api:12s} {delta.before:7.2%} -> "
                    f"{delta.after:7.2%}")
    migrated = {v.legacy for v in diff.migrated_pairs()}
    rows.append(f"migrations detected: {sorted(migrated)}")
    save("ext_release_diff", "\n".join(rows))
    assert "access" in migrated


def test_seccomp_layout_comparison(benchmark, study, save):
    """Linear vs. balanced-tree seccomp filters over qemu's 270-call
    footprint: identical semantics, O(n) vs O(log n) evaluation."""
    footprint = study.result.footprint_of("qemu-user")
    linear = generate_policy(footprint)

    tree = benchmark(generate_tree_policy, footprint)

    linear_steps = []
    tree_steps = []
    for entry in SYSCALLS:
        verdict_l, steps_l = BpfInterpreter(
            linear.program).run_with_stats(SeccompData(nr=entry.number))
        verdict_t, steps_t = BpfInterpreter(
            tree.program).run_with_stats(SeccompData(nr=entry.number))
        assert verdict_l == verdict_t
        linear_steps.append(steps_l)
        tree_steps.append(steps_t)
    save("ext_seccomp_layouts", "\n".join([
        "seccomp filter layouts over qemu's footprint",
        f"whitelisted syscalls : {len(linear.allowed_syscalls)}",
        f"linear program       : {len(linear.program)} insns, "
        f"mean eval {statistics.mean(linear_steps):.1f} steps",
        f"tree program         : {len(tree.program)} insns, "
        f"mean eval {statistics.mean(tree_steps):.1f} steps",
    ]))
    assert statistics.mean(tree_steps) * 4 < statistics.mean(
        linear_steps)


def test_workload_advisor(benchmark, study, save):
    """§6: matching evaluation workloads to modified APIs."""
    modified = ["epoll_wait", "epoll_ctl", "accept4", "sendfile",
                "timerfd_create"]

    def advise():
        return (workload_suggestions(modified, study.footprints,
                                     study.popcon, limit=5),
                coverage_plan(modified, study.footprints,
                              study.popcon))

    suggestions, plan = benchmark(advise)
    rows = ["Workload advisor for modified APIs: " + ", ".join(modified)]
    for s in suggestions:
        rows.append(f"  {s.package:26s} covers {s.coverage} "
                    f"installs={s.install_probability:.2%}")
    rows.append(f"minimal covering suite: "
                f"{[s.package for s in plan]}")
    save("ext_workload_advisor", "\n".join(rows))
    covered = set()
    for s in plan:
        covered |= set(s.apis_exercised)
    assert set(modified) <= covered


def test_libc_decomposition(benchmark, study, save):
    """§3.5's further proposal: split libc into co-usage sub-libraries
    and measure the per-process memory saving."""
    from repro.security.libc_cluster import (
        decompose_libc,
        evaluate_decomposition,
    )
    from repro.security.libc_strip import function_sizes
    from repro.synth.runtime_gen import generate_libc

    sizes = function_sizes(generate_libc())

    def decompose():
        subs = decompose_libc(study.footprints, sizes)
        return subs, evaluate_decomposition(subs, study.footprints)

    subs, report = benchmark.pedantic(decompose, rounds=2,
                                      iterations=1)
    rows = ["libc decomposition by co-usage (§3.5)"]
    for lib in subs[:6]:
        rows.append(f"  sub-library {lib.index}: "
                    f"{len(lib.symbols)} symbols, "
                    f"{lib.code_bytes} bytes")
    rows.append(f"sub-libraries            : {len(subs)}")
    rows.append(f"mean sub-libraries mapped: "
                f"{report.mean_libraries_loaded:.1f}")
    rows.append(f"code mapped per process  : "
                f"{report.loaded_fraction:.1%} of monolithic")
    save("ext_libc_decomposition", "\n".join(rows))
    assert report.loaded_fraction < 0.85


def test_attack_surface_audit(benchmark, study, save):
    """§6: automatic per-application seccomp policies shrink the
    reachable kernel interface after a compromise — measured across
    the archive."""
    from repro.security import attack_surface_report
    from repro.syscalls.table import SYSCALL_COUNT

    report = benchmark.pedantic(attack_surface_report,
                                args=(study.footprints,),
                                rounds=1, iterations=1)
    save("ext_attack_surface", "\n".join([
        "Archive-wide seccomp attack-surface audit (§6)",
        f"packages with policies   : {report['packages']}",
        f"mean whitelist size      : {report['mean_whitelist']:.1f} "
        f"of {SYSCALL_COUNT} syscalls",
        f"median whitelist size    : {report['median_whitelist']}",
        f"widest whitelist (qemu)  : {report['max_whitelist']}",
        f"mean reachable fraction  : "
        f"{report['mean_reachable_fraction']:.1%}",
    ]))
    # A typical compromised process keeps well under half the table.
    assert report["mean_reachable_fraction"] < 0.5
    assert report["max_whitelist"] >= 260  # qemu's emulator
