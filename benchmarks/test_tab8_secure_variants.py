"""Table 8 — unweighted importance of insecure vs. secure variants.

Paper: setresuid/setresgid ~99.7% vs setuid 15.7% / setreuid 1.9%;
access 74.2% vs faccessat 0.63%; mkdir 52.1% vs mkdirat 0.34%.
"""

from repro.syscalls.table import ALL_NAMES


def test_tab8_secure_variants(benchmark, study, save):
    output = benchmark(study.tab8_secure_variants)
    save("tab8_secure_variants", output.rendered)
    print(output.rendered)

    usage = study.usage("syscall", universe=ALL_NAMES)
    # clear-semantics setres* adopted nearly everywhere
    assert usage["setresuid"] > 0.9
    assert usage["setresgid"] > 0.9
    assert usage["setuid"] < 0.3
    assert usage["setreuid"] < 0.1
    # race-prone directory APIs still dominate their atomic variants
    for old, new in (("access", "faccessat"), ("mkdir", "mkdirat"),
                     ("rename", "renameat"), ("chmod", "fchmodat"),
                     ("chown", "fchownat"),
                     ("readlink", "readlinkat")):
        assert usage[old] > 10 * usage[new], (old, new)
