"""Benchmark fixtures.

Each benchmark regenerates one of the paper's tables or figures: it
times the computation from the analysis outputs (footprints + survey)
and writes the rendered, paper-shaped result to
``benchmarks/output/<experiment>.txt`` for inspection.

Run with::

    pytest benchmarks/ --benchmark-only
"""

import pathlib

import pytest

from repro.study import Study
from repro.synth import EcosystemConfig

_OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def study() -> Study:
    """The benchmark ecosystem (larger than the test one)."""
    return Study.default(EcosystemConfig(
        n_filler_packages=200, n_driver_packages=30,
        n_script_packages=220))


@pytest.fixture(scope="session")
def output_dir() -> pathlib.Path:
    _OUTPUT_DIR.mkdir(exist_ok=True)
    return _OUTPUT_DIR


@pytest.fixture()
def save(output_dir):
    def _save(name: str, rendered: str) -> None:
        (output_dir / f"{name}.txt").write_text(rendered + "\n",
                                                encoding="utf-8")
    return _save
