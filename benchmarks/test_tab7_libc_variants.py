"""Table 7 — weighted completeness of libc variants.

Paper: eglibc 100%/100%; uClibc 1.1%/41.9%; musl 1.1%/43.2%;
dietlibc 0%/0% (raw / normalized for compile-time _chk replacement).
"""


def test_tab7_libc_variants(benchmark, study, save):
    output = benchmark.pedantic(study.tab7_libc_variants,
                                rounds=3, iterations=1)
    save("tab7_libc_variants", output.rendered)
    print(output.rendered)

    rows = {e.variant.split()[0]: e for e in output.data}
    assert rows["eglibc"].raw_completeness >= 0.999
    assert rows["uClibc"].raw_completeness <= 0.05   # paper: 1.1%
    assert rows["musl"].raw_completeness <= 0.05     # paper: 1.1%
    assert 0.30 <= rows["uClibc"].normalized_completeness <= 0.65
    assert 0.30 <= rows["musl"].normalized_completeness <= 0.70
    assert rows["dietlibc"].raw_completeness == 0.0
    assert rows["dietlibc"].normalized_completeness <= 0.01
