"""Dataset substrate speed: legacy set-based vs interned bitset path.

Times the full completeness curve (Figure 3's computation — the most
dependency-heavy metric) three ways on the medium benchmark corpus:

* **legacy** — the pre-refactor implementation preserved verbatim in
  :mod:`repro.dataset.reference`: string-keyed sets, importance and
  usage tables rebuilt, support tracker re-condensed, per call;
* **cold** — interning the corpus into a fresh
  :class:`repro.dataset.Dataset` plus the first curve over it;
* **warm** — the curve over an already-built dataset, the regime every
  Study experiment after the first actually runs in (tables, universe
  ids, and the condensed dependency DAG come from the dataset's
  caches).

Writes ``benchmarks/output/BENCH_dataset.json`` with the timings and
asserts the warm bitset path beats legacy by at least 3x while
producing a bit-for-bit identical curve.
"""

import json
import time

from repro.dataset import Dataset, reference
from repro.metrics import completeness_curve
from repro.reports.text import render_key_points

_REQUIRED_SPEEDUP = 3.0


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def test_dataset_speed(study, output_dir, save):
    footprints = dict(study.result.package_footprints)
    popcon = study.popcon
    repository = study.repository

    legacy_seconds, legacy_curve = _timed(
        lambda: reference.completeness_curve(footprints, popcon,
                                             repository))

    intern_seconds, dataset = _timed(
        lambda: Dataset(footprints, popcon, repository))
    first_seconds, first_curve = _timed(
        lambda: completeness_curve(dataset))
    warm_seconds = min(
        _timed(lambda: completeness_curve(dataset))[0]
        for _ in range(3))

    assert first_curve == legacy_curve, \
        "bitset curve diverged from the legacy curve"

    cold_seconds = intern_seconds + first_seconds
    speedup_warm = legacy_seconds / warm_seconds
    speedup_cold = legacy_seconds / cold_seconds
    payload = {
        "corpus": {
            "packages": len(footprints),
            "curve_points": len(legacy_curve),
        },
        "legacy_seconds": legacy_seconds,
        "intern_seconds": intern_seconds,
        "first_curve_seconds": first_seconds,
        "cold_seconds": cold_seconds,
        "warm_curve_seconds": warm_seconds,
        "speedup_cold": speedup_cold,
        "speedup_warm": speedup_warm,
        "required_speedup": _REQUIRED_SPEEDUP,
        "curves_identical": True,
    }
    (output_dir / "BENCH_dataset.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    save("dataset_speed", render_key_points([
        ("packages", len(footprints)),
        ("curve points", len(legacy_curve)),
        ("legacy curve", f"{legacy_seconds * 1000:.1f} ms"),
        ("intern corpus", f"{intern_seconds * 1000:.1f} ms"),
        ("bitset curve (cold)", f"{cold_seconds * 1000:.1f} ms"),
        ("bitset curve (warm)", f"{warm_seconds * 1000:.1f} ms"),
        ("speedup (warm)", f"{speedup_warm:.1f}x"),
    ], title="dataset substrate — completeness curve wall time"))

    assert speedup_warm >= _REQUIRED_SPEEDUP, (
        f"warm bitset curve only {speedup_warm:.2f}x faster than "
        f"legacy (need >= {_REQUIRED_SPEEDUP}x); "
        f"legacy={legacy_seconds:.4f}s warm={warm_seconds:.4f}s")
