"""Dataset substrate speed: legacy vs bitset, and JSON vs ``.rsnap``.

Two regimes are measured into ``benchmarks/output/BENCH_dataset.json``:

**Curve wall time** (``test_dataset_speed``) — the full completeness
curve (Figure 3's computation, the most dependency-heavy metric) three
ways on the medium benchmark corpus:

* **legacy** — the pre-refactor implementation preserved verbatim in
  :mod:`repro.dataset.reference`: string-keyed sets, importance and
  usage tables rebuilt, support tracker re-condensed, per call;
* **cold** — interning the corpus into a fresh
  :class:`repro.dataset.Dataset` plus the first curve over it;
* **warm** — the curve over an already-built dataset, the regime every
  Study experiment after the first actually runs in.

Asserts the warm bitset path beats legacy by at least 3x with a
bit-for-bit identical curve.

**Snapshot cold open** (``test_snapshot_cold_speed``) — time from
bytes-on-disk to the first importance answer, JSON codec vs the
mmap-lazy ``.rsnap`` store (:mod:`repro.store`), at three corpus
sizes: the benchmark study, a tenth-scale paper corpus, and the full
30,976-package paper population.  Gates ``speedup_cold > 1`` at
**every** size — the binary snapshot must never lose to JSON — and
requires identical importance tables on each path.
"""

import json
import time

from repro.dataset import Dataset, dataset_from_json, \
    dataset_to_json, reference
from repro.metrics import completeness_curve
from repro.reports.text import render_key_points
from repro.store import load_snapshot, write_snapshot
from repro.synth import PaperScaleConfig, build_paper_corpus

_REQUIRED_SPEEDUP = 3.0
_REQUIRED_COLD_SPEEDUP = 1.0


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def test_dataset_speed(study, output_dir, save):
    footprints = dict(study.result.package_footprints)
    popcon = study.popcon
    repository = study.repository

    legacy_seconds, legacy_curve = _timed(
        lambda: reference.completeness_curve(footprints, popcon,
                                             repository))

    intern_seconds, dataset = _timed(
        lambda: Dataset(footprints, popcon, repository))
    first_seconds, first_curve = _timed(
        lambda: completeness_curve(dataset))
    warm_seconds = min(
        _timed(lambda: completeness_curve(dataset))[0]
        for _ in range(3))

    assert first_curve == legacy_curve, \
        "bitset curve diverged from the legacy curve"

    cold_seconds = intern_seconds + first_seconds
    speedup_warm = legacy_seconds / warm_seconds
    speedup_cold = legacy_seconds / cold_seconds
    payload = {
        "corpus": {
            "packages": len(footprints),
            "curve_points": len(legacy_curve),
        },
        "legacy_seconds": legacy_seconds,
        "intern_seconds": intern_seconds,
        "first_curve_seconds": first_seconds,
        "cold_seconds": cold_seconds,
        "warm_curve_seconds": warm_seconds,
        "speedup_cold": speedup_cold,
        "speedup_warm": speedup_warm,
        "required_speedup": _REQUIRED_SPEEDUP,
        "curves_identical": True,
    }
    (output_dir / "BENCH_dataset.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    save("dataset_speed", render_key_points([
        ("packages", len(footprints)),
        ("curve points", len(legacy_curve)),
        ("legacy curve", f"{legacy_seconds * 1000:.1f} ms"),
        ("intern corpus", f"{intern_seconds * 1000:.1f} ms"),
        ("bitset curve (cold)", f"{cold_seconds * 1000:.1f} ms"),
        ("bitset curve (warm)", f"{warm_seconds * 1000:.1f} ms"),
        ("speedup (warm)", f"{speedup_warm:.1f}x"),
    ], title="dataset substrate — completeness curve wall time"))

    assert speedup_warm >= _REQUIRED_SPEEDUP, (
        f"warm bitset curve only {speedup_warm:.2f}x faster than "
        f"legacy (need >= {_REQUIRED_SPEEDUP}x); "
        f"legacy={legacy_seconds:.4f}s warm={warm_seconds:.4f}s")


def _cold_json(path, popcon, repository):
    dataset = dataset_from_json(path.read_text(encoding="utf-8"),
                                popcon, repository)
    return dataset, dataset.importance_table("syscall")


def _cold_rsnap(path, popcon, repository):
    dataset = load_snapshot(path, popcon, repository)
    return dataset, dataset.importance_table("syscall")


def test_snapshot_cold_speed(study, output_dir, save, tmp_path):
    tiers = [
        ("study", study.dataset, study.popcon, study.repository),
    ]
    for label, scale in (("paper-tenth", 0.1), ("paper", 1.0)):
        corpus = build_paper_corpus(PaperScaleConfig.at_scale(scale))
        tiers.append((label, corpus.dataset, corpus.popcon,
                      corpus.repository))

    results = []
    lines = []
    for label, dataset, popcon, repository in tiers:
        json_path = tmp_path / f"{label}.json"
        rsnap_path = tmp_path / f"{label}.rsnap"
        json_path.write_text(dataset_to_json(dataset),
                             encoding="utf-8")
        write_snapshot(rsnap_path, dataset)

        json_seconds, (_, json_table) = _timed(
            lambda: _cold_json(json_path, popcon, repository))
        rsnap_seconds, (_, rsnap_table) = _timed(
            lambda: _cold_rsnap(rsnap_path, popcon, repository))
        assert rsnap_table == json_table, (
            f"{label}: snapshot importance diverged from JSON")

        speedup_cold = json_seconds / rsnap_seconds
        results.append({
            "tier": label,
            "packages": len(dataset.packages),
            "json_bytes": json_path.stat().st_size,
            "rsnap_bytes": rsnap_path.stat().st_size,
            "json_cold_seconds": json_seconds,
            "rsnap_cold_seconds": rsnap_seconds,
            "speedup_cold": speedup_cold,
        })
        lines.append((f"{label} ({len(dataset.packages)} pkgs)",
                      f"json {json_seconds * 1000:.1f} ms, "
                      f"rsnap {rsnap_seconds * 1000:.1f} ms "
                      f"({speedup_cold:.1f}x)"))

    bench_path = output_dir / "BENCH_dataset.json"
    payload = (json.loads(bench_path.read_text(encoding="utf-8"))
               if bench_path.exists() else {})
    payload["snapshot_cold"] = {
        "required_speedup_cold": _REQUIRED_COLD_SPEEDUP,
        "tiers": results,
    }
    bench_path.write_text(json.dumps(payload, indent=2) + "\n",
                          encoding="utf-8")

    save("snapshot_cold_speed", render_key_points(
        lines, title="snapshot store — cold open to first importance "
                     "answer"))

    for entry in results:
        assert entry["speedup_cold"] > _REQUIRED_COLD_SPEEDUP, (
            f"{entry['tier']}: .rsnap cold open only "
            f"{entry['speedup_cold']:.2f}x vs JSON "
            f"(need > {_REQUIRED_COLD_SPEEDUP}x); "
            f"json={entry['json_cold_seconds']:.3f}s "
            f"rsnap={entry['rsnap_cold_seconds']:.3f}s")
