"""Archive-scale characteristics (§7: the paper's full 30,976-package
run took ~3 days on PostgreSQL; this measures our pipeline's scaling
on progressively larger synthetic archives)."""

from repro.analysis import AnalysisPipeline
from repro.metrics import importance_table
from repro.metrics.importance import band_counts
from repro.syscalls.table import ALL_NAMES
from repro.synth import EcosystemConfig, build_ecosystem


def test_large_archive_end_to_end(benchmark, save):
    """Build + analyze a 1000+ package archive in one measured shot."""
    config = EcosystemConfig(n_filler_packages=400,
                             n_driver_packages=40,
                             n_script_packages=450, seed=2016)

    def run():
        ecosystem = build_ecosystem(config)
        result = AnalysisPipeline(ecosystem.repository,
                                  ecosystem.interpreters).run()
        return ecosystem, result

    ecosystem, result = benchmark.pedantic(run, rounds=1,
                                           iterations=1)
    table = importance_table(result.package_footprints,
                             ecosystem.popcon, "syscall",
                             universe=ALL_NAMES)
    bands = band_counts(table)
    save("scale_large_archive", "\n".join([
        "Large-archive end-to-end run",
        f"packages            : {len(ecosystem.repository)}",
        f"binaries analyzed   : {result.binaries_analyzed}",
        f"Figure 2 bands      : {bands}",
        "(paper: 30,976 packages / 66,275 binaries in ~3 days on a",
        "PostgreSQL cluster; the pipeline is the same shape, the",
        "archive is smaller)",
    ]))
    assert len(ecosystem.repository) >= 900
    assert result.binaries_analyzed > 1500
    # Calibration bands hold at scale.
    assert 195 <= bands["indispensable"] <= 245
    assert 15 <= bands["unused"] <= 22
