"""Table 2 — syscalls whose usage is dominated by one or two packages.

Paper: seccomp/sched_setattr/sched_getattr -> coop-computing-tools
(1%); kexec_load -> kexec-tools (1%); clock_adjtime -> systemd (4%);
io_getevents -> ioping, zfs-fuse (1%); getcpu -> valgrind, rt-tests.
"""


def test_tab2_single_package_syscalls(benchmark, study, save):
    output = benchmark(study.tab2_single_package_syscalls)
    save("tab2_single_package_syscalls", output.rendered)
    print(output.rendered)

    rows = {row[0]: row for row in output.data}
    assert "kexec-tools" in rows["kexec_load"][2]
    assert "systemd" in rows["clock_adjtime"][2]
    assert "coop-computing-tools" in rows["seccomp"][2]
    for row in output.data:
        assert float(row[1].rstrip("%")) < 10.0
