"""Tracer overhead on the warm path.

Observability is only free if it stays out of the hot loop's way: the
span tracer instruments every per-binary analysis (one ``binary`` span
plus decode/validate/record children), so this benchmark pins its cost.
We alternate fully-traced and tracing-disabled serial runs over the
same in-memory ecosystem and compare minima — the alternation cancels
thermal/load drift, the minimum discards scheduler noise — and assert
the traced run is within 5% of the untraced one.  Metrics counters are
always on in both configurations; only span recording toggles.
"""

import time

from repro.analysis import AnalysisPipeline
from repro.engine import AnalysisEngine, EngineConfig
from repro.reports.text import render_table
from repro.synth import EcosystemConfig, build_ecosystem

_ROUNDS = 5
_MAX_OVERHEAD = 0.05


def _ecosystem():
    return build_ecosystem(EcosystemConfig(
        n_filler_packages=60, n_driver_packages=10,
        n_script_packages=30, seed=11))


def _run(ecosystem, tracing):
    engine = AnalysisEngine(EngineConfig(tracing=tracing))
    return AnalysisPipeline(ecosystem.repository,
                            ecosystem.interpreters,
                            engine=engine).run()


def _timed(ecosystem, tracing):
    start = time.perf_counter()
    result = _run(ecosystem, tracing)
    return time.perf_counter() - start, result


def test_tracing_overhead(benchmark, save):
    ecosystem = _ecosystem()

    # Warm both paths once (imports, allocator, page cache).
    _, traced = _timed(ecosystem, tracing=True)
    _, untraced = _timed(ecosystem, tracing=False)

    # The toggle changes only span recording, never the analysis or
    # the metrics.
    traced_stats = traced.engine_stats
    untraced_stats = untraced.engine_stats
    assert len(traced_stats.tracer.finished()) > 0
    assert untraced_stats.tracer.finished() == []
    assert (traced_stats.registry.counter_values()
            == untraced_stats.registry.counter_values())
    assert traced.package_footprints == untraced.package_footprints

    times = {True: [], False: []}
    for _ in range(_ROUNDS):
        for tracing in (True, False):
            seconds, _result = _timed(ecosystem, tracing)
            times[tracing].append(seconds)
    traced_s = min(times[True])
    untraced_s = min(times[False])
    overhead = traced_s / untraced_s - 1.0

    spans = len(traced_stats.tracer.finished())
    save("obs_overhead", render_table(
        ("configuration", "best of 5", "spans", "overhead"),
        [("tracing enabled", f"{traced_s * 1000:.1f} ms", spans,
          f"{overhead * 100:+.2f}%"),
         ("tracing disabled", f"{untraced_s * 1000:.1f} ms", 0, "—")],
        title="tracer overhead — warm serial analysis"))

    assert overhead < _MAX_OVERHEAD, (
        f"tracing costs {overhead:.1%} on the warm path "
        f"(budget {_MAX_OVERHEAD:.0%}): "
        f"traced {traced_s:.3f}s vs untraced {untraced_s:.3f}s")

    # Report the traced configuration's steady-state timing.
    benchmark.pedantic(lambda: _run(ecosystem, True),
                       rounds=1, iterations=1)
