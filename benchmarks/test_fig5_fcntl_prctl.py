"""Figure 5 — fcntl and prctl opcode importance.

Paper: fcntl has 18 codes, 11 at ~100%; prctl has 44 codes, 9 at
~100%, 18 above 20%.
"""


def test_fig5_fcntl_prctl(benchmark, study, save):
    output = benchmark(study.fig5_fcntl_prctl)
    save("fig5_fcntl_prctl", output.rendered)
    print(output.rendered)

    fcntl = output.data["fcntl"]
    prctl = output.data["prctl"]
    assert fcntl["defined"] == 18
    assert 9 <= fcntl["full"] <= 13       # paper: 11
    assert prctl["defined"] >= 44
    assert 7 <= prctl["full"] <= 12       # paper: 9
    assert 14 <= prctl["over_20"] <= 24   # paper: 18
