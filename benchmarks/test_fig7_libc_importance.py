"""Figure 7 / §3.5 — GNU libc API importance and restructuring.

Paper: 1,274 exported functions; 42.8% at 100% importance, 50.6%
below 50%, 39.7% below 1%; 222 entirely unused; stripping below-90%
APIs keeps 889 functions at 63% of the size with 9.3% miss
probability; the relocation table is 30,576 bytes.
"""


def test_fig7_libc_importance(benchmark, study, save):
    output = benchmark(study.fig7_libc_importance)
    save("fig7_libc_importance", output.rendered)
    print(output.rendered)

    data = output.data
    n = data["total"]
    assert 1200 <= n <= 1450                    # paper: 1,274
    assert 0.36 <= data["full"] / n <= 0.50     # paper: 42.8%
    assert 0.42 <= data["below_half"] / n <= 0.60  # paper: 50.6%
    assert 0.30 <= data["below_1pct"] / n <= 0.48  # paper: 39.7%
    assert 180 <= data["unused"] <= 280         # paper: 222


def test_libc_strip_analysis(benchmark, study, save):
    output = benchmark.pedantic(study.libc_strip_analysis,
                                rounds=3, iterations=1)
    save("libc_strip_analysis", output.rendered)
    print(output.rendered)

    report = output.data["report"]
    layout = output.data["layout"]
    assert 500 <= report.retained_symbols <= 950   # paper: 889
    assert 0.35 <= report.retained_fraction <= 0.80  # paper: 63%
    assert report.miss_probability <= 0.35          # paper: 9.3%
    assert layout.table_bytes >= 25000              # paper: 30,576
    assert layout.hot_pages < layout.unsorted_pages
