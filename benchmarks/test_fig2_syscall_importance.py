"""Figure 2 — API importance of the N-most important system calls.

Paper: 224 of 320 syscalls indispensable (importance ~100%); 257 above
10%; ~301 nonzero; 18 never used.
"""

from repro.metrics import importance_table
from repro.syscalls.table import ALL_NAMES


def test_fig2_syscall_importance(benchmark, study, save):
    table = benchmark(importance_table, study.footprints,
                      study.popcon, "syscall", ALL_NAMES)
    output = study.fig2_syscall_importance()
    save("fig2_syscall_importance", output.rendered)
    print(output.rendered)

    indispensable = sum(1 for v in table.values() if v >= 0.995)
    over_10 = sum(1 for v in table.values() if v >= 0.10)
    nonzero = sum(1 for v in table.values() if v > 0)
    unused = len(table) - nonzero
    assert 195 <= indispensable <= 245    # paper: 224
    assert 230 <= over_10 <= 280          # paper: 257
    assert 285 <= nonzero <= 315          # paper: ~301
    assert 15 <= unused <= 22             # paper: 18
