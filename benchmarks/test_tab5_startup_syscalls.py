"""Table 5 — ubiquitous syscalls issued by libc-family startup.

Paper: access/arch_prctl from ld.so; clone/execve/getuid... from
libc; rt_sigreturn/set_robust_list/set_tid_address from libpthread;
futex from all three.
"""


def test_tab5_startup_syscalls(benchmark, study, save):
    output = benchmark(study.tab5_startup_syscalls)
    save("tab5_startup_syscalls", output.rendered)
    print(output.rendered)

    attribution = output.data
    assert "ld-linux-x86-64.so.2" in attribution["access"]
    assert "ld-linux-x86-64.so.2" in attribution["arch_prctl"]
    assert "libpthread.so.0" in attribution["set_robust_list"]
    assert "libpthread.so.0" in attribution["set_tid_address"]
    assert len(attribution["futex"]) >= 2
