"""Table 1 — syscalls only used directly by particular libraries.

Paper: clock_settime/iopl/ioperm/signalfd4 at 100% via libc; mbind
36.0% (libnuma, libopenblas); add_key/keyctl 27.2%; request_key 14.4%;
preadv/pwritev 11.7% via libc.
"""


def test_tab1_library_only_syscalls(benchmark, study, save):
    output = benchmark(study.tab1_library_only_syscalls)
    save("tab1_library_only_syscalls", output.rendered)
    print(output.rendered)

    rows = {row[0]: row for row in output.data}
    for name in ("clock_settime", "iopl", "ioperm", "signalfd4"):
        assert rows[name][1] == "100.0%"
    assert 0.25 <= float(rows["mbind"][1].rstrip("%")) / 100 <= 0.60
    assert "libnuma" in rows["mbind"][2]
    assert 0.05 <= float(rows["preadv"][1].rstrip("%")) / 100 <= 0.25
