"""Appendix A — validating the paper's closed-form metrics against
direct Monte-Carlo simulation of installations.

A.1's API importance is exact under the independence model; A.2's
weighted completeness approximates E[ratio] with a ratio of
expectations.  These benchmarks measure both on the synthesized
archive.
"""

from repro.metrics import (
    approximation_error_report,
    empirical_api_importance,
    supported_packages,
)


def test_appendix_a1_importance_formula(benchmark, study, save):
    apis = ["kexec_load", "mbind", "nfsservctl", "keyctl"]

    def simulate():
        return {api: empirical_api_importance(
            api, study.footprints, study.popcon, n_samples=4000,
            seed=13) for api in apis}

    empirical = benchmark.pedantic(simulate, rounds=1, iterations=1)
    analytic = study.importance("syscall")
    rows = ["Appendix A.1 — analytic vs simulated API importance"]
    max_error = 0.0
    for api in apis:
        error = abs(empirical[api] - analytic[api])
        max_error = max(max_error, error)
        rows.append(f"  {api:12s} analytic {analytic[api]:8.4%}  "
                    f"simulated {empirical[api]:8.4%}  "
                    f"err {error:.4%}")
    save("appendix_a1", "\n".join(rows))
    assert max_error < 0.02


def test_appendix_a2_approximation_error(benchmark, study, save):
    supported_apis = frozenset(study.syscall_ranking()[:200])
    supported = supported_packages(
        supported_apis, study.footprints, study.repository)

    def simulate():
        return approximation_error_report(
            supported, study.footprints, study.popcon,
            n_samples=600, seed=17)

    report = benchmark.pedantic(simulate, rounds=1, iterations=1)
    save("appendix_a2", "\n".join([
        "Appendix A.2 — ratio-of-expectations approximation",
        f"analytic completeness  : {report['analytic']:.4f}",
        f"simulated E[ratio]     : {report['empirical']:.4f}",
        f"absolute error         : {report['absolute_error']:.4f}",
        "(the closed form the paper uses is a good approximation of",
        "the expectation it defines)",
    ]))
    assert report["absolute_error"] < 0.08
