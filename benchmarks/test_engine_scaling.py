"""Engine scaling: serial vs parallel vs warm-cache pipeline runs.

The paper's static pass covered 30,976 packages; re-running it for
every Ubuntu point release is what motivates §2.4's incremental
workflow. This benchmark measures the three regimes the engine
provides: a cold serial run, a cold multi-process run, and a warm
content-addressed-cache run that skips every unchanged binary.
"""

import os
import time

from repro.analysis import AnalysisPipeline
from repro.engine import AnalysisEngine, EngineConfig
from repro.reports.text import render_table
from repro.synth import EcosystemConfig, build_ecosystem

_JOBS = 4


def _ecosystem():
    return build_ecosystem(EcosystemConfig(
        n_filler_packages=60, n_driver_packages=10,
        n_script_packages=30, seed=11))


def _run(ecosystem, engine):
    return AnalysisPipeline(ecosystem.repository,
                            ecosystem.interpreters,
                            engine=engine).run()


def _timed(ecosystem, engine):
    start = time.perf_counter()
    result = _run(ecosystem, engine)
    return time.perf_counter() - start, result


def _comparable(result):
    return (result.package_footprints, result.package_full_footprints,
            result.binary_footprints, result.direct_syscalls_by_binary,
            result.unresolved_sites)


def test_engine_scaling(benchmark, save, tmp_path):
    ecosystem = _ecosystem()
    cache_dir = str(tmp_path / "cache")

    serial_s, serial = _timed(
        ecosystem, AnalysisEngine(EngineConfig()))
    thread_s, threaded = _timed(
        ecosystem, AnalysisEngine(EngineConfig(jobs=_JOBS,
                                               backend="thread")))
    process_s, parallel = _timed(
        ecosystem, AnalysisEngine(EngineConfig(jobs=_JOBS,
                                               backend="process")))
    cold_s, cold = _timed(
        ecosystem, AnalysisEngine(EngineConfig(cache_dir=cache_dir)))

    def warm_run():
        return _run(ecosystem,
                    AnalysisEngine(EngineConfig(cache_dir=cache_dir)))

    warm = benchmark.pedantic(warm_run, rounds=3, iterations=1)
    warm_s = warm.engine_stats.total_seconds

    # Every backend and the warm replay agree exactly.
    baseline = _comparable(serial)
    for other in (threaded, parallel, cold, warm):
        assert _comparable(other) == baseline

    # The warm run skips (at least) 95% of per-binary analyses.
    stats = warm.engine_stats
    assert stats.cache_misses == 0
    assert stats.hit_rate >= 0.95
    assert stats.cache_hits == stats.binaries_total

    # Fan-out only wins with real cores to fan out to.
    if os.cpu_count() >= 2:
        assert process_s < serial_s

    rows = [
        ("serial x1 (cold)", f"{serial_s:.2f}", "1.00x"),
        (f"thread x{_JOBS} (cold)", f"{thread_s:.2f}",
         f"{serial_s / thread_s:.2f}x"),
        (f"process x{_JOBS} (cold)", f"{process_s:.2f}",
         f"{serial_s / process_s:.2f}x"),
        ("serial x1 (warm cache)", f"{warm_s:.2f}",
         f"{serial_s / warm_s:.2f}x" if warm_s else "inf"),
    ]
    save("engine_scaling", render_table(
        ["regime", "seconds", "speedup"], rows,
        title=f"Engine scaling, {serial.binaries_analyzed} binaries "
              f"({os.cpu_count()} cpus)"))


def test_warm_cache_replay(benchmark, save, tmp_path):
    """A second run over unchanged bytes is pure cache replay."""
    ecosystem = _ecosystem()
    config = EngineConfig(cache_dir=str(tmp_path / "cache"))
    _run(ecosystem, AnalysisEngine(config))

    def warm_run():
        return _run(ecosystem, AnalysisEngine(config))

    result = benchmark.pedantic(warm_run, rounds=3, iterations=1)
    assert result.engine_stats.cache_misses == 0
    save("engine_warm_replay", result.engine_stats.render())
