"""§3.2's sketched extension: the implementation path over the FULL
API surface — system calls, ioctl/fcntl/prctl opcodes, pseudo-files,
and libc symbols together.

The paper: "For simplicity, Table 4 only includes system calls, but
one can construct a similar path including other APIs... developers
need not implement every operation of ioctl, fcntl and prctl during
the early stage of developing a system prototype."
"""

from repro.metrics import completeness_curve, importance_table


def test_full_api_implementation_path(benchmark, study, save):
    curve = benchmark.pedantic(
        completeness_curve,
        args=(study.footprints, study.popcon, study.repository),
        kwargs={"dimension": "all"},
        rounds=1, iterations=1)

    def first(target):
        return next((p.n_apis for p in curve
                     if p.completeness >= target), None)

    syscall_curve = study.curve()

    def first_syscall(target):
        return next((p.n_apis for p in syscall_curve
                     if p.completeness >= target), None)

    # How the path to 90% completeness splits across API types.
    n_90 = first(0.90)
    head = [p.api for p in curve[:n_90]]
    head_ioctls = sum(1 for api in head if api.startswith("ioctl:"))
    head_libc = sum(1 for api in head if api.startswith("libc:"))
    head_pseudo = sum(1 for api in head
                      if api.startswith("pseudofile:"))
    head_syscalls = sum(1 for api in head if ":" not in api)
    total_apis = len(curve)

    save("full_api_path", "\n".join([
        "Implementation path over the full API surface",
        f"total APIs in play            : {total_apis}",
        f"N for 10% weighted completeness : {first(0.10)} "
        f"(syscalls only: {first_syscall(0.10)})",
        f"N for 50%                      : {first(0.50)} "
        f"(syscalls only: {first_syscall(0.50)})",
        f"N for 90%                      : {first(0.90)} "
        f"(syscalls only: {first_syscall(0.90)})",
        f"path to 90% includes: {head_syscalls} syscalls, "
        f"{head_ioctls} ioctl codes, {head_libc} libc symbols, "
        f"{head_pseudo} pseudo-files",
    ]))

    # The full surface is several times the syscall table (§9: "the
    # required API size is several times larger than the 320 system
    # calls").
    assert total_apis > 3 * 323
    # The road to 90% spans every API type (§9: the effective interface
    # is several times the syscall table) ...
    assert head_ioctls > 30
    assert head_pseudo > 3
    assert head_libc > 100
    # ... yet far from ALL of each: the vectored tails can wait.
    assert head_ioctls < 635 * 0.5
    # Completing the archive needs far more than the syscall-only path.
    assert first(0.90) > first_syscall(0.90)
