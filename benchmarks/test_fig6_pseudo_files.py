"""Figure 6 — API importance of pseudo-files under /dev and /proc.

Paper: /dev/null and /proc/cpuinfo essential (3,324 and 439 binaries
hard-code them); /dev/kvm and /proc/kallsyms single-application; long
administrator tail.
"""


def test_fig6_pseudo_files(benchmark, study, save):
    output = benchmark(study.fig6_pseudo_files)
    save("fig6_pseudo_files", output.rendered)
    print(output.rendered)

    top = dict(output.data["top"])
    assert top.get("/dev/null", 0) >= 0.999
    assert top.get("/proc/cpuinfo", 0) >= 0.999
    importance = study.importance("pseudofile")
    assert 0 < importance.get("/dev/kvm", 0) < 0.10
    series = output.data["series"]
    # sharp head, long tail
    assert series[0] >= 0.999
    assert series[-1] < 0.10
