"""Table 3 — system calls no application in the archive uses.

Paper: 18 calls (10 officially retired; sysfs, rt_tgsigqueueinfo,
get_robust_list, remap_file_pages, mq_notify, lookup_dcookie,
restart_syscall, move_pages).
"""


def test_tab3_unused_syscalls(benchmark, study, save):
    output = benchmark(study.tab3_unused_syscalls)
    save("tab3_unused_syscalls", output.rendered)
    print(output.rendered)

    names = {row[0] for row in output.data}
    assert 15 <= len(names) <= 22          # paper: 18
    for expected in ("sysfs", "remap_file_pages", "mq_notify",
                     "lookup_dcookie", "restart_syscall",
                     "move_pages", "get_robust_list"):
        assert expected in names
