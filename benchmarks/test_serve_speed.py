"""Serving-layer speed: warm HTTP queries vs per-invocation CLI cost.

The serving layer exists because the batch CLI pays for interpreter
start, ecosystem synthesis, and corpus analysis on *every* question
asked; a resident server pays once and answers from the warm dataset
(and, for repeated queries, from the result cache).  This benchmark
quantifies that gap on the medium benchmark corpus:

* **CLI baseline** — one full ``repro-analyze evaluate`` subprocess on
  the same ecosystem configuration (min of two runs);
* **warm sequential** — served queries over one keep-alive connection
  with a hot result cache, giving per-request latency quantiles;
* **warm concurrent** — several client threads hammering mixed
  endpoints at once, giving aggregate throughput.

Writes ``benchmarks/output/BENCH_serve.json`` and gates: warm served
throughput must beat the CLI's one-answer-per-invocation rate by at
least 20x, and warm-cache p99 latency must stay under 250ms.
"""

import http.client
import json
import os
import subprocess
import sys
import threading
import time

from repro.serve import ServeApp, ServeServer, SnapshotHolder

_REQUIRED_THROUGHPUT_RATIO = 20.0
_MAX_WARM_P99_SECONDS = 0.250

_SEQUENTIAL_REQUESTS = 300
_CONCURRENT_CLIENTS = 4
_REQUESTS_PER_CLIENT = 75

#: Mixed warm query set: two GETs and a POST, all cacheable.
_QUERY_MIX = [
    ("GET", "/v1/importance?limit=10", None),
    ("GET", "/v1/dataset/stats", None),
    ("POST", "/v1/completeness",
     json.dumps({"supported": ["read", "write"]})),
]


def _cli_invocation_seconds() -> float:
    """Wall time for one complete CLI answer (min of two runs)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = "src"
    argv = [sys.executable, "-m", "repro.cli",
            "--fillers", "200", "--drivers", "30",
            "--scripts", "220", "evaluate", "read,write"]
    timings = []
    for _ in range(2):
        start = time.perf_counter()
        result = subprocess.run(argv, env=env, capture_output=True,
                                timeout=600)
        assert result.returncode == 0, result.stderr[-400:]
        timings.append(time.perf_counter() - start)
    return min(timings)


def _request(conn, method, path, body):
    headers = {"Content-Type": "application/json"} if body else {}
    conn.request(method, path, body=body, headers=headers)
    response = conn.getresponse()
    payload = response.read()
    assert response.status == 200, (response.status, payload[:200])
    return payload


def _percentile(ordered, q):
    rank = max(1, -(-len(ordered) * q // 100))  # nearest rank
    return ordered[int(rank) - 1]


def test_serve_speed(study, output_dir, save):
    holder = SnapshotHolder(study.dataset)
    app = ServeApp(holder, concurrency=8, max_wait_seconds=2.0,
                   cache_entries=256)
    cli_seconds = _cli_invocation_seconds()

    with ServeServer(app, port=0) as server:
        conn = http.client.HTTPConnection(server.host, server.port,
                                          timeout=30)
        # Warm the result cache: first touch of each query computes.
        for method, path, body in _QUERY_MIX:
            _request(conn, method, path, body)

        # Sequential warm phase: per-request latencies.
        latencies = []
        sequential_start = time.perf_counter()
        for i in range(_SEQUENTIAL_REQUESTS):
            method, path, body = _QUERY_MIX[i % len(_QUERY_MIX)]
            start = time.perf_counter()
            _request(conn, method, path, body)
            latencies.append(time.perf_counter() - start)
        sequential_seconds = time.perf_counter() - sequential_start
        conn.close()

        # Concurrent warm phase: aggregate throughput.
        errors = []

        def client(n: int) -> None:
            c = http.client.HTTPConnection(server.host, server.port,
                                           timeout=30)
            try:
                for i in range(_REQUESTS_PER_CLIENT):
                    method, path, body = \
                        _QUERY_MIX[(n + i) % len(_QUERY_MIX)]
                    _request(c, method, path, body)
            except Exception as exc:  # pragma: no cover - report only
                errors.append(repr(exc))
            finally:
                c.close()

        threads = [threading.Thread(target=client, args=(n,))
                   for n in range(_CONCURRENT_CLIENTS)]
        concurrent_start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=300)
        concurrent_seconds = time.perf_counter() - concurrent_start
        assert not errors, errors[:3]

        cache_stats = app.qcache.stats()

    latencies.sort()
    p50 = _percentile(latencies, 50)
    p99 = _percentile(latencies, 99)
    sequential_rps = _SEQUENTIAL_REQUESTS / sequential_seconds
    concurrent_rps = (_CONCURRENT_CLIENTS * _REQUESTS_PER_CLIENT
                      / concurrent_seconds)
    cli_rps = 1.0 / cli_seconds
    throughput_ratio = sequential_rps / cli_rps

    payload = {
        "corpus": {"packages": len(study.dataset.packages)},
        "cli_invocation_seconds": cli_seconds,
        "cli_answers_per_second": cli_rps,
        "sequential": {
            "requests": _SEQUENTIAL_REQUESTS,
            "seconds": sequential_seconds,
            "requests_per_second": sequential_rps,
            "p50_seconds": p50,
            "p99_seconds": p99,
        },
        "concurrent": {
            "clients": _CONCURRENT_CLIENTS,
            "requests": _CONCURRENT_CLIENTS * _REQUESTS_PER_CLIENT,
            "seconds": concurrent_seconds,
            "requests_per_second": concurrent_rps,
        },
        "qcache": {
            "hit_rate": cache_stats["hit_rate"],
            "hits": cache_stats["hits"],
            "misses": cache_stats["misses"],
        },
        "throughput_ratio": throughput_ratio,
        "required_throughput_ratio": _REQUIRED_THROUGHPUT_RATIO,
        "max_warm_p99_seconds": _MAX_WARM_P99_SECONDS,
    }
    (output_dir / "BENCH_serve.json").write_text(
        json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    save("serve_speed", "\n".join([
        "serving layer — warm query throughput vs CLI",
        f"  cli invocation      : {cli_seconds * 1000:.0f} ms "
        f"({cli_rps:.2f} answers/s)",
        f"  warm sequential     : {sequential_rps:.0f} req/s "
        f"(p50 {p50 * 1000:.2f} ms, p99 {p99 * 1000:.2f} ms)",
        f"  warm concurrent x{_CONCURRENT_CLIENTS}  : "
        f"{concurrent_rps:.0f} req/s",
        f"  cache hit rate      : {cache_stats['hit_rate']:.1%}",
        f"  throughput ratio    : {throughput_ratio:.0f}x "
        f"(required {_REQUIRED_THROUGHPUT_RATIO:.0f}x)",
    ]))

    assert throughput_ratio >= _REQUIRED_THROUGHPUT_RATIO, (
        f"warm served throughput only {throughput_ratio:.1f}x the "
        f"CLI rate (need >= {_REQUIRED_THROUGHPUT_RATIO}x)")
    assert p99 <= _MAX_WARM_P99_SECONDS, (
        f"warm-cache p99 {p99 * 1000:.1f}ms exceeds "
        f"{_MAX_WARM_P99_SECONDS * 1000:.0f}ms")
