"""Serving-layer speed: warm HTTP queries vs per-invocation CLI cost.

The serving layer exists because the batch CLI pays for interpreter
start, ecosystem synthesis, and corpus analysis on *every* question
asked; a resident server pays once and answers from the warm dataset
(and, for repeated queries, from the result cache).  This benchmark
quantifies that gap on the medium benchmark corpus:

* **CLI baseline** — one full ``repro-analyze evaluate`` subprocess on
  the same ecosystem configuration (min of two runs);
* **warm sequential** — served queries over one keep-alive connection
  with a hot result cache, giving per-request latency quantiles;
* **warm concurrent** — several client threads hammering mixed
  endpoints at once, giving aggregate throughput and the contended
  latency tail;
* **pre-fork fleet** — forked client processes against a 1-worker and
  an N-worker :class:`repro.serve.WorkerSupervisor` fleet over the
  same ``.rsnap`` snapshot, giving the multi-process speedup.

Writes ``benchmarks/output/BENCH_serve.json`` (both tests merge into
the one artifact) and gates: warm served throughput must beat the
CLI's one-answer-per-invocation rate by at least 20x, warm-cache p99
latency must stay under 250ms (500ms contended), and — given enough
cores to matter — the 4-worker fleet must serve at least 3x the
single worker's rate.
"""

import http.client
import json
import multiprocessing
import os
import subprocess
import sys
import threading
import time

from repro.serve import (ServeApp, ServeServer, SnapshotHolder,
                         WorkerSupervisor)

_REQUIRED_THROUGHPUT_RATIO = 20.0
_MAX_WARM_P99_SECONDS = 0.250
#: Concurrent requests queue behind each other inside one worker, so
#: the tail is looser than the single-connection bound.
_MAX_CONCURRENT_P99_SECONDS = 0.500

_SEQUENTIAL_REQUESTS = 300
_CONCURRENT_CLIENTS = 4
_REQUESTS_PER_CLIENT = 75

#: Pre-fork scaling measurement: client *processes* (thread clients
#: would serialize on the measuring process's GIL and understate the
#: fleet) against 1-worker and N-worker fleets.
_FLEET_WORKERS = 4
_FLEET_CLIENTS = 8
_FLEET_REQUESTS_PER_CLIENT = 100
_REQUIRED_FLEET_SPEEDUP = 3.0
#: Multi-process scaling needs real cores: the fleet plus the client
#: swarm.  Below this, the ratio is recorded but not gated (the same
#: convention test_engine_scaling uses).
_FLEET_GATE_MIN_CPUS = 6

#: Mixed warm query set: two GETs and a POST, all cacheable.
_QUERY_MIX = [
    ("GET", "/v1/importance?limit=10", None),
    ("GET", "/v1/dataset/stats", None),
    ("POST", "/v1/completeness",
     json.dumps({"supported": ["read", "write"]})),
]


def _cli_invocation_seconds() -> float:
    """Wall time for one complete CLI answer (min of two runs)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = "src"
    argv = [sys.executable, "-m", "repro.cli",
            "--fillers", "200", "--drivers", "30",
            "--scripts", "220", "evaluate", "read,write"]
    timings = []
    for _ in range(2):
        start = time.perf_counter()
        result = subprocess.run(argv, env=env, capture_output=True,
                                timeout=600)
        assert result.returncode == 0, result.stderr[-400:]
        timings.append(time.perf_counter() - start)
    return min(timings)


def _request(conn, method, path, body):
    headers = {"Content-Type": "application/json"} if body else {}
    conn.request(method, path, body=body, headers=headers)
    response = conn.getresponse()
    payload = response.read()
    assert response.status == 200, (response.status, payload[:200])
    return payload


def _percentile(ordered, q):
    rank = max(1, -(-len(ordered) * q // 100))  # nearest rank
    return ordered[int(rank) - 1]


def test_serve_speed(study, output_dir, save):
    holder = SnapshotHolder(study.dataset)
    app = ServeApp(holder, concurrency=8, max_wait_seconds=2.0,
                   cache_entries=256)
    cli_seconds = _cli_invocation_seconds()

    with ServeServer(app, port=0) as server:
        conn = http.client.HTTPConnection(server.host, server.port,
                                          timeout=30)
        # Warm the result cache: first touch of each query computes.
        for method, path, body in _QUERY_MIX:
            _request(conn, method, path, body)

        # Sequential warm phase: per-request latencies.
        latencies = []
        sequential_start = time.perf_counter()
        for i in range(_SEQUENTIAL_REQUESTS):
            method, path, body = _QUERY_MIX[i % len(_QUERY_MIX)]
            start = time.perf_counter()
            _request(conn, method, path, body)
            latencies.append(time.perf_counter() - start)
        sequential_seconds = time.perf_counter() - sequential_start
        conn.close()

        # Concurrent warm phase: aggregate throughput + per-request
        # latency quantiles (the section used to record only the
        # aggregate, leaving the contended tail invisible).
        errors = []
        concurrent_latencies = [[] for _ in
                                range(_CONCURRENT_CLIENTS)]

        def client(n: int) -> None:
            c = http.client.HTTPConnection(server.host, server.port,
                                           timeout=30)
            try:
                for i in range(_REQUESTS_PER_CLIENT):
                    method, path, body = \
                        _QUERY_MIX[(n + i) % len(_QUERY_MIX)]
                    start = time.perf_counter()
                    _request(c, method, path, body)
                    concurrent_latencies[n].append(
                        time.perf_counter() - start)
            except Exception as exc:  # pragma: no cover - report only
                errors.append(repr(exc))
            finally:
                c.close()

        threads = [threading.Thread(target=client, args=(n,))
                   for n in range(_CONCURRENT_CLIENTS)]
        concurrent_start = time.perf_counter()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=300)
        concurrent_seconds = time.perf_counter() - concurrent_start
        assert not errors, errors[:3]

        cache_stats = app.qcache.stats()

    latencies.sort()
    p50 = _percentile(latencies, 50)
    p99 = _percentile(latencies, 99)
    merged = sorted(lat for per_client in concurrent_latencies
                    for lat in per_client)
    concurrent_p50 = _percentile(merged, 50)
    concurrent_p99 = _percentile(merged, 99)
    sequential_rps = _SEQUENTIAL_REQUESTS / sequential_seconds
    concurrent_rps = (_CONCURRENT_CLIENTS * _REQUESTS_PER_CLIENT
                      / concurrent_seconds)
    cli_rps = 1.0 / cli_seconds
    throughput_ratio = sequential_rps / cli_rps

    payload = {
        "corpus": {"packages": len(study.dataset.packages)},
        "cli_invocation_seconds": cli_seconds,
        "cli_answers_per_second": cli_rps,
        "sequential": {
            "requests": _SEQUENTIAL_REQUESTS,
            "seconds": sequential_seconds,
            "requests_per_second": sequential_rps,
            "p50_seconds": p50,
            "p99_seconds": p99,
        },
        "concurrent": {
            "clients": _CONCURRENT_CLIENTS,
            "requests": _CONCURRENT_CLIENTS * _REQUESTS_PER_CLIENT,
            "seconds": concurrent_seconds,
            "requests_per_second": concurrent_rps,
            "p50_seconds": concurrent_p50,
            "p99_seconds": concurrent_p99,
        },
        "qcache": {
            "hit_rate": cache_stats["hit_rate"],
            "hits": cache_stats["hits"],
            "misses": cache_stats["misses"],
        },
        "throughput_ratio": throughput_ratio,
        "required_throughput_ratio": _REQUIRED_THROUGHPUT_RATIO,
        "max_warm_p99_seconds": _MAX_WARM_P99_SECONDS,
        "max_concurrent_p99_seconds": _MAX_CONCURRENT_P99_SECONDS,
    }
    _merge_bench(output_dir, payload)

    save("serve_speed", "\n".join([
        "serving layer — warm query throughput vs CLI",
        f"  cli invocation      : {cli_seconds * 1000:.0f} ms "
        f"({cli_rps:.2f} answers/s)",
        f"  warm sequential     : {sequential_rps:.0f} req/s "
        f"(p50 {p50 * 1000:.2f} ms, p99 {p99 * 1000:.2f} ms)",
        f"  warm concurrent x{_CONCURRENT_CLIENTS}  : "
        f"{concurrent_rps:.0f} req/s "
        f"(p50 {concurrent_p50 * 1000:.2f} ms, "
        f"p99 {concurrent_p99 * 1000:.2f} ms)",
        f"  cache hit rate      : {cache_stats['hit_rate']:.1%}",
        f"  throughput ratio    : {throughput_ratio:.0f}x "
        f"(required {_REQUIRED_THROUGHPUT_RATIO:.0f}x)",
    ]))

    assert throughput_ratio >= _REQUIRED_THROUGHPUT_RATIO, (
        f"warm served throughput only {throughput_ratio:.1f}x the "
        f"CLI rate (need >= {_REQUIRED_THROUGHPUT_RATIO}x)")
    assert p99 <= _MAX_WARM_P99_SECONDS, (
        f"warm-cache p99 {p99 * 1000:.1f}ms exceeds "
        f"{_MAX_WARM_P99_SECONDS * 1000:.0f}ms")
    assert concurrent_p99 <= _MAX_CONCURRENT_P99_SECONDS, (
        f"concurrent warm p99 {concurrent_p99 * 1000:.1f}ms exceeds "
        f"{_MAX_CONCURRENT_P99_SECONDS * 1000:.0f}ms")


# --- pre-fork fleet scaling --------------------------------------------

def _merge_bench(output_dir, updates):
    """Merge ``updates`` into ``BENCH_serve.json`` (both serve tests
    contribute sections to one artifact, in either run order)."""
    path = output_dir / "BENCH_serve.json"
    payload = {}
    if path.exists():
        payload = json.loads(path.read_text(encoding="utf-8"))
    payload.update(updates)
    path.write_text(json.dumps(payload, indent=2) + "\n",
                    encoding="utf-8")


def _fleet_rps(supervisor, clients, requests_each):
    """Aggregate req/s from forked client processes.

    Each client keeps one connection alive (so it stays pinned to one
    worker), does an untimed warm pass of the query mix, then runs the
    timed loop.  Returns ``(rps, worker_labels_seen, errors)``; the
    wall clock is ``max(end) - min(start)`` across clients so process
    spawn cost is excluded.
    """
    ctx = multiprocessing.get_context("fork")
    queue = ctx.Queue()
    barrier = ctx.Barrier(clients + 1)

    def run_client(n: int) -> None:
        conn = http.client.HTTPConnection(supervisor.host,
                                          supervisor.port,
                                          timeout=60)
        labels = set()
        try:
            for method, path, body in _QUERY_MIX:  # warm this worker
                headers = ({"Content-Type": "application/json"}
                           if body else {})
                conn.request(method, path, body=body,
                             headers=headers)
                response = conn.getresponse()
                labels.add(response.headers.get("X-Repro-Worker"))
                response.read()
            barrier.wait()
            start = time.perf_counter()
            for i in range(requests_each):
                method, path, body = \
                    _QUERY_MIX[(n + i) % len(_QUERY_MIX)]
                headers = ({"Content-Type": "application/json"}
                           if body else {})
                conn.request(method, path, body=body,
                             headers=headers)
                response = conn.getresponse()
                payload = response.read()
                if response.status != 200:
                    queue.put(("error", n,
                               (response.status, payload[:120])))
                    return
                labels.add(response.headers.get("X-Repro-Worker"))
            end = time.perf_counter()
            queue.put(("ok", n, (start, end, sorted(labels))))
        except Exception as exc:
            barrier.abort()  # never leave the parent waiting
            queue.put(("error", n, repr(exc)))
        finally:
            conn.close()

    processes = [ctx.Process(target=run_client, args=(n,))
                 for n in range(clients)]
    for process in processes:
        process.start()
    try:
        barrier.wait()  # clients warmed; timed loops begin together
    except threading.BrokenBarrierError:
        pass  # a client failed during warm-up; errors arrive below
    results, errors = [], []
    for _ in range(clients):
        kind, n, data = queue.get(timeout=600)
        (results if kind == "ok" else errors).append((n, data))
    for process in processes:
        process.join(timeout=60)
    if errors:
        return 0.0, set(), errors
    wall = (max(end for _, (_, end, _) in results)
            - min(start for _, (start, _, _) in results))
    labels = {label for _, (_, _, ls) in results for label in ls}
    return clients * requests_each / wall, labels, []


def test_multiworker_scaling(study, output_dir, save, tmp_path):
    """Pre-fork fleet throughput: 1 worker vs _FLEET_WORKERS workers.

    Records the ratio in ``BENCH_serve.json``; the >=3x gate only
    applies with enough cores to host the fleet and its clients (on a
    small box the fork model can't beat one worker — there is nothing
    to fan out to).
    """
    snapshot_path = tmp_path / "bench.rsnap"
    study.export_dataset(snapshot_path, format="binary")
    rates = {}
    coverage = {}
    for workers in (1, _FLEET_WORKERS):
        supervisor = WorkerSupervisor(
            snapshot_path, workers=workers,
            popcon=study.popcon, repository=study.repository)
        with supervisor:
            # Coverage retry: keep-alive pins each client to one
            # worker, so an unlucky kernel spread can leave a worker
            # idle; respawn the swarm rather than publish a partial
            # fleet measurement.
            for attempt in range(3):
                rps, labels, errors = _fleet_rps(
                    supervisor, _FLEET_CLIENTS,
                    _FLEET_REQUESTS_PER_CLIENT)
                assert not errors, errors[:3]
                if len(labels) == workers or attempt == 2:
                    break
            rates[workers] = rps
            coverage[workers] = len(labels)

    speedup = rates[_FLEET_WORKERS] / rates[1]
    cpus = os.cpu_count() or 1
    gated = cpus >= _FLEET_GATE_MIN_CPUS

    _merge_bench(output_dir, {"multiworker": {
        "snapshot_bytes": snapshot_path.stat().st_size,
        "clients": _FLEET_CLIENTS,
        "requests_per_client": _FLEET_REQUESTS_PER_CLIENT,
        "single_worker_rps": rates[1],
        "fleet_workers": _FLEET_WORKERS,
        "fleet_rps": rates[_FLEET_WORKERS],
        "fleet_worker_coverage": coverage[_FLEET_WORKERS],
        "speedup": speedup,
        "required_speedup": _REQUIRED_FLEET_SPEEDUP,
        "cpus": cpus,
        "speedup_gated": gated,
    }})

    save("serve_multiworker", "\n".join([
        "serving layer — pre-fork fleet scaling "
        f"({_FLEET_CLIENTS} client processes)",
        f"  1 worker            : {rates[1]:.0f} req/s",
        f"  {_FLEET_WORKERS} workers           : "
        f"{rates[_FLEET_WORKERS]:.0f} req/s "
        f"({coverage[_FLEET_WORKERS]}/{_FLEET_WORKERS} workers "
        f"answered)",
        f"  speedup             : {speedup:.2f}x "
        f"(required {_REQUIRED_FLEET_SPEEDUP:.0f}x on "
        f">={_FLEET_GATE_MIN_CPUS} cpus; this box has {cpus})",
    ]))

    assert coverage[_FLEET_WORKERS] >= 2, (
        "fleet measurement never reached a second worker")
    if gated:
        assert speedup >= _REQUIRED_FLEET_SPEEDUP, (
            f"{_FLEET_WORKERS}-worker fleet only {speedup:.2f}x one "
            f"worker (need >= {_REQUIRED_FLEET_SPEEDUP}x)")
