"""End-to-end pipeline cost (§7: the paper's full run took ~3 days on
30,976 packages; ours analyzes the synthetic archive in seconds).

Also exercises the ablation DESIGN.md calls out: resolution through
the relational engine vs. the in-memory resolver.
"""

from repro.analysis import AnalysisDatabase, AnalysisPipeline
from repro.synth import EcosystemConfig, build_ecosystem


def test_full_pipeline_small_archive(benchmark):
    ecosystem = build_ecosystem(EcosystemConfig(
        n_filler_packages=40, n_driver_packages=8,
        n_script_packages=20, seed=11))

    def run():
        return AnalysisPipeline(ecosystem.repository,
                                ecosystem.interpreters).run()

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.binaries_analyzed > 100


def test_sql_engine_aggregation(benchmark):
    ecosystem = build_ecosystem(EcosystemConfig(
        n_filler_packages=24, n_driver_packages=6,
        n_script_packages=10, seed=11))
    database = AnalysisDatabase()
    AnalysisPipeline(ecosystem.repository,
                     ecosystem.interpreters).run(database)
    rows = database.connection.execute(
        "SELECT id FROM binaries WHERE kind='elf-executable' "
        "LIMIT 40").fetchall()

    def aggregate():
        return [database.executable_footprint(bid)
                for (bid,) in rows]

    footprints = benchmark.pedantic(aggregate, rounds=3, iterations=1)
    assert any(fp.syscalls for fp in footprints)


def test_ecosystem_generation(benchmark):
    def build():
        return build_ecosystem(EcosystemConfig(
            n_filler_packages=24, n_driver_packages=6,
            n_script_packages=10, seed=13))

    ecosystem = benchmark.pedantic(build, rounds=3, iterations=1)
    assert len(ecosystem.repository) > 60
