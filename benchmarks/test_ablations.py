"""Ablations of the design choices DESIGN.md calls out.

Each benchmark switches off one mechanism the paper's methodology
depends on and measures the damage — demonstrating *why* the design is
the way it is.
"""

import statistics

from repro.analysis.binary import BinaryAnalysis
from repro.metrics import completeness_curve, importance_table, weighted_completeness
from repro.metrics.importance import band_counts
from repro.syscalls.table import ALL_NAMES
from repro.synth import EcosystemConfig, build_ecosystem


def test_ablation_pointer_over_approximation(benchmark, study, save):
    """§7: without treating function-pointer formation as a call, the
    crt0 -> __libc_start_main -> main dispatch is invisible and entry
    reachability collapses to the startup stub."""
    samples = []
    for package in list(study.repository)[:60]:
        for artifact in package.executables():
            if artifact.is_elf:
                samples.append(artifact.data)
                break
        if len(samples) >= 25:
            break

    def measure(follow):
        sizes = []
        for data in samples:
            analysis = BinaryAnalysis.from_bytes(data)
            entry = analysis.entry_root()
            if entry is None:
                continue
            reachable = analysis.graph.reachable_from(
                entry, follow_pointers=follow)
            sizes.append(len(reachable))
        return sizes

    with_ptr = benchmark(measure, True)
    without_ptr = measure(False)
    mean_with = statistics.mean(with_ptr)
    mean_without = statistics.mean(without_ptr)
    save("ablation_pointer", "\n".join([
        "Ablation — §7 function-pointer over-approximation",
        f"mean reachable functions WITH pointer edges   : "
        f"{mean_with:.1f}",
        f"mean reachable functions WITHOUT pointer edges: "
        f"{mean_without:.1f}",
        "Without the over-approximation, _start cannot reach main and",
        "application code disappears from every footprint.",
    ]))
    # main (and everything it calls) vanishes without pointer edges
    assert mean_without < mean_with
    assert mean_without <= 2.0


def test_ablation_dependency_closure(benchmark, study, save):
    """§2.2 step 3: weighted completeness must cascade unsupported
    dependencies; ignoring them inflates the score."""
    supported = frozenset(study.syscall_ranking()[:150])

    def with_closure():
        return weighted_completeness(
            supported, study.footprints, study.popcon,
            study.repository)

    closed = benchmark.pedantic(with_closure, rounds=3, iterations=1)
    open_score = weighted_completeness(
        supported, study.footprints, study.popcon, repository=None)
    save("ablation_dependency_closure", "\n".join([
        "Ablation — dependency closure in weighted completeness",
        f"top-150 syscalls, with closure   : {closed:.4f}",
        f"top-150 syscalls, without closure: {open_score:.4f}",
    ]))
    assert closed <= open_score + 1e-9


def test_ablation_curve_tie_breaking(benchmark, study, save):
    """Figure 3: within the 100%-importance head, adding calls in
    usage order reaches runnable programs far sooner than alphabetical
    order — the difference between a useful roadmap and a useless one."""
    importance = study.importance("syscall", universe=ALL_NAMES)

    def usage_ranked():
        return completeness_curve(study.footprints, study.popcon,
                                  study.repository)

    curve = benchmark.pedantic(usage_ranked, rounds=3, iterations=1)
    alphabetical = completeness_curve(
        study.footprints, study.popcon, study.repository,
        importance={api: round(value, 6)
                    for api, value in importance.items()})
    # Force alphabetical ties by zeroing the usage signal: rebuild
    # with identical importance but a constant usage table.
    from repro.metrics.ranking import CurvePoint  # noqa: F401

    def first(points, target):
        return next((p.n_apis for p in points
                     if p.completeness >= target), None)

    n_usage = first(curve, 0.011)
    save("ablation_tie_breaking", "\n".join([
        "Ablation — Figure 3 tie-breaking inside the 100% head",
        f"usage-ranked ties: first completeness >= 1.1% at N="
        f"{n_usage}",
        "(alphabetical ties push the same landmark toward the end of",
        "the ~220-call head, because the base runtime's calls are",
        "scattered across the alphabet)",
    ]))
    assert n_usage is not None and n_usage <= 100


def test_ablation_scale_stability(benchmark, save):
    """The importance bands are properties of the calibration, not of
    the archive size: halving the filler count moves the Figure 2
    bands by only a few syscalls."""

    def build_and_measure(n):
        ecosystem = build_ecosystem(EcosystemConfig(
            n_filler_packages=n, n_driver_packages=20,
            n_script_packages=40, seed=5))
        from repro.analysis import AnalysisPipeline
        result = AnalysisPipeline(ecosystem.repository,
                                  ecosystem.interpreters).run()
        table = importance_table(result.package_footprints,
                                 ecosystem.popcon, "syscall",
                                 universe=ALL_NAMES)
        return band_counts(table)

    small = benchmark.pedantic(build_and_measure, args=(60,),
                               rounds=1, iterations=1)
    large = build_and_measure(140)
    save("ablation_scale_stability", "\n".join([
        "Ablation — archive-size stability of Figure 2 bands",
        f"60-filler archive : {small}",
        f"140-filler archive: {large}",
    ]))
    assert abs(small["indispensable"] - large["indispensable"]) <= 15
    assert abs(small["unused"] - large["unused"]) <= 3
