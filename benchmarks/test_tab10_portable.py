"""Table 10 — Linux-specific vs. portable/generic API variants.

Paper: portable wins everywhere (readv 62% vs preadv 0.15%, poll 71%
vs ppoll 3.9%, recvmsg 69% vs recvmmsg 0.11%) except pipe2 (40.3%),
the one Linux-specific call with substantial adoption.
"""

from repro.syscalls.table import ALL_NAMES


def test_tab10_portable(benchmark, study, save):
    output = benchmark(study.tab10_portability)
    save("tab10_portable", output.rendered)
    print(output.rendered)

    usage = study.usage("syscall", universe=ALL_NAMES)
    assert usage["readv"] > 10 * usage["preadv"]
    assert usage["writev"] > 10 * usage["pwritev"]
    assert usage["poll"] > 5 * usage["ppoll"]
    assert usage["recvmsg"] > 10 * usage["recvmmsg"]
    assert usage["accept"] > usage["accept4"]
    # the pipe2 exception
    assert usage["pipe2"] > 0.15
