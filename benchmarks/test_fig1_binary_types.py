"""Figure 1 — executable type mix of the archive.

Paper: ELF 60%, dash 15%, python 9%, perl 8%, bash 6%, ruby 1%;
within ELF: 52% shared libraries, 48% dynamic executables, 0.38%
static.
"""


def test_fig1_binary_types(benchmark, study, save):
    output = benchmark(study.fig1_binary_types)
    save("fig1_binary_types", output.rendered)
    print(output.rendered)

    stats = study.result.type_stats
    elf_share = stats.fraction(stats.elf_binaries)
    assert 0.50 <= elf_share <= 0.70          # paper: 60%
    lib_share = stats.elf_shared_libraries / stats.elf_binaries
    assert 0.35 <= lib_share <= 0.60          # paper: 52%
    scripts = stats.scripts_by_interpreter
    assert scripts["dash"] == max(scripts.values())  # paper: dash 15%
