"""Figure 4 — ioctl opcode importance.

Paper: 635 defined codes; 52 at 100% importance (47 TTY/generic);
188 above 1%; 280 used by at least one binary.
"""

from repro.metrics import importance_table
from repro.syscalls import ioctl


def test_fig4_ioctl_opcodes(benchmark, study, save):
    universe = [d.name for d in ioctl.IOCTLS]
    table = benchmark(importance_table, study.footprints,
                      study.popcon, "ioctl", universe)
    output = study.fig4_ioctl()
    save("fig4_ioctl_opcodes", output.rendered)
    print(output.rendered)

    full = sum(1 for v in table.values() if v >= 0.995)
    over_1 = sum(1 for v in table.values() if v >= 0.01)
    used = sum(1 for v in table.values() if v > 0)
    assert len(table) == 635
    assert 40 <= full <= 70        # paper: 52
    assert 140 <= over_1 <= 240    # paper: 188
    assert 230 <= used <= 320      # paper: 280
