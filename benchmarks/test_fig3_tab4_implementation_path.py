"""Figure 3 / Table 4 — weighted completeness vs. top-N syscalls and
the five implementation stages.

Paper: 40 syscalls -> 1.12%, 81 -> 10.68%, 145 -> 50.09%,
202 -> 90.61%, 272 -> 100%; qemu needs 270.
"""

from repro.metrics import completeness_curve


def test_fig3_completeness_curve(benchmark, study, save):
    curve = benchmark.pedantic(
        completeness_curve,
        args=(study.footprints, study.popcon, study.repository),
        rounds=3, iterations=1)
    output = study.fig3_completeness_curve()
    save("fig3_completeness_curve", output.rendered)
    print(output.rendered)

    def first(target):
        return next((p.n_apis for p in curve
                     if p.completeness >= target), None)

    assert 25 <= first(0.011) <= 90       # paper: 40
    assert 120 <= first(0.50) <= 230      # paper: 145
    assert 180 <= first(0.90) <= 260      # paper: 202
    assert 250 <= first(0.9999) <= 310    # paper: 272


def test_tab4_stages(benchmark, study, save):
    output = benchmark(study.tab4_stages)
    save("tab4_stages", output.rendered)
    print(output.rendered)

    stages = output.data
    assert 4 <= len(stages) <= 5
    assert stages[-1].completeness >= 0.999
    # stage boundaries strictly increase
    ends = [s.end for s in stages]
    assert ends == sorted(ends)


def test_qemu_widest_footprint(benchmark, study):
    """§3.2's extreme end: qemu's MIPS emulator needs ~270 syscalls."""
    qemu = benchmark(study.result.footprint_of, "qemu-user")
    assert 260 <= len(qemu.syscalls) <= 285
