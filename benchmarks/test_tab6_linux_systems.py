"""Table 6 — weighted completeness of Linux systems/emulation layers.

Paper: UML 3.19 (284 calls) 93.1%; L4Linux 4.3 (286) 99.3%;
FreeBSD-emu 10.2 (225) 62.3%; Graphene (143) 0.42%; Graphene+sched
(145) 21.1%.
"""


def test_tab6_linux_systems(benchmark, study, save):
    output = benchmark.pedantic(study.tab6_linux_systems,
                                rounds=3, iterations=1)
    save("tab6_linux_systems", output.rendered)
    print(output.rendered)

    rows = {e.system.split()[0]: e for e in output.data}
    assert rows["User-Mode-Linux"].syscall_count == 284
    assert rows["L4Linux"].syscall_count == 286
    assert 0.85 <= rows["User-Mode-Linux"].weighted_completeness <= 0.99
    assert 0.90 <= rows["L4Linux"].weighted_completeness <= 1.00
    assert 0.30 <= rows["FreeBSD-emu"].weighted_completeness <= 0.80
    assert rows["Graphene"].weighted_completeness <= 0.02
    assert 0.10 <= rows["Graphene+sched"].weighted_completeness <= 0.40
    # the ordering the paper reports
    assert (rows["L4Linux"].weighted_completeness
            > rows["FreeBSD-emu"].weighted_completeness
            > rows["Graphene+sched"].weighted_completeness
            > rows["Graphene"].weighted_completeness)
