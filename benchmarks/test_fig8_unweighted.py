"""Figure 8 — unweighted API importance of system calls.

Paper: only 40 syscalls are used by all packages; 130 by at least 10%
of packages; over half of the table by fewer than 10%.
"""

from repro.metrics import unweighted_importance_table
from repro.syscalls.table import ALL_NAMES


def test_fig8_unweighted(benchmark, study, save):
    table = benchmark(unweighted_importance_table, study.footprints,
                      "syscall", ALL_NAMES)
    output = study.fig8_unweighted()
    save("fig8_unweighted", output.rendered)
    print(output.rendered)

    by_all = sum(1 for v in table.values() if v >= 0.95)
    over_10 = sum(1 for v in table.values() if v >= 0.10)
    assert 25 <= by_all <= 60        # paper: 40
    assert 95 <= over_10 <= 165      # paper: 130
    assert over_10 < len(table) / 2  # long tail
