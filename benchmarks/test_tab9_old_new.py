"""Table 9 — unweighted importance of deprecated vs. preferred APIs.

Paper: getdents 99.8% vs getdents64 0.08%; fork 0.07% vs clone
99.86% / vfork 99.68%; tkill 0.51% vs tgkill 99.8%; wait4 60.6% vs
waitid 0.24%; utime 8.6% vs utimes 17.9%.
"""

from repro.syscalls.table import ALL_NAMES


def test_tab9_old_new(benchmark, study, save):
    output = benchmark(study.tab9_old_new)
    save("tab9_old_new", output.rendered)
    print(output.rendered)

    usage = study.usage("syscall", universe=ALL_NAMES)
    assert usage["getdents"] > 0.9 and usage["getdents64"] < 0.05
    assert usage["clone"] > 0.9 and usage["fork"] < 0.05
    assert usage["vfork"] > 0.9
    assert usage["tgkill"] > 0.9 and usage["tkill"] < 0.05
    assert usage["wait4"] > 0.4 and usage["waitid"] < 0.05
    assert usage["utimes"] > usage["utime"]
