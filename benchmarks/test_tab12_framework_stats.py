"""Table 12 / §6 — framework statistics and footprint uniqueness.

Paper: 428M database rows over 48 tables (PostgreSQL); 31,433
applications show 11,680 distinct syscall footprints, 9,133 unique
(about one third).  Our sqlite mirror is proportional to the smaller
synthetic archive; the uniqueness share is the portable claim.
"""


def test_tab12_framework_stats(benchmark, study, save):
    output = benchmark.pedantic(study.tab12_framework_stats,
                                rounds=1, iterations=1)
    save("tab12_framework_stats", output.rendered)
    print(output.rendered)

    data = output.data
    assert data["rows"]["binaries"] > 500
    assert data["rows"]["export_effects"] > 1000
    distinct, unique = data["distinct"], data["unique"]
    assert 0 < unique <= distinct
    share = unique / len(study.repository)
    assert 0.1 <= share <= 0.8  # paper: ~1/3 unique


def test_seccomp_generation(benchmark, study, save):
    """§6's application: automatic seccomp policy generation."""
    output = benchmark(study.seccomp_policy, "coreutils")
    save("seccomp_coreutils", output.rendered)

    policy = output.data
    assert policy.allows(0)          # read
    assert not policy.allows(246)    # kexec_load
