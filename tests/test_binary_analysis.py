"""Unit tests for BinaryAnalysis internals (caching, opcode naming,
root discovery edge cases)."""

from repro.analysis.binary import BinaryAnalysis, _opcode_names, _syscall_names
from repro.syscalls import ioctl
from repro.synth.codegen import BinarySpec, FunctionSpec, generate_binary


def _analysis(functions, soname=None, entry="main", needed=("libc.so.6",)):
    spec = BinarySpec(name="t", functions=functions, soname=soname,
                      needed=needed, entry_function=entry)
    return BinaryAnalysis.from_bytes(generate_binary(spec))


class TestNameMapping:
    def test_syscall_numbers_to_names(self):
        assert _syscall_names({0, 1}) == frozenset({"read", "write"})

    def test_unknown_numbers_dropped(self):
        assert _syscall_names({99999}) == frozenset()
        assert _syscall_names({0, 99999}) == frozenset({"read"})

    def test_opcode_known_and_unknown(self):
        names = _opcode_names({0x5401, 0xDEAD}, ioctl.BY_CODE)
        assert "TCGETS" in names
        assert "0xdead" in names


class TestCaching:
    def test_effects_cached_by_identity(self):
        analysis = _analysis([FunctionSpec(
            name="main", direct_syscalls=("read",))])
        entry = analysis.entry_root()
        first = analysis.effects_from(entry)
        second = analysis.effects_from(entry)
        assert first is second

    def test_roots_view_is_copy(self):
        analysis = _analysis([FunctionSpec(name="main")])
        roots = analysis.roots()
        roots["bogus"] = 1
        assert "bogus" not in analysis.roots()


class TestRootDiscovery:
    def test_library_without_entry(self):
        analysis = _analysis(
            [FunctionSpec(name="api", exported=True)],
            soname="libx.so", entry=None, needed=())
        assert analysis.entry_root() is None
        assert analysis.export_root("api") is not None
        assert analysis.export_root("ghost") is None

    def test_is_shared_library_requires_soname(self):
        library = _analysis(
            [FunctionSpec(name="api", exported=True)],
            soname="libx.so", entry=None, needed=())
        executable = _analysis([FunctionSpec(name="main")])
        assert library.is_shared_library
        assert not executable.is_shared_library

    def test_imported_and_exported_views(self):
        analysis = _analysis([FunctionSpec(
            name="main", libc_calls=("printf", "malloc"))])
        assert {"printf", "malloc"} <= analysis.imported
        assert analysis.exported == frozenset()

    def test_pseudo_files_scanned_at_construction(self):
        analysis = _analysis([FunctionSpec(
            name="main", strings=("/dev/null",))])
        assert "/dev/null" in analysis.pseudo_files


class TestStudyCaches:
    def test_importance_universe_backfill(self, study):
        # First call without the universe, then with: zeros appear.
        study.importance("fcntl")
        table = study.importance("fcntl", universe=["F_NOTIFY"])
        assert "F_NOTIFY" in table

    def test_default_cache_reuses_instance(self):
        from repro.study import Study
        from repro.synth import EcosystemConfig
        config = EcosystemConfig(n_filler_packages=24,
                                 n_driver_packages=6,
                                 n_script_packages=10, seed=7)
        assert Study.default(config) is Study.default(config)

    def test_different_shift_different_instance(self):
        from repro.study import Study
        from repro.synth import EcosystemConfig
        base = EcosystemConfig(n_filler_packages=24,
                               n_driver_packages=6,
                               n_script_packages=10, seed=7)
        shifted = EcosystemConfig(n_filler_packages=24,
                                  n_driver_packages=6,
                                  n_script_packages=10, seed=7,
                                  adoption_shift=0.4)
        assert Study.default(base) is not Study.default(shifted)
