"""Property-based equivalence for AND-of-OR dependency semantics.

Companion to :mod:`tests.test_dataset_equivalence`: the production
tracker (bitset GFP with SCC-over-OR condensation) must agree with the
deliberately naive ``reference.andor_*`` oracle over adversarial
randomized ecosystems — alternative groups, ``Provides:`` virtuals,
self-providing packages, dangling alternatives, virtual-only chains,
and dependency cycles routed *through* OR groups.

A second family of properties pins the degenerate contract: on
ecosystems without alternatives or virtuals the production metrics
must match the *frozen pre-refactor* oracle bit for bit — the refactor
may not move a single float on flat corpora.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st

from repro.analysis.footprint import Footprint
from repro.dataset import Dataset, reference
from repro.metrics import (
    completeness_curve,
    supported_packages,
    weighted_completeness,
)
from repro.packages.package import Package
from repro.packages.popcon import PopularityContest
from repro.packages.repository import Repository

_SYSCALLS = ["read", "write", "open", "close", "mmap", "futex",
             "epoll_wait", "accept", "clone", "execve"]

#: Dependency targets beyond the measured packages: repository-known
#: but unmeasured, virtual-only names, and true ghosts.
_UNMEASURED = ["vendor-blob", "firmware-pack"]
_VIRTUALS = ["mail-transport-agent", "awk-runtime", "httpd"]
_GHOSTS = ["ghost-virtual", "ghost-provides"]


def _subset(draw, pool):
    return draw(st.lists(st.sampled_from(pool), unique=True,
                         max_size=len(pool)))


@st.composite
def andor_ecosystems(draw):
    """Randomized ecosystems exercising the full dependency grammar.

    Dependency entries are drawn as 1–3 alternatives joined with
    ``" | "`` from a pool mixing measured packages (cycles — including
    cycles whose only escape is another alternative), unmeasured
    packages, virtual names, and ghosts.  ``Provides:`` sets are drawn
    per package from the virtual pool *plus the package's own name*
    (self-providing, APT-legal) *plus another package's real name*
    (real name doubling as provided name).
    """
    n = draw(st.integers(min_value=1, max_value=8))
    names = [f"pkg{i}" for i in range(n)]
    footprints = {}
    for name in names:
        if draw(st.booleans()) or draw(st.booleans()):
            footprints[name] = Footprint.build(
                syscalls=_subset(draw, _SYSCALLS))
        else:
            footprints[name] = Footprint.EMPTY
    total = 1000
    popcon = PopularityContest(total, {
        name: draw(st.integers(min_value=0, max_value=total))
        for name in names})
    target_pool = names + _UNMEASURED + _VIRTUALS + _GHOSTS
    provide_pool = _VIRTUALS + _GHOSTS[:1]

    def depends_for(_name):
        entries = []
        for _ in range(draw(st.integers(min_value=0, max_value=4))):
            alternatives = draw(st.lists(
                st.sampled_from(target_pool), unique=True,
                min_size=1, max_size=3))
            entries.append(" | ".join(alternatives))
        return entries

    packages = []
    for name in names:
        provides = _subset(draw, provide_pool)
        if draw(st.booleans()) and draw(st.booleans()):
            provides.append(name)            # self-providing
        if len(names) > 1 and draw(st.booleans()) \
                and draw(st.booleans()):
            provides.append(names[0])        # provides a real name
        packages.append(Package(name, depends=depends_for(name),
                                provides=sorted(set(provides))))
    for extra in _UNMEASURED:
        packages.append(Package(extra,
                                provides=_subset(draw, _VIRTUALS)))
    repository = Repository(packages)
    supported = _subset(draw, _SYSCALLS + ["not_a_syscall"])
    return footprints, popcon, repository, frozenset(supported)


@st.composite
def flat_ecosystems(draw):
    """Degenerate ecosystems: no ``|``, no ``Provides:``."""
    n = draw(st.integers(min_value=1, max_value=8))
    names = [f"pkg{i}" for i in range(n)]
    footprints = {}
    for name in names:
        if draw(st.booleans()) or draw(st.booleans()):
            footprints[name] = Footprint.build(
                syscalls=_subset(draw, _SYSCALLS))
        else:
            footprints[name] = Footprint.EMPTY
    total = 1000
    popcon = PopularityContest(total, {
        name: draw(st.integers(min_value=0, max_value=total))
        for name in names})
    dep_pool = names + _UNMEASURED + _GHOSTS
    packages = [Package(name, depends=_subset(draw, dep_pool))
                for name in names]
    packages += [Package(extra) for extra in _UNMEASURED]
    repository = Repository(packages)
    supported = _subset(draw, _SYSCALLS + ["not_a_syscall"])
    return footprints, popcon, repository, frozenset(supported)


_SETTINGS = settings(max_examples=60, deadline=None)


class TestAndOrOracleEquivalence:
    @_SETTINGS
    @given(eco=andor_ecosystems(), ignore_empty=st.booleans())
    def test_weighted_completeness(self, eco, ignore_empty):
        footprints, popcon, repository, supported = eco
        dataset = Dataset(footprints, popcon, repository)
        assert weighted_completeness(
            supported, dataset, ignore_empty=ignore_empty) == \
            reference.andor_weighted_completeness(
                supported, footprints, popcon, repository,
                ignore_empty=ignore_empty)

    @_SETTINGS
    @given(eco=andor_ecosystems())
    def test_supported_packages(self, eco):
        footprints, popcon, repository, supported = eco
        dataset = Dataset(footprints, popcon, repository)
        assert supported_packages(supported, dataset) == \
            reference.andor_supported_packages(
                supported, footprints, repository)

    @_SETTINGS
    @given(eco=andor_ecosystems())
    def test_closure_from_directly_supported(self, eco):
        footprints, popcon, repository, supported = eco
        direct = reference.directly_supported(footprints, supported,
                                              "syscall")
        assumed = {pkg for pkg, fp in footprints.items()
                   if not fp.syscalls}
        expected = reference.andor_close_over_dependencies(
            direct, repository, assume_supported=assumed)
        dataset = Dataset(footprints, popcon, repository)
        assert supported_packages(supported, dataset) == expected

    @_SETTINGS
    @given(eco=andor_ecosystems())
    def test_curve_final_point_matches_oracle(self, eco):
        """The final curve point covers the whole ranked universe, so
        it must equal a from-scratch oracle evaluation.  ``approx``
        because the incremental curve accumulates install
        probabilities in support-history order while the oracle sums
        freshly — same semantics, different float association."""
        footprints, popcon, repository, _ = eco
        dataset = Dataset(footprints, popcon, repository)
        curve = completeness_curve(dataset)
        if not curve:
            return
        all_apis = {point.api for point in curve}
        assert curve[-1].completeness == pytest.approx(
            reference.andor_weighted_completeness(
                all_apis, footprints, popcon, repository),
            abs=1e-9)

    @_SETTINGS
    @given(eco=andor_ecosystems())
    def test_curve_is_monotone(self, eco):
        """Adding an API can only help under AND-OR closure too."""
        footprints, popcon, repository, _ = eco
        dataset = Dataset(footprints, popcon, repository)
        curve = completeness_curve(dataset)
        for earlier, later in zip(curve, curve[1:]):
            assert later.completeness >= earlier.completeness


class TestDegenerateBitIdentity:
    @_SETTINGS
    @given(eco=flat_ecosystems(), ignore_empty=st.booleans())
    def test_weighted_completeness_matches_frozen_oracle(
            self, eco, ignore_empty):
        footprints, popcon, repository, supported = eco
        dataset = Dataset(footprints, popcon, repository)
        assert weighted_completeness(
            supported, dataset, ignore_empty=ignore_empty) == \
            reference.weighted_completeness(
                supported, footprints, popcon, repository,
                ignore_empty=ignore_empty)

    @_SETTINGS
    @given(eco=flat_ecosystems(), ignore_empty=st.booleans())
    def test_curve_matches_frozen_oracle(self, eco, ignore_empty):
        footprints, popcon, repository, _ = eco
        dataset = Dataset(footprints, popcon, repository)
        assert completeness_curve(dataset,
                                  ignore_empty=ignore_empty) == \
            reference.completeness_curve(
                footprints, popcon, repository,
                ignore_empty=ignore_empty)

    @_SETTINGS
    @given(eco=flat_ecosystems())
    def test_andor_oracle_reduces_to_frozen_oracle(self, eco):
        """On flat corpora the extended oracle *is* the frozen one —
        the equivalence chain closes."""
        footprints, popcon, repository, supported = eco
        assert reference.andor_weighted_completeness(
            supported, footprints, popcon, repository) == \
            reference.weighted_completeness(
                supported, footprints, popcon, repository)

    @_SETTINGS
    @given(eco=flat_ecosystems())
    def test_and_only_view_is_identity_on_flat_corpora(self, eco):
        footprints, popcon, repository, supported = eco
        dataset = Dataset(footprints, popcon, repository)
        degraded = Dataset(footprints, popcon,
                           repository.and_only_view())
        assert weighted_completeness(supported, dataset) == \
            weighted_completeness(supported, degraded)
        assert completeness_curve(dataset) == \
            completeness_curve(degraded)
