"""Unit tests for ELF struct codecs and the string table."""

import pytest
from hypothesis import given, strategies as st

from repro.elf import constants as C
from repro.elf.structs import (
    Dyn,
    ElfFormatError,
    ElfHeader,
    ProgramHeader,
    Rela,
    SectionHeader,
    StringTable,
    Symbol,
)


class TestElfHeader:
    def test_default_ident_magic(self):
        header = ElfHeader()
        assert header.e_ident[:4] == C.ELFMAG

    def test_default_ident_class_and_encoding(self):
        header = ElfHeader()
        assert header.e_ident[C.EI_CLASS] == C.ELFCLASS64
        assert header.e_ident[C.EI_DATA] == C.ELFDATA2LSB

    def test_pack_length(self):
        assert len(ElfHeader().pack()) == C.EHDR_SIZE

    def test_round_trip(self):
        header = ElfHeader(e_type=C.ET_DYN, e_entry=0x401000,
                           e_phnum=3, e_shnum=7, e_shstrndx=6)
        parsed = ElfHeader.unpack(header.pack())
        assert parsed == header

    def test_rejects_short_buffer(self):
        with pytest.raises(ElfFormatError):
            ElfHeader.unpack(b"\x7fELF")

    def test_rejects_bad_magic(self):
        data = bytearray(ElfHeader().pack())
        data[0] = 0x00
        with pytest.raises(ElfFormatError):
            ElfHeader.unpack(bytes(data))

    def test_rejects_elf32(self):
        data = bytearray(ElfHeader().pack())
        data[C.EI_CLASS] = C.ELFCLASS32
        with pytest.raises(ElfFormatError):
            ElfHeader.unpack(bytes(data))

    def test_rejects_big_endian(self):
        data = bytearray(ElfHeader().pack())
        data[C.EI_DATA] = C.ELFDATA2MSB
        with pytest.raises(ElfFormatError):
            ElfHeader.unpack(bytes(data))

    def test_is_shared_object(self):
        assert ElfHeader(e_type=C.ET_DYN).is_shared_object
        assert not ElfHeader(e_type=C.ET_EXEC).is_shared_object


class TestProgramHeader:
    def test_pack_length(self):
        assert len(ProgramHeader().pack()) == C.PHDR_SIZE

    def test_round_trip(self):
        phdr = ProgramHeader(p_type=C.PT_LOAD, p_flags=C.PF_R | C.PF_X,
                             p_offset=0x1000, p_vaddr=0x401000,
                             p_paddr=0x401000, p_filesz=0x200,
                             p_memsz=0x300)
        assert ProgramHeader.unpack(phdr.pack()) == phdr

    def test_contains_vaddr_boundaries(self):
        phdr = ProgramHeader(p_vaddr=0x1000, p_memsz=0x100)
        assert phdr.contains_vaddr(0x1000)
        assert phdr.contains_vaddr(0x10FF)
        assert not phdr.contains_vaddr(0x1100)
        assert not phdr.contains_vaddr(0xFFF)

    def test_vaddr_to_offset(self):
        phdr = ProgramHeader(p_offset=0x40, p_vaddr=0x1000,
                             p_memsz=0x100, p_filesz=0x100)
        assert phdr.vaddr_to_offset(0x1010) == 0x50

    def test_vaddr_to_offset_outside_raises(self):
        phdr = ProgramHeader(p_offset=0x40, p_vaddr=0x1000,
                             p_memsz=0x100)
        with pytest.raises(ValueError):
            phdr.vaddr_to_offset(0x2000)


class TestSectionHeader:
    def test_pack_length(self):
        assert len(SectionHeader().pack()) == C.SHDR_SIZE

    def test_round_trip_ignores_name_field(self):
        section = SectionHeader(sh_name=5, sh_type=C.SHT_PROGBITS,
                                sh_flags=C.SHF_ALLOC, sh_addr=0x1000,
                                sh_offset=0x200, sh_size=0x80,
                                name="ignored")
        parsed = SectionHeader.unpack(section.pack())
        assert parsed.sh_name == 5
        assert parsed.sh_size == 0x80
        assert parsed == section  # name excluded from comparison


class TestSymbol:
    def test_pack_length(self):
        assert len(Symbol().pack()) == C.SYM_SIZE

    def test_round_trip(self):
        symbol = Symbol(st_name=3, st_info=C.st_info(C.STB_GLOBAL,
                                                     C.STT_FUNC),
                        st_shndx=2, st_value=0x400123, st_size=42)
        assert Symbol.unpack(symbol.pack()) == symbol

    def test_bind_and_type_accessors(self):
        symbol = Symbol(st_info=C.st_info(C.STB_WEAK, C.STT_OBJECT))
        assert symbol.bind == C.STB_WEAK
        assert symbol.type == C.STT_OBJECT

    def test_is_undefined(self):
        assert Symbol(st_shndx=C.SHN_UNDEF).is_undefined
        assert not Symbol(st_shndx=1).is_undefined

    def test_is_exported_requires_definition_and_name(self):
        exported = Symbol(st_info=C.st_info(C.STB_GLOBAL, C.STT_FUNC),
                          st_shndx=1, name="f")
        assert exported.is_exported
        undefined = Symbol(st_info=C.st_info(C.STB_GLOBAL, C.STT_FUNC),
                           st_shndx=C.SHN_UNDEF, name="f")
        assert not undefined.is_exported
        local = Symbol(st_info=C.st_info(C.STB_LOCAL, C.STT_FUNC),
                       st_shndx=1, name="f")
        assert not local.is_exported

    def test_hidden_symbol_not_exported(self):
        hidden = Symbol(st_info=C.st_info(C.STB_GLOBAL, C.STT_FUNC),
                        st_shndx=1, st_other=C.STV_HIDDEN, name="f")
        assert not hidden.is_exported


class TestRela:
    def test_pack_length(self):
        assert len(Rela().pack()) == C.RELA_SIZE

    def test_round_trip(self):
        rela = Rela(r_offset=0x601018,
                    r_info=C.r_info(5, C.R_X86_64_JUMP_SLOT),
                    r_addend=-8)
        assert Rela.unpack(rela.pack()) == rela

    def test_sym_and_type_extraction(self):
        rela = Rela(r_info=C.r_info(7, C.R_X86_64_GLOB_DAT))
        assert rela.sym == 7
        assert rela.type == C.R_X86_64_GLOB_DAT


class TestDyn:
    def test_pack_length(self):
        assert len(Dyn().pack()) == C.DYN_SIZE

    def test_round_trip(self):
        dyn = Dyn(C.DT_NEEDED, 17)
        assert Dyn.unpack(dyn.pack()) == dyn

    def test_tag_name_known_and_unknown(self):
        assert Dyn(C.DT_SONAME).tag_name == "SONAME"
        assert Dyn(0x12345678).tag_name.startswith("0x")


class TestStringTable:
    def test_empty_table_has_nul(self):
        assert StringTable().pack() == b"\x00"

    def test_add_returns_offsets(self):
        table = StringTable()
        first = table.add("abc")
        second = table.add("de")
        assert first == 1
        assert second == 1 + len("abc") + 1

    def test_add_interns_duplicates(self):
        table = StringTable()
        assert table.add("same") == table.add("same")

    def test_add_empty_string_is_zero(self):
        assert StringTable().add("") == 0

    def test_get_reads_back(self):
        table = StringTable()
        offset = table.add("hello")
        assert table.get(offset) == "hello"

    def test_get_mid_string_suffix(self):
        table = StringTable()
        offset = table.add("libc.so.6")
        assert table.get(offset + 5) == "so.6"

    def test_get_out_of_range(self):
        assert StringTable().get(100) == ""

    @given(st.lists(st.text(
        alphabet=st.characters(min_codepoint=33, max_codepoint=126),
        min_size=1, max_size=12), min_size=1, max_size=20))
    def test_round_trip_many(self, names):
        table = StringTable()
        offsets = {name: table.add(name) for name in names}
        packed = StringTable(table.pack())
        for name, offset in offsets.items():
            assert packed.get(offset) == name


class TestInfoPacking:
    @given(st.integers(0, 15), st.integers(0, 15))
    def test_st_info_round_trip(self, bind, typ):
        info = C.st_info(bind, typ)
        assert C.st_bind(info) == bind
        assert C.st_type(info) == typ

    @given(st.integers(0, 2 ** 31 - 1), st.integers(0, 2 ** 31 - 1))
    def test_r_info_round_trip(self, sym, typ):
        info = C.r_info(sym, typ)
        assert C.r_sym(info) == sym
        assert C.r_type(info) == typ
