"""Decoder unit and property tests."""

from hypothesis import given, strategies as st

from repro.x86 import registers as R
from repro.x86.decoder import decode, linear_sweep
from repro.x86.encoder import Assembler
from repro.x86.instructions import InsnKind


def _decode_one(code: bytes, vaddr: int = 0x1000):
    return decode(code, 0, vaddr)


class TestBasicDecoding:
    def test_syscall(self):
        insn = _decode_one(b"\x0f\x05")
        assert insn.kind == InsnKind.SYSCALL
        assert insn.length == 2

    def test_sysenter(self):
        assert _decode_one(b"\x0f\x34").kind == InsnKind.SYSENTER

    def test_int80(self):
        assert _decode_one(b"\xcd\x80").kind == InsnKind.INT80

    def test_int_other_vector_is_other(self):
        assert _decode_one(b"\xcd\x03").kind == InsnKind.OTHER

    def test_mov_imm32(self):
        insn = _decode_one(b"\xb8\x10\x00\x00\x00")
        assert insn.kind == InsnKind.MOV_IMM_REG
        assert insn.reg == R.RAX
        assert insn.imm == 16

    def test_mov_imm32_extended_register(self):
        insn = _decode_one(b"\x41\xb8\x02\x00\x00\x00")
        assert insn.reg == R.R8
        assert insn.imm == 2

    def test_movabs(self):
        insn = _decode_one(b"\x48\xb8" + (123).to_bytes(8, "little"))
        assert insn.kind == InsnKind.MOV_IMM_REG
        assert insn.imm == 123
        assert insn.length == 10

    def test_xor_zero_idiom(self):
        insn = _decode_one(b"\x31\xc0")
        assert insn.kind == InsnKind.XOR_REG_REG
        assert insn.reg == R.RAX

    def test_xor_different_regs_is_alu(self):
        # xor %ecx, %eax — not a zeroing idiom, plain computation
        insn = _decode_one(b"\x31\xc8")
        assert insn.kind == InsnKind.ALU_REG_REG

    def test_mov_reg_reg(self):
        insn = _decode_one(b"\x48\x89\xe5")  # mov %rsp, %rbp
        assert insn.kind == InsnKind.MOV_REG_REG
        assert insn.reg == R.RBP
        assert insn.src_reg == R.RSP

    def test_mov_reg_reg_load_form(self):
        insn = _decode_one(b"\x48\x8b\xc3")  # mov %rbx, %rax (8B form)
        assert insn.kind == InsnKind.MOV_REG_REG
        assert insn.reg == R.RAX
        assert insn.src_reg == R.RBX

    def test_push_pop(self):
        assert _decode_one(b"\x55").kind == InsnKind.PUSH
        assert _decode_one(b"\x5d").kind == InsnKind.POP
        assert _decode_one(b"\x55").reg == R.RBP

    def test_ret_forms(self):
        assert _decode_one(b"\xc3").kind == InsnKind.RET
        insn = _decode_one(b"\xc2\x08\x00")
        assert insn.kind == InsnKind.RET
        assert insn.length == 3

    def test_leave_nop_hlt(self):
        assert _decode_one(b"\xc9").kind == InsnKind.LEAVE
        assert _decode_one(b"\x90").kind == InsnKind.NOP
        assert _decode_one(b"\xf4").kind == InsnKind.HLT

    def test_multibyte_nop(self):
        insn = _decode_one(b"\x0f\x1f\x80\x00\x00\x00\x00")
        assert insn.kind == InsnKind.NOP
        assert insn.length == 7

    def test_unknown_byte_is_other_length_one(self):
        insn = _decode_one(b"\x06")
        assert insn.kind == InsnKind.OTHER
        assert insn.length == 1


class TestBranchTargets:
    def test_call_rel32_forward(self):
        insn = _decode_one(b"\xe8\x10\x00\x00\x00", vaddr=0x400000)
        assert insn.kind == InsnKind.CALL_REL
        assert insn.target == 0x400000 + 5 + 0x10

    def test_call_rel32_backward(self):
        insn = _decode_one(b"\xe8\xfb\xff\xff\xff", vaddr=0x400010)
        assert insn.target == 0x400010  # -5 displacement

    def test_jmp_rel32(self):
        insn = _decode_one(b"\xe9\x00\x01\x00\x00", vaddr=0x1000)
        assert insn.kind == InsnKind.JMP_REL
        assert insn.target == 0x1000 + 5 + 0x100

    def test_jmp_rel8(self):
        insn = _decode_one(b"\xeb\x05", vaddr=0x1000)
        assert insn.kind == InsnKind.JMP_REL
        assert insn.target == 0x1007

    def test_jcc_rel8(self):
        insn = _decode_one(b"\x74\x02", vaddr=0)
        assert insn.kind == InsnKind.JCC_REL
        assert insn.target == 4

    def test_jcc_rel32(self):
        insn = _decode_one(b"\x0f\x84\x00\x00\x00\x00", vaddr=0x10)
        assert insn.kind == InsnKind.JCC_REL
        assert insn.target == 0x16

    def test_lea_rip(self):
        insn = _decode_one(b"\x48\x8d\x3d\x08\x00\x00\x00",
                           vaddr=0x2000)
        assert insn.kind == InsnKind.LEA_RIP
        assert insn.reg == R.RDI
        assert insn.target == 0x2000 + 7 + 8

    def test_jmp_rip_mem(self):
        insn = _decode_one(b"\xff\x25\x10\x00\x00\x00", vaddr=0x3000)
        assert insn.kind == InsnKind.JMP_RIP_MEM
        assert insn.target == 0x3000 + 6 + 0x10

    def test_call_indirect_register(self):
        insn = _decode_one(b"\xff\xd0")  # call *%rax
        assert insn.kind == InsnKind.CALL_INDIRECT

    def test_jmp_indirect_register(self):
        insn = _decode_one(b"\xff\xe0")  # jmp *%rax
        assert insn.kind == InsnKind.JMP_INDIRECT


class TestInstructionProperties:
    def test_terminator_classification(self):
        assert _decode_one(b"\xc3").is_terminator
        assert _decode_one(b"\xe9\x00\x00\x00\x00").is_terminator
        assert not _decode_one(b"\xe8\x00\x00\x00\x00").is_terminator
        assert not _decode_one(b"\x90").is_terminator

    def test_syscall_classification(self):
        assert _decode_one(b"\x0f\x05").is_syscall_insn
        assert _decode_one(b"\xcd\x80").is_syscall_insn
        assert not _decode_one(b"\xc3").is_syscall_insn

    def test_mnemonics_render(self):
        assert _decode_one(b"\x0f\x05").mnemonic() == "syscall"
        assert "mov $0x10" in _decode_one(
            b"\xb8\x10\x00\x00\x00").mnemonic()
        assert _decode_one(b"\xc3").mnemonic() == "ret"


class TestRoundTrip:
    """Everything the Assembler emits decodes back to the same meaning."""

    def test_full_function_round_trip(self):
        asm = Assembler()
        asm.label("f")
        asm.prologue()
        asm.mov_imm32(R.RAX, 16)
        asm.xor_reg(R.RDI)
        asm.mov_imm32(R.RSI, 0x5401)
        asm.syscall()
        asm.cmp_eax_imm32(0)
        asm.epilogue()
        kinds = [insn.kind
                 for insn in linear_sweep(bytes(asm.code), 0x400000)]
        assert kinds == [
            InsnKind.PUSH, InsnKind.MOV_REG_REG, InsnKind.MOV_IMM_REG,
            InsnKind.XOR_REG_REG, InsnKind.MOV_IMM_REG, InsnKind.SYSCALL,
            InsnKind.CMP_IMM, InsnKind.POP, InsnKind.RET,
        ]

    @given(st.integers(0, 15), st.integers(0, 2 ** 32 - 1))
    def test_mov_imm_round_trip(self, reg, imm):
        asm = Assembler()
        asm.mov_imm32(reg, imm)
        insn = decode(bytes(asm.code), 0, 0)
        assert insn.kind == InsnKind.MOV_IMM_REG
        assert insn.reg == reg
        assert insn.imm == imm
        assert insn.length == len(asm.code)

    @given(st.integers(0, 15))
    def test_xor_round_trip(self, reg):
        asm = Assembler()
        asm.xor_reg(reg)
        insn = decode(bytes(asm.code), 0, 0)
        assert insn.kind == InsnKind.XOR_REG_REG
        assert insn.reg == reg

    @given(st.integers(0, 15), st.integers(0, 15))
    def test_mov_reg_reg_round_trip(self, dst, src):
        asm = Assembler()
        asm.mov_reg_reg64(dst, src)
        insn = decode(bytes(asm.code), 0, 0)
        assert insn.kind == InsnKind.MOV_REG_REG
        assert insn.reg == dst
        assert insn.src_reg == src

    @given(st.binary(min_size=1, max_size=64))
    def test_decoder_never_crashes_or_stalls(self, blob):
        """Arbitrary bytes decode to *something* and the sweep
        terminates — the guarantee linear_sweep relies on."""
        total = 0
        for insn in linear_sweep(blob, 0x1000):
            assert insn.length >= 1
            total += insn.length
        assert total >= len(blob)

    @given(st.binary(min_size=1, max_size=32),
           st.integers(0, 2 ** 40))
    def test_decode_offsets_consistent(self, blob, vaddr):
        insn = decode(blob, 0, vaddr)
        assert insn.address == vaddr
        assert insn.end == vaddr + insn.length


class TestExtendedCoverage:
    """Computation instructions real compilers emit between calls."""

    def test_alu_forms(self):
        for raw in (b"\x01\xd8", b"\x29\xd8", b"\x21\xd8",
                    b"\x09\xd8"):
            insn = _decode_one(raw)
            assert insn.kind == InsnKind.ALU_REG_REG, raw.hex()
            assert insn.reg == R.RAX
            assert insn.src_reg == R.RBX

    def test_alu_rex_extended(self):
        insn = _decode_one(b"\x45\x01\xf7")  # add %r14d, %r15d
        assert insn.kind == InsnKind.ALU_REG_REG
        assert insn.reg == R.R15
        assert insn.src_reg == R.R14

    def test_test_reg_reg(self):
        insn = _decode_one(b"\x85\xc0")
        assert insn.kind == InsnKind.TEST_REG_REG
        assert insn.reg == R.RAX

    def test_movzx_and_movsx(self):
        for raw in (b"\x0f\xb6\xc3", b"\x0f\xb7\xc3",
                    b"\x0f\xbe\xc3", b"\x0f\xbf\xc3"):
            insn = _decode_one(raw)
            assert insn.kind == InsnKind.MOVZX, raw.hex()
            assert insn.reg == R.RAX
            assert insn.src_reg == R.RBX

    def test_shifts(self):
        shl = _decode_one(b"\xc1\xe0\x04")
        assert shl.kind == InsnKind.SHIFT_IMM
        assert shl.imm == 4
        sar = _decode_one(b"\xc1\xf8\x02")
        assert sar.kind == InsnKind.SHIFT_IMM

    def test_inc_dec(self):
        assert _decode_one(b"\xff\xc0").kind == InsnKind.INC_DEC
        assert _decode_one(b"\xff\xc8").kind == InsnKind.INC_DEC
        assert _decode_one(b"\xfe\xc0").kind == InsnKind.INC_DEC

    def test_encoder_round_trips(self):
        asm = Assembler()
        asm.alu_reg_reg("add", R.RBX, R.R14)
        asm.test_reg_reg(R.RBX, R.R15)
        asm.movzx_reg8(R.RBX, R.R14)
        asm.shl_imm8(R.RBX, 3)
        asm.inc_reg(R.R14)
        kinds = [i.kind for i in linear_sweep(bytes(asm.code), 0)]
        assert kinds == [InsnKind.ALU_REG_REG, InsnKind.TEST_REG_REG,
                         InsnKind.MOVZX, InsnKind.SHIFT_IMM,
                         InsnKind.INC_DEC]
