"""libc strip analysis and variant-adoption report tests."""

import pytest

from repro.analysis.footprint import Footprint
from repro.packages import PopularityContest
from repro.security.libc_strip import (
    function_sizes,
    relocation_layout,
    strip_report,
)
from repro.security.variant_report import (
    adoption_summary,
    all_variant_tables,
    build_rows,
    old_new_rows,
    portability_rows,
    power_rows,
    secure_variant_rows,
)
from repro.synth.runtime_gen import generate_libc


@pytest.fixture(scope="module")
def libc_image():
    return generate_libc()


class TestFunctionSizes:
    def test_sizes_positive_and_cover_exports(self, libc_image):
        sizes = function_sizes(libc_image)
        assert len(sizes) > 1200
        assert all(size >= 0 for size in sizes.values())
        assert sizes.get("printf", 0) > 0

    def test_total_size_below_text(self, libc_image):
        from repro.elf import ElfReader
        sizes = function_sizes(libc_image)
        text = ElfReader(libc_image).section(".text")
        assert sum(sizes.values()) <= text.sh_size


class TestStripReport:
    def test_threshold_one_keeps_only_universal(self, libc_image):
        importance = {"printf": 1.0, "clnt_create": 0.0}
        footprints = {"p": Footprint.build(libc_symbols=["printf"])}
        popcon = PopularityContest(10, {"p": 10})
        report = strip_report(libc_image, importance, footprints,
                              popcon, threshold=0.9)
        assert report.retained_symbols == 1
        assert report.miss_probability == pytest.approx(0.0)

    def test_miss_probability_reflects_demand(self, libc_image):
        importance = {"printf": 1.0}
        footprints = {
            "supported": Footprint.build(libc_symbols=["printf"]),
            "needs-more": Footprint.build(
                libc_symbols=["printf", "clnt_create"]),
        }
        popcon = PopularityContest(100, {"supported": 90,
                                         "needs-more": 10})
        report = strip_report(libc_image, importance, footprints,
                              popcon, threshold=0.9)
        assert report.miss_probability == pytest.approx(0.1)

    def test_retained_fraction_bounds(self, libc_image):
        importance = {name: 1.0 for name in function_sizes(libc_image)}
        footprints = {"p": Footprint.EMPTY}
        popcon = PopularityContest(10, {"p": 10})
        report = strip_report(libc_image, importance, footprints,
                              popcon)
        assert report.retained_fraction == pytest.approx(1.0)


class TestRelocationLayout:
    def test_sorted_prefix_smaller_than_scatter(self):
        importance = {f"s{i}": (1.0 if i < 100 else 0.0)
                      for i in range(1000)}
        layout = relocation_layout(importance)
        assert layout.hot_entries == 100
        assert layout.hot_pages < layout.unsorted_pages
        assert layout.pages_saved > 0

    def test_no_hot_entries(self):
        layout = relocation_layout({"a": 0.0, "b": 0.1})
        assert layout.hot_pages == 0
        assert layout.unsorted_pages == 0

    def test_table_bytes(self):
        layout = relocation_layout({f"s{i}": 1.0 for i in range(100)})
        assert layout.table_bytes == 100 * 24


class TestVariantRows:
    _usage = {
        "access": 0.74, "faccessat": 0.006,
        "setuid": 0.15, "setresuid": 0.99,
        "wait4": 0.6, "waitid": 0.002,
        "preadv": 0.001, "readv": 0.62,
        "pipe2": 0.40, "pipe": 0.50,
        "getdents": 0.99, "getdents64": 0.001,
        "fork": 0.001, "vfork": 0.99, "clone": 0.99,
        "tkill": 0.005, "tgkill": 0.99,
        "utime": 0.08, "utimes": 0.17,
        "pread64": 0.27, "read": 0.99,
        "dup3": 0.08, "dup2": 0.99, "dup": 0.66,
        "select": 0.61, "pselect6": 0.04,
        "chdir": 0.44, "fchdir": 0.02,
        "recvmsg": 0.68, "recvfrom": 0.53,
        "sendmsg": 0.42, "sendto": 0.71,
    }

    def test_secure_rows_shape(self):
        rows = secure_variant_rows(self._usage)
        access_row = next(r for r in rows if r.left == "access")
        assert access_row.right == "faccessat"
        assert access_row.left_usage > access_row.right_usage

    def test_old_new_rows(self):
        rows = old_new_rows(self._usage)
        wait_row = next(r for r in rows if r.left == "wait4")
        assert not wait_row.preferred_is_adopted

    def test_portability_rows_portable_wins(self):
        rows = portability_rows(self._usage)
        readv_row = next(r for r in rows if r.left == "preadv")
        assert readv_row.preferred_is_adopted

    def test_power_rows(self):
        rows = power_rows(self._usage)
        read_row = next(r for r in rows if r.left == "pread64")
        assert read_row.right_usage > read_row.left_usage

    def test_all_tables_keys(self):
        tables = all_variant_tables(self._usage)
        assert set(tables) == {"secure", "old-new", "portability",
                               "power"}

    def test_missing_usage_defaults_zero(self):
        from repro.syscalls.variants import SECURE_VARIANTS
        rows = build_rows(SECURE_VARIANTS, {})
        assert all(row.left_usage == 0.0 for row in rows)
        assert all(row.right_usage == 0.0 for row in rows)

    def test_adoption_summary(self):
        summary = adoption_summary(self._usage)
        assert summary.race_prone_directory_usage >= 0.7
        assert summary.atomic_variant_usage < 0.01
        assert "wait4" in summary.deprecated_with_users
        assert (summary.portable_preferred_count
                + summary.linux_specific_preferred_count) == 7
