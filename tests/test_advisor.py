"""Workload-advisor tests (§6)."""

import pytest

from repro.analysis.footprint import Footprint
from repro.compat.advisor import (
    change_impact,
    coverage_plan,
    workload_suggestions,
)
from repro.packages import Package, PopularityContest, Repository


def _fp(*syscalls):
    return Footprint.build(syscalls=syscalls)


def _inputs():
    footprints = {
        "web-server": _fp("epoll_wait", "accept4", "sendfile",
                          "read", "write"),
        "database": _fp("pread64", "pwrite64", "fsync", "read"),
        "tool": _fp("read", "write"),
        "niche": _fp("sendfile",),
    }
    popcon = PopularityContest(1000, {
        "web-server": 700, "database": 300, "tool": 950, "niche": 5})
    repo = Repository([
        Package("web-server", depends=["tool"]),
        Package("database"),
        Package("tool"),
        Package("niche"),
        Package("framework", depends=["web-server"]),
    ])
    return footprints, popcon, repo


class TestWorkloadSuggestions:
    def test_coverage_ranks_first(self):
        footprints, popcon, _ = _inputs()
        suggestions = workload_suggestions(
            ["epoll_wait", "sendfile", "fsync"], footprints, popcon)
        assert suggestions[0].package == "web-server"
        assert suggestions[0].coverage == 2

    def test_popularity_breaks_ties(self):
        footprints, popcon, _ = _inputs()
        suggestions = workload_suggestions(
            ["sendfile"], footprints, popcon)
        assert suggestions[0].package == "web-server"  # 0.7 > 0.005
        assert suggestions[1].package == "niche"

    def test_non_users_excluded(self):
        footprints, popcon, _ = _inputs()
        suggestions = workload_suggestions(
            ["epoll_wait"], footprints, popcon)
        assert {s.package for s in suggestions} == {"web-server"}

    def test_limit(self):
        footprints, popcon, _ = _inputs()
        suggestions = workload_suggestions(
            ["read"], footprints, popcon, limit=2)
        assert len(suggestions) == 2


class TestChangeImpact:
    def test_unused_api(self):
        footprints, popcon, repo = _inputs()
        impact = change_impact("kexec_load", footprints, popcon, repo)
        assert impact.direct_users == ()
        assert impact.affected_installs == 0.0
        assert "removable" in impact.verdict

    def test_niche_api(self):
        footprints, popcon, repo = _inputs()
        impact = change_impact("fsync", footprints, popcon, repo)
        assert impact.direct_users == ("database",)
        assert impact.affected_installs == pytest.approx(0.3)

    def test_indispensable_api(self):
        footprints, popcon, repo = _inputs()
        impact = change_impact("read", footprints, popcon, repo)
        # 1 - (1-0.7)(1-0.3)(1-0.95)
        assert impact.affected_installs == pytest.approx(0.9895)

    def test_cascade_includes_reverse_dependencies(self):
        footprints, popcon, repo = _inputs()
        impact = change_impact("epoll_wait", footprints, popcon, repo)
        assert "framework" in impact.cascade
        assert "web-server" not in impact.cascade  # direct, not cascade


class TestCoveragePlan:
    def test_greedy_covers_everything(self):
        footprints, popcon, _ = _inputs()
        plan = coverage_plan(
            ["epoll_wait", "fsync", "sendfile", "pread64"],
            footprints, popcon)
        covered = set()
        for suggestion in plan:
            covered |= set(suggestion.apis_exercised)
        assert {"epoll_wait", "fsync", "sendfile",
                "pread64"} <= covered

    def test_plan_is_small(self):
        footprints, popcon, _ = _inputs()
        plan = coverage_plan(
            ["epoll_wait", "fsync", "sendfile", "pread64"],
            footprints, popcon)
        assert len(plan) == 2  # web-server + database suffice

    def test_uncoverable_api_leaves_plan_partial(self):
        footprints, popcon, _ = _inputs()
        plan = coverage_plan(["kexec_load"], footprints, popcon)
        assert plan == []


class TestOnMeasuredArchive:
    def test_qemu_suggested_for_rare_syscalls(self, study):
        suggestions = workload_suggestions(
            ["mq_timedsend", "mq_getsetattr"], study.footprints,
            study.popcon)
        assert suggestions[0].package == "qemu-user"

    def test_change_impact_kexec(self, study):
        impact = change_impact("kexec_load", study.footprints,
                               study.popcon, study.repository)
        assert "kexec-tools" in impact.direct_users
        assert impact.affected_installs < 0.10
        assert "niche" in impact.verdict

    def test_change_impact_read_unremovable(self, study):
        impact = change_impact("read", study.footprints, study.popcon,
                               study.repository)
        assert "unremovable" in impact.verdict
