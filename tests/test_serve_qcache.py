"""Unit tests for the serve result cache (LRU bound, TTL, keys)."""

import pytest

from repro.serve.qcache import QueryCache, canonical_query_key


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestCanonicalKey:
    def test_key_is_order_insensitive_over_params(self):
        a = canonical_query_key("fp", "importance",
                                {"dimension": "syscall", "limit": 5})
        b = canonical_query_key("fp", "importance",
                                {"limit": 5, "dimension": "syscall"})
        assert a == b

    def test_key_separates_fingerprint_endpoint_and_params(self):
        base = canonical_query_key("fp", "importance", {"limit": 5})
        assert canonical_query_key("fp2", "importance",
                                   {"limit": 5}) != base
        assert canonical_query_key("fp", "unweighted",
                                   {"limit": 5}) != base
        assert canonical_query_key("fp", "importance",
                                   {"limit": 6}) != base

    def test_key_embeds_all_three_components_verbatim(self):
        key = canonical_query_key("abc123", "curve",
                                  {"dimension": "ioctl"})
        assert key.startswith("abc123|curve|")
        assert '"dimension":"ioctl"' in key


class TestLRU:
    def test_get_miss_then_hit(self):
        cache = QueryCache(max_entries=4)
        assert cache.get("k") is None
        cache.put("k", {"x": 1})
        assert cache.get("k") == {"x": 1}
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["hit_rate"] == 0.5

    def test_eviction_drops_least_recently_used(self):
        cache = QueryCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh "a": now "b" is LRU
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert cache.stats()["evictions"] == 1

    def test_put_existing_key_updates_without_eviction(self):
        cache = QueryCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)
        assert len(cache) == 2
        assert cache.get("a") == 10
        assert cache.stats()["evictions"] == 0

    def test_capacity_one(self):
        cache = QueryCache(max_entries=1)
        cache.put("a", 1)
        cache.put("b", 2)
        assert len(cache) == 1
        assert cache.get("a") is None
        assert cache.get("b") == 2

    def test_clear_returns_dropped_count(self):
        cache = QueryCache(max_entries=8)
        for i in range(5):
            cache.put(str(i), i)
        assert cache.clear() == 5
        assert len(cache) == 0

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            QueryCache(max_entries=0)


class TestTTL:
    def test_entry_expires_after_ttl(self):
        clock = FakeClock()
        cache = QueryCache(max_entries=8, ttl_seconds=10.0,
                           clock=clock)
        cache.put("k", "v")
        clock.advance(9.999)
        assert cache.get("k") == "v"
        clock.advance(0.001)  # exactly at TTL: expired
        assert cache.get("k") is None
        stats = cache.stats()
        assert stats["expirations"] == 1
        assert stats["entries"] == 0

    def test_put_refreshes_ttl(self):
        clock = FakeClock()
        cache = QueryCache(max_entries=8, ttl_seconds=10.0,
                           clock=clock)
        cache.put("k", "v1")
        clock.advance(8.0)
        cache.put("k", "v2")
        clock.advance(8.0)  # 16s after first put, 8s after second
        assert cache.get("k") == "v2"

    def test_no_ttl_means_entries_never_expire(self):
        clock = FakeClock()
        cache = QueryCache(max_entries=8, clock=clock)
        cache.put("k", "v")
        clock.advance(1e9)
        assert cache.get("k") == "v"

    def test_rejects_nonpositive_ttl(self):
        with pytest.raises(ValueError):
            QueryCache(ttl_seconds=0)
