"""The examples are part of the public API surface: each must run to
completion against the session study (they share the Study.default
cache, so this stays fast)."""

import pathlib
import runpy
import sys

import pytest

_EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def _run(name, argv=()):
    old_argv = sys.argv
    sys.argv = [name] + list(argv)
    try:
        runpy.run_path(str(_EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = old_argv


class TestExamples:
    def test_quickstart(self, study, capsys):
        _run("quickstart.py")
        out = capsys.readouterr().out
        assert "indispensable syscalls" in out
        assert "Table 6" in out

    def test_prototype_planner(self, study, capsys):
        _run("prototype_planner.py", ["120"])
        out = capsys.readouterr().out
        assert "milestone" in out
        assert "still missing" in out

    def test_seccomp_sandbox(self, study, capsys):
        _run("seccomp_sandbox.py", ["dash"])
        out = capsys.readouterr().out
        assert "whitelisted syscalls" in out
        assert "KILLED" in out

    def test_deprecation_audit(self, study, capsys):
        _run("deprecation_audit.py", ["nfsservctl", "read"])
        out = capsys.readouterr().out
        assert "verdict" in out
        assert "Table 8" in out

    def test_dynamic_vs_static(self, study, capsys):
        _run("dynamic_vs_static.py", ["dash", "kexec-tools"])
        out = capsys.readouterr().out
        assert "superset" in out
        assert "OK" in out
        assert "VIOLATED" not in out

    def test_research_advisor(self, study, capsys):
        _run("research_advisor.py")
        out = capsys.readouterr().out
        assert "Best evaluation workloads" in out
        assert "Deprecation assessments" in out

    @pytest.mark.slow
    def test_release_drift(self, capsys):
        # Builds two archives; the heaviest example.
        _run("release_drift.py", ["0.5"])
        out = capsys.readouterr().out
        assert "APIs losing users" in out
        assert "access" in out
