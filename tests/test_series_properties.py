"""Property-based equivalence: lazy time travel == eager rebuild.

Hypothesis drives evolution seeds, release counts, and query
parameters; for every drawn combination, ``series.at(k)`` must be
indistinguishable from the eagerly evolved release k under every
metric the serve layer exposes — importance, unweighted importance,
weighted completeness, the completeness curve, and the advisor plan —
and the materialized chain must re-encode to the original bytes.

Evolved trains are memoized per (seed, n_releases) so examples pay
for metric comparisons, not for re-synthesis.
"""

import functools

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compat import coverage_plan
from repro.metrics import (completeness_curve, importance_table,
                           unweighted_importance_table,
                           weighted_completeness)
from repro.series import load_series_bytes, series_to_bytes
from repro.synth import EvolutionConfig, evolve_corpus
from repro.synth.paper import PaperScaleConfig


@functools.lru_cache(maxsize=None)
def train(seed, n_releases):
    ecosystem = evolve_corpus(EvolutionConfig(
        n_releases=n_releases,
        base=PaperScaleConfig.at_scale(0.001, seed=seed), seed=seed))
    datasets = ecosystem.datasets()
    blob = series_to_bytes(datasets)
    return datasets, blob, load_series_bytes(blob)


seeds = st.integers(min_value=0, max_value=3)
release_counts = st.integers(min_value=2, max_value=4)
dimensions = st.sampled_from(["syscall", "ioctl", "libc"])


@st.composite
def pick(draw):
    seed = draw(seeds)
    n_releases = draw(release_counts)
    release = draw(st.integers(min_value=0,
                               max_value=n_releases - 1))
    return seed, n_releases, release


@settings(max_examples=30, deadline=None)
@given(pick(), dimensions)
def test_importance_matches_eager(case, dimension):
    seed, n_releases, release = case
    datasets, _, series = train(seed, n_releases)
    eager, lazy = datasets[release], series.at(release)
    assert importance_table(lazy, dimension=dimension) == \
        importance_table(eager, dimension=dimension)
    assert unweighted_importance_table(lazy, dimension) == \
        unweighted_importance_table(eager, dimension)


@settings(max_examples=20, deadline=None)
@given(pick(), dimensions, st.integers(min_value=0, max_value=30),
       st.booleans())
def test_weighted_completeness_matches_eager(case, dimension,
                                             n_supported,
                                             ignore_empty):
    seed, n_releases, release = case
    datasets, _, series = train(seed, n_releases)
    eager, lazy = datasets[release], series.at(release)
    # A deterministic "supported" subset: the first n APIs by weight.
    table = importance_table(eager, dimension=dimension)
    supported = [api for api, _ in sorted(table.items(),
                                          key=lambda kv: (-kv[1],
                                                          kv[0]))
                 ][:n_supported]
    assert weighted_completeness(
        supported, lazy, dimension=dimension,
        ignore_empty=ignore_empty) == \
        weighted_completeness(
            supported, eager, dimension=dimension,
            ignore_empty=ignore_empty)


@settings(max_examples=15, deadline=None)
@given(pick())
def test_curve_and_advisor_match_eager(case):
    seed, n_releases, release = case
    datasets, _, series = train(seed, n_releases)
    eager, lazy = datasets[release], series.at(release)
    assert completeness_curve(lazy) == completeness_curve(eager)
    table = importance_table(eager)
    modified = [api for api, value in sorted(table.items(),
                                             key=lambda kv: (-kv[1],
                                                             kv[0]))
                if value > 0.0][:5]
    assert coverage_plan(modified, lazy) == \
        coverage_plan(modified, eager)


@settings(max_examples=10, deadline=None)
@given(seeds, release_counts)
def test_materialized_chain_is_byte_stable(seed, n_releases):
    _, blob, series = train(seed, n_releases)
    assert series_to_bytes(series.releases()) == blob
    # ...and a second decode of those bytes agrees on the chain.
    again = load_series_bytes(blob)
    assert again.series_fingerprint == series.series_fingerprint
    assert again.fingerprints == series.fingerprints


@settings(max_examples=15, deadline=None)
@given(pick())
def test_release_fingerprints_are_stamped(case):
    seed, n_releases, release = case
    _, _, series = train(seed, n_releases)
    dataset = series.at(release)
    assert dataset.source_fingerprint == series.fingerprints[release]
