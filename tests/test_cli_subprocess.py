"""CLI exit-code taxonomy, via real subprocesses.

0 = success, 1 = runtime/analysis failure, 2 = usage error,
130 = interrupted — and never a traceback on stderr for the
expected-failure paths.
"""

import http.client
import json
import os
import re
import signal
import subprocess
import sys
import time

import pytest

TINY = ["--fillers", "24", "--drivers", "6", "--scripts", "10",
        "--seed", "7"]


def run_cli(*argv, **kwargs):
    env = dict(os.environ)
    env["PYTHONPATH"] = "src"
    return subprocess.run(
        [sys.executable, "-m", "repro.cli", *argv],
        capture_output=True, text=True, env=env, timeout=180,
        **kwargs)


class TestUsageErrors:
    def test_unknown_flag_exits_2(self):
        result = run_cli("--definitely-not-a-flag")
        assert result.returncode == 2
        assert "Traceback" not in result.stderr

    def test_missing_subcommand_exits_2(self):
        result = run_cli()
        assert result.returncode == 2

    def test_unknown_experiment_exits_2(self):
        result = run_cli(*TINY, "report", "nosuchfigure")
        assert result.returncode == 2
        assert "unknown experiments" in result.stderr

    def test_help_exits_0(self):
        result = run_cli("--help")
        assert result.returncode == 0
        assert "serve" in result.stdout


class TestRuntimeFailures:
    def test_unwritable_export_exits_1_without_traceback(self):
        result = run_cli(*TINY, "dataset", "export", "--out",
                         "/nonexistent-dir/snapshot.json")
        assert result.returncode == 1
        assert result.stderr.startswith("error")
        assert "Traceback" not in result.stderr

    def test_serve_on_taken_port_exits_1(self):
        import socket
        taken = socket.socket()
        taken.bind(("127.0.0.1", 0))
        taken.listen(1)
        try:
            port = taken.getsockname()[1]
            result = run_cli(*TINY, "serve", "--port", str(port))
            assert result.returncode == 1
            assert "Traceback" not in result.stderr
        finally:
            taken.close()


class TestInterrupt:
    def test_sigint_on_serve_exits_130_cleanly(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = "src"
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", *TINY,
             "serve", "--port", "0"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True, env=env)
        try:
            announce = process.stdout.readline()
            match = re.search(r"http://([\d.]+):(\d+)", announce)
            assert match, announce
            host, port = match.group(1), int(match.group(2))
            conn = http.client.HTTPConnection(host, port, timeout=10)
            conn.request("GET", "/healthz")
            assert conn.getresponse().status == 200
            conn.close()
            process.send_signal(signal.SIGINT)
            returncode = process.wait(timeout=60)
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=30)
        stderr = process.stderr.read()
        assert returncode == 130
        assert "interrupted" in stderr
        assert "Traceback" not in stderr


class TestGracefulTermination:
    def test_sigterm_on_serve_drains_and_exits_0(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = "src"
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", *TINY,
             "serve", "--port", "0"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True, env=env)
        try:
            announce = process.stdout.readline()
            match = re.search(r"http://([\d.]+):(\d+)", announce)
            assert match, announce
            host, port = match.group(1), int(match.group(2))
            conn = http.client.HTTPConnection(host, port, timeout=10)
            conn.request("GET", "/healthz")
            assert conn.getresponse().status == 200
            conn.close()
            process.send_signal(signal.SIGTERM)
            returncode = process.wait(timeout=60)
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=30)
        stderr = process.stderr.read()
        assert returncode == 0
        assert "Traceback" not in stderr


class TestMultiWorkerServe:
    def test_workers_boot_reload_and_terminate(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = "src"
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", *TINY,
             "serve", "--port", "0", "--workers", "2"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True, env=env)
        try:
            announce = process.stdout.readline()
            match = re.search(
                r"serving (\d+) packages \((\w+), (\d+) workers\) "
                r"on http://([\d.]+):(\d+)", announce)
            assert match, announce
            assert int(match.group(3)) == 2
            host, port = match.group(4), int(match.group(5))

            def readyz():
                conn = http.client.HTTPConnection(host, port,
                                                  timeout=10)
                try:
                    conn.request("GET", "/readyz")
                    response = conn.getresponse()
                    worker = response.headers.get("X-Repro-Worker")
                    return worker, json.loads(response.read())
                finally:
                    conn.close()

            # both workers answer with identical provenance
            seen = {}
            deadline = time.time() + 60
            while len(seen) < 2 and time.time() < deadline:
                worker, payload = readyz()
                seen[worker] = payload
            assert len(seen) == 2, sorted(seen)
            assert len({p["fingerprint"]
                        for p in seen.values()}) == 1
            assert {p["format"] for p in seen.values()} == {"rsnap"}

            # SIGHUP fans the reload out to every worker
            process.send_signal(signal.SIGHUP)
            deadline = time.time() + 60
            generations = {}
            while time.time() < deadline:
                worker, payload = readyz()
                if payload.get("ready"):
                    generations[worker] = payload["generation"]
                if len(generations) == 2 and \
                        set(generations.values()) == {2}:
                    break
            assert set(generations.values()) == {2}, generations

            process.send_signal(signal.SIGTERM)
            returncode = process.wait(timeout=60)
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=30)
        stderr = process.stderr.read()
        assert returncode == 0
        assert "Traceback" not in stderr


class TestServeSmoke:
    def test_serve_boots_and_answers_queries(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = "src"
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", *TINY,
             "serve", "--port", "0", "--cache-entries", "64"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True, env=env)
        try:
            announce = process.stdout.readline()
            match = re.search(r"serving (\d+) packages .* "
                              r"http://([\d.]+):(\d+)", announce)
            assert match, announce
            announced = int(match.group(1))
            host, port = match.group(2), int(match.group(3))
            conn = http.client.HTTPConnection(host, port, timeout=10)
            conn.request("GET", "/v1/dataset/stats")
            payload = json.loads(conn.getresponse().read())
            assert payload["data"]["n_packages"] == announced
            conn.request("GET", "/readyz")
            assert conn.getresponse().status == 200
            conn.close()
            process.send_signal(signal.SIGINT)
            assert process.wait(timeout=60) == 130
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=30)
