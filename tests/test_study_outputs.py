"""Rendered-output smoke tests: every experiment produces the rows a
reader of the paper would look for."""

import pytest


class TestRenderedExperiments:
    def test_fig1_headline(self, study):
        text = study.fig1_binary_types().rendered
        assert "Figure 1" in text
        assert "ELF binary" in text
        assert "shared libraries" in text

    def test_fig2_key_points(self, study):
        text = study.fig2_syscall_importance().rendered
        assert "indispensable" in text
        assert "never used" in text
        assert "|" in text  # the ASCII curve

    def test_tab1_columns(self, study):
        text = study.tab1_library_only_syscalls().rendered
        assert "syscall" in text and "libraries" in text
        assert "mbind" in text

    def test_tab2_examples(self, study):
        text = study.tab2_single_package_syscalls().rendered
        assert "kexec_load" in text

    def test_tab3_reasons(self, study):
        text = study.tab3_unused_syscalls().rendered
        assert "Officially retired." in text
        assert "restart_syscall" in text

    def test_fig3_landmarks(self, study):
        text = study.fig3_completeness_curve().rendered
        assert "weighted completeness" in text
        assert "N =" in text

    def test_tab4_stage_names(self, study):
        text = study.tab4_stages().rendered
        assert "stage" in text
        assert "+"  in text

    def test_fig4_counts(self, study):
        text = study.fig4_ioctl().rendered
        assert "defined ioctl codes" in text
        assert "635" in text

    def test_fig5_both_vectors(self, study):
        text = study.fig5_fcntl_prctl().rendered
        assert "fcntl" in text and "prctl" in text

    def test_fig6_paths(self, study):
        text = study.fig6_pseudo_files().rendered
        assert "/dev/null" in text

    def test_fig7_percentages(self, study):
        text = study.fig7_libc_importance().rendered
        assert "exported function symbols" in text
        assert "%" in text

    def test_strip_report(self, study):
        text = study.libc_strip_analysis().rendered
        assert "retained APIs" in text
        assert "relocation table" in text

    def test_tab5_libraries(self, study):
        text = study.tab5_startup_syscalls().rendered
        assert "ld-linux-x86-64.so.2" in text
        assert "libpthread.so.0" in text

    def test_tab6_systems(self, study):
        text = study.tab6_linux_systems().rendered
        for name in ("User-Mode-Linux", "L4Linux", "FreeBSD-emu",
                     "Graphene"):
            assert name in text

    def test_tab7_variants(self, study):
        text = study.tab7_libc_variants().rendered
        for name in ("eglibc", "uClibc", "musl", "dietlibc"):
            assert name in text
        assert "normalized" in text

    def test_fig8_counts(self, study):
        text = study.fig8_unweighted().rendered
        assert "all packages" in text

    def test_tab8_to_tab11_pairs(self, study):
        assert "setresuid" in study.tab8_secure_variants().rendered
        assert "waitid" in study.tab9_old_new().rendered
        assert "pipe2" in study.tab10_portability().rendered
        assert "pselect6" in study.tab11_power().rendered

    def test_adoption_summary(self, study):
        text = study.adoption().rendered
        assert "race-prone" in text

    def test_tab12_stats(self, study):
        text = study.tab12_framework_stats().rendered
        assert "packages analyzed" in text
        assert "database rows" in text

    def test_seccomp_rendering(self, study):
        text = study.seccomp_policy("dash").rendered
        assert "seccomp policy" in text
        assert "jeq" in text

    def test_outputs_str_is_rendered(self, study):
        output = study.fig1_binary_types()
        assert str(output) == output.rendered

    def test_all_experiments_unique_names(self, study):
        names = [output.experiment
                 for output in study.all_experiments()]
        assert len(names) == len(set(names))

    def test_attack_surface_output(self, study):
        output = study.attack_surface()
        assert "attack-surface" in output.rendered
        assert output.data["packages"] > 100

    def test_libc_decomposition_output(self, study):
        output = study.libc_decomposition()
        assert "decomposition" in output.rendered
        assert output.data["report"].loaded_fraction < 1.0
