"""Property-based equivalence: bitset metrics == legacy set metrics.

The dataset refactor's contract is *bit-for-bit* equality: every
metric computed over interned bitsets must return exactly the floats
the legacy string-set implementations produced — not approximately,
exactly — because downstream rankings break ties on those floats.
:mod:`repro.dataset.reference` preserves the legacy implementations
verbatim; this suite drives both paths over randomized synthetic
ecosystems (dependency cycles, deps on unmeasured packages, deps
missing from the repository entirely, empty footprints, zero-weight
packages) and asserts ``==``.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st

from repro.analysis.footprint import Footprint
from repro.dataset import Dataset, reference
from repro.dataset.dimensions import ALL_DIMENSIONS
from repro.metrics import (
    completeness_curve,
    dependents_index,
    importance_table,
    missing_apis_report,
    supported_packages,
    unweighted_importance_table,
    weighted_completeness,
)
from repro.packages.package import Package
from repro.packages.popcon import PopularityContest
from repro.packages.repository import Repository

_SYSCALLS = ["read", "write", "open", "close", "mmap", "futex",
             "epoll_wait", "accept", "clone", "execve"]
_IOCTLS = ["TCGETS", "TIOCGWINSZ", "FIONREAD"]
_FCNTLS = ["F_GETFL", "F_SETFL"]
_PRCTLS = ["PR_SET_NAME"]
_PSEUDO = ["/proc/self/maps", "/dev/null"]
_LIBC = ["printf", "malloc", "memcpy", "fopen"]

#: Dependency targets: real packages, packages the repository knows
#: but the study never measured (poisons the closure), and names no
#: repository entry carries at all (APT-style ignored).
_UNMEASURED = ["vendor-blob", "firmware-pack"]
_GHOSTS = ["ghost-virtual", "ghost-provides"]


def _subset(draw, pool):
    return draw(st.lists(st.sampled_from(pool), unique=True,
                         max_size=len(pool)))


@st.composite
def ecosystems(draw):
    n = draw(st.integers(min_value=1, max_value=8))
    names = [f"pkg{i}" for i in range(n)]
    footprints = {}
    for name in names:
        if draw(st.booleans()) or draw(st.booleans()):
            footprints[name] = Footprint.build(
                syscalls=_subset(draw, _SYSCALLS),
                ioctls=_subset(draw, _IOCTLS),
                fcntls=_subset(draw, _FCNTLS),
                prctls=_subset(draw, _PRCTLS),
                pseudo_files=_subset(draw, _PSEUDO),
                libc_symbols=_subset(draw, _LIBC),
            )
        else:
            footprints[name] = Footprint.EMPTY
    total = 1000
    popcon = PopularityContest(total, {
        name: draw(st.integers(min_value=0, max_value=total))
        for name in names})
    dep_pool = names + _UNMEASURED + _GHOSTS
    packages = [
        Package(name, depends=_subset(draw, dep_pool))
        for name in names
    ] + [Package(extra) for extra in _UNMEASURED]
    repository = Repository(packages)
    supported = _subset(draw, _SYSCALLS + ["not_a_syscall"])
    return footprints, popcon, repository, frozenset(supported)


_SETTINGS = settings(max_examples=60, deadline=None)


class TestImportanceEquivalence:
    @_SETTINGS
    @given(eco=ecosystems(), dimension=st.sampled_from(ALL_DIMENSIONS))
    def test_importance_table(self, eco, dimension):
        footprints, popcon, _, _ = eco
        dataset = Dataset(footprints, popcon)
        assert importance_table(dataset, dimension=dimension) == \
            reference.importance_table(footprints, popcon, dimension)

    @_SETTINGS
    @given(eco=ecosystems())
    def test_importance_with_universe_extension(self, eco):
        footprints, popcon, _, _ = eco
        universe = _SYSCALLS + ["never_used_call"]
        dataset = Dataset(footprints, popcon)
        assert importance_table(dataset, universe=universe) == \
            reference.importance_table(footprints, popcon, "syscall",
                                       universe=universe)

    @_SETTINGS
    @given(eco=ecosystems(), dimension=st.sampled_from(ALL_DIMENSIONS))
    def test_unweighted_table(self, eco, dimension):
        footprints, _, _, _ = eco
        dataset = Dataset(footprints)
        assert unweighted_importance_table(dataset, dimension) == \
            reference.unweighted_importance_table(footprints,
                                                  dimension)

    @_SETTINGS
    @given(eco=ecosystems(), dimension=st.sampled_from(ALL_DIMENSIONS))
    def test_dependents_index(self, eco, dimension):
        footprints, _, _, _ = eco
        assert dependents_index(Dataset(footprints), dimension) == \
            reference.dependents_index(footprints, dimension)


class TestCompletenessEquivalence:
    @_SETTINGS
    @given(eco=ecosystems(), ignore_empty=st.booleans(),
           with_repo=st.booleans())
    def test_weighted_completeness(self, eco, ignore_empty,
                                   with_repo):
        footprints, popcon, repository, supported = eco
        repo = repository if with_repo else None
        dataset = Dataset(footprints, popcon, repo)
        assert weighted_completeness(
            supported, dataset, ignore_empty=ignore_empty) == \
            reference.weighted_completeness(
                supported, footprints, popcon, repo,
                ignore_empty=ignore_empty)

    @_SETTINGS
    @given(eco=ecosystems())
    def test_supported_packages(self, eco):
        footprints, popcon, repository, supported = eco
        dataset = Dataset(footprints, popcon, repository)
        expected = reference.close_over_dependencies(
            reference.directly_supported(footprints, supported,
                                         "syscall"),
            repository,
            assume_supported={pkg for pkg, fp in footprints.items()
                              if not fp.syscalls})
        assert supported_packages(supported, dataset) == expected


class TestCurveEquivalence:
    @_SETTINGS
    @given(eco=ecosystems(), with_repo=st.booleans(),
           ignore_empty=st.booleans())
    def test_completeness_curve(self, eco, with_repo, ignore_empty):
        footprints, popcon, repository, _ = eco
        repo = repository if with_repo else None
        dataset = Dataset(footprints, popcon, repo)
        ours = completeness_curve(dataset,
                                  ignore_empty=ignore_empty)
        legacy = reference.completeness_curve(
            footprints, popcon, repo, ignore_empty=ignore_empty)
        assert ours == legacy

    @_SETTINGS
    @given(eco=ecosystems())
    def test_curve_with_extended_importance(self, eco):
        """Rankings fed through ``universe=`` keep unused APIs."""
        footprints, popcon, repository, _ = eco
        dataset = Dataset(footprints, popcon, repository)
        table = importance_table(dataset, universe=_SYSCALLS)
        ours = completeness_curve(dataset, importance=table)
        legacy = reference.completeness_curve(
            footprints, popcon, repository, importance=table)
        assert ours == legacy


class TestMissingApisEquivalence:
    @_SETTINGS
    @given(eco=ecosystems(), dimension=st.sampled_from(ALL_DIMENSIONS))
    def test_missing_apis_report(self, eco, dimension):
        footprints, popcon, _, supported = eco
        if dimension != "syscall":
            supported = frozenset()
        dataset = Dataset(footprints, popcon)
        assert missing_apis_report(
            supported, dataset, dimension=dimension, limit=100) == \
            reference.missing_apis_report(
                supported, footprints, popcon, dimension, limit=100)

    @_SETTINGS
    @given(eco=ecosystems())
    def test_ignore_empty_filter_cannot_change_report(self, eco):
        """Satellite regression: the ``ignore_empty`` universe filter
        matches weighted_completeness, and — because a package empty
        in a dimension has nothing missing in it — provably never
        alters the report."""
        footprints, popcon, _, supported = eco
        dataset = Dataset(footprints, popcon)
        assert missing_apis_report(
            supported, dataset, ignore_empty=True, limit=100) == \
            missing_apis_report(
                supported, dataset, ignore_empty=False, limit=100)
