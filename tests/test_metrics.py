"""Metric tests: the Appendix A formulas on hand-built inputs."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis.footprint import Footprint
from repro.metrics import (
    api_importance,
    band_counts,
    close_over_dependencies,
    completeness_curve,
    count_at_least,
    dependents_index,
    first_rank_reaching,
    importance_of_packages,
    importance_table,
    inverted_cdf,
    missing_apis_report,
    ranked,
    stages,
    supported_packages,
    unweighted_api_importance,
    unweighted_importance_table,
    weighted_completeness,
)
from repro.packages import Package, PopularityContest, Repository


def _fp(*syscalls):
    return Footprint.build(syscalls=syscalls)


def _setup():
    footprints = {
        "everywhere": _fp("read", "write"),
        "common": _fp("read", "socket"),
        "niche": _fp("read", "kexec_load"),
    }
    popcon = PopularityContest(1000, {
        "everywhere": 1000, "common": 500, "niche": 10})
    return footprints, popcon


class TestApiImportance:
    def test_formula_single_user(self):
        footprints, popcon = _setup()
        assert api_importance("kexec_load", footprints,
                              popcon) == pytest.approx(0.01)

    def test_formula_multiple_users_independence(self):
        footprints, popcon = _setup()
        # read used by all three: 1 - (1-1)(1-0.5)(1-0.01) = 1
        assert api_importance("read", footprints, popcon) == 1.0
        # socket used only by 'common'
        assert api_importance("socket", footprints,
                              popcon) == pytest.approx(0.5)

    def test_unused_api_is_zero(self):
        footprints, popcon = _setup()
        assert api_importance("mbind", footprints, popcon) == 0.0

    def test_importance_of_packages_matches_appendix(self):
        popcon = PopularityContest(100, {"a": 50, "b": 50})
        # 1 - (1-0.5)(1-0.5)
        assert importance_of_packages(["a", "b"],
                                      popcon) == pytest.approx(0.75)

    def test_table_matches_single_queries(self):
        footprints, popcon = _setup()
        table = importance_table(footprints, popcon)
        for api in ("read", "write", "socket", "kexec_load"):
            assert table[api] == pytest.approx(
                api_importance(api, footprints, popcon))

    def test_universe_adds_zero_entries(self):
        footprints, popcon = _setup()
        table = importance_table(footprints, popcon,
                                 universe=["mbind"])
        assert table["mbind"] == 0.0

    def test_dependents_index(self):
        footprints, _ = _setup()
        index = dependents_index(footprints)
        assert set(index["read"]) == {"everywhere", "common", "niche"}
        assert index["socket"] == ["common"]

    def test_ranked_descending(self):
        values = {"a": 0.2, "b": 0.9, "c": 0.9}
        assert ranked(values) == [("b", 0.9), ("c", 0.9), ("a", 0.2)]

    def test_count_at_least(self):
        values = {"a": 0.2, "b": 0.9, "c": 1.0}
        assert count_at_least(values, 0.9) == 2

    def test_band_counts(self):
        values = {"a": 1.0, "b": 0.5, "c": 0.05, "d": 0.0}
        bands = band_counts(values)
        assert bands == {"indispensable": 1, "mid": 1, "low": 1,
                         "unused": 1}

    @given(st.lists(st.floats(0, 1), min_size=1, max_size=20))
    def test_importance_bounded(self, probabilities):
        popcon = PopularityContest(10 ** 6, {
            f"p{i}": int(p * 10 ** 6)
            for i, p in enumerate(probabilities)})
        value = importance_of_packages(
            [f"p{i}" for i in range(len(probabilities))], popcon)
        assert 0.0 <= value <= 1.0
        assert value >= max(
            popcon.install_probability(f"p{i}")
            for i in range(len(probabilities))) - 1e-9


class TestUnweighted:
    def test_fraction_of_packages(self):
        footprints, _ = _setup()
        table = unweighted_importance_table(footprints)
        assert table["read"] == 1.0
        assert table["socket"] == pytest.approx(1 / 3)

    def test_single_api_matches_table(self):
        footprints, _ = _setup()
        assert unweighted_api_importance(
            "socket", footprints) == pytest.approx(1 / 3)

    def test_empty_footprints(self):
        assert unweighted_importance_table({}, universe=["x"]) == {
            "x": 0.0}


class TestWeightedCompleteness:
    def test_full_support(self):
        footprints, popcon = _setup()
        value = weighted_completeness(
            ["read", "write", "socket", "kexec_load"], footprints,
            popcon)
        assert value == pytest.approx(1.0)

    def test_no_support(self):
        footprints, popcon = _setup()
        assert weighted_completeness([], footprints, popcon) == 0.0

    def test_partial_support_weighting(self):
        footprints, popcon = _setup()
        value = weighted_completeness(["read", "write"], footprints,
                                      popcon)
        # only 'everywhere' works: 1000 / (1000 + 500 + 10)
        assert value == pytest.approx(1000 / 1510)

    def test_dependency_closure_drops_dependents(self):
        footprints = {
            "app": _fp("read"),
            "lib": _fp("mbind"),
        }
        popcon = PopularityContest(100, {"app": 100, "lib": 50})
        repo = Repository([
            Package("app", depends=["lib"]),
            Package("lib"),
        ])
        value = weighted_completeness(["read"], footprints, popcon,
                                      repo)
        assert value == 0.0  # lib unsupported -> app unsupported

    def test_ignore_empty_excludes_library_packages(self):
        footprints = {
            "app": _fp("read"),
            "data-only": Footprint.EMPTY,
        }
        popcon = PopularityContest(100, {"app": 50, "data-only": 100})
        value = weighted_completeness(["read"], footprints, popcon)
        assert value == pytest.approx(1.0)
        diluted = weighted_completeness(["read"], footprints, popcon,
                                        ignore_empty=False)
        assert diluted == pytest.approx(1.0)  # empty is also supported

    def test_empty_dep_does_not_invalidate(self):
        footprints = {
            "app": _fp("read"),
            "libdata": Footprint.EMPTY,
        }
        popcon = PopularityContest(100, {"app": 100, "libdata": 100})
        repo = Repository([
            Package("app", depends=["libdata"]),
            Package("libdata"),
        ])
        assert weighted_completeness(
            ["read"], footprints, popcon, repo) == pytest.approx(1.0)

    def test_supported_packages_concrete(self):
        footprints, popcon = _setup()
        supported = supported_packages(["read", "write"], footprints)
        assert supported == {"everywhere"}

    def test_missing_apis_report_ranks_by_weight(self):
        footprints, popcon = _setup()
        report = missing_apis_report(["read", "write"], footprints,
                                     popcon)
        apis = [api for api, _ in report]
        assert apis[0] == "socket"  # blocks 0.5 weight vs 0.01


class TestCloseOverDependencies:
    def test_cascading_removal(self):
        repo = Repository([
            Package("a", depends=["b"]),
            Package("b", depends=["c"]),
            Package("c"),
        ])
        result = close_over_dependencies({"a", "b"}, repo)
        assert result == set()  # c unsupported cascades up

    def test_assume_supported(self):
        repo = Repository([
            Package("a", depends=["c"]),
            Package("c"),
        ])
        result = close_over_dependencies({"a"}, repo,
                                         assume_supported={"c"})
        assert result == {"a"}

    def test_cycle_safe(self):
        repo = Repository([
            Package("a", depends=["b"]),
            Package("b", depends=["a"]),
        ])
        assert close_over_dependencies({"a", "b"}, repo) == {"a", "b"}


class TestCurveAndStages:
    def _inputs(self):
        footprints = {
            "tiny": _fp("read"),
            "mid": _fp("read", "write"),
            "big": _fp("read", "write", "socket"),
        }
        popcon = PopularityContest(100, {"tiny": 100, "mid": 60,
                                         "big": 30})
        return footprints, popcon

    def test_curve_monotone_nondecreasing(self):
        footprints, popcon = self._inputs()
        curve = completeness_curve(footprints, popcon)
        values = [point.completeness for point in curve]
        assert values == sorted(values)

    def test_curve_ends_at_one(self):
        footprints, popcon = self._inputs()
        curve = completeness_curve(footprints, popcon)
        assert curve[-1].completeness == pytest.approx(1.0)

    def test_curve_orders_by_usage_within_ties(self):
        footprints, popcon = self._inputs()
        curve = completeness_curve(footprints, popcon)
        apis = [point.api for point in curve]
        assert apis[0] == "read"  # used by all three packages

    def test_curve_step_values(self):
        footprints, popcon = self._inputs()
        curve = completeness_curve(footprints, popcon)
        # after 'read': tiny supported (100/190)
        assert curve[0].completeness == pytest.approx(100 / 190)
        # after 'write': + mid
        assert curve[1].completeness == pytest.approx(160 / 190)

    def test_first_rank_reaching(self):
        footprints, popcon = self._inputs()
        curve = completeness_curve(footprints, popcon)
        assert first_rank_reaching(curve, 0.5) == 1
        assert first_rank_reaching(curve, 0.999) == 3
        assert first_rank_reaching(curve, 2.0) is None

    def test_stages_cover_curve(self):
        footprints, popcon = self._inputs()
        curve = completeness_curve(footprints, popcon)
        result = stages(curve, thresholds=(0.5, 0.8, 1.0))
        assert result[0].end <= result[-1].end
        assert result[-1].completeness == pytest.approx(1.0)

    def test_inverted_cdf_sorted(self):
        values = inverted_cdf({"a": 0.1, "b": 1.0, "c": 0.5})
        assert values == [1.0, 0.5, 0.1]

    @given(st.dictionaries(
        st.sampled_from(["read", "write", "open", "close", "mmap"]),
        st.floats(0.01, 1.0), min_size=1, max_size=5))
    def test_curve_monotone_property(self, weights):
        footprints = {
            f"pkg-{api}": _fp(api, "read") for api in weights
        }
        popcon = PopularityContest(1000, {
            f"pkg-{api}": max(1, int(w * 1000))
            for api, w in weights.items()})
        curve = completeness_curve(footprints, popcon)
        values = [point.completeness for point in curve]
        assert all(a <= b + 1e-12
                   for a, b in zip(values, values[1:]))


class TestCloseOverUnknownPackages:
    def test_footprint_package_missing_from_repository(self):
        # Regression: this used to crash with UnknownPackageError; a
        # package without dependency metadata is never invalidated.
        repo = Repository([Package("known", depends=[])])
        result = close_over_dependencies({"known", "ghost"}, repo)
        assert result == {"known", "ghost"}

    def test_unknown_package_kept_while_dependents_cascade(self):
        repo = Repository([
            Package("a", depends=["b"]),
            Package("b"),
        ])
        result = close_over_dependencies({"a", "ghost"}, repo)
        assert result == {"ghost"}  # a loses b, ghost is untouched


def _reference_curve(footprints, popcon, repository,
                     dimension="syscall"):
    """The pre-optimization curve: full dependency fixed point at
    every rank.  Kept as the oracle for the incremental version."""
    from repro.metrics.importance import DIMENSIONS
    select = DIMENSIONS[dimension]
    trivially = {p for p, f in footprints.items() if not select(f)}
    footprints = {p: f for p, f in footprints.items() if select(f)}
    importance = importance_table(footprints, popcon, dimension)
    usage = unweighted_importance_table(footprints, dimension)
    order = sorted(importance, key=lambda a: (-importance[a],
                                              -usage.get(a, 0.0), a))
    requirement_count = {}
    users = {}
    for package, footprint in footprints.items():
        needs = select(footprint)
        requirement_count[package] = len(needs)
        for api in needs:
            users.setdefault(api, []).append(package)
    total = sum(popcon.install_probability(p) for p in footprints)
    satisfied = {p for p, c in requirement_count.items() if c == 0}
    points = []
    for rank, api in enumerate(order, start=1):
        for package in users.get(api, ()):
            requirement_count[package] -= 1
            if requirement_count[package] == 0:
                satisfied.add(package)
        supported = close_over_dependencies(
            set(satisfied), repository, assume_supported=trivially)
        weight = sum(popcon.install_probability(p) for p in supported)
        points.append((rank, api, weight / total))
    return points


class TestIncrementalCurveMatchesReference:
    """The worklist curve must equal the per-rank fixed point exactly."""

    def _assert_identical(self, footprints, popcon, repository):
        expected = _reference_curve(footprints, popcon, repository)
        actual = [(p.n_apis, p.api, p.completeness)
                  for p in completeness_curve(footprints, popcon,
                                              repository)]
        assert len(actual) == len(expected)
        for (rank, api, value), (erank, eapi, evalue) in zip(
                actual, expected):
            assert (rank, api) == (erank, eapi)
            assert value == pytest.approx(evalue, abs=1e-12)

    def test_simple_chain(self):
        repo = Repository([
            Package("a", depends=["b"]),
            Package("b"),
            Package("c"),
        ])
        footprints = {
            "a": _fp("read"),
            "b": _fp("write"),
            "c": _fp("read", "socket"),
        }
        popcon = PopularityContest(100, {"a": 50, "b": 30, "c": 20})
        self._assert_identical(footprints, popcon, repo)

    def test_dependency_cycle(self):
        # The subtle case: a satisfied cycle must stay supported (the
        # closure computes a greatest fixed point; a naive additive
        # worklist would drop it).
        repo = Repository([
            Package("a", depends=["b"]),
            Package("b", depends=["a"]),
            Package("e", depends=["a"]),
        ])
        footprints = {
            "a": _fp("read"),
            "b": _fp("write"),
            "e": _fp("read", "write", "socket"),
        }
        popcon = PopularityContest(100, {"a": 40, "b": 40, "e": 20})
        self._assert_identical(footprints, popcon, repo)

    def test_footprint_dep_missing_from_repository(self):
        # Regression: a dependency that carries its own footprint but
        # is absent from the repository must never gate its dependent —
        # the reference closure only invalidates on in-repository deps,
        # but the tracker used to add a hard edge for any dep in the
        # footprint universe (reference 0.8 vs tracker 0.0 at rank 1).
        repo = Repository([Package("a", depends=["ghost"])])
        footprints = {
            "a": _fp("read"),
            "ghost": _fp("write"),     # footprint-bearing, not in repo
        }
        popcon = PopularityContest(100, {"a": 80, "ghost": 20})
        self._assert_identical(footprints, popcon, repo)

    def test_poisoned_and_unknown_dependencies(self):
        repo = Repository([
            Package("a", depends=["outsider"]),  # repo pkg, no footprint
            Package("outsider"),
            Package("b", depends=["missing"]),   # dep not in repo
            Package("trivial"),
            Package("c", depends=["trivial"]),   # dep assumed supported
        ])
        footprints = {
            "a": _fp("read"),
            "b": _fp("write"),
            "c": _fp("read", "write"),
            "ghost": _fp("read"),                # pkg not in repo
            "trivial": Footprint.EMPTY,          # empty: assumed
        }
        popcon = PopularityContest(100, {"a": 30, "b": 30, "c": 20,
                                         "ghost": 10, "trivial": 10})
        self._assert_identical(footprints, popcon, repo)

    def test_study_sized_ecosystem(self, study):
        self._assert_identical(study.footprints, study.popcon,
                               study.repository)
