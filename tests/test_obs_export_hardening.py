"""Exporter hardening: label escaping, empty histograms, stability.

The golden file ``tests/golden/metrics.golden.prom`` pins the
historical output; the hardening here must be byte-invisible on every
metric the exporter has ever emitted, so these tests check both the
new behavior and the no-change property explicitly.
"""

import math

from repro.obs import (MetricsRegistry, escape_label_value,
                       format_sample, parse_metrics, render_metrics)


class TestEscapeLabelValue:
    def test_identity_on_plain_values(self):
        for value in ("0.5", "0.99", "syscall", "a-b_c.d", ""):
            assert escape_label_value(value) == value

    def test_escapes_backslash_quote_and_newline(self):
        assert escape_label_value('say "hi"') == 'say \\"hi\\"'
        assert escape_label_value("a\\b") == "a\\\\b"
        assert escape_label_value("a\nb") == "a\\nb"

    def test_backslash_escaped_before_quote(self):
        # The classic double-escape bug: \" must come out as \\\" (the
        # backslash escaped first), not \\" (quote escape eaten).
        assert escape_label_value('\\"') == '\\\\\\"'

    def test_combined_hostile_value_round_trips_shape(self):
        hostile = 'path="/tmp/x"\nline\\two'
        escaped = escape_label_value(hostile)
        assert "\n" not in escaped
        assert '\\"' in escaped and "\\\\" in escaped


class TestFormatSample:
    def test_bare_sample(self):
        assert format_sample("repro_x", {}, 42.0) == "repro_x 42"

    def test_labeled_sample_matches_historical_quantile_shape(self):
        line = format_sample("repro_t_seconds", {"quantile": "0.5"},
                             0.002)
        assert line == 'repro_t_seconds{quantile="0.5"} 0.002'

    def test_multiple_labels_preserve_given_order(self):
        line = format_sample("repro_x", {"b": "2", "a": "1"}, 1.0)
        assert line == 'repro_x{b="2",a="1"} 1'

    def test_label_values_are_escaped(self):
        line = format_sample("repro_x", {"path": 'a"b'}, 1.0)
        assert line == 'repro_x{path="a\\"b"} 1'

    def test_hostile_label_still_single_line_and_parseable(self):
        line = format_sample("repro_x", {"err": 'boom "\n\\'}, 3.0)
        assert "\n" not in line
        samples = parse_metrics(
            f"# repro-metrics-schema: 1\n{line}\n")
        assert list(samples.values()) == [3.0]


class TestZeroObservationHistograms:
    def test_empty_histogram_renders_nan_quantiles(self):
        registry = MetricsRegistry()
        registry.histogram("serve.request_seconds")  # never observed
        text = render_metrics(registry)
        assert ("# TYPE repro_serve_request_seconds summary"
                in text)
        assert ('repro_serve_request_seconds{quantile="0.5"} NaN'
                in text)
        assert "repro_serve_request_seconds_sum 0" in text
        assert "repro_serve_request_seconds_count 0" in text

    def test_empty_histogram_parses_back(self):
        registry = MetricsRegistry()
        registry.histogram("x.seconds")
        samples = parse_metrics(render_metrics(registry))
        assert math.isnan(
            samples['repro_x_seconds{quantile="0.5"}'])
        assert samples["repro_x_seconds_count"] == 0

    def test_observed_histogram_unchanged_by_hardening(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("x.seconds")
        for value in (0.001, 0.002, 0.004, 0.032):
            histogram.observe(value)
        text = render_metrics(registry)
        assert 'repro_x_seconds{quantile="0.5"} 0.002' in text
        assert "NaN" not in text


class TestGoldenStability:
    def test_historical_output_is_byte_identical(self):
        # The same registry shape as the checked-in golden file; the
        # hardening must not perturb a single byte of it.
        registry = MetricsRegistry()
        registry.counter("engine.binaries.analyzed").inc(3)
        registry.counter("engine.binaries.quarantined").inc(1)
        registry.counter("engine.binaries.submitted").inc(4)
        registry.counter("engine.cache.hits").inc(2)
        registry.gauge("engine.stage.analyze_seconds").set(1.5)
        registry.gauge("engine.stage.scan_seconds").set(0.125)
        histogram = registry.histogram("engine.analyze_task_seconds")
        for value in (0.001, 0.002, 0.004, 0.032):
            histogram.observe(value)
        with open("tests/golden/metrics.golden.prom",
                  encoding="utf-8") as handle:
            golden = handle.read()
        assert render_metrics(registry) == golden
