"""Golden parity: served bytes == direct library computation.

The serving layer's core promise is that putting HTTP in front of the
dataset changes *nothing* about the answers.  For every endpoint this
suite computes the payload twice — once through the full request
pipeline (:meth:`repro.serve.ServeApp.handle`) and once by calling the
endpoint's pure payload function directly — and compares the
**canonical JSON bytes**.  A second layer spot-checks the payload
functions against the raw :mod:`repro.metrics` / :mod:`repro.compat`
entry points the CLI uses, so the chain CLI == payload == HTTP is
pinned end to end.
"""

import json

import pytest

from repro.compat import SystemModel, evaluate_system
from repro.metrics import (completeness_curve, importance_table,
                           ranked, weighted_completeness)
from repro.serve import (ENDPOINTS_BY_NAME, Request, ServeApp,
                         SnapshotHolder, canonical_json)

# One representative request per endpoint: (name, method, query, body).
PARITY_CASES = [
    ("importance", "GET", {}, None),
    ("importance", "GET",
     {"dimension": "ioctl", "universe": "defined"}, None),
    ("importance", "GET", {"dimension": "all", "limit": "7"}, None),
    ("unweighted", "GET", {"dimension": "libc", "limit": "12"}, None),
    ("completeness", "POST", {},
     {"supported": ["zz_read", "zz_write"], "dimension": "syscall"}),
    ("completeness", "POST", {},
     {"supported": [], "ignore_empty": False, "suggestions": 3}),
    ("curve", "GET", {"dimension": "syscall"}, None),
    ("curve", "GET", {"dimension": "libc", "limit": "25"}, None),
    ("plan", "POST", {}, {"modified": ["zz_ioctl"], "limit": 4}),
    ("evaluate", "POST", {},
     {"name": "tinyos", "version": "0.1",
      "supported": ["zz_read"], "suggestions": 2}),
    ("stats", "GET", {}, None),
]


@pytest.fixture(scope="module")
def app(study):
    return ServeApp(SnapshotHolder(study.dataset))


def served_data(app, name, method, query, body):
    endpoint = ENDPOINTS_BY_NAME[name]
    raw = (json.dumps(body).encode() if body is not None else b"")
    response = app.handle(Request(method, endpoint.path,
                                  query=query, body=raw))
    assert response.status == 200, response.body
    return response.json_payload()["data"]


@pytest.mark.parametrize("name,method,query,body", PARITY_CASES,
                         ids=lambda v: repr(v)[:40])
def test_served_bytes_equal_direct_payload_bytes(
        app, study, name, method, query, body):
    endpoint = ENDPOINTS_BY_NAME[name]
    params = endpoint.normalize(query, body)
    direct = endpoint.payload(app.holder.current().dataset, params)
    served = served_data(app, name, method, query, body)
    assert canonical_json(served) == canonical_json(direct)


@pytest.mark.parametrize("name,method,query,body", PARITY_CASES,
                         ids=lambda v: repr(v)[:40])
def test_parity_survives_the_cache(app, study, name, method, query,
                                   body):
    # Second hit comes from the result cache; bytes must not change.
    first = served_data(app, name, method, query, body)
    second = served_data(app, name, method, query, body)
    assert canonical_json(first) == canonical_json(second)


class TestLibraryAnchors:
    """Payload functions against the raw CLI-path entry points."""

    def test_importance_table_matches_library(self, app, study):
        served = served_data(app, "importance", "GET", {}, None)
        table = importance_table(study.dataset)
        assert served["table"] == table
        assert served["ranked"][:5] == \
            [[api, value] for api, value in ranked(table)[:5]]

    def test_completeness_matches_evaluate_cli_math(self, app, study):
        supported = sorted({"zz_read", "zz_write"})
        served = served_data(app, "completeness", "POST", {},
                             {"supported": supported})
        expected = weighted_completeness(
            supported, study.footprints, study.popcon,
            study.repository)
        assert served["weighted_completeness"] == expected

    def test_curve_matches_library_pointwise(self, app, study):
        served = served_data(app, "curve", "GET", {}, None)
        curve = completeness_curve(study.dataset)
        assert served["total_points"] == len(curve)
        assert served["points"] == [
            [p.n_apis, p.api, p.completeness] for p in curve]

    def test_evaluate_matches_compat_layer(self, app, study):
        served = served_data(
            app, "evaluate", "POST", {},
            {"name": "tinyos", "version": "0.1",
             "supported": ["zz_read"], "suggestions": 2})
        model = SystemModel(name="tinyos", version="0.1",
                            supported=frozenset(["zz_read"]))
        evaluation = evaluate_system(model, study.dataset,
                                     suggestions=2)
        assert served["system"] == evaluation.system
        assert served["weighted_completeness"] == \
            evaluation.weighted_completeness
        assert served["suggested_apis"] == \
            list(evaluation.suggested_apis)

    def test_stats_matches_dataset_stats(self, app, study):
        served = served_data(app, "stats", "GET", {}, None)
        stats = study.dataset.stats()
        assert served["n_packages"] == stats.n_packages
        assert served["total_weight"] == stats.total_weight


def test_float_values_round_trip_exactly(app, study):
    # Canonical JSON uses repr-based float encoding; decoding the
    # served body must reproduce the library floats bit for bit.
    served = served_data(app, "importance", "GET", {}, None)
    table = importance_table(study.dataset)
    for api, value in table.items():
        assert served["table"][api] == value
