"""Serving from a ``.rsnap``: parity, provenance, and failure safety.

The serving layer must not care which codec a snapshot arrived in:
for every parity case a JSON-backed holder and a ``.rsnap``-backed
holder must produce identical canonical bytes.  Provenance does
surface — ``/readyz`` and ``/dataset/stats`` report the loaded
snapshot's format and fingerprint — and a corrupt binary snapshot
must leave the previous generation serving.
"""

import json

import pytest

from repro.dataset import dataset_to_json, footprints_fingerprint
from repro.serve import (ENDPOINTS_BY_NAME, Request, ServeApp,
                         SnapshotHolder, canonical_json)
from repro.store import StoreError, write_snapshot

from tests.test_serve_parity import PARITY_CASES, served_data


@pytest.fixture(scope="module")
def json_app(study):
    return ServeApp(SnapshotHolder(study.dataset))


@pytest.fixture(scope="module")
def rsnap_app(study, tmp_path_factory):
    """An app whose published snapshot was hot-reloaded from .rsnap."""
    path = tmp_path_factory.mktemp("rsnap") / "study.rsnap"
    write_snapshot(path, study.dataset)
    holder = SnapshotHolder(study.dataset)
    holder.reload_from_file(path)
    assert holder.current().source_format == "rsnap"
    return ServeApp(holder)


@pytest.mark.parametrize("name,method,query,body", PARITY_CASES,
                         ids=lambda v: repr(v)[:40])
def test_rsnap_served_bytes_equal_json_served_bytes(
        json_app, rsnap_app, name, method, query, body):
    from_json = served_data(json_app, name, method, query, body)
    from_rsnap = served_data(rsnap_app, name, method, query, body)
    if name == "stats":
        # Provenance is the one intentional difference.
        assert from_json.pop("snapshot")["format"] == "memory"
        assert from_rsnap.pop("snapshot")["format"] == "rsnap"
    assert canonical_json(from_json) == canonical_json(from_rsnap)


class TestProvenance:
    def test_readyz_reports_format_and_fingerprint(self, rsnap_app,
                                                   study):
        response = rsnap_app.handle(Request("GET", "/readyz"))
        payload = response.json_payload()
        assert payload["format"] == "rsnap"
        assert payload["fingerprint"] == \
            footprints_fingerprint(study.dataset)

    def test_memory_holder_reports_memory(self, json_app):
        response = json_app.handle(Request("GET", "/readyz"))
        assert response.json_payload()["format"] == "memory"

    def test_holder_stats_carry_format(self, rsnap_app, json_app):
        assert rsnap_app.holder.stats()["format"] == "rsnap"
        assert json_app.holder.stats()["format"] == "memory"

    def test_json_reload_reports_json(self, study, tmp_path):
        path = tmp_path / "study.json"
        path.write_text(dataset_to_json(study.dataset),
                        encoding="utf-8")
        holder = SnapshotHolder(study.dataset)
        holder.reload_from_file(path)
        assert holder.current().source_format == "json"

    def test_stats_payload_snapshot_block(self, rsnap_app, study):
        served = served_data(rsnap_app, "stats", "GET", {}, None)
        assert served["snapshot"] == {
            "format": "rsnap",
            "fingerprint": footprints_fingerprint(study.dataset)}


class TestReloadSafety:
    def test_rsnap_reload_preserves_generation_math(self, study,
                                                    tmp_path):
        path = tmp_path / "study.rsnap"
        write_snapshot(path, study.dataset)
        holder = SnapshotHolder(study.dataset)
        first = holder.generation
        snapshot = holder.reload_from_file(path)
        assert snapshot.generation == first + 1
        assert holder.reloads == 1

    def test_corrupt_rsnap_reload_keeps_old_snapshot(self, study,
                                                     tmp_path):
        path = tmp_path / "study.rsnap"
        write_snapshot(path, study.dataset)
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        path.write_bytes(bytes(data))
        holder = SnapshotHolder(study.dataset)
        before = holder.current()
        with pytest.raises(StoreError):
            holder.reload_from_file(path)
        assert holder.current() is before
        assert holder.ready()
        assert holder.failed_reloads == 1

    def test_corrupt_rsnap_maps_to_422_over_http(self, study,
                                                 tmp_path):
        path = tmp_path / "study.rsnap"
        write_snapshot(path, study.dataset)
        data = bytearray(path.read_bytes())
        data[-10] ^= 0x01
        path.write_bytes(bytes(data))
        app = ServeApp(SnapshotHolder(study.dataset))
        response = app.handle(Request(
            "POST", "/admin/reload",
            body=json.dumps({"path": str(path)}).encode()))
        # StoreError -> DatasetCodecError -> ValueError: bad request.
        assert response.status == 400
        assert app.holder.generation == 1

    def test_same_fingerprint_reload_refreshes_cached_stats(
            self, study, tmp_path):
        """Reloading the same corpus from .rsnap must not serve the
        stale cached provenance: the fingerprint-keyed cache can't
        distinguish the generations, so the reload clears it."""
        path = tmp_path / "study.rsnap"
        write_snapshot(path, study.dataset)
        app = ServeApp(SnapshotHolder(study.dataset))
        before = served_data(app, "stats", "GET", {}, None)
        assert before["snapshot"]["format"] == "memory"
        response = app.handle(Request(
            "POST", "/admin/reload",
            body=json.dumps({"path": str(path)}).encode()))
        assert response.status == 200
        after = served_data(app, "stats", "GET", {}, None)
        assert after["snapshot"]["format"] == "rsnap"
        assert after["snapshot"]["fingerprint"] == \
            before["snapshot"]["fingerprint"]

    def test_export_binary_then_reload_round_trips(self, study,
                                                   tmp_path):
        holder = SnapshotHolder(study.dataset)
        path = tmp_path / "export.rsnap"
        written = holder.export_to_file(path, format="binary")
        assert written == path.stat().st_size
        holder.reload_from_file(path)
        current = holder.current()
        assert current.source_format == "rsnap"
        assert dataset_to_json(current.dataset) == \
            dataset_to_json(study.dataset)
