"""Time-travel serving and the multi-tenant snapshot registry.

Four promises under test: (1) ``?release=k`` answers are byte-identical
to calling the library on ``series.at(k)`` for every dataset endpoint,
and the series-scope endpoints (``/v1/trend/*``, ``/v1/release/diff``,
``/v1/series/stats``) match their payload functions over the whole
train; (2) every bad coordinate — unknown release, unknown tenant,
``release=`` against a plain snapshot, series scope against a plain
snapshot — is a 400 ``bad_request`` envelope, never a 500; (3) a
failed series reload keeps the old generation published and readiness
restored; (4) a multi-worker SIGHUP over a ``.rser`` keeps every
worker's ``/readyz`` release provenance in lockstep.
"""

import json
import os
import threading
import time

import pytest

from repro.metrics import importance_table
from repro.serve import (DEFAULT_TENANT, ENDPOINTS_BY_NAME, Request,
                         SeriesHolder, ServeApp, SnapshotHolder,
                         SnapshotRegistry, WorkerSupervisor,
                         canonical_json, holder_from_file)
from repro.series import load_series
from repro.synth import EvolutionConfig, evolve_corpus
from repro.synth.paper import PaperScaleConfig
from repro.store import StoreError


N_RELEASES = 4


def build_train(tmp_path_factory, seed, n_releases=N_RELEASES):
    from repro.series import write_series
    ecosystem = evolve_corpus(EvolutionConfig(
        n_releases=n_releases,
        base=PaperScaleConfig.at_scale(0.005, seed=seed), seed=seed))
    path = tmp_path_factory.mktemp("registry") / f"train{seed}.rser"
    write_series(path, ecosystem.datasets())
    return path


@pytest.fixture(scope="module")
def series_path(tmp_path_factory):
    return build_train(tmp_path_factory, seed=11)


@pytest.fixture(scope="module")
def series(series_path):
    return load_series(series_path)


@pytest.fixture(scope="module")
def app(series_path):
    return ServeApp(SeriesHolder.from_file(series_path))


def handle(app, method, path, query=None, body=None):
    raw = json.dumps(body).encode() if body is not None else b""
    return app.handle(Request(method, path, query=dict(query or {}),
                              body=raw))


def served(app, method, path, query=None, body=None):
    response = handle(app, method, path, query=query, body=body)
    assert response.status == 200, response.body
    return response.json_payload()


# One representative request per dataset-scope endpoint.
DATASET_CASES = [
    ("importance", "GET", {}, None),
    ("importance", "GET", {"dimension": "ioctl", "limit": "9"}, None),
    ("unweighted", "GET", {"dimension": "libc"}, None),
    ("completeness", "POST", {},
     {"supported": ["open", "close", "read", "write"]}),
    ("curve", "GET", {"limit": "30"}, None),
    ("plan", "POST", {}, {"modified": ["open"], "limit": 3}),
    ("evaluate", "POST", {},
     {"name": "tinyos", "version": "1", "supported": ["open"],
      "suggestions": 2}),
    ("stats", "GET", {}, None),
]

SERIES_CASES = [
    ("series_stats", "GET", {}, None),
    ("trend_importance", "GET", {"limit": "3"}, None),
    ("trend_importance", "GET",
     {"apis": "open,close", "weighted": "false"}, None),
    ("trend_completeness", "POST", {"from": "1"},
     {"supported": ["open", "close", "read"]}),
    ("release_diff", "GET",
     {"from": "0", "to": str(N_RELEASES - 1)}, None),
    ("release_diff", "GET",
     {"from": "1", "to": "2", "weighted": "true",
      "noise_floor": "0.01"}, None),
]


class TestTimeTravelParity:
    @pytest.mark.parametrize("release", range(N_RELEASES))
    @pytest.mark.parametrize("name,method,query,body", DATASET_CASES,
                             ids=lambda v: repr(v)[:40])
    def test_release_pinned_answers_match_library(
            self, app, series, release, name, method, query, body):
        endpoint = ENDPOINTS_BY_NAME[name]
        query = dict(query, release=str(release))
        envelope = served(app, method, endpoint.path, query, body)
        params = endpoint.normalize(query, body)
        holder = app.holder
        direct = endpoint.payload(
            holder.current().dataset_at(release), params)
        assert canonical_json(envelope["data"]) == \
            canonical_json(direct)
        assert envelope["release"] == release
        assert envelope["fingerprint"] == \
            series.fingerprints[release]

    @pytest.mark.parametrize("name,method,query,body", SERIES_CASES,
                             ids=lambda v: repr(v)[:40])
    def test_series_endpoints_match_library(self, app, series, name,
                                            method, query, body):
        endpoint = ENDPOINTS_BY_NAME[name]
        envelope = served(app, method, endpoint.path, query, body)
        params = endpoint.normalize(query, body)
        direct = endpoint.payload(series, params)
        assert canonical_json(envelope["data"]) == \
            canonical_json(direct)
        # Series-scope answers carry the train's fingerprint, not a
        # single release's, and never a release index.
        assert envelope["fingerprint"] == series.series_fingerprint
        assert "release" not in envelope

    def test_unversioned_queries_serve_the_head(self, app, series):
        envelope = served(app, "GET", "/v1/importance")
        head = series.n_releases - 1
        assert envelope["release"] == head
        assert envelope["fingerprint"] == series.fingerprints[head]
        assert envelope["data"]["table"] == \
            importance_table(series.at(head))

    def test_releases_cache_independently(self, app, series):
        for release in (0, 1):
            first = served(app, "GET", "/v1/importance",
                           {"release": str(release)})
            again = served(app, "GET", "/v1/importance",
                           {"release": str(release)})
            assert again["cached"] is True
            assert again["data"] == first["data"]
            assert again["fingerprint"] == \
                series.fingerprints[release]
        assert served(app, "GET", "/v1/importance",
                      {"release": "0"})["data"] != \
            served(app, "GET", "/v1/importance",
                   {"release": "1"})["data"] or \
            series.fingerprints[0] != series.fingerprints[1]


class TestCoordinateErrors:
    @pytest.fixture(scope="class")
    def plain_app(self, study):
        return ServeApp(SnapshotHolder(study.dataset))

    def assert_bad_request(self, response, fragment):
        assert response.status == 400, response.body
        error = response.json_payload()["error"]
        assert error["class"] == "bad_request"
        assert error["status"] == 400
        assert fragment in error["message"]

    @pytest.mark.parametrize("release", ["99", "-1", "x", "1.5"])
    def test_unknown_release_is_a_400_envelope(self, app, release):
        response = handle(app, "GET", "/v1/importance",
                          {"release": release})
        self.assert_bad_request(response, "release")

    def test_release_out_of_series_range(self, app):
        response = handle(app, "GET", "/v1/release/diff",
                          {"from": "0", "to": "44"})
        self.assert_bad_request(response, "unknown release 44")

    def test_release_against_plain_snapshot(self, plain_app):
        response = handle(plain_app, "GET", "/v1/importance",
                          {"release": "0"})
        self.assert_bad_request(response, "release= is not supported")

    def test_series_scope_against_plain_snapshot(self, plain_app):
        for path in ("/v1/series/stats", "/v1/trend/importance"):
            response = handle(plain_app, "GET", path)
            self.assert_bad_request(response,
                                    "need a release train")

    def test_unknown_tenant(self, app):
        response = handle(app, "GET", "/v1/importance",
                          {"tenant": "nope"})
        self.assert_bad_request(response, "unknown tenant 'nope'")

    def test_empty_trend_apis(self, app):
        response = handle(app, "GET", "/v1/trend/importance",
                          {"apis": " , "})
        self.assert_bad_request(response, "at least one API")

    def test_release_diff_requires_from_and_to(self, app):
        response = handle(app, "GET", "/v1/release/diff",
                          {"from": "0"})
        self.assert_bad_request(response, "'from' and 'to'")


class TestMultiTenant:
    @pytest.fixture(scope="class")
    def multi_app(self, study, series_path):
        registry = SnapshotRegistry()
        registry.add(DEFAULT_TENANT, SnapshotHolder(study.dataset))
        registry.add("train", holder_from_file(series_path))
        return ServeApp(registry)

    def test_tenants_answer_independently(self, multi_app, study,
                                          series):
        default = served(multi_app, "GET", "/v1/importance")
        train = served(multi_app, "GET", "/v1/importance",
                       {"tenant": "train", "release": "0"})
        assert "tenant" not in default
        assert "release" not in default
        assert train["tenant"] == "train"
        assert train["release"] == 0
        assert train["data"]["table"] == \
            importance_table(series.at(0))
        assert default["data"]["table"] == \
            importance_table(study.dataset)

    def test_series_scope_routes_by_tenant(self, multi_app, series):
        envelope = served(multi_app, "GET", "/v1/series/stats",
                          {"tenant": "train"})
        assert envelope["tenant"] == "train"
        assert envelope["data"]["series_fingerprint"] == \
            series.series_fingerprint
        # ...while the default tenant still rejects series scope.
        response = handle(multi_app, "GET", "/v1/series/stats")
        assert response.status == 400

    def test_readyz_reports_every_tenant(self, multi_app, series):
        payload = served_readyz(multi_app)
        assert payload["ready"] is True
        tenants = payload["tenants"]
        assert set(tenants) == {DEFAULT_TENANT, "train"}
        assert tenants["train"]["format"] == "rser"
        assert tenants["train"]["releases"] == series.n_releases
        assert tenants[DEFAULT_TENANT]["format"] == "memory"
        # Top-level keys keep describing the default tenant.
        assert payload["fingerprint"] == \
            tenants[DEFAULT_TENANT]["fingerprint"]

    def test_invalid_tenant_names_rejected_at_registration(self):
        registry = SnapshotRegistry()
        with pytest.raises(ValueError, match="invalid tenant name"):
            registry.add("bad name", object())
        with pytest.raises(ValueError, match="invalid tenant name"):
            registry.add("", object())

    def test_duplicate_tenant_rejected(self, study):
        registry = SnapshotRegistry()
        holder = SnapshotHolder(study.dataset)
        registry.add("a", holder)
        with pytest.raises(ValueError, match="already registered"):
            registry.add("a", holder)


def served_readyz(app):
    response = handle(app, "GET", "/readyz")
    assert response.status == 200, response.body
    return response.json_payload()


class TestSeriesReload:
    @pytest.fixture()
    def reload_app(self, tmp_path_factory):
        path = build_train(tmp_path_factory, seed=21)
        return path, ServeApp(SeriesHolder.from_file(path))

    def test_failed_reload_keeps_the_old_generation(self, reload_app,
                                                    tmp_path):
        path, app = reload_app
        before = served_readyz(app)
        garbage = tmp_path / "garbage.rser"
        garbage.write_bytes(path.read_bytes()[:200])
        with pytest.raises(StoreError):
            app.reload_from_path(garbage)
        after = served_readyz(app)
        assert after["generation"] == before["generation"] == 1
        assert after["fingerprint"] == before["fingerprint"]
        assert after["ready"] is True
        assert app.holder.failed_reloads == 1
        # Queries keep answering from the surviving generation.
        envelope = served(app, "GET", "/v1/series/stats")
        assert envelope["generation"] == 1

    def test_corrupting_the_source_fails_sighup_reload(
            self, reload_app):
        path, app = reload_app
        original = path.read_bytes()
        flipped = bytearray(original)
        flipped[len(flipped) // 2] ^= 0x40
        path.write_bytes(bytes(flipped))
        try:
            with pytest.raises(StoreError):
                app.reload_from_source()
        finally:
            path.write_bytes(original)
        assert app.holder.generation == 1
        assert app.holder.failed_reloads == 1
        published = app.reload_from_source()
        assert app.holder.generation == 2
        assert published[DEFAULT_TENANT].generation == 2

    def test_successful_reload_swaps_the_train(self, reload_app,
                                               tmp_path_factory):
        path, app = reload_app
        bigger = build_train(tmp_path_factory, seed=22,
                             n_releases=N_RELEASES + 2)
        old_fingerprint = served_readyz(app)["fingerprint"]
        snapshot = app.reload_from_path(bigger)
        assert snapshot.generation == 2
        payload = served_readyz(app)
        assert payload["generation"] == 2
        assert payload["releases"] == N_RELEASES + 2
        assert payload["fingerprint"] != old_fingerprint
        envelope = served(app, "GET", "/v1/importance",
                          {"release": str(N_RELEASES + 1)})
        assert envelope["release"] == N_RELEASES + 1

    def test_hammer_during_reload_never_tears(self, reload_app,
                                              tmp_path_factory):
        path, app = reload_app
        other = build_train(tmp_path_factory, seed=23)
        valid = {load_series(path).series_fingerprint:
                 load_series(path).fingerprints,
                 load_series(other).series_fingerprint:
                 load_series(other).fingerprints}
        stop = threading.Event()
        failures = []

        def hammer():
            while not stop.is_set():
                for release in ("0", str(N_RELEASES - 1)):
                    response = handle(app, "GET", "/v1/importance",
                                      {"release": release})
                    if response.status != 200:
                        failures.append(response.body)
                        continue
                    envelope = response.json_payload()
                    chain = valid.get(served_series_fp(envelope,
                                                       valid))
                    if chain is None or envelope["fingerprint"] \
                            not in chain:
                        failures.append(envelope)

        threads = [threading.Thread(target=hammer)
                   for _ in range(4)]
        for thread in threads:
            thread.start()
        sources = [other, path] * 3
        for source in sources:
            app.reload_from_path(source)
            time.sleep(0.02)
        stop.set()
        for thread in threads:
            thread.join()
        assert not failures
        assert app.holder.generation == 1 + len(sources)


def served_series_fp(envelope, valid):
    """Which train a release-pinned answer came from."""
    for series_fp, chain in valid.items():
        if envelope["fingerprint"] in chain:
            return series_fp
    return None


@pytest.mark.skipif(not hasattr(os, "fork"),
                    reason="pre-fork serving needs fork")
class TestSeriesFleet:
    """SIGHUP fan-out over a .rser: release provenance in lockstep."""

    @pytest.fixture(scope="class")
    def train_path(self, tmp_path_factory):
        return build_train(tmp_path_factory, seed=31)

    @pytest.fixture(scope="class")
    def fleet(self, train_path):
        supervisor = WorkerSupervisor(
            train_path, workers=2, backoff_base_seconds=0.05,
            healthy_after_seconds=0.5)
        with supervisor:
            yield supervisor

    def test_every_worker_serves_the_same_train(self, fleet,
                                                train_path):
        from tests.test_serve_workers import per_worker
        series = load_series(train_path)
        answers = per_worker(fleet, "/readyz")
        payloads = [json.loads(body) for _, _, body in
                    answers.values()]
        assert len(payloads) == 2
        for payload in payloads:
            assert payload["format"] == "rser"
            assert payload["releases"] == series.n_releases
            assert payload["fingerprint"] == \
                series.series_fingerprint
            assert payload["release_fingerprints"] == \
                list(series.fingerprints)

    def test_sighup_keeps_release_provenance_in_lockstep(
            self, fleet, train_path, tmp_path_factory):
        from tests.test_serve_workers import fetch, per_worker
        original = train_path.read_bytes()
        replacement = build_train(tmp_path_factory, seed=32,
                                  n_releases=N_RELEASES + 1)
        new_series = load_series(replacement)
        try:
            train_path.write_bytes(replacement.read_bytes())
            assert fleet.reload_all() == 2
            deadline = time.monotonic() + 30.0
            while True:
                answers = per_worker(fleet, "/readyz")
                payloads = [json.loads(body) for _, _, body in
                            answers.values()]
                if all(p.get("generation") == 2 for p in payloads):
                    break
                assert time.monotonic() < deadline, payloads
                time.sleep(0.1)
            for payload in payloads:
                assert payload["releases"] == N_RELEASES + 1
                assert payload["release_fingerprints"] == \
                    list(new_series.fingerprints)
            # Time-travel answers agree fleet-wide.
            status, _, body = fetch(
                fleet, "GET", "/v1/importance?release=0")
            assert status == 200
            envelope = json.loads(body)
            assert envelope["release"] == 0
            assert envelope["fingerprint"] == \
                new_series.fingerprints[0]
        finally:
            train_path.write_bytes(original)
            fleet.reload_all()
            deadline = time.monotonic() + 30.0
            while True:
                answers = per_worker(fleet, "/readyz")
                payloads = [json.loads(body) for _, _, body in
                            answers.values()]
                if all(p.get("generation") == 3 for p in payloads):
                    break
                assert time.monotonic() < deadline, payloads
                time.sleep(0.1)
