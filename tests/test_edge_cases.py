"""Edge-case sweep across small behaviours not covered elsewhere."""

import pytest

from repro.analysis.database import AnalysisDatabase
from repro.analysis.footprint import Footprint
from repro.metrics.ranking import completeness_curve, stages
from repro.packages import PopularityContest
from repro.reports.text import render_series
from repro.synth import profiles as P


class TestStagesEdgeCases:
    def test_empty_curve(self):
        assert stages([]) == []

    def test_unreachable_threshold_uses_last_point(self):
        curve = completeness_curve(
            {"p": Footprint.build(syscalls=["read"])},
            PopularityContest(10, {"p": 5}))
        result = stages(curve, thresholds=(0.5, 0.99, 2.0))
        assert result[-1].end == curve[-1].n_apis

    def test_single_api_curve(self):
        curve = completeness_curve(
            {"p": Footprint.build(syscalls=["read"])},
            PopularityContest(10, {"p": 5}))
        assert len(curve) == 1
        assert curve[0].api == "read"
        assert curve[0].completeness == pytest.approx(1.0)

    def test_empty_footprints_curve(self):
        assert completeness_curve({}, PopularityContest(10)) == []


class TestRenderSeriesEdgeCases:
    def test_all_zero_series(self):
        text = render_series([0.0, 0.0, 0.0], width=8, height=3)
        assert "y: 0.." in text

    def test_single_value(self):
        assert render_series([0.5], width=4, height=2)

    def test_width_larger_than_series(self):
        text = render_series([1.0, 0.0], width=16, height=3)
        assert text.count("\n") >= 3


class TestProfileHelpers:
    def test_band_of_syscall_total_partition(self):
        from repro.syscalls.table import ALL_NAMES
        bands = {"indispensable": 0, "mid": 0, "low": 0, "unused": 0}
        for name in ALL_NAMES:
            bands[P.band_of_syscall(name)] += 1
        assert sum(bands.values()) == len(ALL_NAMES)
        assert bands["unused"] == 18

    def test_template_weights_normalized(self):
        weights = P.template_weights()
        assert sum(w for _, w in weights) == pytest.approx(1.0)

    def test_libc_band_plan_covers_catalogue(self):
        from repro.libc import symbols as LS
        plan = P.libc_band_plan()
        assert set(plan) == {s.name for s in LS.LIBC_SYMBOLS}
        assert set(plan.values()) <= {"t100", "t50", "t10", "t1",
                                      "t0"}

    def test_band_caps_respected(self):
        """No symbol whose closure touches a low-band syscall may sit
        in the top band."""
        from repro.libc import symbols as LS
        plan = P.libc_band_plan()
        closure = LS.syscall_footprint_closure()
        for name, band in plan.items():
            if band != "t100":
                continue
            for syscall_name in closure.get(name, ()):
                assert P.band_of_syscall(syscall_name) == (
                    "indispensable"), (name, syscall_name)


class TestDatabaseEdgeCases:
    def test_unknown_package_footprint_empty(self):
        with AnalysisDatabase() as db:
            assert db.package_footprint("ghost").is_empty

    def test_unknown_export_footprint_empty(self):
        with AnalysisDatabase() as db:
            footprint = db.export_footprint("libghost.so", "fn")
            assert footprint.is_empty

    def test_duplicate_package_insert_ignored(self):
        with AnalysisDatabase() as db:
            db.add_package("p")
            db.add_package("p")
            assert db.row_counts()["packages"] == 1


class TestVariantProbsSanity:
    def test_all_probabilities_in_range(self):
        for name, value in P.VARIANT_IMPORT_PROBS.items():
            assert 0.0 <= value <= 1.0, name

    def test_interpreter_mix_sums_to_one(self):
        assert sum(P.INTERPRETER_MIX.values()) == pytest.approx(
            1.0, abs=0.01)

    def test_base_and_common_disjoint(self):
        assert not set(P.BASE_LIBC_IMPORTS) & set(
            P.COMMON_LIBC_IMPORTS)
