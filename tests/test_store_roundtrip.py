"""Property-based snapshot equivalence: three paths, one answer.

Drives randomized ecosystems (reusing the adversarial generator from
``test_dataset_equivalence`` — dependency cycles, ghost dependencies,
unmeasured packages, empty footprints, zero-weight packages) through
the snapshot store and asserts the strongest contract the subsystem
claims:

* ``JSON -> .rsnap -> JSON`` is **byte-identical** for every corpus
  the generator can produce;
* every metric — importance, weighted completeness, the completeness
  curve, the advisor coverage plan — is **bit-for-bit equal** across
  the eager-JSON path, the mmap-lazy :class:`SnapshotDataset` path,
  and the legacy :mod:`repro.dataset.reference` implementations.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st

from tests.test_dataset_equivalence import _SYSCALLS, ecosystems

from repro.compat import coverage_plan
from repro.dataset import (Dataset, dataset_from_json,
                           dataset_to_json, reference)
from repro.dataset.dimensions import ALL_DIMENSIONS
from repro.metrics import (completeness_curve, importance_table,
                           weighted_completeness)
from repro.store import load_snapshot_bytes, snapshot_to_bytes

_SETTINGS = settings(max_examples=60, deadline=None)


def _three_ways(footprints, popcon, repository):
    """eager JSON decode, mmap-lazy snapshot, and the source dataset."""
    source = Dataset(footprints, popcon, repository)
    text = dataset_to_json(source)
    eager = dataset_from_json(text, popcon, repository)
    lazy = load_snapshot_bytes(snapshot_to_bytes(source),
                               popcon=popcon, repository=repository)
    return source, eager, lazy


class TestByteIdentity:
    @_SETTINGS
    @given(eco=ecosystems())
    def test_json_rsnap_json_round_trip(self, eco):
        footprints, popcon, repository, _ = eco
        source = Dataset(footprints, popcon, repository)
        blob = snapshot_to_bytes(source)
        assert dataset_to_json(load_snapshot_bytes(blob)) == \
            dataset_to_json(source)

    @_SETTINGS
    @given(eco=ecosystems())
    def test_rsnap_encoding_is_deterministic(self, eco):
        footprints, popcon, repository, _ = eco
        source = Dataset(footprints, popcon, repository)
        assert snapshot_to_bytes(source) == snapshot_to_bytes(source)


class TestMetricEquality:
    @_SETTINGS
    @given(eco=ecosystems(), dimension=st.sampled_from(ALL_DIMENSIONS))
    def test_importance_three_ways(self, eco, dimension):
        footprints, popcon, repository, _ = eco
        source, eager, lazy = _three_ways(footprints, popcon,
                                          repository)
        expected = reference.importance_table(footprints, popcon,
                                              dimension)
        assert importance_table(source, dimension=dimension) == expected
        assert importance_table(eager, dimension=dimension) == expected
        assert importance_table(lazy, dimension=dimension) == expected

    @_SETTINGS
    @given(eco=ecosystems(), ignore_empty=st.booleans())
    def test_weighted_completeness_three_ways(self, eco,
                                              ignore_empty):
        footprints, popcon, repository, supported = eco
        source, eager, lazy = _three_ways(footprints, popcon,
                                          repository)
        expected = reference.weighted_completeness(
            supported, footprints, popcon, repository,
            ignore_empty=ignore_empty)
        for dataset in (source, eager, lazy):
            assert weighted_completeness(
                supported, dataset,
                ignore_empty=ignore_empty) == expected

    @_SETTINGS
    @given(eco=ecosystems())
    def test_completeness_curve_three_ways(self, eco):
        footprints, popcon, repository, _ = eco
        source, eager, lazy = _three_ways(footprints, popcon,
                                          repository)
        expected = reference.completeness_curve(footprints, popcon,
                                                repository)
        assert completeness_curve(source) == expected
        assert completeness_curve(eager) == expected
        assert completeness_curve(lazy) == expected

    @_SETTINGS
    @given(eco=ecosystems(), modified=st.lists(
        st.sampled_from(_SYSCALLS), unique=True, min_size=1,
        max_size=4))
    def test_advisor_plan_three_ways(self, eco, modified):
        footprints, popcon, repository, _ = eco
        source, eager, lazy = _three_ways(footprints, popcon,
                                          repository)
        expected = coverage_plan(modified, source, popcon)
        assert coverage_plan(modified, eager, popcon) == expected
        assert coverage_plan(modified, lazy, popcon) == expected

    @_SETTINGS
    @given(eco=ecosystems())
    def test_embedded_bindings_equal_explicit(self, eco):
        """A self-contained snapshot (embedded POPC/DEPS) answers the
        same as one rebound onto the original objects."""
        footprints, popcon, repository, supported = eco
        source = Dataset(footprints, popcon, repository)
        blob = snapshot_to_bytes(source)
        explicit = load_snapshot_bytes(blob, popcon=popcon,
                                       repository=repository)
        embedded = load_snapshot_bytes(blob)
        assert embedded.weights == explicit.weights
        assert weighted_completeness(supported, embedded) == \
            weighted_completeness(supported, explicit)
