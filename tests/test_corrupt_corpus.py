"""Corrupt-corpus regression suite: fault injection end to end.

A repository seeded with every :mod:`repro.synth.corruptor` mutation
class must complete analysis on every executor backend with identical
footprints and identical quarantine sets — never an abort — and a
warm-cache rerun must skip the known-bad bytes entirely.
"""

import functools
import types

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import AnalysisPipeline
from repro.elf.reader import ElfReader
from repro.elf.structs import ElfFormatError
from repro.engine import AnalysisEngine, EngineConfig, MemoryCache
from repro.study import Study
from repro.synth import (
    CORRUPT_PACKAGE,
    DECODE_MUTATIONS,
    MUTATIONS,
    build_ecosystem,
    corrupt,
    inject_corrupt_package,
)
from repro.synth.codegen import BinarySpec, FunctionSpec, generate_binary


@functools.lru_cache(maxsize=None)
def _seed_image() -> bytes:
    spec = BinarySpec(
        name="seed",
        functions=[FunctionSpec(
            name="main", direct_syscalls=("read", "exit_group"))],
        needed=(), entry_function="main")
    return generate_binary(spec)


def _corrupted_ecosystem(tiny_config):
    ecosystem = build_ecosystem(tiny_config)
    inject_corrupt_package(ecosystem.repository, seed=0)
    return ecosystem


def _run(ecosystem, engine=None):
    return AnalysisPipeline(ecosystem.repository,
                            ecosystem.interpreters,
                            engine=engine).run()


class TestCorruptCorpus:
    @pytest.fixture(scope="class")
    def serial_result(self, tiny_config):
        return _run(_corrupted_ecosystem(tiny_config))

    def test_every_mutation_class_quarantined(self, serial_result):
        quarantined = {artifact for package, artifact
                       in serial_result.quarantined
                       if package == CORRUPT_PACKAGE}
        assert quarantined == {f"bin/corrupt-{name}"
                               for name in MUTATIONS}
        by_artifact = {f.artifact: f for f in serial_result.failures}
        for name in MUTATIONS:
            failure = by_artifact[f"bin/corrupt-{name}"]
            expected = ("decode" if name in DECODE_MUTATIONS
                        else "format")
            assert failure.error_class == expected, name

    def test_corrupt_package_footprint_empty(self, serial_result):
        # Quarantined binaries contribute nothing to footprints.
        footprint = serial_result.package_footprints[CORRUPT_PACKAGE]
        assert footprint.is_empty

    @pytest.mark.parametrize("backend,jobs", [
        ("thread", 2),
        ("process", 2),
    ])
    def test_backends_agree_on_quarantine_and_footprints(
            self, tiny_config, serial_result, backend, jobs):
        engine = AnalysisEngine(EngineConfig(jobs=jobs,
                                             backend=backend))
        result = _run(_corrupted_ecosystem(tiny_config), engine)
        assert result.quarantined == serial_result.quarantined
        assert ([(f.package, f.artifact, f.error_class, f.stage)
                 for f in result.failures]
                == [(f.package, f.artifact, f.error_class, f.stage)
                    for f in serial_result.failures])
        assert (result.package_footprints
                == serial_result.package_footprints)
        assert (result.binary_footprints
                == serial_result.binary_footprints)

    def test_warm_cache_skips_known_bad_bytes(self, tiny_config):
        cache = MemoryCache()
        engine = AnalysisEngine(cache=cache)
        cold = _run(_corrupted_ecosystem(tiny_config), engine)
        assert cold.engine_stats.negative_cache_stores == len(MUTATIONS)

        warm = _run(_corrupted_ecosystem(tiny_config), engine)
        stats = warm.engine_stats
        assert stats.binaries_analyzed == 0
        assert stats.negative_cache_hits == len(MUTATIONS)
        assert warm.quarantined == cold.quarantined
        assert warm.package_footprints == cold.package_footprints

    def test_strict_aborts_on_corrupt_corpus(self, tiny_config):
        engine = AnalysisEngine(EngineConfig(strict=True))
        with pytest.raises(ElfFormatError):
            _run(_corrupted_ecosystem(tiny_config), engine)


class TestFailureReport:
    def test_lists_each_quarantined_binary(self, tiny_config):
        result = _run(_corrupted_ecosystem(tiny_config))
        fake_study = types.SimpleNamespace(result=result)
        output = Study.failure_report(fake_study)
        assert len(output.data) == len(MUTATIONS)
        for failure in result.failures:
            assert failure.artifact in output.rendered
            assert failure.error_class in output.rendered

    def test_clean_run_renders_empty_quarantine(self, result):
        fake_study = types.SimpleNamespace(result=result)
        output = Study.failure_report(fake_study)
        assert output.data == []
        assert "none" in output.rendered


class TestCorruptorDeterminism:
    @pytest.mark.parametrize("mutation", sorted(MUTATIONS))
    def test_same_seed_same_bytes(self, mutation):
        image = _seed_image()
        assert (corrupt(image, mutation, seed=3)
                == corrupt(image, mutation, seed=3))

    def test_unknown_mutation_rejected(self):
        with pytest.raises(ValueError, match="unknown mutation"):
            corrupt(_seed_image(), "no-such-mutation")


class TestTruncationProperty:
    @given(cut=st.integers(min_value=0))
    @settings(max_examples=120, deadline=None)
    def test_reader_raises_only_elf_format_error(self, cut):
        """Any truncation either parses or raises ElfFormatError —
        never struct.error, IndexError, or friends (the contract the
        engine's format bucket depends on)."""
        image = _seed_image()
        cut = cut % len(image)
        try:
            ElfReader(image[:cut])
        except ElfFormatError:
            pass
