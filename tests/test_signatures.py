"""Footprint-signature index tests (§6)."""

from repro.analysis.footprint import Footprint
from repro.analysis.signatures import SignatureIndex


def _fp(*syscalls):
    return Footprint.build(syscalls=syscalls)


def _index():
    return SignatureIndex({
        "alpha": _fp("read", "write"),
        "beta": _fp("read", "write"),          # shares alpha's set
        "gamma": _fp("read", "write", "socket"),
        "delta": _fp("read", "write", "socket", "bind", "listen"),
        "empty": Footprint.EMPTY,              # excluded
    })


class TestStatistics:
    def test_len_excludes_empty(self):
        assert len(_index()) == 4

    def test_distinct_count(self):
        assert _index().distinct_count() == 3

    def test_unique_count(self):
        assert _index().unique_count() == 2  # gamma, delta

    def test_signature_of(self):
        index = _index()
        assert index.signature_of("gamma") == frozenset(
            {"read", "write", "socket"})
        assert index.signature_of("missing") == frozenset()

    def test_ambiguity_report(self):
        report = _index().ambiguity_report()
        assert len(report) == 1
        signature, packages = report[0]
        assert packages == ["alpha", "beta"]


class TestIdentification:
    def test_exact_unique(self):
        result = _index().identify({"read", "write", "socket"})
        assert result.exact == "gamma"
        assert result.identified

    def test_exact_ambiguous(self):
        result = _index().identify({"read", "write"})
        assert result.exact is None
        assert result.exact_matches == ("alpha", "beta")

    def test_partial_observation_candidates(self):
        # A trace that only saw read+socket: gamma covers with 1
        # extra call, delta with 3 — gamma ranks first.
        result = _index().identify({"read", "socket"})
        assert result.exact is None
        assert result.candidates[0] == "gamma"
        assert "delta" in result.candidates
        assert "alpha" not in result.candidates  # does not cover

    def test_unknown_syscall_no_candidates(self):
        result = _index().identify({"read", "kexec_load"})
        assert result.candidates == ()

    def test_empty_observation(self):
        result = _index().identify(set())
        assert result.exact is None
        assert result.candidates == ()


class TestOnMeasuredArchive:
    def test_stats_match_result_view(self, study):
        index = study.signature_index()
        distinct, unique = study.result.syscall_signature_stats()
        # result counts empty-footprint packages as one signature class
        assert abs(index.distinct_count() - distinct) <= 1
        assert abs(index.unique_count() - unique) <= 1

    def test_unique_packages_identifiable(self, study):
        index = study.signature_index()
        identified = 0
        for package in list(study.footprints)[:80]:
            signature = index.signature_of(package)
            if not signature:
                continue
            result = index.identify(signature)
            if result.exact == package:
                identified += 1
        assert identified >= 20

    def test_dynamic_trace_identifies_runner(self, study):
        """§6's application end-to-end: observe a run, identify the
        program from its syscalls."""
        index = study.signature_index()
        trace = study.trace_package("qemu-user")
        result = index.identify(trace.syscall_set())
        assert result.candidates
        assert result.candidates[0] == "qemu-user"
