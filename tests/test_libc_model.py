"""Tests for the libc catalogue, variants, and runtime models."""

import pytest

from repro.libc import runtime as RT
from repro.libc import symbols as LS
from repro.libc.variants import (
    DIETLIBC,
    EGLIBC,
    MUSL,
    UCLIBC,
    VARIANTS,
    normalize_footprint,
    normalize_symbol,
)
from repro.syscalls.table import ALL_NAMES


class TestSymbolCatalogue:
    def test_size_near_paper_count(self):
        # paper: 1,274 exported global function symbols
        assert 1200 <= len(LS.LIBC_SYMBOLS) <= 1450

    def test_names_unique(self):
        assert len({s.name for s in LS.LIBC_SYMBOLS}) == len(
            LS.LIBC_SYMBOLS)

    def test_tiers_valid(self):
        assert all(s.tier in LS.TIERS for s in LS.LIBC_SYMBOLS)

    @pytest.mark.parametrize("name", [
        "printf", "malloc", "memcpy", "open", "ioctl", "fork",
        "__libc_start_main", "__cxa_finalize", "memalign", "stpcpy",
        "secure_getenv", "__uflow", "_IO_getc", "syscall",
    ])
    def test_well_known_symbols_present(self, name):
        assert name in LS.BY_NAME

    def test_syscall_mappings_use_real_syscalls(self):
        for symbol in LS.LIBC_SYMBOLS:
            for name in symbol.syscalls:
                assert name in ALL_NAMES, (symbol.name, name)

    def test_internal_calls_resolve(self):
        known = set(LS.BY_NAME)
        for symbol in LS.LIBC_SYMBOLS:
            for callee in symbol.internal_calls:
                assert callee in known, (symbol.name, callee)

    def test_fork_maps_to_clone(self):
        assert LS.BY_NAME["fork"].syscalls == ("clone",)

    def test_fortify_map_targets_exist(self):
        for chk, plain in LS.FORTIFY_MAP.items():
            assert chk in LS.BY_NAME
            # a few map to symbols modelled only implicitly
            if plain in LS.BY_NAME:
                assert LS.BY_NAME[plain].name == plain

    def test_by_tier_and_category_selectors(self):
        assert LS.by_tier("universal")
        assert all(s.tier == "rare" for s in LS.by_tier("rare"))
        assert all(s.category == "stdio"
                   for s in LS.by_category("stdio"))


class TestClosure:
    def test_closure_includes_direct_syscalls(self):
        closure = LS.syscall_footprint_closure()
        assert "clone" in closure["fork"]

    def test_closure_follows_internal_calls(self):
        closure = LS.syscall_footprint_closure()
        # printf -> vfprintf -> write
        assert "write" in closure["printf"]

    def test_closure_is_superset_of_direct(self):
        closure = LS.syscall_footprint_closure()
        for symbol in LS.LIBC_SYMBOLS:
            assert set(symbol.syscalls) <= closure[symbol.name]

    def test_closure_complete_for_all_symbols(self):
        closure = LS.syscall_footprint_closure()
        assert set(closure) == {s.name for s in LS.LIBC_SYMBOLS}

    def test_popen_closure_contains_spawn_path(self):
        closure = LS.syscall_footprint_closure()
        assert {"pipe2", "clone", "execve"} <= closure["popen"]


class TestVariants:
    def test_four_variants(self):
        assert set(VARIANTS) == {"eglibc", "uClibc", "musl", "dietlibc"}

    def test_eglibc_fully_compatible(self):
        assert EGLIBC.missing() == []

    def test_uclibc_missing_fortify(self):
        assert not UCLIBC.supports("__printf_chk")
        assert UCLIBC.supports("printf")

    def test_uclibc_missing_stdio_internals(self):
        assert not UCLIBC.supports("__uflow")
        assert not UCLIBC.supports("_IO_getc")

    def test_musl_missing_named_symbols(self):
        assert not MUSL.supports("secure_getenv")
        assert not MUSL.supports("random_r")
        assert MUSL.supports("getenv")

    def test_musl_missing_sun_rpc(self):
        assert not MUSL.supports("clnt_create")
        assert not MUSL.supports("xdr_int")

    def test_dietlibc_missing_ubiquitous_symbols(self):
        # the paper's examples of why dietlibc scores 0%
        assert not DIETLIBC.supports("memalign")
        assert not DIETLIBC.supports("stpcpy")
        assert not DIETLIBC.supports("__cxa_finalize")

    def test_dietlibc_keeps_posix_core(self):
        for name in ("printf", "read", "write", "strlen", "socket"):
            assert DIETLIBC.supports(name), name

    def test_variant_sizes_ordered(self):
        assert (len(DIETLIBC.supported) < len(MUSL.supported)
                <= len(UCLIBC.supported) + 200)
        assert len(EGLIBC.supported) > len(UCLIBC.supported)

    def test_nominal_counts_match_paper(self):
        assert EGLIBC.nominal_export_count == 2198
        assert UCLIBC.nominal_export_count == 1867
        assert MUSL.nominal_export_count == 1890
        assert DIETLIBC.nominal_export_count == 962


class TestNormalization:
    def test_chk_normalizes(self):
        assert normalize_symbol("__printf_chk") == "printf"
        assert normalize_symbol("__memcpy_chk") == "memcpy"

    def test_plain_symbol_unchanged(self):
        assert normalize_symbol("printf") == "printf"

    def test_footprint_normalization(self):
        normalized = normalize_footprint(
            frozenset({"__printf_chk", "malloc"}))
        assert normalized == frozenset({"printf", "malloc"})

    def test_normalization_idempotent(self):
        once = normalize_footprint(frozenset(LS.FORTIFY_MAP))
        assert normalize_footprint(once) == once


class TestRuntimeModels:
    def test_startup_attribution_nonempty(self):
        assert len(RT.STARTUP_SYSCALLS) >= 35

    def test_table5_rows_present(self):
        # spot rows from the paper's Table 5
        assert RT.STARTUP_SYSCALLS["access"] == ("ld.so",)
        assert RT.STARTUP_SYSCALLS["arch_prctl"] == ("ld.so",)
        assert "libpthread" in RT.STARTUP_SYSCALLS["set_robust_list"]
        assert "libc" in RT.STARTUP_SYSCALLS["futex"]
        assert "ld.so" in RT.STARTUP_SYSCALLS["mmap"]

    def test_footprint_views_consistent(self):
        assert RT.LD_SO_FOOTPRINT <= set(RT.STARTUP_SYSCALLS)
        assert RT.LIBC_STARTUP_FOOTPRINT <= set(RT.STARTUP_SYSCALLS)

    def test_startup_syscalls_exist_in_table(self):
        for name in RT.STARTUP_SYSCALLS:
            assert name in ALL_NAMES, name

    def test_runtime_library_exports_have_footprints(self):
        for library in RT.RUNTIME_LIBRARIES:
            for export, syscalls in library.export_syscalls.items():
                assert export in library.exports
                for name in syscalls:
                    assert name in ALL_NAMES, (export, name)

    def test_pthread_create_uses_clone(self):
        assert "clone" in RT.LIBPTHREAD.export_syscalls[
            "pthread_create"]

    def test_librt_owns_posix_mqueues(self):
        assert "mq_open" in RT.LIBRT.exports
        assert "mq_open" not in {s.name for s in LS.LIBC_SYMBOLS}

    def test_library_only_syscalls_reference_table1(self):
        assert RT.LIBRARY_ONLY_SYSCALLS["mbind"] == (
            "libnuma", "libopenblas")
        assert "libc" in RT.LIBRARY_ONLY_SYSCALLS["clock_settime"]


class TestCatalogueFamilies:
    """Coverage of the curated symbol families."""

    def test_family_budgets(self):
        from collections import Counter
        counts = Counter(s.category for s in LS.LIBC_SYMBOLS)
        # The big real-world families are all present at plausible size.
        assert counts["stdio"] >= 80
        assert counts["io"] >= 100
        assert counts["wchar"] >= 80
        assert counts["rpc"] >= 80
        assert counts["network"] >= 60
        assert counts["string"] >= 40

    def test_fortify_family_size(self):
        assert 60 <= len(LS.FORTIFY_MAP) <= 90

    def test_stdio_internals_marked_common(self):
        for name in ("__uflow", "__overflow", "_IO_getc", "_IO_putc"):
            assert LS.BY_NAME[name].category == "stdio-internal"

    def test_sun_rpc_marked_rare_or_unused(self):
        for symbol in LS.by_category("rpc"):
            assert symbol.tier in ("rare", "unused")

    def test_universal_families(self):
        for name in ("printf", "malloc", "memcpy", "open", "read"):
            assert LS.BY_NAME[name].tier == "universal"

    def test_every_symbol_has_category(self):
        assert all(s.category for s in LS.LIBC_SYMBOLS)

    def test_vectored_wrappers_map_to_their_syscall(self):
        assert LS.BY_NAME["ioctl"].syscalls == ("ioctl",)
        assert LS.BY_NAME["fcntl"].syscalls == ("fcntl",)
        assert LS.BY_NAME["prctl"].syscalls == ("prctl",)

    def test_at_variants_map_to_at_syscalls(self):
        assert LS.BY_NAME["faccessat"].syscalls == ("faccessat",)
        assert LS.BY_NAME["openat"].syscalls == ("openat",)
        assert LS.BY_NAME["mkdirat"].syscalls == ("mkdirat",)
