"""Concurrency: hot reload under load, torn reads, readyz windows.

The RCU contract under test: a request pins one snapshot at admission
and computes entirely against it, so even with swaps racing a
multi-thread hammer, every response must be *internally* consistent —
the data always matches the fingerprint stamped on the envelope, never
a blend of generations.
"""

import json
import threading

import pytest

from repro.dataset import as_dataset
from repro.serve import Request, ServeApp, SnapshotHolder
import repro.serve.snapshot as snapshot_module


@pytest.fixture(scope="module")
def datasets(study):
    """Two distinguishable datasets sharing popcon/repository."""
    full = study.dataset
    names = sorted(full)[: len(full) // 2]
    half = as_dataset({name: full[name] for name in names},
                      full.popcon, full.repository)
    assert len(half.packages) != len(full.packages)
    return full, half


class TestSwapUnderLoad:
    HAMMER_THREADS = 8
    REQUESTS_PER_THREAD = 40
    SWAPS = 60

    def test_no_torn_reads_during_hot_swap(self, datasets):
        full, half = datasets
        holder = SnapshotHolder(full)
        app = ServeApp(holder, concurrency=16,
                       max_wait_seconds=5.0, deadline_seconds=None)

        from repro.dataset.codec import footprints_fingerprint
        expected_packages = {
            footprints_fingerprint(full): len(full.packages),
            footprints_fingerprint(half): len(half.packages),
        }
        supported_body = json.dumps(
            {"supported": ["a", "b"]}).encode()
        requests = [
            Request("GET", "/v1/dataset/stats"),
            Request("GET", "/v1/importance",
                    query={"limit": "5"}),
            Request("POST", "/v1/completeness",
                    body=supported_body),
            Request("GET", "/readyz"),
            Request("GET", "/healthz"),
        ]

        failures = []
        barrier = threading.Barrier(self.HAMMER_THREADS + 1)

        def hammer(seed: int) -> None:
            barrier.wait()
            for i in range(self.REQUESTS_PER_THREAD):
                request = requests[(seed + i) % len(requests)]
                response = app.handle(request)
                if response.status not in (200, 503):
                    failures.append(
                        (request.path, response.status,
                         response.body[:120]))
                    continue
                if (request.path == "/v1/dataset/stats"
                        and response.status == 200):
                    payload = response.json_payload()
                    want = expected_packages[payload["fingerprint"]]
                    if payload["data"]["n_packages"] != want:
                        failures.append(
                            ("torn", payload["fingerprint"],
                             payload["data"]["n_packages"]))

        threads = [threading.Thread(target=hammer, args=(n,))
                   for n in range(self.HAMMER_THREADS)]
        for thread in threads:
            thread.start()
        barrier.wait()
        for swap in range(self.SWAPS):
            holder.swap_dataset(half if swap % 2 == 0 else full)
        for thread in threads:
            thread.join(timeout=60)
        assert not failures, failures[:5]
        assert holder.generation == 1 + self.SWAPS

    def test_cache_stats_stay_consistent_after_hammer(self, datasets):
        full, half = datasets
        holder = SnapshotHolder(full)
        app = ServeApp(holder, concurrency=16,
                       max_wait_seconds=5.0, deadline_seconds=None)
        request = Request("GET", "/v1/importance",
                          query={"limit": "3"})

        def hammer() -> None:
            for _ in range(50):
                assert app.handle(request).status == 200

        threads = [threading.Thread(target=hammer)
                   for _ in range(6)]
        for thread in threads:
            thread.start()
        holder.swap_dataset(half)
        holder.swap_dataset(full)
        for thread in threads:
            thread.join(timeout=60)
        stats = app.qcache.stats()
        assert stats["lookups"] == stats["hits"] + stats["misses"]
        assert stats["lookups"] == 300
        assert stats["entries"] <= stats["max_entries"]
        # Identical query against an identical fingerprint misses at
        # most once per thread per fingerprint epoch (concurrent
        # first-misses race the put); everything else must hit.
        assert stats["misses"] <= 2 * len(threads) + 2
        assert stats["hits"] >= stats["lookups"] - stats["misses"]
        assert app.admission.stats()["in_flight"] == 0

    def test_pinned_snapshot_survives_swap(self, datasets):
        full, half = datasets
        holder = SnapshotHolder(full)
        pinned = holder.current()
        holder.swap_dataset(half)
        # The in-flight request's view is untouched by the swap.
        assert pinned.dataset is full
        assert len(pinned.dataset.packages) == len(full.packages)
        assert holder.current().dataset is half


class TestReadyzWindow:
    def test_readyz_flips_during_reload_and_recovers(
            self, datasets, tmp_path, monkeypatch):
        full, half = datasets
        holder = SnapshotHolder(full)
        app = ServeApp(holder)
        path = tmp_path / "snapshot.json"
        SnapshotHolder(half).export_to_file(path)

        in_load = threading.Event()
        release = threading.Event()
        real_from_json = snapshot_module.dataset_from_json

        def gated(text, popcon=None, repository=None):
            in_load.set()
            assert release.wait(timeout=30)
            return real_from_json(text, popcon, repository)

        monkeypatch.setattr(snapshot_module, "dataset_from_json",
                            gated)
        worker = threading.Thread(
            target=holder.reload_from_file, args=(path,))
        worker.start()
        try:
            assert in_load.wait(timeout=30)
            # Mid-load: not ready, but current snapshot still serves.
            assert holder.ready() is False
            response = app.handle(Request("GET", "/readyz"))
            assert response.status == 503
            served = app.handle(Request("GET", "/v1/dataset/stats"))
            assert served.status == 200
            assert served.json_payload()["data"]["n_packages"] == \
                len(full.packages)
        finally:
            release.set()
            worker.join(timeout=30)
        assert holder.ready() is True
        response = app.handle(Request("GET", "/readyz"))
        assert response.status == 200
        assert response.json_payload()["generation"] == 2
        assert len(holder.current().dataset.packages) == \
            len(half.packages)

    def test_failed_reload_restores_readiness_and_snapshot(
            self, datasets, tmp_path):
        full, _ = datasets
        holder = SnapshotHolder(full)
        bad = tmp_path / "corrupt.json"
        bad.write_text("{definitely not a snapshot", encoding="utf-8")
        with pytest.raises(Exception):
            holder.reload_from_file(bad)
        assert holder.ready() is True
        assert holder.generation == 1
        assert holder.current().dataset is full
        assert holder.failed_reloads == 1
