"""Property tests for the span tracer.

The tracer's contract — spans are always balanced, properly nested,
and a span that raises still closes flagged ``error=True`` — is pinned
here under arbitrary span trees, arbitrary mid-span exceptions, and
multi-thread interleavings.
"""

import threading
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import Span, SpanTracer


class Boom(Exception):
    pass


class SteppingClock:
    """Deterministic clock: each call advances by ``step``."""

    def __init__(self, step: float = 1.0) -> None:
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        self.now += self.step
        return self.now


# A span-tree node: (name, raises_after_children, children).
_names = st.sampled_from(["scan", "hash", "analyze", "resolve"])
_node = st.deferred(
    lambda: st.tuples(_names, st.booleans(),
                      st.lists(_node, max_size=3)))
_forest = st.lists(_node, min_size=1, max_size=4)


def _run_node(tracer, node):
    name, raises, children = node
    with tracer.span(name):
        for child in children:
            _run_node(tracer, child)
        if raises:
            raise Boom(name)


def _model(node):
    """Expected (name, error) multiset plus whether this node raises.

    Children run sequentially; the first raising child aborts its
    later siblings, and the exception propagates through every open
    ancestor (flagging each ``error=True``) up to the caller.
    """
    name, raises, children = node
    spans = []
    raised = False
    for child in children:
        child_spans, child_raised = _model(child)
        spans.extend(child_spans)
        if child_raised:
            raised = True
            break
    raised = raised or raises
    spans.append((name, raised))
    return spans, raised


class TestBalancedNesting:
    @settings(max_examples=60, deadline=None)
    @given(_forest)
    def test_spans_balanced_and_flagged_under_exceptions(self, forest):
        tracer = SpanTracer(clock=SteppingClock())
        expected = []
        for node in forest:
            node_spans, raised = _model(node)
            expected.extend(node_spans)
            try:
                _run_node(tracer, node)
            except Boom:
                assert raised
            else:
                assert not raised
        spans = tracer.finished()
        # Balanced: everything that opened closed, nothing is open.
        assert tracer.open_depth() == 0
        assert Counter((s.name, s.error) for s in spans) == (
            Counter(expected))
        by_id = {s.span_id: s for s in spans}
        for span in spans:
            assert span.end > span.start
            if span.parent_id is not None:
                parent = by_id[span.parent_id]
                # Proper nesting: strict containment under the
                # stepping clock.
                assert parent.start < span.start
                assert span.end < parent.end

    @settings(max_examples=30, deadline=None)
    @given(_forest)
    def test_roots_have_no_parent_and_ids_unique(self, forest):
        tracer = SpanTracer(clock=SteppingClock())
        for node in forest:
            try:
                _run_node(tracer, node)
            except Boom:
                pass
        spans = tracer.finished()
        ids = [s.span_id for s in spans]
        assert len(ids) == len(set(ids))
        known = set(ids)
        for span in spans:
            assert span.parent_id is None or span.parent_id in known


class TestThreadInterleavings:
    def test_concurrent_spans_never_parent_across_threads(self):
        tracer = SpanTracer()
        threads = 8
        depth = 5
        repeats = 20
        barrier = threading.Barrier(threads)

        def work(tag):
            barrier.wait()
            for _ in range(repeats):
                def nest(level):
                    with tracer.span(f"t{tag}", level=level):
                        if level < depth:
                            nest(level + 1)
                nest(1)

        pool = [threading.Thread(target=work, args=(tag,))
                for tag in range(threads)]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        spans = tracer.finished()
        assert len(spans) == threads * repeats * depth
        assert tracer.open_depth() == 0
        by_id = {s.span_id: s for s in spans}
        for span in spans:
            if span.parent_id is not None:
                # The thread-local stack means a span's parent always
                # belongs to the same thread (same name tag here).
                assert by_id[span.parent_id].name == span.name

    def test_exception_in_one_thread_does_not_leak_into_another(self):
        tracer = SpanTracer()
        done = threading.Event()

        def failing():
            try:
                with tracer.span("failing"):
                    raise Boom("thread")
            except Boom:
                done.set()

        with tracer.span("outer"):
            worker = threading.Thread(target=failing)
            worker.start()
            worker.join()
            assert done.is_set()
            assert tracer.open_depth() == 1  # ours, not the worker's
        outer = [s for s in tracer.finished() if s.name == "outer"][0]
        failed = [s for s in tracer.finished()
                  if s.name == "failing"][0]
        assert failed.error and failed.parent_id is None
        assert not outer.error


class TestAdoption:
    def test_adopt_remaps_ids_and_reparents_roots(self):
        worker = SpanTracer(clock=SteppingClock())
        with worker.span("binary"):
            with worker.span("decode"):
                pass
        driver = SpanTracer(clock=SteppingClock(step=10.0))
        with driver.span("stage:analyze") as stage:
            pass
        adopted = driver.adopt(worker.finished(),
                               parent_id=stage.span_id)
        by_name = {s.name: s for s in adopted}
        assert by_name["binary"].parent_id == stage.span_id
        assert by_name["decode"].parent_id == by_name["binary"].span_id
        driver_ids = {s.span_id for s in driver.finished()}
        assert len(driver_ids) == 3
        # Relative timing within the batch is preserved exactly.
        assert (by_name["decode"].start - by_name["binary"].start
                == pytest.approx(1.0))

    def test_adopt_rebases_foreign_clock(self):
        worker = SpanTracer(clock=SteppingClock(step=1000.0))
        with worker.span("binary"):
            pass
        driver = SpanTracer(clock=SteppingClock())
        adopted = driver.adopt(worker.finished())[0]
        # The batch's latest end lands at adoption time on our clock.
        assert adopted.end == pytest.approx(driver.clock() - 1.0)
        assert adopted.seconds == pytest.approx(1000.0)


class TestDisabledTracer:
    def test_disabled_records_nothing_and_absorbs_everything(self):
        tracer = SpanTracer(enabled=False)
        with tracer.span("a") as span:
            assert span.span_id is None
        tracer.record_span("quarantine", seconds=1.0, error=True)
        tracer.adopt([Span(name="x", span_id=1, parent_id=None,
                           start=0.0, end=1.0)])
        assert tracer.finished() == []
        assert tracer.name_multiset() == Counter()

    def test_disabled_still_propagates_exceptions(self):
        tracer = SpanTracer(enabled=False)
        with pytest.raises(Boom):
            with tracer.span("a"):
                raise Boom()
        assert tracer.open_depth() == 0


class TestRecordSpan:
    def test_backdated_synthetic_span(self):
        tracer = SpanTracer(clock=SteppingClock())
        span = tracer.record_span("quarantine", seconds=0.25,
                                  error=True,
                                  attrs={"error_class": "format"})
        assert span.error
        assert span.seconds == pytest.approx(0.25)
        assert tracer.finished() == [span]

    def test_defaults_to_current_parent(self):
        tracer = SpanTracer(clock=SteppingClock())
        with tracer.span("outer") as outer:
            inner = tracer.record_span("note")
        assert inner.parent_id == outer.span_id
