"""Usage-diff and adoption-drift tests."""

import pytest

from repro.metrics.diffing import ApiDelta, UsageDiff
from repro.synth.profiles import (
    DRIFT_PAIRS,
    VARIANT_IMPORT_PROBS,
    shifted_variant_probs,
)


class TestShiftedProbs:
    def test_zero_shift_is_identity(self):
        assert shifted_variant_probs(0.0) == VARIANT_IMPORT_PROBS

    def test_full_shift_drains_legacy(self):
        table = shifted_variant_probs(1.0)
        assert table["access"] == 0.0
        assert table["faccessat"] > VARIANT_IMPORT_PROBS["faccessat"]

    def test_probability_mass_conserved(self):
        before = VARIANT_IMPORT_PROBS
        after = shifted_variant_probs(0.5)
        for old, new in DRIFT_PAIRS:
            if old not in before:
                continue
            total_before = before[old] + before.get(new, 0.0)
            total_after = after[old] + after.get(new, 0.0)
            if after.get(new, 0.0) >= 1.0:
                # the preferred variant saturated; mass clamps at 1
                assert total_after <= total_before + 1e-9
            else:
                assert total_after == pytest.approx(
                    total_before, abs=1e-9), (old, new)

    def test_probabilities_stay_valid(self):
        for shift in (0.1, 0.5, 0.9, 1.0):
            for value in shifted_variant_probs(shift).values():
                assert 0.0 <= value <= 1.0

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            shifted_variant_probs(1.5)
        with pytest.raises(ValueError):
            shifted_variant_probs(-0.1)


class TestApiDelta:
    def test_delta_and_relative(self):
        delta = ApiDelta("access", 0.5, 0.25)
        assert delta.delta == pytest.approx(-0.25)
        assert delta.relative == pytest.approx(-0.5)

    def test_relative_none_when_new(self):
        assert ApiDelta("new_api", 0.0, 0.2).relative is None


class TestUsageDiff:
    def _diff(self):
        before = {"access": 0.70, "faccessat": 0.01, "read": 0.99,
                  "gone": 0.10}
        after = {"access": 0.40, "faccessat": 0.25, "read": 0.99,
                 "brand_new": 0.15}
        return UsageDiff(before, after, noise_floor=0.05)

    def test_risers(self):
        risers = {d.api for d in self._diff().risers()}
        assert risers == {"faccessat", "brand_new"}

    def test_fallers(self):
        fallers = {d.api for d in self._diff().fallers()}
        assert fallers == {"access", "gone"}

    def test_noise_floor_suppresses_stable(self):
        apis = {d.api for d in (self._diff().risers()
                                + self._diff().fallers())}
        assert "read" not in apis

    def test_migration_verdicts(self):
        migrated = {(v.legacy, v.preferred)
                    for v in self._diff().migrated_pairs()}
        assert ("access", "faccessat") in migrated

    def test_summary_rows_formatting(self):
        rows = self._diff().summary_rows()
        assert any(row[0] == "access" for row in rows)
        for row in rows:
            assert row[3].startswith(("+", "-"))


class TestEndToEndDrift:
    """Two synthesized releases, measured and diffed (slow-ish)."""

    @pytest.fixture(scope="class")
    def tables(self):
        from repro.analysis import AnalysisPipeline
        from repro.metrics import unweighted_importance_table
        from repro.syscalls.table import ALL_NAMES
        from repro.synth import EcosystemConfig, build_ecosystem

        def measure(shift):
            ecosystem = build_ecosystem(EcosystemConfig(
                n_filler_packages=60, n_driver_packages=10,
                n_script_packages=20, seed=9,
                adoption_shift=shift))
            result = AnalysisPipeline(ecosystem.repository,
                                      ecosystem.interpreters).run()
            return unweighted_importance_table(
                result.package_footprints, "syscall",
                universe=ALL_NAMES)

        return measure(0.0), measure(0.5)

    def test_access_declines(self, tables):
        before, after = tables
        assert after["access"] < before["access"] - 0.10

    def test_faccessat_rises(self, tables):
        before, after = tables
        assert after["faccessat"] >= before["faccessat"]

    def test_untouched_apis_stable(self, tables):
        before, after = tables
        # read is in every binary's base; drift must not move it
        assert after["read"] == pytest.approx(before["read"],
                                              abs=0.02)

    def test_diff_reports_the_migration(self, tables):
        before, after = tables
        diff = UsageDiff(before, after, noise_floor=0.03)
        migrated = {v.legacy for v in diff.migrated_pairs()}
        assert "access" in migrated
