"""AND-of-OR dependency semantics, end to end.

Covers the refactor from the flat AND-graph to APT's real dependency
model: ``a | b`` alternative groups, ``Provides:`` virtual packages,
the provider-aware repository indexes, the greatest-fixed-point
closure, the AND-only ablation, the snapshot/series codecs, and the
gated synthetic emitters.  The companion property suite
(``test_dep_semantics_properties.py``) drives the same semantics
against the naive oracle over randomized ecosystems; this file pins
the concrete behaviours with hand-built repositories.
"""

import pytest

from repro.analysis.footprint import Footprint
from repro.dataset import Dataset
from repro.metrics import (
    dep_semantics_ablation,
    supported_packages,
    weighted_completeness,
)
from repro.packages.package import (Package, dependency_groups,
                                    split_alternatives)
from repro.packages.popcon import PopularityContest
from repro.packages.repository import Repository
from repro.series import DatasetSeries, series_to_bytes
from repro.store import decode_header, load_snapshot_bytes, snapshot_to_bytes
from repro.synth import (
    EcosystemConfig,
    EvolutionConfig,
    PaperScaleConfig,
    build_ecosystem,
    build_paper_corpus,
    evolve_corpus,
)


class TestParser:
    def test_plain_entry_is_single_alternative(self):
        assert split_alternatives("mawk") == ("mawk",)

    def test_alternatives_split_and_strip(self):
        assert split_alternatives("mawk | gawk") == ("mawk", "gawk")
        assert split_alternatives(" a |b|  c ") == ("a", "b", "c")

    def test_empty_alternatives_are_dropped(self):
        assert split_alternatives("|") == ()
        assert split_alternatives("a ||") == ("a",)

    def test_dependency_groups_skips_empty_entries(self):
        assert dependency_groups(["a | b", "", "c"]) == \
            (("a", "b"), ("c",))

    def test_package_exposes_parsed_groups(self):
        package = Package("mutt", depends=["libc6", "exim4 | postfix"])
        assert package.dependency_groups() == \
            (("libc6",), ("exim4", "postfix"))


@pytest.fixture()
def mail_repo():
    """The classic Debian mail-transport-agent arrangement."""
    return Repository([
        Package("postfix", depends=["libc6"],
                provides=["mail-transport-agent"]),
        Package("exim4", depends=["libc6"],
                provides=["mail-transport-agent"]),
        Package("mutt", depends=["mail-transport-agent", "libc6"]),
        Package("cron", depends=["postfix | exim4"]),
        Package("libc6"),
        Package("broken", depends=["no-such-package"]),
    ])


class TestRepositoryIndexes:
    def test_providers_in_insertion_order(self, mail_repo):
        assert mail_repo.providers_of("mail-transport-agent") == \
            ("postfix", "exim4")
        assert mail_repo.providers_of("libc6") == ()

    def test_is_virtual(self, mail_repo):
        assert mail_repo.is_virtual("mail-transport-agent")
        assert not mail_repo.is_virtual("postfix")
        assert not mail_repo.is_virtual("no-such-package")

    def test_satisfiers_real_package_first(self, mail_repo):
        assert mail_repo.satisfiers("mail-transport-agent") == \
            ("postfix", "exim4")
        assert mail_repo.satisfiers("libc6") == ("libc6",)
        assert mail_repo.satisfiers("no-such-package") == ()

    def test_real_name_also_provided_lists_itself_first(self):
        repo = Repository([
            Package("awk", provides=["awk"]),
            Package("gawk", provides=["awk"]),
        ])
        assert repo.satisfiers("awk") == ("awk", "gawk")
        # Provided *and* real: not a virtual name.
        assert repo.virtual_names() == ()

    def test_virtual_names_and_counts(self, mail_repo):
        assert mail_repo.virtual_names() == ("mail-transport-agent",)
        assert mail_repo.n_provider_edges() == 2
        assert mail_repo.n_alternative_groups() == 1

    def test_add_invalidates_cached_indexes(self, mail_repo):
        assert "sendmail" not in \
            mail_repo.providers_of("mail-transport-agent")
        before = mail_repo.reverse_dependencies("postfix")
        mail_repo.add(Package("mta-monitor",
                              depends=["mail-transport-agent"]))
        mail_repo.add(Package("sendmail",
                              provides=["mail-transport-agent"]))
        assert mail_repo.providers_of("mail-transport-agent") == \
            ("postfix", "exim4", "sendmail")
        after = mail_repo.reverse_dependencies("postfix")
        assert "mta-monitor" in after
        assert after > before

    def test_duplicate_add_rejected(self, mail_repo):
        with pytest.raises(ValueError):
            mail_repo.add(Package("postfix"))


class TestReverseDependencies:
    def test_direct_alternative_and_virtual_dependents(self, mail_repo):
        assert mail_repo.reverse_dependencies("postfix") == \
            frozenset({"mutt", "cron"})
        assert mail_repo.reverse_dependencies("libc6") == \
            frozenset({"postfix", "exim4", "mutt"})

    def test_self_dependency_is_kept(self):
        repo = Repository([Package("ouroboros",
                                   depends=["ouroboros"])])
        assert repo.reverse_dependencies("ouroboros") == \
            frozenset({"ouroboros"})


class TestValidationSplit:
    def test_dangling_vs_virtual_satisfied(self, mail_repo):
        report = mail_repo.validate_dependencies_report()
        assert report.dangling == ["broken -> no-such-package"]
        assert report.virtual_satisfied == \
            ["mutt -> mail-transport-agent"]
        assert bool(report)

    def test_validate_dependencies_lists_only_dangling(self, mail_repo):
        assert mail_repo.validate_dependencies() == \
            ["broken -> no-such-package"]

    def test_clean_repository_reports_falsy(self):
        repo = Repository([Package("a", depends=["b"]), Package("b")])
        report = repo.validate_dependencies_report()
        assert not report
        assert report.dangling == []
        assert report.virtual_satisfied == []


class TestAndOnlyView:
    def test_collapses_groups_and_drops_provides(self, mail_repo):
        view = mail_repo.and_only_view()
        assert view.get("cron").depends == ["postfix"]
        assert view.get("postfix").provides == []
        assert view.providers_of("mail-transport-agent") == ()
        # The virtual dependency is now dangling in the view.
        assert "mutt -> mail-transport-agent" in \
            view.validate_dependencies()

    def test_flat_repository_round_trips(self):
        repo = Repository([
            Package("a", category="libs", depends=["b", "c"]),
            Package("b", depends=["c"]),
            Package("c"),
        ])
        view = repo.and_only_view()
        for package in repo:
            mirrored = view.get(package.name)
            assert mirrored.depends == package.depends
            assert mirrored.category == package.category
        assert view.validate_dependencies() == []


class TestDependencyClosure:
    def test_closure_follows_alternatives_and_providers(self, mail_repo):
        assert mail_repo.dependency_closure("mutt") == \
            frozenset({"mutt", "postfix", "exim4", "libc6"})
        assert mail_repo.dependency_closure("cron") == \
            frozenset({"cron", "postfix", "exim4", "libc6"})

    def test_closure_survives_or_cycles(self):
        repo = Repository([
            Package("a", depends=["b | c"]),
            Package("b", depends=["a"]),
            Package("c"),
        ])
        assert repo.dependency_closure("a") == \
            frozenset({"a", "b", "c"})

    def test_unknown_targets_ignored(self, mail_repo):
        assert mail_repo.dependency_closure("broken") == \
            frozenset({"broken"})


def _dataset(spec, repository):
    """spec: name -> (syscalls, installs)."""
    footprints = {name: Footprint.build(syscalls=calls)
                  for name, (calls, _) in spec.items()}
    popcon = PopularityContest(1000, {
        name: installs for name, (_, installs) in spec.items()})
    return Dataset(footprints, popcon, repository)


class TestClosureSemantics:
    def test_one_supported_alternative_satisfies_the_group(self):
        repo = Repository([
            Package("app", depends=["lib1 | lib2"]),
            Package("lib1"), Package("lib2"),
        ])
        dataset = _dataset({"app": (["open"], 100),
                            "lib1": (["read"], 100),
                            "lib2": (["write"], 100)}, repo)
        assert supported_packages({"open", "write"}, dataset) == \
            {"app", "lib2"}
        # AND-only tooling would pin app to lib1 and drop it.
        and_only = Dataset(dict(dataset), dataset.popcon,
                           repo.and_only_view())
        assert supported_packages({"open", "write"}, and_only) == \
            {"lib2"}

    def test_virtual_gates_until_some_provider_supported(self):
        repo = Repository([
            Package("postfix", provides=["mail-transport-agent"]),
            Package("mutt", depends=["mail-transport-agent"]),
        ])
        spec = {"postfix": (["accept"], 100),
                "mutt": (["read"], 100)}
        dataset = _dataset(spec, repo)
        assert supported_packages({"read"}, dataset) == set()
        assert supported_packages({"read", "accept"}, dataset) == \
            {"postfix", "mutt"}

    def test_dangling_alternative_never_gates(self):
        repo = Repository([
            Package("app", depends=["no-such-thing"]),
        ])
        dataset = _dataset({"app": (["open"], 100)}, repo)
        assert supported_packages({"open"}, dataset) == {"app"}

    def test_or_cycle_rescued_by_greatest_fixed_point(self):
        # a and b satisfy each other through alternative groups whose
        # other branch (deadlib) is unsupported.  A least-fixed-point
        # would deadlock and drop both; APT's semantics keep both.
        repo = Repository([
            Package("a", depends=["b | deadlib"]),
            Package("b", depends=["a | deadlib"]),
            Package("deadlib"),
        ])
        spec = {"a": (["read"], 100), "b": (["write"], 100),
                "deadlib": (["futex"], 100)}
        dataset = _dataset(spec, repo)
        assert supported_packages({"read", "write"}, dataset) == \
            {"a", "b"}
        assert supported_packages({"read"}, dataset) == set()

    def test_weighted_completeness_counts_rescued_alternatives(self):
        repo = Repository([
            Package("app", depends=["lib1 | lib2"]),
            Package("lib1"), Package("lib2"),
        ])
        dataset = _dataset({"app": (["open"], 600),
                            "lib1": (["read"], 200),
                            "lib2": (["write"], 200)}, repo)
        full = weighted_completeness({"open", "write"}, dataset)
        and_only = weighted_completeness(
            {"open", "write"},
            Dataset(dict(dataset), dataset.popcon,
                    repo.and_only_view()))
        assert full > and_only


@pytest.fixture(scope="module")
def flat_corpus():
    return build_paper_corpus(PaperScaleConfig.tiny(seed=9))


@pytest.fixture(scope="module")
def semantics_corpus():
    return build_paper_corpus(
        PaperScaleConfig.tiny(seed=9, dependency_semantics=True))


class TestAblation:
    def test_requires_a_repository(self, flat_corpus):
        dataset = Dataset(dict(flat_corpus.dataset),
                          flat_corpus.popcon)
        with pytest.raises(ValueError):
            dep_semantics_ablation(dataset)

    def test_flat_corpus_gap_is_exactly_zero(self, flat_corpus):
        result = dep_semantics_ablation(flat_corpus.dataset)
        assert result["n_virtual_packages"] == 0
        assert result["n_provider_edges"] == 0
        assert result["n_alternative_groups"] == 0
        assert result["final_gap"] == 0.0
        assert result["max_abs_gap"] == 0.0
        assert result["mean_abs_gap"] == 0.0
        assert result["n_ranks_diverging"] == 0
        assert result["full"]["final_completeness"] == \
            result["and_only"]["final_completeness"]

    def test_semantics_corpus_shows_a_measurable_gap(
            self, semantics_corpus):
        result = dep_semantics_ablation(semantics_corpus.dataset)
        assert result["n_virtual_packages"] > 0
        assert result["n_provider_edges"] > 0
        assert result["n_alternative_groups"] > 0
        assert result["max_abs_gap"] > 0.0
        assert result["n_ranks_diverging"] > 0
        assert result["n_apis"] > 0
        assert 1 <= result["max_gap_rank"] <= result["n_apis"]

    def test_gap_sign_matches_final_completeness(self,
                                                 semantics_corpus):
        result = dep_semantics_ablation(semantics_corpus.dataset)
        assert result["final_gap"] == pytest.approx(
            result["full"]["final_completeness"]
            - result["and_only"]["final_completeness"])


class TestSnapshotCodec:
    def test_provides_round_trip(self, semantics_corpus):
        blob = snapshot_to_bytes(semantics_corpus.dataset)
        assert b"PRVS" in decode_header(blob).sections
        loaded = load_snapshot_bytes(blob)
        source = semantics_corpus.repository
        assert sorted(loaded.repository.virtual_names()) == \
            sorted(source.virtual_names())
        for package in source:
            assert loaded.repository.get(package.name).provides == \
                package.provides

    def test_flat_snapshot_has_no_provides_section(self, flat_corpus):
        blob = snapshot_to_bytes(flat_corpus.dataset)
        assert b"PRVS" not in decode_header(blob).sections
        loaded = load_snapshot_bytes(blob)
        assert all(not package.provides
                   for package in loaded.repository)

    def test_ablation_survives_a_round_trip(self, semantics_corpus):
        loaded = load_snapshot_bytes(
            snapshot_to_bytes(semantics_corpus.dataset))
        assert dep_semantics_ablation(loaded) == \
            dep_semantics_ablation(semantics_corpus.dataset)


@pytest.fixture(scope="module")
def semantics_series():
    train = evolve_corpus(EvolutionConfig(
        n_releases=3,
        base=PaperScaleConfig.tiny(seed=9,
                                   dependency_semantics=True),
        seed=5))
    return train, DatasetSeries(series_to_bytes(train.datasets()))


class TestSeriesCodec:
    def test_provides_round_trip_per_release(self, semantics_series):
        train, series = semantics_series
        for release, eager in enumerate(train.datasets()):
            decoded = series.at(release).repository
            for package in eager.repository:
                mirrored = decoded.get(package.name)
                assert mirrored.depends == package.depends
                assert mirrored.provides == package.provides

    def test_dependency_drift_counts(self, semantics_series):
        _, series = semantics_series
        drift = series.dependency_drift()
        assert len(drift) == series.n_releases
        for row in drift:
            assert row["n_virtual_packages"] > 0
            assert row["n_alternative_groups"] > 0

    def test_flat_series_drift_is_all_zero(self, flat_corpus):
        train = evolve_corpus(EvolutionConfig(
            n_releases=2, base=PaperScaleConfig.tiny(seed=9), seed=5))
        series = DatasetSeries(series_to_bytes(train.datasets()))
        for row in series.dependency_drift():
            assert row["n_virtual_packages"] == 0
            assert row["n_provider_edges"] == 0
            assert row["n_alternative_groups"] == 0


class TestSynthGating:
    def test_default_corpus_is_untouched_by_the_flag_plumbing(
            self, flat_corpus):
        again = build_paper_corpus(PaperScaleConfig.tiny(seed=9))
        assert snapshot_to_bytes(flat_corpus.dataset) == \
            snapshot_to_bytes(again.dataset)

    def test_semantics_flag_does_not_perturb_shared_draws(
            self, flat_corpus, semantics_corpus):
        # The gated emitters draw from an independent RNG stream, so
        # every package the flat corpus knows keeps exactly the same
        # footprint when semantics are enabled.  (Popcon *weights* may
        # shift: the metapackages join the Zipf ranking.)
        flat = flat_corpus.dataset
        rich = semantics_corpus.dataset
        assert set(flat.packages) <= set(rich.packages)
        for name in flat.packages:
            assert rich[name] == flat[name]

    def test_semantics_corpus_emits_all_three_patterns(
            self, semantics_corpus):
        repo = semantics_corpus.repository
        virtuals = repo.virtual_names()
        assert any(name.startswith("pvirt-") for name in virtuals)
        assert repo.n_alternative_groups() > 0
        metas = [p for p in repo if p.category == "metapackage"]
        assert metas
        assert all(p.name.startswith("pmeta-") for p in metas)

    def test_semantics_corpus_has_no_new_dangling_deps(
            self, flat_corpus, semantics_corpus):
        flat_report = \
            flat_corpus.repository.validate_dependencies_report()
        rich_report = \
            semantics_corpus.repository.validate_dependencies_report()
        # Ghost deps stay dangling; everything the emitters added is
        # either real or provider-satisfied.
        assert all(entry.split(" -> ")[1].startswith("ghost-")
                   for entry in rich_report.dangling)
        assert len(rich_report.dangling) == len(flat_report.dangling)
        assert rich_report.virtual_satisfied

    def test_ecosystem_semantics_are_provider_clean(self):
        eco = build_ecosystem(EcosystemConfig(
            n_filler_packages=6, n_driver_packages=2,
            n_script_packages=8, seed=7,
            dependency_semantics=True))
        repo = eco.repository
        assert repo.validate_dependencies() == []
        report = repo.validate_dependencies_report()
        assert report.virtual_satisfied
        assert "interpreters-meta" in repo
        assert repo.n_alternative_groups() > 0
        runtime_virtuals = [name for name in repo.virtual_names()
                            if name.endswith("-runtime")]
        assert runtime_virtuals


class TestStatsSurfaces:
    def test_dataset_stats_counts(self, semantics_corpus, flat_corpus):
        stats = semantics_corpus.dataset.stats()
        repo = semantics_corpus.repository
        assert stats.n_virtual_packages == len(repo.virtual_names())
        assert stats.n_provider_edges == repo.n_provider_edges()
        assert stats.n_alternative_groups == \
            repo.n_alternative_groups()
        flat_stats = flat_corpus.dataset.stats()
        assert flat_stats.n_virtual_packages == 0
        assert flat_stats.n_alternative_groups == 0

    def test_rendered_stats_mention_the_new_counts(
            self, semantics_corpus):
        from repro.reports.text import render_dataset_stats
        rendered = render_dataset_stats(
            semantics_corpus.dataset.stats())
        assert "virtual packages" in rendered
        assert "alternative groups" in rendered

    def test_serve_payloads(self, semantics_corpus, flat_corpus):
        from repro.serve.endpoints import (BadRequestError,
                                           dep_semantics_payload,
                                           stats_payload)
        payload = stats_payload(semantics_corpus.dataset, {})
        assert payload["n_virtual_packages"] > 0
        assert payload["n_alternative_groups"] > 0
        ablation = dep_semantics_payload(semantics_corpus.dataset,
                                         {"dimension": "syscall"})
        assert ablation["max_abs_gap"] > 0.0
        bare = Dataset(dict(flat_corpus.dataset), flat_corpus.popcon)
        with pytest.raises(BadRequestError):
            dep_semantics_payload(bare, {"dimension": "syscall"})
