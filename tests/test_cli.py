"""CLI tests (run against a very small ecosystem for speed)."""

import pytest

from repro.cli import build_parser, main

_SMALL = ["--fillers", "24", "--drivers", "6", "--scripts", "10",
          "--seed", "7"]


class TestParser:
    def test_report_defaults(self):
        args = build_parser().parse_args(_SMALL + ["report"])
        assert args.command == "report"
        assert args.experiments == []

    def test_seccomp_requires_package(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(_SMALL + ["seccomp"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(_SMALL)


class TestCommands:
    def test_report_single_experiment(self, capsys):
        code = main(_SMALL + ["report", "fig2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 2" in out

    def test_report_unknown_experiment(self, capsys):
        code = main(_SMALL + ["report", "fig99"])
        assert code == 2
        assert "unknown" in capsys.readouterr().err

    def test_report_multiple(self, capsys):
        code = main(_SMALL + ["report", "tab3", "tab6"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table 3" in out
        assert "Table 6" in out

    def test_seccomp_known_package(self, capsys):
        code = main(_SMALL + ["seccomp", "coreutils"])
        assert code == 0
        out = capsys.readouterr().out
        assert "seccomp policy" in out
        assert "ret" in out

    def test_seccomp_unknown_package(self, capsys):
        code = main(_SMALL + ["seccomp", "no-such-package"])
        assert code == 2

    def test_evaluate_inline_list(self, capsys):
        code = main(_SMALL + ["evaluate", "read,write,open"])
        assert code == 0
        out = capsys.readouterr().out
        assert "weighted completeness" in out

    def test_evaluate_from_file(self, capsys, tmp_path):
        listing = tmp_path / "syscalls.txt"
        listing.write_text("read\nwrite\n# comment\nopen\n")
        code = main(_SMALL + ["evaluate", f"@{listing}"])
        assert code == 0
        assert "supported syscalls : 3" in capsys.readouterr().out

    def test_packages_listing(self, capsys):
        code = main(_SMALL + ["packages"])
        assert code == 0
        out = capsys.readouterr().out
        assert "libc6" in out
        assert "coreutils" in out


class TestNewCommands:
    def test_trace_package(self, capsys):
        code = main(_SMALL + ["trace", "coreutils", "--limit", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "arch_prctl" in out
        assert "events" in out

    def test_trace_unknown_package(self, capsys):
        assert main(_SMALL + ["trace", "ghost"]) == 2

    def test_identify_exact_signature(self, capsys):
        code = main(_SMALL + ["identify",
                              "mq_timedsend,mq_getsetattr,read"])
        assert code == 0
        assert "qemu-user" in capsys.readouterr().out

    def test_identify_unknown_observation(self, capsys):
        code = main(_SMALL + ["identify", "not_a_syscall"])
        assert code == 0
        assert "no package" in capsys.readouterr().out

    def test_disasm(self, capsys):
        code = main(_SMALL + ["disasm", "kexec-tools",
                              "--limit", "10"])
        assert code == 0
        out = capsys.readouterr().out
        assert "@plt" in out
        assert "push %rbp" in out

    def test_disasm_unknown_package(self, capsys):
        assert main(_SMALL + ["disasm", "ghost"]) == 2

    def test_report_save_directory(self, capsys, tmp_path):
        code = main(_SMALL + ["report", "tab3", "--save",
                              str(tmp_path / "out")])
        assert code == 0
        saved = (tmp_path / "out" / "tab3.txt").read_text()
        assert "Table 3" in saved

    def test_drift(self, capsys):
        code = main(_SMALL + ["drift", "--shift", "0.5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "APIs losing users" in out
        assert "migrations detected" in out


class TestEngineFlags:
    def test_jobs_and_cache_dir_defaults(self):
        args = build_parser().parse_args(_SMALL + ["report"])
        assert args.jobs == 1
        assert args.cache_dir is None

    def test_report_with_jobs(self, capsys):
        code = main(_SMALL + ["--jobs", "2", "report", "fig1"])
        assert code == 0
        assert "Figure 1" in capsys.readouterr().out

    def test_engine_report(self, capsys):
        code = main(_SMALL + ["report", "engine"])
        assert code == 0
        out = capsys.readouterr().out
        assert "engine run statistics" in out
        assert "binaries/s" in out

    def test_cache_dir_populates_cache(self, capsys, tmp_path):
        from repro.engine import AnalysisCache
        cache_dir = str(tmp_path / "cache")
        assert main(_SMALL + ["--cache-dir", cache_dir,
                              "report", "engine"]) == 0
        out = capsys.readouterr().out
        assert "hit rate" in out
        assert AnalysisCache(cache_dir).entry_count() > 0

    def test_cache_stats_and_clear(self, capsys, tmp_path):
        cache_dir = str(tmp_path / "cache")
        assert main(_SMALL + ["--cache-dir", cache_dir,
                              "report", "fig1"]) == 0
        capsys.readouterr()

        assert main(["--cache-dir", cache_dir, "cache", "stats"]) == 0
        out = capsys.readouterr().out
        assert "cached records" in out
        assert cache_dir in out

        assert main(["--cache-dir", cache_dir, "cache", "clear"]) == 0
        assert "removed" in capsys.readouterr().out

        assert main(["--cache-dir", cache_dir, "cache", "stats"]) == 0
        assert "cached records   : 0" in capsys.readouterr().out

    def test_cache_requires_cache_dir(self, capsys):
        assert main(["cache", "stats"]) == 2
        assert "--cache-dir" in capsys.readouterr().err


class TestObservabilityFlags:
    def test_report_trace(self, capsys):
        code = main(_SMALL + ["report", "trace"])
        assert code == 0
        out = capsys.readouterr().out
        assert "trace report — stage breakdown" in out
        assert "trace report — slowest binaries" in out
        assert "analyze" in out

    def test_trace_out_writes_schema_valid_spans(self, capsys,
                                                 tmp_path):
        from repro.obs import read_trace_file, span_to_dict, \
            validate_span_dict
        trace_path = tmp_path / "trace.jsonl"
        code = main(_SMALL + ["--trace-out", str(trace_path),
                              "report", "engine"])
        assert code == 0
        err = capsys.readouterr().err
        assert "trace written to" in err
        header, spans = read_trace_file(trace_path)
        assert header["spans"] == len(spans) > 0
        assert header["backend"] == "serial"
        for span in spans:
            validate_span_dict(span_to_dict(span))
        # Every analyzed binary shows up as a span.
        names = {span.name for span in spans}
        assert {"stage:analyze", "binary", "decode"} <= names

    def test_metrics_out_round_trips(self, capsys, tmp_path):
        from repro.obs import parse_metrics
        metrics_path = tmp_path / "metrics.prom"
        code = main(_SMALL + ["--metrics-out", str(metrics_path),
                              "report", "engine"])
        assert code == 0
        assert "metrics written to" in capsys.readouterr().err
        samples = parse_metrics(metrics_path.read_text())
        assert samples["repro_engine_binaries_analyzed"] > 0
        assert samples["repro_engine_binaries_quarantined"] == 0
        assert ('repro_engine_analyze_task_seconds{quantile="0.5"}'
                in samples)

    def test_exports_default_off(self):
        args = build_parser().parse_args(_SMALL + ["report"])
        assert args.trace_out is None
        assert args.metrics_out is None
