"""Bootstrap sensitivity tests."""

import pytest

from repro.analysis.footprint import Footprint
from repro.metrics.sensitivity import (
    ImportanceInterval,
    bootstrap_importance,
    survey_noise_report,
    unstable_bands,
)
from repro.packages import PopularityContest


def _fp(*syscalls):
    return Footprint.build(syscalls=syscalls)


class TestIntervals:
    def _inputs(self, total=10_000):
        footprints = {
            "popular": _fp("read"),
            "borderline": _fp("borderline_api"),
        }
        popcon = PopularityContest(total, {
            "popular": total, "borderline": total // 10})
        return footprints, popcon

    def test_point_estimate_matches_formula(self):
        footprints, popcon = self._inputs()
        intervals = bootstrap_importance(footprints, popcon,
                                         n_boot=50, seed=1)
        assert intervals["read"].point == pytest.approx(1.0)
        assert intervals["borderline_api"].point == pytest.approx(0.1)

    def test_interval_contains_point(self):
        footprints, popcon = self._inputs()
        for ci in bootstrap_importance(footprints, popcon,
                                       n_boot=100, seed=2).values():
            assert ci.low - 1e-9 <= ci.point <= ci.high + 1e-9

    def test_certain_package_has_tight_interval(self):
        footprints, popcon = self._inputs()
        ci = bootstrap_importance(footprints, popcon, n_boot=100,
                                  seed=3)["read"]
        assert ci.width < 1e-9

    def test_small_survey_wider_than_large(self):
        footprints_small, popcon_small = self._inputs(total=200)
        footprints_large, popcon_large = self._inputs(total=2_000_000)
        small = bootstrap_importance(footprints_small, popcon_small,
                                     n_boot=150, seed=4)
        large = bootstrap_importance(footprints_large, popcon_large,
                                     n_boot=150, seed=4)
        assert (small["borderline_api"].width
                > large["borderline_api"].width)

    def test_deterministic_given_seed(self):
        footprints, popcon = self._inputs()
        first = bootstrap_importance(footprints, popcon, n_boot=50,
                                     seed=7)
        second = bootstrap_importance(footprints, popcon, n_boot=50,
                                      seed=7)
        assert first["borderline_api"] == second["borderline_api"]


class TestBands:
    def test_band_classification(self):
        ci = ImportanceInterval("x", point=0.5, low=0.4, high=0.6)
        assert ci.band() == "mid"
        assert ci.band_stable

    def test_band_instability_detected(self):
        ci = ImportanceInterval("x", point=0.09, low=0.05, high=0.15)
        assert not ci.band_stable

    def test_unstable_bands_sorted_by_width(self):
        intervals = {
            "a": ImportanceInterval("a", 0.09, 0.01, 0.2),
            "b": ImportanceInterval("b", 0.09, 0.08, 0.12),
            "c": ImportanceInterval("c", 0.5, 0.4, 0.6),
        }
        unstable = unstable_bands(intervals)
        assert [ci.api for ci in unstable] == ["a", "b"]


class TestOnMeasuredArchive:
    def test_survey_noise_is_small_at_popcon_scale(self, study):
        """With 2.9M survey installations the paper's bands are robust
        to sampling noise: very few band-unstable APIs."""
        measured, unstable, widest = survey_noise_report(
            dict(list(study.footprints.items())[:150]),
            study.popcon, n_boot=60, seed=5)
        assert measured > 100
        assert widest < 0.05
        assert unstable <= measured * 0.05
