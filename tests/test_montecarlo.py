"""Monte-Carlo validation of the Appendix A formulas."""

import random

import pytest

from repro.analysis.footprint import Footprint
from repro.metrics import (
    api_importance,
    approximation_error_report,
    empirical_api_importance,
    empirical_weighted_completeness,
    sample_installation,
    weighted_completeness,
)
from repro.packages import PopularityContest


def _fp(*syscalls):
    return Footprint.build(syscalls=syscalls)


class TestSampling:
    def test_certain_packages_always_drawn(self):
        rng = random.Random(1)
        installation = sample_installation(
            ["core", "rare"], [1.0, 0.0], rng)
        assert installation == {"core"}

    def test_distribution_matches_probability(self):
        rng = random.Random(2)
        hits = sum(
            1 for _ in range(4000)
            if "p" in sample_installation(["p"], [0.3], rng))
        assert hits / 4000 == pytest.approx(0.3, abs=0.03)


class TestImportanceConvergence:
    """Appendix A.1's product formula against direct simulation."""

    def _inputs(self):
        footprints = {
            "a": _fp("socket"), "b": _fp("socket"), "c": _fp("socket"),
        }
        popcon = PopularityContest(1000, {"a": 400, "b": 300,
                                          "c": 100})
        return footprints, popcon

    def test_formula_matches_simulation(self):
        footprints, popcon = self._inputs()
        analytic = api_importance("socket", footprints, popcon)
        empirical = empirical_api_importance(
            "socket", footprints, popcon, n_samples=6000, seed=3)
        assert empirical == pytest.approx(analytic, abs=0.02)

    def test_unused_api_zero_everywhere(self):
        footprints, popcon = self._inputs()
        assert empirical_api_importance(
            "mbind", footprints, popcon) == 0.0


class TestCompletenessApproximation:
    """Appendix A.2 approximates E[ratio] with a ratio of
    expectations; measure the error."""

    def _inputs(self):
        footprints = {f"p{i}": _fp("read") for i in range(12)}
        popcon = PopularityContest(
            1000, {f"p{i}": 1000 - i * 70 for i in range(12)})
        return footprints, popcon

    def test_full_support_exact(self):
        footprints, popcon = self._inputs()
        empirical = empirical_weighted_completeness(
            set(footprints), footprints, popcon, n_samples=500,
            seed=4)
        assert empirical == pytest.approx(1.0)

    def test_no_support_exact(self):
        footprints, popcon = self._inputs()
        empirical = empirical_weighted_completeness(
            set(), footprints, popcon, n_samples=500, seed=5)
        assert empirical == 0.0

    def test_ratio_of_expectations_close(self):
        footprints, popcon = self._inputs()
        supported = {f"p{i}" for i in range(6)}
        report = approximation_error_report(
            supported, footprints, popcon, n_samples=6000, seed=6)
        # The approximation is good but not exact — a few percent at
        # this scale.
        assert report["absolute_error"] < 0.05
        analytic = weighted_completeness(
            ["read"], {pkg: footprints[pkg] for pkg in supported},
            popcon)  # sanity: helper usable here too
        assert 0.0 <= report["analytic"] <= 1.0

    def test_deterministic_given_seed(self):
        footprints, popcon = self._inputs()
        supported = {f"p{i}" for i in range(6)}
        first = empirical_weighted_completeness(
            supported, footprints, popcon, n_samples=300, seed=7)
        second = empirical_weighted_completeness(
            supported, footprints, popcon, n_samples=300, seed=7)
        assert first == second


class TestOnMeasuredArchive:
    def test_appendix_a1_holds_on_archive(self, study):
        analytic = study.importance("syscall")["kexec_load"]
        empirical = empirical_api_importance(
            "kexec_load", study.footprints, study.popcon,
            n_samples=8000, seed=8)
        assert empirical == pytest.approx(analytic, abs=0.01)

    def test_appendix_a2_error_small_on_archive(self, study):
        supported_apis = frozenset(study.syscall_ranking()[:200])
        from repro.metrics import supported_packages
        supported = supported_packages(
            supported_apis, study.footprints, study.repository)
        report = approximation_error_report(
            supported, study.footprints, study.popcon,
            n_samples=800, seed=9)
        assert report["absolute_error"] < 0.08
