"""Trend and diff queries over a release train.

`repro.metrics.trends` is the engine behind `/v1/trend/*`,
`/v1/release/diff`, and `series diff` in the CLI.  These tests pin:
the duck-typed release source (a DatasetSeries and a plain dataset
sequence answer identically), `release_diff` == `UsageDiff.between`
over the eager releases, trend payload shapes, and the exact
ValueError surface the serve layer maps to 400 envelopes.
"""

import pytest

from repro.metrics import (UsageDiff, completeness_trend,
                           importance_table, importance_trend,
                           release_diff, weighted_completeness)
from repro.series import build_series
from repro.synth import EvolutionConfig, evolve_corpus
from repro.synth.paper import PaperScaleConfig


@pytest.fixture(scope="module")
def datasets():
    ecosystem = evolve_corpus(EvolutionConfig(
        n_releases=4, base=PaperScaleConfig.at_scale(0.005, seed=7),
        seed=7))
    return ecosystem.datasets()


@pytest.fixture(scope="module")
def series(datasets):
    return build_series(datasets)


class TestReleaseDiff:
    def test_matches_direct_usage_diff(self, datasets, series):
        for weighted in (False, True):
            via_series = release_diff(series, 0, 3,
                                      weighted=weighted)
            direct = UsageDiff.between(datasets[0], datasets[3],
                                       dimension="syscall",
                                       weighted=weighted)
            assert [(d.api, d.before, d.after)
                    for d in via_series.risers(50)] == \
                [(d.api, d.before, d.after)
                 for d in direct.risers(50)]
            assert via_series.migrated_pairs() == \
                direct.migrated_pairs()

    def test_sequence_source_answers_like_a_series(self, datasets,
                                                   series):
        from_seq = release_diff(datasets, 1, 2)
        from_series = release_diff(series, 1, 2)
        assert [(d.api, d.before, d.after)
                for d in from_seq.fallers(50)] == \
            [(d.api, d.before, d.after)
             for d in from_series.fallers(50)]

    def test_method_delegates(self, series):
        a = series.release_diff(0, 3, noise_floor=0.05)
        b = release_diff(series, 0, 3, noise_floor=0.05)
        assert [(d.api, d.delta) for d in a.risers(10)] == \
            [(d.api, d.delta) for d in b.risers(10)]

    @pytest.mark.parametrize("frm,to", [(-1, 2), (0, 99), ("x", 1)])
    def test_bad_release_raises_value_error(self, series, frm, to):
        with pytest.raises(ValueError):
            release_diff(series, frm, to)


class TestImportanceTrend:
    def test_values_match_per_release_tables(self, datasets, series):
        trend = importance_trend(series, apis=["open", "close"])
        assert trend["apis"] == ["close", "open"]
        assert trend["releases"] == [0, 1, 2, 3]
        assert trend["from"] == 0 and trend["to"] == 3
        for api in trend["apis"]:
            expected = [importance_table(d).get(api, 0.0)
                        for d in datasets]
            assert trend["trend"][api] == expected

    def test_default_apis_are_the_newest_top(self, datasets, series):
        trend = importance_trend(series, limit=3)
        newest = importance_table(datasets[-1])
        top = [api for api, _ in sorted(
            newest.items(), key=lambda kv: (-kv[1], kv[0]))][:3]
        assert trend["apis"] == sorted(top) or trend["apis"] == top
        assert len(trend["apis"]) == 3
        for api in trend["apis"]:
            assert len(trend["trend"][api]) == 4

    def test_range_windows_the_releases(self, datasets, series):
        trend = importance_trend(series, apis=["open"], start=1,
                                 stop=2)
        assert trend["releases"] == [1, 2]
        assert trend["trend"]["open"] == [
            importance_table(datasets[1]).get("open", 0.0),
            importance_table(datasets[2]).get("open", 0.0)]

    def test_unweighted_uses_usage_tables(self, datasets, series):
        trend = importance_trend(series, apis=["open"],
                                 weighted=False)
        expected = [d.usage_table("syscall",
                                  ignore_empty=False).get("open", 0.0)
                    for d in datasets]
        assert trend["trend"]["open"] == expected

    def test_validation_errors(self, series):
        with pytest.raises(ValueError):
            importance_trend(series, apis=[])
        with pytest.raises(ValueError):
            importance_trend(series, limit=0)
        with pytest.raises(ValueError):
            importance_trend(series, start=2, stop=1)
        with pytest.raises(ValueError):
            importance_trend(series, start=0, stop=44)


class TestCompletenessTrend:
    def test_values_match_weighted_completeness(self, datasets,
                                                series):
        table = importance_table(datasets[-1])
        supported = [api for api, _ in sorted(
            table.items(), key=lambda kv: (-kv[1], kv[0]))][:40]
        trend = completeness_trend(series, supported)
        assert trend["supported"] == sorted(set(supported))
        assert trend["values"] == [
            weighted_completeness(supported, d) for d in datasets]

    def test_fixed_set_drifts_release_over_release(self, series):
        # The longitudinal story: a frozen API set's completeness is
        # not constant once the ecosystem starts moving under it.
        head = series.at(series.n_releases - 1)
        table = importance_table(head)
        # Support everything the head uses except its five least
        # important APIs — a near-complete system whose coverage of
        # the long tail moves as the tail itself churns.
        rare = set(sorted((a for a, v in table.items() if v > 0),
                          key=lambda a: (table[a], a))[:5])
        supported = [a for a, v in table.items()
                     if v > 0 and a not in rare]
        trend = series.completeness_trend(supported)
        assert len(trend["values"]) == series.n_releases
        assert all(0.0 <= v <= 1.0 for v in trend["values"])
        assert len(set(trend["values"])) > 1

    def test_empty_supported_set_is_allowed(self, series):
        trend = completeness_trend(series, [])
        assert trend["supported"] == []
        assert all(0.0 <= v < 1.0 for v in trend["values"])

    def test_range_validation(self, series):
        with pytest.raises(ValueError):
            completeness_trend(series, ["open"], start=-1)
        with pytest.raises(ValueError):
            completeness_trend(series, ["open"], stop="tail")
