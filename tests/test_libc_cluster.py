"""libc co-usage decomposition tests (§3.5 extension)."""

import pytest

from repro.analysis.footprint import Footprint
from repro.security.libc_cluster import (
    _communities_label_propagation,
    co_usage_edges,
    decompose_libc,
    evaluate_decomposition,
)


def _fp(*symbols):
    return Footprint.build(libc_symbols=symbols)


def _two_cliques():
    """Two obvious co-usage groups plus an unused symbol."""
    footprints = {}
    for index in range(6):
        footprints[f"stdio-{index}"] = _fp("printf", "fopen", "fread")
        footprints[f"net-{index}"] = _fp("socket", "connect", "send")
    sizes = {name: 10 for name in
             ("printf", "fopen", "fread", "socket", "connect",
              "send", "dead_symbol")}
    return footprints, sizes


class TestCoUsageEdges:
    def test_pairs_within_footprints(self):
        footprints, _ = _two_cliques()
        edges = co_usage_edges(footprints, min_weight=2)
        assert any({"printf", "fopen"} == set(edge)
                   for edge in edges)

    def test_no_cross_group_edges(self):
        footprints, _ = _two_cliques()
        edges = co_usage_edges(footprints, min_weight=2)
        for a, b in edges:
            same_stdio = {a, b} <= {"printf", "fopen", "fread"}
            same_net = {a, b} <= {"socket", "connect", "send"}
            assert same_stdio or same_net, (a, b)

    def test_min_weight_filters(self):
        footprints = {"one": _fp("a_sym", "b_sym")}
        assert co_usage_edges(footprints, min_weight=2) == {}
        assert co_usage_edges(footprints, min_weight=1)


class TestDecomposition:
    def test_separates_cliques(self):
        footprints, sizes = _two_cliques()
        subs = decompose_libc(footprints, sizes,
                              max_sub_libraries=6, min_weight=2)
        by_symbol = {}
        for lib in subs:
            for symbol in lib.symbols:
                by_symbol[symbol] = lib.index
        assert by_symbol["printf"] == by_symbol["fopen"]
        assert by_symbol["socket"] == by_symbol["connect"]
        assert by_symbol["printf"] != by_symbol["socket"]

    def test_unused_symbols_quarantined(self):
        footprints, sizes = _two_cliques()
        subs = decompose_libc(footprints, sizes,
                              max_sub_libraries=6, min_weight=2)
        (unused_lib,) = [lib for lib in subs
                         if "dead_symbol" in lib.symbols]
        assert unused_lib.symbols == frozenset({"dead_symbol"})

    def test_partition_is_exact(self):
        footprints, sizes = _two_cliques()
        subs = decompose_libc(footprints, sizes,
                              max_sub_libraries=6, min_weight=2)
        seen = []
        for lib in subs:
            seen.extend(lib.symbols)
        assert sorted(seen) == sorted(set(seen))  # disjoint
        assert set(seen) == set(sizes)            # complete

    def test_sizes_accumulate(self):
        footprints, sizes = _two_cliques()
        subs = decompose_libc(footprints, sizes,
                              max_sub_libraries=6, min_weight=2)
        assert sum(lib.code_bytes for lib in subs) == sum(
            sizes.values())


class TestEvaluation:
    def test_split_beats_monolith(self):
        footprints, sizes = _two_cliques()
        subs = decompose_libc(footprints, sizes,
                              max_sub_libraries=6, min_weight=2)
        report = evaluate_decomposition(subs, footprints)
        assert report.loaded_fraction < 1.0
        assert report.mean_libraries_loaded >= 1.0

    def test_empty_archive(self):
        report = evaluate_decomposition([], {})
        assert report.mean_loaded_bytes == 0


class TestLabelPropagationFallback:
    def test_finds_the_cliques(self):
        footprints, sizes = _two_cliques()
        edges = co_usage_edges(footprints, min_weight=2)
        nodes = sorted({n for edge in edges for n in edge})
        communities = _communities_label_propagation(nodes, edges)
        as_sets = [set(c) for c in communities]
        assert {"printf", "fopen", "fread"} in as_sets
        assert {"socket", "connect", "send"} in as_sets


class TestOnMeasuredArchive:
    def test_decomposition_saves_memory(self, study):
        from repro.security.libc_strip import function_sizes
        from repro.synth.runtime_gen import generate_libc
        sizes = function_sizes(generate_libc())
        subs = decompose_libc(study.footprints, sizes)
        report = evaluate_decomposition(subs, study.footprints)
        # §3.5's claim: decomposing lowers per-process memory cost.
        assert report.loaded_fraction < 0.85
        assert 2 <= len(subs) <= 14
