"""Tests for the syscall table and vectored opcode catalogues."""

import pytest

from repro.syscalls import (
    ALL_NAMES,
    BY_NAME,
    BY_NUMBER,
    LIVE_NAMES,
    RETIRED_NAMES,
    SYSCALL_COUNT,
    SYSCALLS,
    Lifecycle,
    categories,
    fcntl_ops,
    ioctl,
    lookup,
    name_of,
    number_of,
    prctl_ops,
    pseudofiles,
)


class TestSyscallTable:
    def test_count_matches_kernel_3_19(self):
        # 0..322 (execveat landed in 3.19)
        assert SYSCALL_COUNT == 323

    def test_numbers_are_dense_from_zero(self):
        numbers = sorted(s.number for s in SYSCALLS)
        assert numbers == list(range(SYSCALL_COUNT))

    def test_names_unique(self):
        assert len({s.name for s in SYSCALLS}) == SYSCALL_COUNT

    @pytest.mark.parametrize("number,name", [
        (0, "read"), (1, "write"), (2, "open"), (9, "mmap"),
        (16, "ioctl"), (21, "access"), (57, "fork"), (59, "execve"),
        (72, "fcntl"), (157, "prctl"), (202, "futex"),
        (231, "exit_group"), (269, "faccessat"), (317, "seccomp"),
        (322, "execveat"),
    ])
    def test_well_known_numbers(self, number, name):
        assert name_of(number) == name
        assert number_of(name) == number

    def test_lookup_by_name_and_number(self):
        assert lookup("read") is lookup(0)
        assert lookup("nope") is None
        assert lookup(999) is None

    def test_retired_set(self):
        for name in ("uselib", "nfsservctl", "afs_syscall", "vserver",
                     "security", "tuxcall", "create_module",
                     "set_thread_area", "_sysctl"):
            assert name in RETIRED_NAMES

    def test_live_and_retired_partition(self):
        internal = {s.name for s in SYSCALLS
                    if s.lifecycle == Lifecycle.KERNEL_INTERNAL}
        assert LIVE_NAMES | RETIRED_NAMES | internal == ALL_NAMES
        assert not LIVE_NAMES & RETIRED_NAMES

    def test_restart_syscall_kernel_internal(self):
        assert (BY_NAME["restart_syscall"].lifecycle
                == Lifecycle.KERNEL_INTERNAL)

    def test_categories_cover_everything(self):
        grouped = categories()
        total = sum(len(group) for group in grouped.values())
        assert total == SYSCALL_COUNT

    def test_file_category_contains_core_io(self):
        names = {s.name for s in categories()["file"]}
        assert {"read", "write", "open", "close"} <= names

    def test_at_family_grouped(self):
        names = {s.name for s in categories()["file-at"]}
        assert "openat" in names and "faccessat" in names


class TestIoctlTable:
    def test_total_defined_matches_paper(self):
        assert len(ioctl.IOCTLS) == ioctl.TOTAL_DEFINED == 635

    def test_codes_unique(self):
        assert len({d.code for d in ioctl.IOCTLS}) == 635

    def test_names_unique(self):
        assert len({d.name for d in ioctl.IOCTLS}) == 635

    @pytest.mark.parametrize("name,code", [
        ("TCGETS", 0x5401), ("TCSETS", 0x5402), ("TIOCGWINSZ", 0x5413),
        ("FIONREAD", 0x541B), ("FIONBIO", 0x5421),
        ("KVM_RUN", 0xAE80),
    ])
    def test_real_codes(self, name, code):
        assert ioctl.BY_NAME[name].code == code

    def test_ubiquitous_head_is_52(self):
        assert len(ioctl.UBIQUITOUS_NAMES) == 52

    def test_ubiquitous_mostly_tty(self):
        tty = [n for n in ioctl.UBIQUITOUS_NAMES
               if ioctl.BY_NAME[n].group in ("tty", "generic")]
        assert len(tty) == 47

    def test_used_names_default_280(self):
        used = ioctl.used_names()
        assert len(used) == 280
        assert set(ioctl.UBIQUITOUS_NAMES) <= set(used)

    def test_used_names_prefers_real_subsystems(self):
        used = ioctl.used_names(100)
        drivers = [n for n in used if n.startswith("DRV_")]
        assert not drivers[:50]  # synthetic tail comes last


class TestFcntlTable:
    def test_18_operations(self):
        assert fcntl_ops.TOTAL_DEFINED == 18

    def test_eleven_ubiquitous(self):
        assert len(fcntl_ops.UBIQUITOUS_NAMES) == 11

    @pytest.mark.parametrize("name,code", [
        ("F_DUPFD", 0), ("F_GETFD", 1), ("F_SETFD", 2), ("F_GETFL", 3),
        ("F_SETLEASE", 1024), ("F_DUPFD_CLOEXEC", 1030),
    ])
    def test_real_codes(self, name, code):
        assert fcntl_ops.BY_NAME[name].code == code

    def test_ubiquitous_subset_of_defined(self):
        assert set(fcntl_ops.UBIQUITOUS_NAMES) <= set(fcntl_ops.BY_NAME)


class TestPrctlTable:
    def test_44_operations(self):
        assert prctl_ops.TOTAL_DEFINED == 44

    def test_nine_ubiquitous(self):
        assert len(prctl_ops.UBIQUITOUS_NAMES) == 9

    def test_eighteen_common(self):
        assert len(prctl_ops.COMMON_NAMES) == 18

    @pytest.mark.parametrize("name,code", [
        ("PR_SET_PDEATHSIG", 1), ("PR_SET_NAME", 15),
        ("PR_SET_SECCOMP", 22), ("PR_SET_NO_NEW_PRIVS", 38),
    ])
    def test_real_codes(self, name, code):
        assert prctl_ops.BY_NAME[name].code == code

    def test_codes_unique(self):
        assert len({d.code for d in prctl_ops.PRCTLS}) == 44


class TestPseudoFiles:
    def test_essential_paths_include_dev_null(self):
        assert "/dev/null" in pseudofiles.ESSENTIAL_PATHS
        assert "/proc/cpuinfo" in pseudofiles.ESSENTIAL_PATHS

    def test_tiers_partition(self):
        total = sum(len(pseudofiles.by_tier(t))
                    for t in ("essential", "common", "specific",
                              "admin"))
        assert total == len(pseudofiles.PSEUDO_FILES)

    def test_filesystem_split(self):
        for entry in pseudofiles.PSEUDO_FILES:
            assert entry.path.startswith(f"/{entry.filesystem}")

    def test_is_pseudo_path(self):
        assert pseudofiles.is_pseudo_path("/proc/cpuinfo")
        assert pseudofiles.is_pseudo_path("/dev/null")
        assert pseudofiles.is_pseudo_path("/sys/module")
        assert not pseudofiles.is_pseudo_path("/etc/passwd")
        assert not pseudofiles.is_pseudo_path("relative/proc")

    def test_dev_kvm_is_application_specific(self):
        assert pseudofiles.BY_PATH["/dev/kvm"].tier == "specific"
