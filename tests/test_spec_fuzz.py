"""Property-based end-to-end fuzz: arbitrary binary specifications
round-trip through generation, disassembly, and resolution.

For any randomly drawn program shape — call chains, direct syscalls,
vectored opcodes, embedded pseudo-paths, libc imports — the analysis
pipeline must recover exactly the planted footprint.  This is the
strongest statement of generator/analyzer agreement in the suite.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis.binary import BinaryAnalysis
from repro.analysis.dynamic import trace_executable
from repro.analysis.resolver import FootprintResolver, LibraryIndex
from repro.syscalls import fcntl_ops, ioctl, prctl_ops
from repro.syscalls.table import LIVE_NAMES
from repro.synth.codegen import BinarySpec, FunctionSpec, generate_binary

_SYSCALL_NAMES = sorted(LIVE_NAMES)
_IOCTL_NAMES = [d.name for d in ioctl.IOCTLS[:80]]
_FCNTL_NAMES = [d.name for d in fcntl_ops.FCNTLS]
_PRCTL_NAMES = [d.name for d in prctl_ops.PRCTLS]
_PSEUDO_PATHS = ["/dev/null", "/proc/cpuinfo", "/proc/%d/stat",
                 "/sys/block", "/dev/urandom"]

# A miniature libc with known per-export syscalls (including the
# vectored wrappers, which generated call sites jump through).
_MINI_LIBC_EXPORTS = {
    "printf": ("write",),
    "fopen": ("open", "fstat"),
    "nanosleep": ("nanosleep",),
    "socket": ("socket",),
    "ioctl": ("ioctl",),
    "fcntl": ("fcntl",),
    "prctl": ("prctl",),
}


def _mini_libc_index() -> LibraryIndex:
    functions = [
        FunctionSpec(name=name, direct_syscalls=syscalls,
                     exported=True)
        for name, syscalls in _MINI_LIBC_EXPORTS.items()
    ]
    spec = BinarySpec(name="libc.so.6", functions=functions,
                      needed=(), soname="libc.so.6",
                      entry_function=None)
    index = LibraryIndex()
    index.add(BinaryAnalysis.from_bytes(generate_binary(spec)))
    return index


_INDEX = _mini_libc_index()

_function_strategy = st.fixed_dictionaries({
    "syscalls": st.lists(st.sampled_from(_SYSCALL_NAMES), max_size=5,
                         unique=True),
    "ioctls": st.lists(st.sampled_from(_IOCTL_NAMES), max_size=3,
                       unique=True),
    "fcntls": st.lists(st.sampled_from(_FCNTL_NAMES), max_size=2,
                       unique=True),
    "prctls": st.lists(st.sampled_from(_PRCTL_NAMES), max_size=2,
                       unique=True),
    "imports": st.lists(
        st.sampled_from(["printf", "fopen", "nanosleep", "socket"]),
        max_size=3, unique=True),
    "strings": st.lists(st.sampled_from(_PSEUDO_PATHS), max_size=2,
                        unique=True),
})


def _build_spec(function_plans, pointer_chain):
    """Functions form a call chain fn0 -> fn1 -> ...; optionally the
    last edge is a function pointer instead of a direct call."""
    functions = []
    count = len(function_plans)
    for position, plan in enumerate(function_plans):
        is_last = position == count - 1
        next_name = None if is_last else f"fn{position + 1}"
        use_pointer = pointer_chain and not is_last and position == 0
        functions.append(FunctionSpec(
            name=f"fn{position}",
            direct_syscalls=tuple(plan["syscalls"]),
            ioctl_ops=tuple(plan["ioctls"]),
            fcntl_ops=tuple(plan["fcntls"]),
            prctl_ops=tuple(plan["prctls"]),
            libc_calls=tuple(plan["imports"]),
            strings=tuple(plan["strings"]),
            local_calls=(() if (next_name is None or use_pointer)
                         else (next_name,)),
            take_pointer_of=((next_name,) if use_pointer
                             and next_name else ()),
        ))
    return BinarySpec(name="fuzzed", functions=functions,
                      needed=("libc.so.6",), entry_function="fn0")


def _expected(function_plans):
    syscalls, ioctls, fcntls, prctls, pseudo, libc = (
        set(), set(), set(), set(), set(), set())
    for plan in function_plans:
        syscalls |= set(plan["syscalls"])
        ioctls |= set(plan["ioctls"])
        fcntls |= set(plan["fcntls"])
        prctls |= set(plan["prctls"])
        pseudo |= {p.replace("%s", "%d").replace("%u", "%d")
                   for p in plan["strings"]}
        for name in plan["imports"]:
            libc.add(name)
            syscalls |= set(_MINI_LIBC_EXPORTS[name])
        if plan["ioctls"]:
            syscalls.add("ioctl")
            libc.add("ioctl")
        if plan["fcntls"]:
            syscalls.add("fcntl")
            libc.add("fcntl")
        if plan["prctls"]:
            syscalls.add("prctl")
            libc.add("prctl")
    return syscalls, ioctls, fcntls, prctls, pseudo, libc


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(_function_strategy, min_size=1, max_size=4),
       st.booleans())
def test_random_spec_round_trips(function_plans, pointer_chain):
    spec = _build_spec(function_plans, pointer_chain)
    analysis = BinaryAnalysis.from_bytes(generate_binary(spec))
    resolver = FootprintResolver(_INDEX)
    footprint = resolver.resolve_executable(analysis)
    (syscalls, ioctls, fcntls, prctls,
     pseudo, libc) = _expected(function_plans)
    assert syscalls <= footprint.syscalls
    assert footprint.ioctls == frozenset(ioctls)
    assert footprint.fcntls == frozenset(fcntls)
    assert footprint.prctls == frozenset(prctls)
    assert frozenset(pseudo) <= footprint.pseudo_files
    assert frozenset(libc) <= footprint.libc_symbols


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(_function_strategy, min_size=1, max_size=3))
def test_random_spec_dynamic_subset_of_static(function_plans):
    """For any generated program, a dynamic run observes a subset of
    the static footprint (the §2.3 invariant, fuzzed)."""
    spec = _build_spec(function_plans, pointer_chain=False)
    analysis = BinaryAnalysis.from_bytes(generate_binary(spec))
    resolver = FootprintResolver(_INDEX)
    static = resolver.resolve_executable(analysis)
    trace = trace_executable(analysis, _INDEX)
    observed = {name for name in trace.syscall_names()
                if name not in ("exit", "exit_group")}
    assert observed <= static.syscalls | {"ioctl", "fcntl", "prctl"}
