"""Compat layer tests: system models and libc-variant evaluation."""

import pytest

from repro.analysis.footprint import Footprint
from repro.compat import (
    FREEBSD_EMU,
    L4LINUX,
    UML,
    evaluate_libc_variant,
    evaluate_system,
    graphene_model,
    graphene_plus_sched,
)
from repro.compat.systems import SystemModel, _exclude
from repro.libc.variants import EGLIBC, UCLIBC
from repro.packages import PopularityContest
from repro.syscalls.table import ALL_NAMES


class TestSystemModels:
    def test_counts_match_paper(self):
        assert UML.count == 284
        assert L4LINUX.count == 286
        assert FREEBSD_EMU.count == 224

    def test_supported_subsets_of_table(self):
        for system in (UML, L4LINUX, FREEBSD_EMU):
            assert system.supported <= ALL_NAMES

    def test_uml_missing_paper_suggestions(self):
        for name in ("name_to_handle_at", "iopl", "ioperm",
                     "perf_event_open"):
            assert name not in UML.supported

    def test_l4linux_missing_paper_suggestions(self):
        for name in ("quotactl", "migrate_pages", "kexec_load"):
            assert name not in L4LINUX.supported

    def test_freebsd_missing_paper_families(self):
        for name in ("inotify_init", "splice", "umount2",
                     "timerfd_create"):
            assert name not in FREEBSD_EMU.supported

    def test_core_calls_supported_everywhere(self):
        for system in (UML, L4LINUX, FREEBSD_EMU):
            for name in ("read", "write", "open", "mmap", "execve"):
                assert name in system.supported

    def test_exclude_validates_names(self):
        with pytest.raises(ValueError):
            _exclude({"not_a_syscall"})

    def test_missing_is_complement(self):
        assert UML.missing() == ALL_NAMES - UML.supported


class TestGrapheneConstruction:
    def test_size_and_missing_pair(self):
        ranking = sorted(ALL_NAMES)
        graphene = graphene_model(ranking)
        assert graphene.count == 143
        assert "sched_setscheduler" not in graphene.supported
        assert "sched_setparam" not in graphene.supported

    def test_plus_sched_adds_exactly_two(self):
        ranking = sorted(ALL_NAMES)
        graphene = graphene_model(ranking)
        plus = graphene_plus_sched(graphene)
        assert plus.count == 145
        assert "sched_setscheduler" in plus.supported

    def test_table6_suggested_also_missing(self):
        ranking = sorted(ALL_NAMES)
        graphene = graphene_model(ranking)
        for name in ("statfs", "utimes", "getxattr", "fallocate",
                     "eventfd2"):
            assert name not in graphene.supported


class TestEvaluation:
    def _inputs(self):
        footprints = {
            "basic": Footprint.build(syscalls=["read", "write"]),
            "quota": Footprint.build(syscalls=["read", "quotactl"]),
        }
        popcon = PopularityContest(100, {"basic": 100, "quota": 20})
        return footprints, popcon

    def test_evaluate_system_reports_completeness(self):
        footprints, popcon = self._inputs()
        system = SystemModel("demo", "1", frozenset({"read", "write"}))
        evaluation = evaluate_system(system, footprints, popcon)
        assert evaluation.weighted_completeness == pytest.approx(
            100 / 120)
        assert evaluation.suggested_apis == ("quotactl",)

    def test_evaluate_full_system(self):
        footprints, popcon = self._inputs()
        system = SystemModel("full", "1", frozenset(ALL_NAMES))
        evaluation = evaluate_system(system, footprints, popcon)
        assert evaluation.weighted_completeness == pytest.approx(1.0)
        assert evaluation.suggested_apis == ()


class TestLibcVariantEvaluation:
    def _inputs(self):
        footprints = {
            "plain": Footprint.build(syscalls=["read"],
                                     libc_symbols=["printf", "malloc"]),
            "fortified": Footprint.build(
                syscalls=["read"],
                libc_symbols=["__printf_chk", "malloc"]),
        }
        popcon = PopularityContest(100, {"plain": 50, "fortified": 50})
        return footprints, popcon

    def test_eglibc_supports_everything(self):
        footprints, popcon = self._inputs()
        evaluation = evaluate_libc_variant(EGLIBC, footprints, popcon)
        assert evaluation.raw_completeness == pytest.approx(1.0)
        assert evaluation.normalized_completeness == pytest.approx(1.0)

    def test_uclibc_raw_fails_fortified_binaries(self):
        footprints, popcon = self._inputs()
        evaluation = evaluate_libc_variant(UCLIBC, footprints, popcon)
        assert evaluation.raw_completeness == pytest.approx(0.5)
        assert evaluation.normalized_completeness == pytest.approx(1.0)

    def test_sample_missing_reports_normalized_demand(self):
        # fortify symbols normalize away; genuinely missing symbols
        # (secure_getenv is absent from uClibc) are reported.
        footprints = {
            "app": Footprint.build(
                libc_symbols=["__printf_chk", "secure_getenv"]),
        }
        popcon = PopularityContest(10, {"app": 10})
        evaluation = evaluate_libc_variant(UCLIBC, footprints, popcon)
        assert "secure_getenv" in evaluation.sample_missing
        assert "__printf_chk" not in evaluation.sample_missing
