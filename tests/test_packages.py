"""Tests for package, repository, and popcon models."""

import pytest
from hypothesis import given, strategies as st

from repro.packages import (
    BinaryArtifact,
    BinaryKind,
    GroundTruthFootprint,
    Package,
    PopularityContest,
    Repository,
    UnknownPackageError,
)


def _pkg(name, depends=(), artifacts=()):
    return Package(name, depends=list(depends),
                   artifacts=list(artifacts))


class TestBinaryArtifact:
    def test_elf_kinds(self):
        assert BinaryArtifact("a", BinaryKind.ELF_EXECUTABLE).is_elf
        assert BinaryArtifact("a", BinaryKind.SHARED_LIBRARY).is_elf
        assert BinaryArtifact("a", BinaryKind.ELF_STATIC).is_elf
        assert not BinaryArtifact("a", BinaryKind.SCRIPT).is_elf

    def test_executability(self):
        assert BinaryArtifact("a", BinaryKind.ELF_EXECUTABLE).is_executable
        assert BinaryArtifact("a", BinaryKind.SCRIPT).is_executable
        assert not BinaryArtifact(
            "a", BinaryKind.SHARED_LIBRARY).is_executable


class TestPackage:
    def test_selectors(self):
        package = _pkg("demo", artifacts=[
            BinaryArtifact("bin/x", BinaryKind.ELF_EXECUTABLE),
            BinaryArtifact("lib/y.so", BinaryKind.SHARED_LIBRARY),
            BinaryArtifact("bin/z", BinaryKind.SCRIPT,
                           interpreter="python"),
        ])
        assert len(package.executables()) == 2
        assert len(package.libraries()) == 1
        assert len(package.elf_artifacts()) == 2

    def test_artifact_lookup(self):
        artifact = BinaryArtifact("bin/x", BinaryKind.ELF_EXECUTABLE)
        package = _pkg("demo", artifacts=[artifact])
        assert package.artifact("bin/x") is artifact
        assert package.artifact("missing") is None


class TestGroundTruth:
    def test_merged_unions_sorted(self):
        a = GroundTruthFootprint(syscalls=("read", "open"))
        b = GroundTruthFootprint(syscalls=("write",),
                                 ioctls=("TCGETS",))
        merged = a.merged(b)
        assert merged.syscalls == ("open", "read", "write")
        assert merged.ioctls == ("TCGETS",)


class TestRepository:
    def test_add_and_lookup(self):
        repo = Repository([_pkg("a")])
        assert "a" in repo
        assert repo.get("a").name == "a"

    def test_duplicate_rejected(self):
        repo = Repository([_pkg("a")])
        with pytest.raises(ValueError):
            repo.add(_pkg("a"))

    def test_unknown_lookup_raises(self):
        with pytest.raises(UnknownPackageError):
            Repository().get("ghost")

    def test_len_and_iter(self):
        repo = Repository([_pkg("a"), _pkg("b")])
        assert len(repo) == 2
        assert {p.name for p in repo} == {"a", "b"}

    def test_dependency_closure_transitive(self):
        repo = Repository([
            _pkg("app", depends=["libfoo"]),
            _pkg("libfoo", depends=["libc"]),
            _pkg("libc"),
        ])
        assert repo.dependency_closure("app") == {
            "app", "libfoo", "libc"}

    def test_dependency_closure_handles_cycles(self):
        repo = Repository([
            _pkg("a", depends=["b"]),
            _pkg("b", depends=["a"]),
        ])
        assert repo.dependency_closure("a") == {"a", "b"}

    def test_dependency_closure_ignores_unknown(self):
        repo = Repository([_pkg("a", depends=["virtual-thing"])])
        assert repo.dependency_closure("a") == {"a"}

    def test_reverse_dependencies(self):
        repo = Repository([
            _pkg("app", depends=["lib"]),
            _pkg("tool", depends=["lib"]),
            _pkg("lib"),
        ])
        assert repo.reverse_dependencies("lib") == {"app", "tool"}

    def test_validate_reports_dangling(self):
        repo = Repository([_pkg("a", depends=["missing"])])
        assert repo.validate_dependencies() == ["a -> missing"]

    def test_topological_order_dependencies_first(self):
        repo = Repository([
            _pkg("app", depends=["lib"]),
            _pkg("lib", depends=["libc"]),
            _pkg("libc"),
        ])
        order = [p.name for p in repo.topological_order()]
        assert order.index("libc") < order.index("lib") < order.index(
            "app")

    def test_topological_order_total(self):
        repo = Repository([_pkg(f"p{i}") for i in range(5)])
        assert len(repo.topological_order()) == 5


class TestPopcon:
    def test_probability(self):
        popcon = PopularityContest(100, {"a": 25})
        assert popcon.install_probability("a") == 0.25
        assert popcon.install_probability("unknown") == 0.0

    def test_count_validation(self):
        with pytest.raises(ValueError):
            PopularityContest(10, {"a": 11})
        with pytest.raises(ValueError):
            PopularityContest(10, {"a": -1})
        with pytest.raises(ValueError):
            PopularityContest(0)

    def test_set_installations(self):
        popcon = PopularityContest(10)
        popcon.set_installations("x", 5)
        assert popcon.installations("x") == 5
        with pytest.raises(ValueError):
            popcon.set_installations("x", 11)

    def test_most_installed_ordering(self):
        popcon = PopularityContest(100, {"a": 5, "b": 80, "c": 80})
        top = popcon.most_installed(2)
        assert top == [("b", 80), ("c", 80)]

    def test_contains_and_len(self):
        popcon = PopularityContest(10, {"a": 1})
        assert "a" in popcon
        assert len(popcon) == 1


class TestPopconSynthesis:
    def test_essential_at_total(self):
        popcon = PopularityContest.synthesize(
            ["core", "x", "y"], total_installations=1000,
            essential=["core"])
        assert popcon.installations("core") == 1000

    def test_pinned_probability(self):
        popcon = PopularityContest.synthesize(
            ["a", "b"], total_installations=10000,
            pinned={"a": 0.36})
        assert popcon.install_probability("a") == pytest.approx(
            0.36, abs=0.001)

    def test_pinned_zero_yields_zero_installations(self):
        # Regression: the synthesized-tail floor of one installation
        # used to override an explicit 0.0 pin.
        popcon = PopularityContest.synthesize(
            ["a", "b"], total_installations=10000,
            pinned={"a": 0.0})
        assert popcon.installations("a") == 0
        assert popcon.install_probability("a") == 0.0

    def test_tiny_positive_pin_keeps_one_installation(self):
        # A strictly positive pin below 1/total must not truncate to
        # absent: only an explicit 0.0 pin means zero installations.
        popcon = PopularityContest.synthesize(
            ["a", "b"], total_installations=10000,
            pinned={"a": 1e-5})
        assert popcon.installations("a") == 1

    def test_deterministic(self):
        names = [f"pkg{i}" for i in range(50)]
        first = PopularityContest.synthesize(names, 10000, seed=3)
        second = PopularityContest.synthesize(names, 10000, seed=3)
        assert all(first.installations(n) == second.installations(n)
                   for n in names)

    def test_seed_changes_assignment(self):
        names = [f"pkg{i}" for i in range(50)]
        first = PopularityContest.synthesize(names, 10000, seed=1)
        second = PopularityContest.synthesize(names, 10000, seed=2)
        assert any(first.installations(n) != second.installations(n)
                   for n in names)

    @given(st.integers(1, 400))
    def test_counts_always_valid(self, n):
        names = [f"p{i}" for i in range(n)]
        popcon = PopularityContest.synthesize(
            names, total_installations=100000)
        for name in names:
            count = popcon.installations(name)
            assert 1 <= count <= 100000

    def test_heavy_tail_shape(self):
        names = [f"p{i}" for i in range(300)]
        popcon = PopularityContest.synthesize(names, 10 ** 6)
        probabilities = sorted(
            (popcon.install_probability(n) for n in names),
            reverse=True)
        # Zipf-like: head near the cap, median far below the head.
        assert probabilities[0] > 0.5
        assert probabilities[150] < probabilities[0] / 10
