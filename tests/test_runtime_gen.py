"""Synthetic runtime libraries: analysis must recover the catalogue."""

import pytest

from repro.analysis.binary import BinaryAnalysis
from repro.analysis.resolver import FootprintResolver, LibraryIndex
from repro.libc import runtime as RT
from repro.libc import symbols as LS
from repro.synth.runtime_gen import generate_runtime_images


@pytest.fixture(scope="module")
def runtime():
    images = generate_runtime_images()
    index = LibraryIndex()
    analyses = {}
    for soname, image in images.items():
        analysis = BinaryAnalysis.from_bytes(image, name=soname)
        analyses[soname] = analysis
        index.add(analysis)
    return images, analyses, FootprintResolver(index)


class TestImages(object):
    def test_all_five_images(self, runtime):
        images, _, _ = runtime
        assert set(images) == {
            "libc.so.6", "ld-linux-x86-64.so.2", "libpthread.so.0",
            "librt.so.1", "libdl.so.2"}

    def test_libc_exports_catalogue(self, runtime):
        _, analyses, _ = runtime
        exported = analyses["libc.so.6"].exported
        for symbol in LS.LIBC_SYMBOLS:
            assert symbol.name in exported, symbol.name

    def test_pthread_exports(self, runtime):
        _, analyses, _ = runtime
        exported = analyses["libpthread.so.0"].exported
        assert "pthread_create" in exported
        assert "pthread_mutex_lock" in exported

    def test_ld_so_has_no_dependencies(self, runtime):
        _, analyses, _ = runtime
        assert analyses["ld-linux-x86-64.so.2"].needed == []


class TestFootprintRecovery:
    """Disassembly of the generated libc recovers the ground-truth
    closure for every export — the central validation of the
    generator/analyzer pair."""

    def test_every_export_closure_matches(self, runtime):
        from repro.synth.runtime_gen import (
            LIBC_FCNTL_OPS,
            LIBC_IOCTL_OPS,
            LIBC_PRCTL_OPS,
        )
        _, _, resolver = runtime
        closure = LS.syscall_footprint_closure()
        mismatches = []
        for symbol in LS.LIBC_SYMBOLS:
            if symbol.name == "syscall":
                continue  # intentionally unresolvable
            recovered = resolver.resolve_export("libc.so.6",
                                                symbol.name)
            expected = set(closure[symbol.name])
            if symbol.name == "__libc_start_main":
                expected |= set(RT.LIBC_STARTUP_FOOTPRINT)
            # Wrappers carrying vectored opcodes call the vectored
            # syscall itself (and internal callees inherit them).
            for callee in {symbol.name} | set(symbol.internal_calls):
                if callee in LIBC_IOCTL_OPS:
                    expected.add("ioctl")
                if callee in LIBC_FCNTL_OPS:
                    expected.add("fcntl")
                if callee in LIBC_PRCTL_OPS:
                    expected.add("prctl")
            if recovered.syscalls != frozenset(expected):
                mismatches.append(
                    (symbol.name, recovered.syscalls, expected))
        assert not mismatches, mismatches[:5]

    def test_syscall_wrapper_is_unresolved(self, runtime):
        _, _, resolver = runtime
        footprint = resolver.resolve_export("libc.so.6", "syscall")
        assert footprint.syscalls == frozenset()
        assert footprint.unresolved_sites >= 1

    def test_isatty_carries_tcgets(self, runtime):
        _, _, resolver = runtime
        footprint = resolver.resolve_export("libc.so.6", "isatty")
        assert "TCGETS" in footprint.ioctls

    def test_lockf_carries_lock_fcntls(self, runtime):
        _, _, resolver = runtime
        footprint = resolver.resolve_export("libc.so.6", "lockf")
        assert {"F_GETLK", "F_SETLK", "F_SETLKW"} <= footprint.fcntls

    def test_pthread_setname_carries_prctl(self, runtime):
        _, _, resolver = runtime
        footprint = resolver.resolve_export("libpthread.so.0",
                                            "pthread_setname_np")
        assert "PR_SET_NAME" in footprint.prctls
        assert "prctl" in footprint.syscalls

    def test_ld_so_startup_footprint(self, runtime):
        _, _, resolver = runtime
        footprint = resolver.resolve_export("ld-linux-x86-64.so.2",
                                            "_dl_start")
        assert frozenset(RT.LD_SO_FOOTPRINT) <= footprint.syscalls

    def test_librt_mq_footprints(self, runtime):
        _, _, resolver = runtime
        footprint = resolver.resolve_export("librt.so.1", "mq_open")
        assert "mq_open" in footprint.syscalls

    def test_startup_includes_sched_pair(self, runtime):
        """Table 6's Graphene lever: the spawn-path scheduling calls
        are part of every program's startup closure."""
        _, _, resolver = runtime
        footprint = resolver.resolve_export("libc.so.6",
                                            "__libc_start_main")
        assert "sched_setscheduler" in footprint.syscalls
        assert "sched_setparam" in footprint.syscalls

    def test_libc_pseudo_files(self, runtime):
        _, analyses, _ = runtime
        assert "/dev/ptmx" in analyses["libc.so.6"].pseudo_files
