"""The multi-release ecosystem evolution behind ``repro.series``.

Pins the contract the delta codec builds on: evolution is
deterministic in its config, every release shares one interned space,
survivors keep their relative order with additions appended at the
end (the canonical order the wire format assumes), libraries are never
retired, and popcon re-samples with continuity rather than fresh
draws.
"""

import pytest

from repro.analysis.footprint import Footprint
from repro.synth import EvolutionConfig, evolve_corpus
from repro.synth.paper import PaperScaleConfig


@pytest.fixture(scope="module")
def config():
    return EvolutionConfig(
        n_releases=4, base=PaperScaleConfig.at_scale(0.005, seed=5),
        seed=5)


@pytest.fixture(scope="module")
def evolved(config):
    return evolve_corpus(config)


class TestDeterminism:
    def test_rebuild_is_bit_identical(self, config, evolved):
        again = evolve_corpus(config)
        assert again.n_releases == evolved.n_releases
        for first, second in zip(evolved.releases, again.releases):
            assert first.dataset.packages == second.dataset.packages
            assert first.added == second.added
            assert first.dropped == second.dropped
            assert first.drifted == second.drifted
            for name in first.dataset.packages:
                assert first.dataset[name] == second.dataset[name]
            assert {name: first.popcon.installations(name)
                    for name in first.popcon.packages()} == \
                   {name: second.popcon.installations(name)
                    for name in second.popcon.packages()}

    def test_release_zero_is_the_base_corpus(self, evolved):
        assert evolved.releases[0].dataset \
            is evolved.base_corpus.dataset
        assert evolved.releases[0].added == ()
        assert evolved.releases[0].dropped == ()


class TestEvolutionShape:
    def test_all_releases_share_one_space(self, evolved):
        space = evolved.releases[0].dataset.space
        for release in evolved.releases[1:]:
            assert release.dataset.space is space

    def test_canonical_order_survivors_then_added(self, evolved):
        for prev, cur in zip(evolved.releases, evolved.releases[1:]):
            survivors = [name for name in prev.dataset.packages
                         if name not in set(cur.dropped)]
            assert list(cur.dataset.packages) == \
                survivors + list(cur.added)

    def test_dropped_and_added_bookkeeping(self, evolved):
        for prev, cur in zip(evolved.releases, evolved.releases[1:]):
            before = set(prev.dataset.packages)
            after = set(cur.dataset.packages)
            assert set(cur.dropped) <= before
            assert not set(cur.dropped) & after
            assert not set(cur.added) & before
            assert set(cur.added) <= after
            assert cur.added  # add_fraction > 0 always adds >= 1

    def test_libraries_are_never_dropped(self, evolved):
        libraries = {package.name
                     for package in evolved.base_corpus.repository
                     if package.category == "library"}
        assert libraries  # the corpus has a skeleton library layer
        for release in evolved.releases[1:]:
            assert not libraries & set(release.dropped)
            assert libraries <= set(release.dataset.packages)

    def test_drift_touches_syscalls_only(self, evolved):
        # Drift mutates the syscall set and nothing else.  A single
        # mutation can be a set-level no-op (adding calls already
        # present, then removing one of them), so require an actual
        # change somewhere across the run, not per package.
        changed = 0
        for prev, cur in zip(evolved.releases, evolved.releases[1:]):
            assert cur.drifted  # drift_fraction picks >= 1 at tiny N
            for name in cur.drifted:
                before = prev.dataset[name]
                after = cur.dataset[name]
                if after.syscalls != before.syscalls:
                    changed += 1
                assert after.ioctls == before.ioctls
                assert after.libc_symbols == before.libc_symbols
                assert after is not Footprint.EMPTY
        assert changed >= 1


class TestPopconContinuity:
    def test_total_installations_constant(self, evolved):
        totals = {release.popcon.total_installations
                  for release in evolved.releases}
        assert len(totals) == 1

    def test_every_package_is_surveyed(self, evolved):
        for release in evolved.releases:
            for name in release.dataset.packages:
                assert release.popcon.installations(name) >= 1

    def test_survivor_counts_persist_or_rescale(self, evolved):
        # Continuity, not a fresh draw: a surviving package's count
        # stays within a few sigma of its previous value; most stay
        # exactly equal (churn touches only a fraction per release).
        for prev, cur in zip(evolved.releases, evolved.releases[1:]):
            common = [name for name in cur.dataset.packages
                      if name not in set(cur.added)]
            unchanged = sum(
                1 for name in common
                if cur.popcon.installations(name)
                == prev.popcon.installations(name))
            assert unchanged >= len(common) // 2
