"""Calibration tests: every experiment reproduces the paper's shape.

These assert the *bands* the paper reports — who wins, by roughly what
factor, where crossovers fall — on the session-scoped reduced study.
Exact values differ (our substrate is a synthetic archive), and
EXPERIMENTS.md records paper-vs-measured side by side.
"""

import pytest

from repro.libc import symbols as LS
from repro.syscalls.table import ALL_NAMES


class TestFig1BinaryTypes:
    def test_elf_share_near_60_percent(self, study):
        data = study.fig1_binary_types().data
        elf_row = data["rows"][0]
        share = float(elf_row[2].rstrip("%"))
        assert 50 <= share <= 70  # paper: 60%

    def test_shell_is_top_interpreter(self, study):
        data = study.fig1_binary_types().data
        script_rows = [r for r in data["rows"][1:]]
        assert script_rows[0][0] == "script (dash)"  # paper: 15%

    def test_library_executable_split(self, study):
        stats = study.result.type_stats
        lib_share = (stats.elf_shared_libraries
                     / max(1, stats.elf_binaries))
        assert 0.35 <= lib_share <= 0.60  # paper: 52%

    def test_static_binaries_rare(self, study):
        stats = study.result.type_stats
        static_share = stats.elf_static / max(1, stats.elf_binaries)
        assert static_share < 0.02  # paper: 0.38%


class TestFig2SyscallImportance:
    def test_indispensable_head_near_224(self, study):
        bands = study.fig2_syscall_importance().data["bands"]
        assert 195 <= bands["indispensable"] <= 245  # paper: 224

    def test_over_10_percent_near_257(self, study):
        at_least_10 = study.fig2_syscall_importance().data[
            "at_least_10"]
        assert 230 <= at_least_10 <= 280  # paper: 257

    def test_nonzero_near_301(self, study):
        nonzero = study.fig2_syscall_importance().data["nonzero"]
        assert 285 <= nonzero <= 315  # paper: ~301

    def test_unused_near_18(self, study):
        bands = study.fig2_syscall_importance().data["bands"]
        assert 15 <= bands["unused"] <= 22  # paper: 18

    def test_series_is_inverted_cdf(self, study):
        series = study.fig2_syscall_importance().data["series"]
        assert series == sorted(series, reverse=True)
        assert series[0] >= 0.999
        assert series[-1] == 0.0


class TestTab1LibraryOnly:
    def test_paper_rows_present(self, study):
        rows = {row[0]: row for row in
                study.tab1_library_only_syscalls().data}
        for name in ("clock_settime", "iopl", "ioperm", "signalfd4"):
            assert name in rows, name
            assert rows[name][1] == "100.0%"

    def test_mbind_attributed_to_numa_libraries(self, study):
        rows = {row[0]: row for row in
                study.tab1_library_only_syscalls().data}
        assert "libnuma" in rows["mbind"][2]
        importance = float(rows["mbind"][1].rstrip("%")) / 100
        assert 0.25 <= importance <= 0.60  # paper: 36.0%

    def test_keyutils_band(self, study):
        rows = {row[0]: row for row in
                study.tab1_library_only_syscalls().data}
        importance = float(rows["keyctl"][1].rstrip("%")) / 100
        assert 0.15 <= importance <= 0.55  # paper: 27.2%

    def test_preadv_band(self, study):
        rows = {row[0]: row for row in
                study.tab1_library_only_syscalls().data}
        importance = float(rows["preadv"][1].rstrip("%")) / 100
        assert 0.05 <= importance <= 0.25  # paper: 11.7%


class TestTab2SinglePackage:
    def test_paper_examples_present(self, study):
        rows = {row[0]: row for row in
                study.tab2_single_package_syscalls().data}
        assert "kexec_load" in rows
        assert "kexec-tools" in rows["kexec_load"][2]
        assert "clock_adjtime" in rows
        assert "systemd" in rows["clock_adjtime"][2]

    def test_all_rows_low_importance(self, study):
        for row in study.tab2_single_package_syscalls().data:
            assert float(row[1].rstrip("%")) < 10.0


class TestTab3Unused:
    def test_count_matches_paper(self, study):
        rows = study.tab3_unused_syscalls().data
        assert 15 <= len(rows) <= 22  # paper: 18

    def test_paper_members(self, study):
        names = {row[0] for row in study.tab3_unused_syscalls().data}
        for expected in ("set_thread_area", "tuxcall", "sysfs",
                         "remap_file_pages", "mq_notify",
                         "lookup_dcookie", "restart_syscall",
                         "move_pages", "get_robust_list",
                         "rt_tgsigqueueinfo"):
            assert expected in names, expected

    def test_used_syscalls_not_listed(self, study):
        names = {row[0] for row in study.tab3_unused_syscalls().data}
        for used in ("read", "write", "mbind", "kexec_load"):
            assert used not in names


class TestFig3Tab4Curve:
    def test_landmarks_shape(self, study):
        curve = study.curve()

        def first(target):
            return next((p.n_apis for p in curve
                         if p.completeness >= target), None)

        n_start = first(0.011)
        n_half = first(0.50)
        n_ninety = first(0.90)
        n_full = first(0.9999)
        # paper: 40 / 145 / 202 / 272
        assert 25 <= n_start <= 90
        assert 120 <= n_half <= 230
        assert 180 <= n_ninety <= 260
        assert 250 <= n_full <= 310
        assert n_start < n_half < n_ninety < n_full

    def test_curve_monotone(self, study):
        values = [p.completeness for p in study.curve()]
        assert all(a <= b + 1e-12 for a, b in zip(values, values[1:]))

    def test_stages_reach_full_completeness(self, study):
        stage_list = study.tab4_stages().data
        assert stage_list[-1].completeness >= 0.999
        assert 4 <= len(stage_list) <= 5


class TestFig4Ioctl:
    def test_full_importance_head_near_52(self, study):
        data = study.fig4_ioctl().data
        assert 40 <= data["full"] <= 70  # paper: 52

    def test_over_1pct_near_188(self, study):
        data = study.fig4_ioctl().data
        assert 140 <= data["over_1pct"] <= 240  # paper: 188

    def test_used_near_280(self, study):
        data = study.fig4_ioctl().data
        assert 230 <= data["used"] <= 320  # paper: 280

    def test_long_unused_tail(self, study):
        data = study.fig4_ioctl().data
        assert len(data["series"]) == 635
        assert data["used"] < 635 * 0.55


class TestFig5FcntlPrctl:
    def test_fcntl_head(self, study):
        data = study.fig5_fcntl_prctl().data["fcntl"]
        assert data["defined"] == 18
        assert 9 <= data["full"] <= 13  # paper: 11

    def test_prctl_head(self, study):
        data = study.fig5_fcntl_prctl().data["prctl"]
        assert data["defined"] == 44
        assert 7 <= data["full"] <= 12   # paper: 9
        assert 14 <= data["over_20"] <= 24  # paper: 18


class TestFig6PseudoFiles:
    def test_essential_files_at_head(self, study):
        top = dict(study.fig6_pseudo_files().data["top"])
        assert top.get("/dev/null", 0) >= 0.999
        assert top.get("/proc/cpuinfo", 0) >= 0.999

    def test_dev_kvm_low_importance(self, study):
        importance = study.importance("pseudofile")
        assert 0 < importance.get("/dev/kvm", 0) < 0.10


class TestFig7Libc:
    def test_band_fractions(self, study):
        data = study.fig7_libc_importance().data
        n = data["total"]
        assert 0.36 <= data["full"] / n <= 0.50      # paper: 42.8%
        assert 0.42 <= data["below_half"] / n <= 0.60  # paper: 50.6%
        assert 0.30 <= data["below_1pct"] / n <= 0.48  # paper: 39.7%

    def test_unused_count_near_222(self, study):
        data = study.fig7_libc_importance().data
        assert 180 <= data["unused"] <= 280  # paper: 222

    def test_total_near_1274(self, study):
        data = study.fig7_libc_importance().data
        assert 1200 <= data["total"] <= 1450


class TestLibcStrip:
    def test_strip_bands(self, study):
        report = study.libc_strip_analysis().data["report"]
        # paper: 889 retained, 63% size, 9.3% miss probability
        assert 500 <= report.retained_symbols <= 950
        assert 0.35 <= report.retained_fraction <= 0.80
        assert report.miss_probability <= 0.35

    def test_relocation_sorting_saves_pages(self, study):
        layout = study.libc_strip_analysis().data["layout"]
        assert layout.table_bytes >= 25000  # paper: 30,576 bytes
        assert layout.hot_pages < layout.unsorted_pages


class TestTab5Startup:
    def test_ld_so_rows(self, study):
        attribution = study.tab5_startup_syscalls().data
        assert "ld-linux-x86-64.so.2" in attribution["access"]
        assert "ld-linux-x86-64.so.2" in attribution["arch_prctl"]

    def test_pthread_rows(self, study):
        attribution = study.tab5_startup_syscalls().data
        assert "libpthread.so.0" in attribution["set_robust_list"]
        assert "libpthread.so.0" in attribution["set_tid_address"]

    def test_futex_multi_library(self, study):
        attribution = study.tab5_startup_syscalls().data
        assert len(attribution["futex"]) >= 2


class TestTab6Systems:
    @pytest.fixture()
    def rows(self, study):
        return {e.system.split()[0]: e
                for e in study.tab6_linux_systems().data}

    def test_ordering_matches_paper(self, rows):
        assert (rows["L4Linux"].weighted_completeness
                > rows["FreeBSD-emu"].weighted_completeness
                > rows["Graphene"].weighted_completeness)
        assert rows["User-Mode-Linux"].weighted_completeness > 0.85

    def test_uml_band(self, rows):
        assert 0.85 <= rows["User-Mode-Linux"].weighted_completeness <= 0.99

    def test_l4linux_band(self, rows):
        assert 0.90 <= rows["L4Linux"].weighted_completeness <= 1.0

    def test_freebsd_band(self, rows):
        assert 0.30 <= rows["FreeBSD-emu"].weighted_completeness <= 0.80

    def test_graphene_collapse_and_recovery(self, rows):
        assert rows["Graphene"].weighted_completeness <= 0.02
        assert 0.10 <= rows["Graphene+sched"].weighted_completeness <= 0.40

    def test_uml_suggestions_match_paper(self, rows):
        suggested = set(rows["User-Mode-Linux"].suggested_apis)
        assert {"iopl", "ioperm"} & suggested

    def test_graphene_suggestions_are_sched_pair(self, rows):
        suggested = rows["Graphene"].suggested_apis[:2]
        assert set(suggested) == {"sched_setparam",
                                  "sched_setscheduler"}


class TestTab7LibcVariants:
    @pytest.fixture()
    def rows(self, study):
        return {e.variant.split()[0]: e
                for e in study.tab7_libc_variants().data}

    def test_eglibc_fully_compatible(self, rows):
        assert rows["eglibc"].raw_completeness >= 0.999

    def test_uclibc_musl_raw_near_zero(self, rows):
        assert rows["uClibc"].raw_completeness <= 0.05  # paper: 1.1%
        assert rows["musl"].raw_completeness <= 0.05

    def test_normalization_recovers(self, rows):
        assert 0.30 <= rows["uClibc"].normalized_completeness <= 0.65
        assert 0.30 <= rows["musl"].normalized_completeness <= 0.70
        assert (rows["musl"].normalized_completeness
                >= rows["uClibc"].normalized_completeness - 0.05)

    def test_dietlibc_zero(self, rows):
        assert rows["dietlibc"].raw_completeness == 0.0
        assert rows["dietlibc"].normalized_completeness <= 0.01


class TestFig8Unweighted:
    def test_by_all_near_40(self, study):
        data = study.fig8_unweighted().data
        assert 25 <= data["by_all"] <= 60  # paper: 40

    def test_over_10_near_130(self, study):
        data = study.fig8_unweighted().data
        assert 95 <= data["over_10"] <= 165  # paper: 130

    def test_majority_below_10(self, study):
        data = study.fig8_unweighted().data
        assert data["over_10"] < len(ALL_NAMES) / 2


class TestVariantTables:
    def _usage(self, study):
        return study.usage("syscall", universe=ALL_NAMES)

    def test_tab8_id_management(self, study):
        usage = self._usage(study)
        assert usage["setresuid"] > 0.9        # paper: 99.68%
        assert usage["setresgid"] > 0.9        # paper: 99.68%
        assert usage["setuid"] < 0.3           # paper: 15.67%
        assert usage["setreuid"] < 0.1         # paper: 1.88%
        assert usage["getuid"] > 0.9           # paper: 99.81%

    def test_tab8_directory_races(self, study):
        usage = self._usage(study)
        assert usage["access"] > 10 * usage["faccessat"]
        assert usage["mkdir"] > 10 * usage["mkdirat"]
        assert usage["rename"] > 10 * usage["renameat"]
        assert usage["chmod"] > 10 * usage["fchmodat"]
        assert 0.4 <= usage["access"] <= 0.9   # paper: 74.24%

    def test_tab9_old_new(self, study):
        usage = self._usage(study)
        assert usage["getdents"] > 0.9         # paper: 99.80%
        assert usage["getdents64"] < 0.05
        assert usage["clone"] > 0.9
        assert usage["fork"] < 0.05            # paper: 0.07%
        assert usage["vfork"] > 0.9            # paper: 99.68%
        assert usage["tgkill"] > 0.9
        assert usage["tkill"] < 0.05
        assert usage["wait4"] > 0.4            # paper: 60.56%
        assert usage["waitid"] < 0.05

    def test_tab10_portability(self, study):
        usage = self._usage(study)
        assert usage["readv"] > 10 * usage["preadv"]
        assert usage["writev"] > 10 * usage["pwritev"]
        assert usage["poll"] > 5 * usage["ppoll"]
        assert usage["recvmsg"] > 10 * usage["recvmmsg"]
        # pipe2 is the exception: high for a Linux-specific call
        assert usage["pipe2"] > 0.15           # paper: 40.33%
        assert usage["pipe"] > usage["pipe2"] - 0.1

    def test_tab11_simple_over_powerful(self, study):
        usage = self._usage(study)
        assert usage["read"] > usage["pread64"]
        assert usage["dup2"] > usage["dup3"]
        assert usage["select"] > usage["pselect6"]
        assert usage["chdir"] > usage["fchdir"]
        assert usage["sendto"] > 0.3

    def test_adoption_summary_direction(self, study):
        summary = study.adoption().data
        assert summary.race_prone_directory_usage > 0.3
        assert summary.atomic_variant_usage < 0.05
        assert summary.portable_preferred_count >= 6


class TestTab12Framework:
    def test_statistics_present(self, study):
        data = study.tab12_framework_stats().data
        assert data["rows"]["binaries"] > 300
        assert data["distinct"] > 50
        assert 0 < data["unique"] <= data["distinct"]

    def test_unique_footprint_share_near_third(self, study):
        """§6: one third of applications have a unique footprint."""
        data = study.tab12_framework_stats().data
        share = data["unique"] / len(study.repository)
        assert 0.1 <= share <= 0.8


class TestSeccompFromStudy:
    def test_policy_for_measured_package(self, study):
        policy = study.seccomp_policy("coreutils").data
        assert len(policy.allowed_syscalls) >= 40
        assert policy.allows(0)  # read

    def test_all_experiments_render(self, study):
        for output in study.all_experiments():
            assert output.rendered
            assert output.experiment


class TestTab4StageComposition:
    """Table 4's sample syscalls land in the early stages."""

    def test_paper_stage1_sample_in_our_head(self, study):
        paper_stage1 = {"mmap", "vfork", "exit", "read", "gettid",
                        "fcntl", "getcwd", "sched_yield", "kill",
                        "dup2"}
        stages = study.tab4_stages().data
        early = {p.api for p in study.curve()[:stages[1].end]}
        assert len(paper_stage1 & early) >= 8

    def test_paper_stage2_sample_in_first_two_stages(self, study):
        paper_stage2 = {"mremap", "ioctl", "access", "socket", "poll",
                        "recvmsg", "dup", "unlink", "wait4", "select",
                        "chdir", "pipe"}
        stages = study.tab4_stages().data
        early = {p.api for p in study.curve()[:stages[1].end]}
        assert len(paper_stage2 & early) >= 9

    def test_late_stage_contains_low_band_calls(self, study):
        stages = study.tab4_stages().data
        tail = {p.api for p in study.curve()[stages[-2].end:]}
        # the niche calls arrive last, as in the paper's stage V
        assert {"kexec_load", "seccomp"} & tail
