"""Writer/reader round-trip tests for whole ELF images."""

import os

import pytest

from repro.elf import ElfReader, ElfWriter
from repro.elf import constants as C
from repro.x86.encoder import Assembler


def _basic_executable(imports=("printf", "ioctl"),
                      needed=("libc.so.6",),
                      strings=("/proc/cpuinfo",)):
    asm = Assembler()
    asm.label("main")
    asm.prologue()
    for name in imports:
        asm.call_import(name)
    asm.epilogue()
    writer = ElfWriter(file_type=C.ET_EXEC)
    for library in needed:
        writer.add_needed(library)
    for name in imports:
        writer.add_import(name)
    for text in strings:
        writer.add_string(text)
    writer.set_text(bytes(asm.code), asm.labels, asm.fixups,
                    entry_label="main")
    writer.export_function("main", "main")
    return writer.build()


def _basic_library(soname="libdemo.so.1", exports=("demo_fn",)):
    asm = Assembler()
    for name in exports:
        asm.align(16)
        asm.label(name)
        asm.prologue()
        asm.mov_imm32(0, 39)  # getpid
        asm.syscall()
        asm.epilogue()
    writer = ElfWriter(file_type=C.ET_DYN, soname=soname)
    writer.add_needed("libc.so.6")
    writer.set_text(bytes(asm.code), asm.labels, asm.fixups)
    for name in exports:
        writer.export_function(name, name)
    return writer.build()


class TestExecutableImage:
    def setup_method(self):
        self.image = _basic_executable()
        self.reader = ElfReader(self.image)

    def test_header_type(self):
        assert self.reader.header.e_type == C.ET_EXEC

    def test_entry_point_set(self):
        assert self.reader.header.e_entry != 0

    def test_entry_points_into_text(self):
        text = self.reader.section(".text")
        entry = self.reader.header.e_entry
        assert text.sh_addr <= entry < text.sh_addr + text.sh_size

    def test_needed_libraries(self):
        assert self.reader.needed_libraries() == ["libc.so.6"]

    def test_imported_functions(self):
        assert set(self.reader.imported_function_names()) == {
            "printf", "ioctl"}

    def test_exported_functions(self):
        assert self.reader.exported_function_names() == ["main"]

    def test_interpreter_recorded(self):
        assert self.reader.interpreter() == (
            "/lib64/ld-linux-x86-64.so.2")

    def test_strings_contain_added(self):
        assert "/proc/cpuinfo" in self.reader.strings()

    def test_plt_map_covers_all_imports(self):
        assert set(self.reader.plt_map().values()) == {
            "printf", "ioctl"}

    def test_plt_addresses_inside_plt_section(self):
        plt = self.reader.section(".plt")
        for address in self.reader.plt_map():
            assert plt.sh_addr <= address < plt.sh_addr + plt.sh_size

    def test_is_elf_magic_check(self):
        assert ElfReader.is_elf(self.image)
        assert not ElfReader.is_elf(b"#!/bin/sh\n")

    def test_vaddr_round_trip(self):
        text = self.reader.section(".text")
        offset = self.reader.vaddr_to_offset(text.sh_addr)
        assert offset == text.sh_offset

    def test_read_vaddr_matches_section_data(self):
        text = self.reader.section(".text")
        data = self.reader.read_vaddr(text.sh_addr, text.sh_size)
        assert data == self.reader.text()

    def test_unmapped_vaddr_is_none(self):
        assert self.reader.vaddr_to_offset(0xDEAD0000) is None

    def test_expected_sections_exist(self):
        for name in (".dynsym", ".dynstr", ".rela.plt", ".plt",
                     ".text", ".rodata", ".got.plt", ".dynamic",
                     ".interp"):
            assert self.reader.section(name) is not None, name

    def test_dynamic_flag(self):
        assert self.reader.is_dynamic
        assert not self.reader.is_static_executable


class TestLibraryImage:
    def setup_method(self):
        self.reader = ElfReader(_basic_library())

    def test_type_is_dyn(self):
        assert self.reader.header.e_type == C.ET_DYN

    def test_soname(self):
        assert self.reader.soname() == "libdemo.so.1"

    def test_no_interpreter(self):
        assert self.reader.interpreter() is None

    def test_base_vaddr_zero(self):
        text = self.reader.section(".text")
        assert text.sh_addr < 0x400000

    def test_exports_present(self):
        assert self.reader.exported_function_names() == ["demo_fn"]

    def test_export_value_points_into_text(self):
        text = self.reader.section(".text")
        (symbol,) = self.reader.exported_symbols()
        assert text.sh_addr <= symbol.st_value < (
            text.sh_addr + text.sh_size)


class TestWriterEdgeCases:
    def test_no_imports_builds(self):
        asm = Assembler()
        asm.label("main")
        asm.mov_imm32(0, 60)
        asm.syscall()
        writer = ElfWriter(file_type=C.ET_EXEC, interp=None)
        writer.set_text(bytes(asm.code), asm.labels, asm.fixups,
                        entry_label="main")
        reader = ElfReader(writer.build())
        assert reader.imported_function_names() == []
        assert reader.interpreter() is None

    def test_duplicate_import_single_plt_slot(self):
        writer = ElfWriter()
        first = writer.add_import("dup")
        second = writer.add_import("dup")
        assert first == second

    def test_duplicate_needed_deduplicated(self):
        writer = ElfWriter()
        writer.add_needed("libc.so.6")
        writer.add_needed("libc.so.6")
        writer.set_text(b"\xc3", {"main": 0}, [], entry_label="main")
        reader = ElfReader(writer.build())
        assert reader.needed_libraries() == ["libc.so.6"]

    def test_rodata_interning(self):
        writer = ElfWriter()
        assert writer.add_string("x") == writer.add_string("x")

    def test_many_imports(self):
        imports = [f"func_{i}" for i in range(300)]
        asm = Assembler()
        asm.label("main")
        for name in imports:
            asm.call_import(name)
        asm.ret()
        writer = ElfWriter()
        for name in imports:
            writer.add_import(name)
        writer.set_text(bytes(asm.code), asm.labels, asm.fixups,
                        entry_label="main")
        reader = ElfReader(writer.build())
        assert set(reader.plt_map().values()) == set(imports)

    def test_strings_min_length_filter(self):
        writer = ElfWriter()
        writer.add_string("abc")      # below default threshold of 4
        writer.add_string("abcdef")
        writer.set_text(b"\xc3", {"main": 0}, [], entry_label="main")
        reader = ElfReader(writer.build())
        found = reader.strings()
        assert "abcdef" in found


@pytest.mark.skipif(not os.path.exists("/bin/true"),
                    reason="no /bin/true on this host")
class TestRealBinary:
    """The reader is written to the spec, so it parses host binaries."""

    def setup_method(self):
        self.reader = ElfReader.from_path("/bin/true")

    def test_parses_and_finds_sections(self):
        assert self.reader.section(".text") is not None

    def test_needs_libc(self):
        assert any(name.startswith("libc.so")
                   for name in self.reader.needed_libraries())

    def test_has_dynamic_symbols(self):
        assert len(self.reader.dynamic_symbols) > 1


class TestStaticImage:
    """A binary with no dynamic dependencies is written truly static:
    no .dynamic, no PT_INTERP, symbols in .symtab."""

    def _build(self):
        from repro.x86.encoder import Assembler
        asm = Assembler()
        asm.label("main")
        asm.mov_imm32(0, 231)
        asm.syscall()
        writer = ElfWriter(file_type=C.ET_EXEC, interp=None)
        writer.set_text(bytes(asm.code), asm.labels, asm.fixups,
                        entry_label="main")
        writer.export_function("main", "main")
        return ElfReader(writer.build())

    def test_no_dynamic_metadata(self):
        reader = self._build()
        assert not reader.is_dynamic
        assert reader.is_static_executable
        assert reader.section(".dynamic") is None
        assert reader.section(".dynsym") is None
        assert reader.interpreter() is None

    def test_symtab_carries_exports(self):
        reader = self._build()
        assert reader.section(".symtab") is not None
        names = [s.name for s in reader.symbols if s.name]
        assert "main" in names

    def test_entry_and_code_intact(self):
        from repro.x86.decoder import linear_sweep
        from repro.x86.instructions import InsnKind
        reader = self._build()
        kinds = [i.kind for i in linear_sweep(reader.text(),
                                              reader.text_vaddr())]
        assert InsnKind.SYSCALL in kinds

    def test_needed_forces_dynamic_layout(self):
        writer = ElfWriter(file_type=C.ET_EXEC, interp=None)
        writer.add_needed("libc.so.6")
        writer.set_text(b"\xc3", {"main": 0}, [], entry_label="main")
        reader = ElfReader(writer.build())
        assert reader.is_dynamic


@pytest.mark.skipif(not os.path.exists("/bin/true"),
                    reason="no /bin/true on this host")
class TestRealBinaryDisassembly:
    """The decoder must sweep real compiler output without stalling."""

    def test_linear_sweep_terminates_and_finds_structure(self):
        from repro.x86.decoder import linear_sweep
        from repro.x86.instructions import InsnKind
        reader = ElfReader.from_path("/bin/true")
        text = reader.text()
        kinds = []
        total_len = 0
        for insn in linear_sweep(text, reader.text_vaddr()):
            kinds.append(insn.kind)
            total_len += insn.length
        assert total_len >= len(text)
        # Real code contains calls, rets, and register moves we decode.
        assert InsnKind.CALL_REL in kinds
        assert InsnKind.RET in kinds
        decoded = sum(1 for k in kinds if k != InsnKind.OTHER)
        assert decoded / len(kinds) > 0.3


class TestCorruptInput:
    """Truncated or corrupted images must raise ElfFormatError — never
    crash with a raw struct error or hang."""

    def test_truncation_at_every_boundary(self):
        from repro.elf.structs import ElfFormatError
        image = _basic_executable()
        for cut in list(range(0, 200, 7)) + [len(image) // 2]:
            truncated = image[:cut]
            try:
                reader = ElfReader(truncated)
                # If parsing succeeded, basic accessors must not blow up.
                reader.needed_libraries()
                reader.strings()
            except ElfFormatError:
                pass

    def test_corrupted_section_offsets(self):
        from repro.elf.structs import ElfFormatError
        image = bytearray(_basic_executable())
        # e_shoff -> garbage
        image[0x28:0x30] = (2 ** 48).to_bytes(8, "little")
        try:
            ElfReader(bytes(image))
        except ElfFormatError:
            pass

    def test_bit_flip_fuzz(self):
        import random
        from repro.elf.structs import ElfFormatError
        image = _basic_executable()
        rng = random.Random(5)
        for _ in range(60):
            mutated = bytearray(image)
            for _ in range(4):
                position = rng.randrange(len(mutated))
                mutated[position] ^= 1 << rng.randrange(8)
            try:
                reader = ElfReader(bytes(mutated))
                reader.imported_function_names()
                reader.plt_map()
                reader.strings()
            except ElfFormatError:
                pass


class TestSymbolVersioning:
    """GNU symbol versioning round-trip (.gnu.version/.gnu.version_d)."""

    def _versioned_library(self):
        asm = Assembler()
        asm.label("api")
        asm.ret()
        writer = ElfWriter(file_type=C.ET_DYN, soname="libv.so.1",
                           version="GLIBC_2.21")
        writer.add_needed("libc.so.6")
        writer.add_import("printf")
        writer.set_text(bytes(asm.code), asm.labels, asm.fixups)
        writer.export_function("api", "api")
        return ElfReader(writer.build())

    def test_sections_emitted(self):
        reader = self._versioned_library()
        assert reader.section(".gnu.version") is not None
        assert reader.section(".gnu.version_d") is not None

    def test_verdef_parsed(self):
        reader = self._versioned_library()
        assert reader.version_definitions() == {2: "GLIBC_2.21"}

    def test_exports_stamped_imports_global(self):
        reader = self._versioned_library()
        by_name = {s.name: s for s in reader.dynamic_symbols if s.name}
        assert by_name["api"].version == "GLIBC_2.21"
        assert by_name["printf"].version == ""

    def test_unversioned_library_has_no_tables(self):
        reader = ElfReader(_basic_library())
        assert reader.section(".gnu.version") is None
        assert reader.version_definitions() == {}

    def test_synthetic_libc_is_versioned(self):
        from repro.synth.runtime_gen import generate_libc
        reader = ElfReader(generate_libc())
        assert reader.version_definitions() == {2: "GLIBC_2.21"}
        printf = next(s for s in reader.dynamic_symbols
                      if s.name == "printf")
        assert printf.version == "GLIBC_2.21"

    def test_elf_hash_known_values(self):
        from repro.elf.structs import elf_hash
        # classic test vectors for the SysV hash
        assert elf_hash("") == 0
        assert elf_hash("printf") == elf_hash("printf")
        assert elf_hash("GLIBC_2.21") != elf_hash("GLIBC_2.2.5")


@pytest.mark.skipif(not os.path.exists("/bin/true"),
                    reason="no /bin/true on this host")
class TestRealBinaryVersions:
    def test_verneed_parsed_on_host_binary(self):
        reader = ElfReader.from_path("/bin/true")
        requirements = reader.version_requirements()
        if requirements:  # hosts without versioned libc are fine
            assert any(name.startswith("GLIBC_")
                       for name in requirements.values())
            versioned = [s for s in reader.imported_symbols()
                         if s.version]
            assert versioned
