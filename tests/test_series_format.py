"""``.rser`` wire-format round-trips and corruption discipline.

Mirrors ``test_store_format.py`` for the series format: encoding is
byte-stable, a materialized chain re-encodes to the same bytes, and
every kind of damage — truncation at any prefix, bit flips, missing or
swapped sections, semantically impossible deltas — raises a typed
:class:`repro.store.StoreError` before any partial release escapes.
"""

import pytest

from repro.series import (SERIES_MAGIC, DatasetSeries, ReleaseDelta,
                          build_series, decode_delta, encode_delta,
                          load_series, load_series_bytes, series_info,
                          series_to_bytes, sniff_series, write_series)
from repro.series.format import delta_tag, encode_series_file
from repro.store import (StoreCRCError, StoreError, StoreLayoutError,
                         StoreMagicError, StoreTruncatedError,
                         StoreVersionError)
from repro.synth import EvolutionConfig, evolve_corpus
from repro.synth.paper import PaperScaleConfig


@pytest.fixture(scope="module")
def datasets():
    ecosystem = evolve_corpus(EvolutionConfig(
        n_releases=4, base=PaperScaleConfig.at_scale(0.005, seed=7),
        seed=7))
    return ecosystem.datasets()


@pytest.fixture(scope="module")
def series_bytes(datasets):
    return series_to_bytes(datasets)


@pytest.fixture(scope="module")
def series(series_bytes):
    return load_series_bytes(series_bytes)


def reassemble(series, mutate):
    """Rebuild a valid-CRC file from ``series`` with mutated sections.

    ``mutate`` edits the ordered ``[(tag, payload), ...]`` list in
    place; checksums are recomputed, so the result exercises *semantic*
    validation rather than the CRC ladder.
    """
    order = [b"SMET", b"BASE"] + [delta_tag(k)
                                  for k in range(1, series.n_releases)]
    sections = []
    for tag in order:
        offset, length = series._header.sections[tag]
        sections.append((tag, bytes(series._data[offset:offset + length])))
    mutate(sections)
    return encode_series_file(series.series_fingerprint, sections)


class TestRoundTrip:
    def test_encoding_is_byte_stable(self, datasets, series_bytes):
        assert series_to_bytes(datasets) == series_bytes

    def test_materialized_chain_reencodes_identically(self, series,
                                                      series_bytes):
        # delta -> full -> delta: decode every release, re-encode the
        # train, and land on the same bytes.
        assert series_to_bytes(series.releases()) == series_bytes

    def test_sniffing(self, series_bytes):
        assert sniff_series(series_bytes[:8])
        assert not sniff_series(b"\x89RSNP\r\n\x00\x00")
        assert not sniff_series(b"")

    def test_header_metadata(self, series, series_bytes, datasets):
        assert series.n_releases == len(datasets)
        assert len(series.fingerprints) == len(datasets)
        assert series.n_packages == tuple(len(d.packages)
                                          for d in datasets)
        stats = series.stats()
        assert stats["format"] == "rser"
        assert stats["file_size"] == len(series_bytes)
        assert sorted(stats["delta_bytes_per_release"]) == [1, 2, 3]
        assert stats["delta_bytes"] == \
            sum(stats["delta_bytes_per_release"].values())

    def test_at_matches_eager_build(self, series, datasets):
        for k, eager in enumerate(datasets):
            lazy = series.at(k)
            assert list(lazy.packages) == list(eager.packages)
            for name in eager.packages:
                assert lazy[name] == eager[name]

    def test_write_and_load_from_disk(self, datasets, series_bytes,
                                      tmp_path):
        path = tmp_path / "train.rser"
        written = write_series(path, datasets)
        assert written == len(series_bytes)
        assert path.read_bytes() == series_bytes
        loaded = load_series(path)
        assert loaded.series_fingerprint == \
            load_series_bytes(series_bytes).series_fingerprint
        info = series_info(path)
        assert info["n_releases"] == len(datasets)
        assert set(info["sections"]) == \
            {"SMET", "BASE", "D001", "D002", "D003"}

    def test_unknown_release_is_a_value_error(self, series):
        with pytest.raises(ValueError, match="unknown release"):
            series.at(series.n_releases)
        with pytest.raises(ValueError, match="unknown release"):
            series.at(-1)
        with pytest.raises(ValueError, match="unknown release"):
            series.at("head")
        with pytest.raises(ValueError, match="unknown release"):
            series.at(True)


class TestCorruption:
    def test_truncation_at_any_prefix_is_typed(self, series_bytes):
        step = max(1, len(series_bytes) // 97)
        for cut in range(0, len(series_bytes), step):
            with pytest.raises(StoreError):
                load_series_bytes(series_bytes[:cut])
        with pytest.raises(StoreError):
            load_series_bytes(series_bytes[:-1])

    def test_bad_magic(self, series_bytes):
        with pytest.raises(StoreMagicError):
            load_series_bytes(b"NOTSERIE" + series_bytes[8:])

    def test_future_version(self, series_bytes):
        mutated = bytearray(series_bytes)
        mutated[8] = 0xFE  # version u32 starts right after the magic
        with pytest.raises(StoreVersionError):
            load_series_bytes(bytes(mutated))

    def test_bit_flip_in_delta_payload(self, series, series_bytes):
        offset, length = series._header.sections[delta_tag(1)]
        mutated = bytearray(series_bytes)
        mutated[offset + length // 2] ^= 0x10
        with pytest.raises(StoreCRCError):
            load_series_bytes(bytes(mutated))

    def test_bit_flip_in_section_table(self, series_bytes):
        from repro.series.format import HEADER_SIZE
        mutated = bytearray(series_bytes)
        mutated[HEADER_SIZE + 2] ^= 0x01
        with pytest.raises(StoreCRCError):
            load_series_bytes(bytes(mutated))

    def test_empty_file_on_disk(self, tmp_path):
        path = tmp_path / "empty.rser"
        path.write_bytes(b"")
        with pytest.raises(StoreTruncatedError):
            load_series(path)

    def test_missing_base_section(self, series):
        data = reassemble(series, lambda s: s.pop(1))
        with pytest.raises(StoreLayoutError, match="BASE"):
            load_series_bytes(data)

    def test_missing_delta_section(self, series):
        data = reassemble(series, lambda s: s.pop())  # drop D003
        with pytest.raises(StoreLayoutError,
                           match="missing delta section"):
            load_series_bytes(data)

    def test_unexpected_section(self, series):
        data = reassemble(series,
                          lambda s: s.append((b"D999", b"junk")))
        with pytest.raises(StoreLayoutError, match="unexpected"):
            load_series_bytes(data)

    def test_duplicate_section(self, series):
        data = reassemble(series, lambda s: s.append(s[-1]))
        with pytest.raises(StoreLayoutError, match="duplicate"):
            load_series_bytes(data)

    def test_swapped_deltas_cannot_materialize(self, series):
        # D001 <-> D002 with checksums recomputed: the file is
        # bit-healthy, but the chain's semantic validation refuses to
        # publish any release built from the wrong delta.
        def swap(sections):
            sections[2], sections[3] = ((sections[2][0],
                                         sections[3][1]),
                                        (sections[3][0],
                                         sections[2][1]))

        swapped = load_series_bytes(reassemble(series, swap))
        with pytest.raises(StoreLayoutError):
            for k in range(swapped.n_releases):
                swapped.at(k)

    def test_semantically_impossible_delta(self, series):
        # Structurally valid delta that removes a package the previous
        # release never had: rejected before any state is committed.
        base = series.at(0)
        bogus = encode_delta(
            ReleaseDelta(
                removed=("no-such-package",), changed=(), added=(),
                has_popcon=base.popcon is not None,
                popcon_total=(base.popcon.total_installations
                              if base.popcon is not None else 0),
                has_deps=base.repository is not None),
            base.space)

        def replace(sections):
            sections[2] = (sections[2][0], bogus)

        broken = load_series_bytes(reassemble(series, replace))
        with pytest.raises(StoreLayoutError,
                           match="removes unknown package"):
            broken.at(1)
        # ...and the failure is sticky-free: release 0 still loads.
        assert list(broken.at(0).packages) == list(base.packages)

    def test_truncated_delta_codec(self, series):
        offset, length = series._header.sections[delta_tag(1)]
        payload = bytes(series._data[offset:offset + length])
        space = series.at(0).space
        with pytest.raises(StoreError):
            decode_delta(payload[:-1], "D001", space)
        with pytest.raises(StoreError):
            decode_delta(payload[:3], "D001", space)

    def test_trailing_bytes_in_delta_codec(self, series):
        offset, length = series._header.sections[delta_tag(1)]
        payload = bytes(series._data[offset:offset + length])
        space = series.at(0).space
        with pytest.raises(StoreLayoutError, match="trailing"):
            decode_delta(payload + b"\x00", "D001", space)


class TestBuilderValidation:
    def test_empty_series_is_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            series_to_bytes([])

    def test_mixed_spaces_are_reinterned(self, datasets):
        # Datasets that do NOT share a space (independent analyses)
        # still build: the builder re-interns into the union space.
        from repro.dataset.core import Dataset
        first = Dataset({name: datasets[0][name]
                         for name in datasets[0].packages},
                        popcon=datasets[0].popcon,
                        repository=datasets[0].repository)
        second = Dataset({name: datasets[1][name]
                          for name in datasets[1].packages},
                         popcon=datasets[1].popcon,
                         repository=datasets[1].repository)
        assert first.space != second.space
        rebuilt = build_series([first, second])
        assert rebuilt.n_releases == 2
        for name in second.packages:
            assert rebuilt.at(1)[name] == datasets[1][name]
