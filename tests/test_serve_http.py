"""End-to-end HTTP tests over a real socket (stdlib client only)."""

import http.client
import json
import threading

import pytest

from repro.obs import parse_metrics
from repro.serve import ServeApp, ServeServer, SnapshotHolder


@pytest.fixture(scope="module")
def server(study):
    holder = SnapshotHolder(study.dataset)
    app = ServeApp(holder, concurrency=8, max_wait_seconds=2.0)
    with ServeServer(app, port=0) as running:
        yield running


@pytest.fixture()
def client(server):
    conn = http.client.HTTPConnection(server.host, server.port,
                                      timeout=10)
    yield conn
    conn.close()


def fetch(conn, method, path, body=None):
    raw = json.dumps(body) if body is not None else None
    headers = {"Content-Type": "application/json"} if raw else {}
    conn.request(method, path, body=raw, headers=headers)
    response = conn.getresponse()
    data = response.read()
    return response, data


class TestOverTheWire:
    def test_healthz(self, client):
        response, data = fetch(client, "GET", "/healthz")
        assert response.status == 200
        assert json.loads(data)["status"] == "ok"

    def test_keepalive_reuses_one_connection(self, client):
        for _ in range(3):
            response, data = fetch(client, "GET", "/v1/dataset/stats")
            assert response.status == 200
            assert int(response.headers["Content-Length"]) == len(data)

    def test_get_with_query_string(self, client, study):
        response, data = fetch(
            client, "GET", "/v1/importance?limit=4&dimension=syscall")
        assert response.status == 200
        payload = json.loads(data)
        assert len(payload["data"]["ranked"]) == 4

    def test_post_completeness(self, client):
        response, data = fetch(client, "POST", "/v1/completeness",
                               body={"supported": ["read", "write"]})
        assert response.status == 200
        payload = json.loads(data)
        assert payload["endpoint"] == "completeness"
        assert "weighted_completeness" in payload["data"]

    def test_error_statuses_reach_the_wire(self, client):
        response, data = fetch(client, "GET", "/v1/nope")
        assert response.status == 404
        response, data = fetch(client, "GET",
                               "/v1/importance?dimension=bogus")
        assert response.status == 400
        assert json.loads(data)["error"]["class"] == "bad_request"

    def test_unsupported_method_is_405(self, client):
        response, _ = fetch(client, "PUT", "/v1/importance")
        assert response.status == 405

    def test_oversized_body_is_413(self, server):
        conn = http.client.HTTPConnection(server.host, server.port,
                                          timeout=10)
        try:
            conn.putrequest("POST", "/v1/completeness")
            conn.putheader("Content-Type", "application/json")
            conn.putheader("Content-Length",
                           str(64 * 1024 * 1024))
            conn.endheaders()
            response = conn.getresponse()
            assert response.status == 413
        finally:
            conn.close()

    def test_metrics_scrape_is_valid_exposition(self, client):
        fetch(client, "GET", "/v1/dataset/stats")
        response, data = fetch(client, "GET", "/metrics")
        assert response.status == 200
        assert response.headers["Content-Type"].startswith(
            "text/plain")
        samples = parse_metrics(data.decode())
        assert samples["repro_serve_requests"] >= 1
        assert "repro_serve_admission_slots" in samples

    def test_reload_over_http(self, client, server, tmp_path):
        path = tmp_path / "snapshot.json"
        server.app.holder.export_to_file(path)
        before = server.app.holder.generation
        response, data = fetch(client, "POST", "/admin/reload",
                               body={"path": str(path)})
        assert response.status == 200
        assert json.loads(data)["generation"] == before + 1


class TestRequestFraming:
    """Wire-level framing regressions: ambiguous queries and bodies."""

    def test_duplicate_query_parameter_is_400(self, client):
        response, data = fetch(
            client, "GET", "/v1/importance?limit=3&limit=7")
        assert response.status == 400
        error = json.loads(data)["error"]
        assert error["type"] == "DuplicateQueryParameter"
        assert "limit" in error["message"]

    def test_connection_survives_duplicate_parameter(self, client):
        # The query is rejected after any body is consumed, so the
        # same keep-alive connection must still answer.
        response, _ = fetch(client, "GET", "/v1/importance?a=1&a=2")
        assert response.status == 400
        response, _ = fetch(client, "GET", "/v1/importance?limit=3")
        assert response.status == 200

    def test_post_without_content_length_is_411(self, server):
        conn = http.client.HTTPConnection(server.host, server.port,
                                          timeout=10)
        try:
            conn.putrequest("POST", "/v1/completeness")
            conn.putheader("Content-Type", "application/json")
            conn.endheaders()
            response = conn.getresponse()
            assert response.status == 411
            error = json.loads(response.read())["error"]
            assert error["type"] == "LengthRequired"
        finally:
            conn.close()

    def test_chunked_transfer_coding_is_411(self, server):
        conn = http.client.HTTPConnection(server.host, server.port,
                                          timeout=10)
        try:
            conn.putrequest("POST", "/v1/completeness")
            conn.putheader("Content-Type", "application/json")
            conn.putheader("Transfer-Encoding", "chunked")
            conn.endheaders()
            response = conn.getresponse()
            assert response.status == 411
        finally:
            conn.close()

    def test_get_without_content_length_still_fine(self, server):
        # Bodyless methods never needed framing; the 411 applies only
        # to body-carrying methods.
        conn = http.client.HTTPConnection(server.host, server.port,
                                          timeout=10)
        try:
            conn.putrequest("GET", "/healthz")
            conn.endheaders()
            assert conn.getresponse().status == 200
        finally:
            conn.close()

    def test_invalid_content_length_is_400(self, server):
        conn = http.client.HTTPConnection(server.host, server.port,
                                          timeout=10)
        try:
            conn.putrequest("POST", "/v1/completeness")
            conn.putheader("Content-Type", "application/json")
            conn.putheader("Content-Length", "banana")
            conn.endheaders()
            response = conn.getresponse()
            assert response.status == 400
            error = json.loads(response.read())["error"]
            assert error["type"] == "BadContentLength"
        finally:
            conn.close()


class TestConcurrentClients:
    def test_parallel_connections_all_answered(self, server):
        errors = []

        def one_client(n: int) -> None:
            conn = http.client.HTTPConnection(
                server.host, server.port, timeout=30)
            try:
                for _ in range(10):
                    conn.request("GET", "/v1/importance?limit=3")
                    response = conn.getresponse()
                    body = response.read()
                    if response.status != 200:
                        errors.append((n, response.status, body[:80]))
            finally:
                conn.close()

        threads = [threading.Thread(target=one_client, args=(n,))
                   for n in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors, errors[:3]


def test_graceful_stop_and_restartable_app(study):
    holder = SnapshotHolder(study.dataset)
    app = ServeApp(holder)
    server = ServeServer(app, port=0).start()
    conn = http.client.HTTPConnection(server.host, server.port,
                                      timeout=10)
    conn.request("GET", "/healthz")
    assert conn.getresponse().status == 200
    conn.close()
    server.stop()
    # The app (and its caches) survive; a new listener can be bound.
    second = ServeServer(app, port=0).start()
    try:
        conn = http.client.HTTPConnection(second.host, second.port,
                                          timeout=10)
        conn.request("GET", "/readyz")
        assert conn.getresponse().status == 200
        conn.close()
    finally:
        second.stop()
