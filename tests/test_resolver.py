"""Cross-binary footprint resolution tests."""

from repro.analysis.binary import BinaryAnalysis
from repro.analysis.resolver import FootprintResolver, LibraryIndex
from repro.synth.codegen import BinarySpec, FunctionSpec, generate_binary


def _lib(soname, functions, needed=("libc.so.6",)):
    spec = BinarySpec(name=soname, functions=functions, needed=needed,
                      soname=soname, entry_function=None)
    return BinaryAnalysis.from_bytes(generate_binary(spec), name=soname)


def _exe(functions, needed):
    spec = BinarySpec(name="exe", functions=functions, needed=needed,
                      entry_function="main")
    return BinaryAnalysis.from_bytes(generate_binary(spec), name="exe")


def _mini_libc():
    return _lib("libc.so.6", [
        FunctionSpec(name="__libc_start_main",
                     direct_syscalls=("arch_prctl", "exit_group"),
                     exported=True),
        FunctionSpec(name="printf", direct_syscalls=("write",),
                     exported=True),
        FunctionSpec(name="fopen", direct_syscalls=("open", "fstat"),
                     exported=True),
        FunctionSpec(name="popen",
                     direct_syscalls=("pipe",),
                     local_calls=("fopen",), exported=True),
    ], needed=())


class TestResolution:
    def setup_method(self):
        self.index = LibraryIndex()
        self.index.add(_mini_libc())
        self.resolver = FootprintResolver(self.index)

    def test_export_direct_effects(self):
        footprint = self.resolver.resolve_export("libc.so.6", "printf")
        assert footprint.syscalls == frozenset({"write"})

    def test_export_internal_call_closure(self):
        footprint = self.resolver.resolve_export("libc.so.6", "popen")
        assert {"pipe", "open", "fstat"} <= footprint.syscalls

    def test_unknown_export_empty(self):
        assert self.resolver.resolve_export(
            "libc.so.6", "missing").is_empty

    def test_unknown_library_empty(self):
        assert self.resolver.resolve_export(
            "libghost.so", "anything").is_empty

    def test_executable_resolution(self):
        exe = _exe([FunctionSpec(name="main",
                                 libc_calls=("printf", "popen"))],
                   needed=("libc.so.6",))
        footprint = self.resolver.resolve_executable(exe)
        assert {"write", "pipe", "open"} <= footprint.syscalls

    def test_libc_symbols_recorded(self):
        exe = _exe([FunctionSpec(name="main",
                                 libc_calls=("printf",))],
                   needed=("libc.so.6",))
        footprint = self.resolver.resolve_executable(exe)
        assert "printf" in footprint.libc_symbols

    def test_memoization_returns_same_result(self):
        first = self.resolver.resolve_export("libc.so.6", "popen")
        second = self.resolver.resolve_export("libc.so.6", "popen")
        assert first == second


class TestCrossLibrary:
    def test_transitive_dependency_resolution(self):
        index = LibraryIndex()
        index.add(_mini_libc())
        index.add(_lib("libmid.so.1", [
            FunctionSpec(name="mid_api", libc_calls=("fopen",),
                         direct_syscalls=("getpid",), exported=True),
        ]))
        resolver = FootprintResolver(index)
        exe = _exe(
            [FunctionSpec(name="main", libc_calls=("mid_api",))],
            needed=("libmid.so.1",))
        footprint = resolver.resolve_executable(exe)
        assert {"getpid", "open", "fstat"} <= footprint.syscalls
        # mid_api is not a libc symbol
        assert "mid_api" not in footprint.libc_symbols
        assert "fopen" in footprint.libc_symbols

    def test_provider_search_via_needed_closure(self):
        """exe needs libmid; libmid needs libc; exe calls printf."""
        index = LibraryIndex()
        index.add(_mini_libc())
        index.add(_lib("libmid.so.1", [
            FunctionSpec(name="mid_api", exported=True)]))
        resolver = FootprintResolver(index)
        exe = _exe([FunctionSpec(name="main", libc_calls=("printf",))],
                   needed=("libmid.so.1",))
        footprint = resolver.resolve_executable(exe)
        assert "write" in footprint.syscalls

    def test_mutual_recursion_between_libraries(self):
        index = LibraryIndex()
        index.add(_lib("liba.so", [
            FunctionSpec(name="a_fn", libc_calls=("b_fn",),
                         direct_syscalls=("read",), exported=True),
        ], needed=("libb.so",)))
        index.add(_lib("libb.so", [
            FunctionSpec(name="b_fn", libc_calls=("a_fn",),
                         direct_syscalls=("write",), exported=True),
        ], needed=("liba.so",)))
        resolver = FootprintResolver(index)
        footprint = resolver.resolve_export("liba.so", "a_fn")
        assert "read" in footprint.syscalls
        assert "write" in footprint.syscalls

    def test_pseudo_files_attached_to_executable(self):
        index = LibraryIndex()
        index.add(_mini_libc())
        resolver = FootprintResolver(index)
        spec = BinarySpec(
            name="exe",
            functions=[FunctionSpec(name="main",
                                    strings=("/dev/null",))],
            needed=("libc.so.6",), entry_function="main")
        exe = BinaryAnalysis.from_bytes(generate_binary(spec))
        footprint = resolver.resolve_executable(exe)
        assert "/dev/null" in footprint.pseudo_files


class TestLibraryIndex:
    def test_soname_required(self):
        index = LibraryIndex()
        exe = _exe([FunctionSpec(name="main")], needed=())
        try:
            index.add(exe)
        except ValueError:
            pass
        else:  # pragma: no cover
            raise AssertionError("expected ValueError")

    def test_providers_of(self):
        index = LibraryIndex()
        index.add(_mini_libc())
        assert index.providers_of("printf") == ["libc.so.6"]
        assert index.providers_of("ghost") == []

    def test_contains_and_sonames(self):
        index = LibraryIndex()
        index.add(_mini_libc())
        assert "libc.so.6" in index
        assert index.sonames() == ["libc.so.6"]
