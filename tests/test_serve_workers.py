"""Pre-fork multi-worker serving, over real sockets and real forks.

Everything here runs the true production path: a
:class:`repro.serve.WorkerSupervisor` binds one address, forks worker
processes that mmap the same ``.rsnap`` snapshot, and the tests speak
HTTP to the fleet.  Workers identify themselves with the
``X-Repro-Worker: <index>:<pid>`` response header, which is how the
tests attribute a response to a process without trusting scheduling.
"""

import http.client
import json
import os
import signal
import socket
import time

import pytest

from repro.serve import (ServeApp, SnapshotHolder, WorkerSettings,
                         WorkerSupervisor, default_mode,
                         reuse_port_available)

pytestmark = pytest.mark.skipif(not hasattr(os, "fork"),
                                reason="pre-fork serving needs fork")


@pytest.fixture(scope="module")
def snapshot_path(study, tmp_path_factory):
    path = tmp_path_factory.mktemp("workers") / "dataset.rsnap"
    study.export_dataset(path, format="binary")
    return path


@pytest.fixture(scope="module")
def fleet(study, snapshot_path):
    """A 2-worker fleet in the platform's default socket mode."""
    supervisor = WorkerSupervisor(
        snapshot_path, workers=2,
        popcon=study.popcon, repository=study.repository,
        backoff_base_seconds=0.05, healthy_after_seconds=0.5)
    with supervisor:
        yield supervisor


def fetch(supervisor, method, path, body=None, timeout=10):
    """One request on a fresh connection; returns (status, headers,
    bytes).  A fresh connection per call is what lets the kernel pick
    a worker each time."""
    conn = http.client.HTTPConnection(supervisor.host,
                                      supervisor.port,
                                      timeout=timeout)
    try:
        raw = json.dumps(body) if body is not None else None
        headers = {"Content-Type": "application/json"} if raw else {}
        conn.request(method, path, body=raw, headers=headers)
        response = conn.getresponse()
        return response.status, dict(response.getheaders()), \
            response.read()
    finally:
        conn.close()


def per_worker(supervisor, path, want=2, deadline_seconds=30.0):
    """Fetch ``path`` until ``want`` distinct workers have answered.

    Returns ``{worker_label: (status, headers, body)}``.  The kernel
    decides which worker gets each connection, so this loops fresh
    connections until the whole fleet has been heard from.
    """
    seen = {}
    deadline = time.monotonic() + deadline_seconds
    while len(seen) < want:
        if time.monotonic() > deadline:
            raise AssertionError(
                f"only {sorted(seen)} answered within "
                f"{deadline_seconds}s")
        status, headers, body = fetch(supervisor, "GET", path)
        label = headers.get("X-Repro-Worker")
        if label is not None:
            seen[label] = (status, headers, body)
    return seen


class TestFleetBoot:
    def test_two_workers_answer_with_distinct_pids(self, fleet):
        answers = per_worker(fleet, "/healthz")
        labels = sorted(answers)
        assert len(labels) == 2
        pids = {int(label.split(":")[1]) for label in labels}
        assert pids == set(p for p in fleet.worker_pids())
        assert all(status == 200 for status, _, _ in
                   answers.values())

    def test_readyz_provenance_identical_across_workers(self, fleet):
        answers = per_worker(fleet, "/readyz")
        payloads = [json.loads(body) for _, _, body in
                    answers.values()]
        assert {p["fingerprint"] for p in payloads} == \
            {payloads[0]["fingerprint"]}
        assert {p["format"] for p in payloads} == {"rsnap"}
        assert {p["generation"] for p in payloads} == {1}

    def test_metrics_carry_worker_and_pid_labels(self, fleet):
        answers = per_worker(fleet, "/metrics")
        for label, (status, _, body) in answers.items():
            assert status == 200
            index, pid = label.split(":")
            lines = body.decode().splitlines()
            samples = [line for line in lines
                       if not line.startswith("#")]
            assert samples
            for line in samples:
                assert f'worker="{index}"' in line, line
                assert f'pid="{pid}"' in line, line

    def test_stats_table_reports_live_fleet(self, fleet):
        stats = fleet.stats()
        assert stats["workers"] == 2
        assert stats["mode"] == default_mode()
        assert all(row["alive"] for row in stats["worker_table"])


class TestPerWorkerParity:
    QUERY = "/v1/importance?limit=8&dimension=syscall"

    def warm_answers(self, fleet):
        """One *cached* answer per worker.

        The ``cached`` envelope flag legitimately differs between a
        worker's first (miss) and later (hit) answers, so byte parity
        is asserted on the warm state, which is deterministic.
        """
        warm = {}
        deadline = time.monotonic() + 30.0
        while len(warm) < 2:
            assert time.monotonic() < deadline, sorted(warm)
            _, headers, body = fetch(fleet, "GET", self.QUERY)
            label = headers.get("X-Repro-Worker")
            if label and json.loads(body)["cached"]:
                warm[label] = body
        return warm

    def test_workers_answer_byte_identically(self, fleet):
        bodies = set(self.warm_answers(fleet).values())
        assert len(bodies) == 1, "workers disagree on bytes"

    def test_worker_bytes_match_in_process_app(self, fleet, study,
                                               snapshot_path):
        served = next(iter(self.warm_answers(fleet).values()))
        holder = SnapshotHolder.from_file(snapshot_path,
                                          study.popcon,
                                          study.repository)
        app = ServeApp(holder, allow_reload=False)
        from repro.serve import Request
        request = Request("GET", "/v1/importance",
                          query={"limit": "8",
                                 "dimension": "syscall"})
        app.handle(request)            # prime the cache
        local = app.handle(request)    # warm, cached=true
        assert served == local.body


class TestReloadFanOut:
    """SIGHUP reaches every worker and provenance stays in lockstep.

    Runs last against the shared fleet (it rewrites the snapshot
    file), restoring the original bytes afterwards.
    """

    def test_sighup_reloads_every_worker(self, fleet, study,
                                         snapshot_path):
        original = snapshot_path.read_bytes()
        try:
            study.export_dataset(snapshot_path, format="json")
            assert fleet.reload_all() == 2
            deadline = time.monotonic() + 30.0
            while True:
                answers = per_worker(fleet, "/readyz")
                payloads = [json.loads(body) for _, _, body in
                            answers.values()]
                if all(p.get("generation") == 2
                       and p.get("format") == "json"
                       for p in payloads):
                    break
                assert time.monotonic() < deadline, payloads
                time.sleep(0.1)
            # same source file => same fingerprint fleet-wide
            assert len({p["fingerprint"] for p in payloads}) == 1
        finally:
            snapshot_path.write_bytes(original)
            fleet.reload_all()
            deadline = time.monotonic() + 30.0
            while True:
                answers = per_worker(fleet, "/readyz")
                payloads = [json.loads(body) for _, _, body in
                            answers.values()]
                if all(p.get("format") == "rsnap" for p in payloads):
                    break
                assert time.monotonic() < deadline, payloads
                time.sleep(0.1)


class TestCrashRecovery:
    def test_killed_worker_is_restarted_under_load(self, study,
                                                   snapshot_path):
        supervisor = WorkerSupervisor(
            snapshot_path, workers=2,
            popcon=study.popcon, repository=study.repository,
            backoff_base_seconds=0.05, healthy_after_seconds=0.5)
        with supervisor:
            victim = supervisor.worker_pids()[0]
            failures = []
            completed = 0
            os.kill(victim, signal.SIGKILL)
            deadline = time.monotonic() + 30.0
            # keep traffic flowing through the kill window: requests
            # that reach a live worker must succeed; only broken
            # in-flight connections are tolerated.
            while time.monotonic() < deadline:
                try:
                    status, _, _ = fetch(supervisor, "GET",
                                         "/healthz", timeout=5)
                except (ConnectionError, socket.timeout,
                        http.client.HTTPException):
                    continue
                if status != 200:
                    failures.append(status)
                completed += 1
                pid = supervisor.worker_pids()[0]
                if pid is not None and pid != victim:
                    break
            assert not failures
            assert completed > 0
            assert supervisor.total_restarts >= 1
            supervisor.wait_until_ready()
            restarted = supervisor.worker_pids()[0]
            assert restarted is not None and restarted != victim
            status, _, _ = fetch(supervisor, "GET", "/healthz")
            assert status == 200

    def test_graceful_stop_exits_zero(self, study, snapshot_path):
        supervisor = WorkerSupervisor(
            snapshot_path, workers=2,
            popcon=study.popcon, repository=study.repository)
        supervisor.start()
        supervisor.wait_until_ready()
        supervisor.stop()
        table = supervisor.stats()["worker_table"]
        assert [row["last_exitcode"] for row in table] == [0, 0]
        assert not any(row["alive"] for row in table)


class TestSocketModes:
    @pytest.mark.skipif(not reuse_port_available(),
                        reason="SO_REUSEPORT unavailable")
    def test_reuseport_mode_serves(self, study, snapshot_path):
        with WorkerSupervisor(snapshot_path, workers=2,
                              popcon=study.popcon,
                              repository=study.repository,
                              mode="reuseport") as supervisor:
            assert supervisor.mode == "reuseport"
            status, _, _ = fetch(supervisor, "GET", "/healthz")
            assert status == 200

    def test_inherit_mode_serves(self, study, snapshot_path):
        with WorkerSupervisor(snapshot_path, workers=2,
                              popcon=study.popcon,
                              repository=study.repository,
                              mode="inherit") as supervisor:
            assert supervisor.mode == "inherit"
            answers = per_worker(supervisor, "/readyz")
            assert len(answers) == 2

    def test_taken_port_raises_at_bind(self, study, snapshot_path):
        taken = socket.socket()
        taken.bind(("127.0.0.1", 0))
        taken.listen(1)
        try:
            port = taken.getsockname()[1]
            supervisor = WorkerSupervisor(
                snapshot_path, workers=2, port=port,
                popcon=study.popcon, repository=study.repository,
                mode="inherit")
            with pytest.raises(OSError):
                supervisor.start()
        finally:
            taken.close()

    def test_rejects_bad_configuration(self, snapshot_path):
        with pytest.raises(ValueError):
            WorkerSupervisor(snapshot_path, workers=0)
        with pytest.raises(ValueError):
            WorkerSupervisor(snapshot_path, mode="quantum")

    def test_settings_reach_workers(self, study, snapshot_path):
        settings = WorkerSettings(concurrency=2,
                                  max_wait_seconds=0.05)
        with WorkerSupervisor(snapshot_path, workers=1,
                              popcon=study.popcon,
                              repository=study.repository,
                              settings=settings) as supervisor:
            status, _, body = fetch(supervisor, "GET", "/metrics")
            assert status == 200
            assert "repro_serve_admission_slots" in body.decode()
