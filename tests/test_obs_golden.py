"""Golden-file schema tests for the exporters.

The JSON-lines trace and the Prometheus text are public formats: a CI
job uploads the trace artifact and external tooling may scrape the
metrics.  These tests pin the exact bytes produced for a fixed,
fake-clock trace and a fixed registry against checked-in golden
files, and prove both formats round-trip through their readers.  Any
intentional shape change must update the goldens *and* bump the
schema version.

Regenerate after a deliberate change with::

    PYTHONPATH=src python tests/test_obs_golden.py --regenerate
"""

import pathlib
from collections import Counter

import pytest

from repro.obs import (
    METRICS_SCHEMA_VERSION,
    TRACE_SCHEMA,
    TRACE_SCHEMA_VERSION,
    MetricsRegistry,
    SpanTracer,
    parse_metrics,
    read_trace,
    render_metrics,
    trace_to_lines,
    validate_span_dict,
    span_to_dict,
)

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"
TRACE_GOLDEN = GOLDEN_DIR / "trace.golden.jsonl"
METRICS_GOLDEN = GOLDEN_DIR / "metrics.golden.prom"


class _TickClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        self.now += 0.125
        return self.now


def build_trace():
    """A miniature engine-shaped trace on a deterministic clock."""
    tracer = SpanTracer(clock=_TickClock())
    with tracer.span("stage:scan"):
        pass
    with tracer.span("stage:analyze") as analyze:
        worker = SpanTracer(clock=_TickClock())
        with worker.span("binary", binary="bin/app", sha256="26a5a2c7"):
            with worker.span("decode"):
                pass
            with worker.span("validate"):
                pass
            with worker.span("record"):
                pass
        tracer.adopt(worker.finished(), parent_id=analyze.span_id)
        tracer.record_span(
            "quarantine", seconds=0.25, error=True,
            parent_id=analyze.span_id,
            attrs={"package": "corrupt", "artifact": "bin/bad",
                   "error_class": "format", "exc_type": "ElfFormatError",
                   "stage": "decode"})
    return tracer.finished()


def build_registry():
    registry = MetricsRegistry()
    registry.counter("engine.binaries.submitted").set(4)
    registry.counter("engine.binaries.analyzed").set(3)
    registry.counter("engine.binaries.quarantined").set(1)
    registry.counter("engine.cache.hits").set(2)
    registry.gauge("engine.stage.scan.seconds").add(0.125)
    registry.gauge("engine.stage.analyze.seconds").add(1.5)
    histogram = registry.histogram("engine.analyze.task_seconds")
    for value in (0.001, 0.002, 0.004, 0.032):
        histogram.observe(value)
    return registry


def _trace_text():
    return "\n".join(
        trace_to_lines(build_trace(),
                       meta={"backend": "serial", "jobs": 1})) + "\n"


def _metrics_text():
    return render_metrics(build_registry())


class TestTraceGolden:
    def test_matches_golden_bytes(self):
        assert _trace_text() == TRACE_GOLDEN.read_text(encoding="utf-8")

    def test_round_trip(self):
        header, spans = read_trace(_trace_text().splitlines())
        assert header["schema"] == TRACE_SCHEMA
        assert header["version"] == TRACE_SCHEMA_VERSION
        assert header["spans"] == len(spans) == len(build_trace())
        assert (Counter(s.name for s in spans)
                == Counter(s.name for s in build_trace()))
        # Reading back the golden file itself agrees too.
        golden_header, golden_spans = read_trace(
            TRACE_GOLDEN.read_text(encoding="utf-8").splitlines())
        assert golden_header == header
        assert golden_spans == spans

    def test_every_golden_line_is_schema_valid(self):
        for span in build_trace():
            validate_span_dict(span_to_dict(span))

    def test_reader_rejects_wrong_schema(self):
        bad = _trace_text().replace(TRACE_SCHEMA, "other.trace", 1)
        with pytest.raises(ValueError, match="not a repro.trace"):
            read_trace(bad.splitlines())

    def test_reader_rejects_future_version(self):
        bad = _trace_text().replace(
            f'"version": {TRACE_SCHEMA_VERSION}', '"version": 999', 1)
        with pytest.raises(ValueError, match="version"):
            read_trace(bad.splitlines())

    def test_reader_rejects_corrupt_span_line(self):
        lines = _trace_text().splitlines()
        lines[1] = lines[1].replace('"error": false', '"error": "no"')
        with pytest.raises(ValueError, match="error must be a bool"):
            read_trace(lines)


class TestMetricsGolden:
    def test_matches_golden_bytes(self):
        assert (_metrics_text()
                == METRICS_GOLDEN.read_text(encoding="utf-8"))

    def test_round_trip(self):
        samples = parse_metrics(_metrics_text())
        assert samples["repro_engine_binaries_submitted"] == 4
        assert samples["repro_engine_binaries_analyzed"] == 3
        assert samples["repro_engine_stage_analyze_seconds"] == 1.5
        assert (samples['repro_engine_analyze_task_seconds'
                        '{quantile="0.5"}'] == 0.002)
        assert samples["repro_engine_analyze_task_seconds_count"] == 4
        assert samples["repro_engine_analyze_task_seconds_sum"] == (
            pytest.approx(0.039))
        # The golden file parses to the same samples.
        assert parse_metrics(
            METRICS_GOLDEN.read_text(encoding="utf-8")) == samples

    def test_schema_line_is_first(self):
        first = _metrics_text().splitlines()[0]
        assert first == f"# repro-metrics-schema: {METRICS_SCHEMA_VERSION}"

    def test_parser_rejects_missing_schema(self):
        body = "\n".join(_metrics_text().splitlines()[1:])
        with pytest.raises(ValueError, match="no schema line"):
            parse_metrics(body)

    def test_parser_rejects_future_version(self):
        bad = _metrics_text().replace(
            f"schema: {METRICS_SCHEMA_VERSION}", "schema: 999", 1)
        with pytest.raises(ValueError, match="version"):
            parse_metrics(bad)


if __name__ == "__main__":
    import sys

    if "--regenerate" in sys.argv:
        GOLDEN_DIR.mkdir(exist_ok=True)
        TRACE_GOLDEN.write_text(_trace_text(), encoding="utf-8")
        METRICS_GOLDEN.write_text(_metrics_text(), encoding="utf-8")
        print(f"regenerated {TRACE_GOLDEN} and {METRICS_GOLDEN}")
