"""Footprint semilattice tests (unit + property)."""

from hypothesis import given, strategies as st

from repro.analysis.footprint import Footprint

_names = st.sets(st.sampled_from(
    ["read", "write", "open", "close", "mmap", "ioctl", "futex"]),
    max_size=5)


def _footprints():
    return st.builds(
        lambda a, b, c: Footprint.build(syscalls=a, ioctls=b,
                                        libc_symbols=c),
        _names, _names, _names)


class TestBasics:
    def test_empty(self):
        assert Footprint.EMPTY.is_empty
        assert Footprint.build(syscalls=["read"]).is_empty is False

    def test_build_freezes(self):
        fp = Footprint.build(syscalls=["read", "read"])
        assert fp.syscalls == frozenset({"read"})

    def test_union_merges_all_dimensions(self):
        a = Footprint.build(syscalls=["read"], ioctls=["TCGETS"],
                            pseudo_files=["/dev/null"],
                            unresolved_sites=1)
        b = Footprint.build(syscalls=["write"], fcntls=["F_GETFD"],
                            libc_symbols=["printf"],
                            unresolved_sites=2)
        u = a | b
        assert u.syscalls == frozenset({"read", "write"})
        assert u.ioctls == frozenset({"TCGETS"})
        assert u.fcntls == frozenset({"F_GETFD"})
        assert u.pseudo_files == frozenset({"/dev/null"})
        assert u.libc_symbols == frozenset({"printf"})
        assert u.unresolved_sites == 3

    def test_api_set_namespacing(self):
        fp = Footprint.build(syscalls=["read"], ioctls=["TCGETS"],
                             libc_symbols=["printf"])
        apis = fp.api_set()
        assert "read" in apis
        assert "ioctl:TCGETS" in apis
        assert "libc:printf" in apis

    def test_requires_only(self):
        fp = Footprint.build(syscalls=["read", "write"])
        assert fp.requires_only(["read", "write", "open"])
        assert not fp.requires_only(["read"])

    def test_hashable_and_equal(self):
        a = Footprint.build(syscalls=["read"])
        b = Footprint.build(syscalls=["read"])
        assert a == b
        assert hash(a) == hash(b)


class TestSemilatticeProperties:
    @given(_footprints())
    def test_union_idempotent(self, fp):
        merged = fp | fp
        assert merged.syscalls == fp.syscalls
        assert merged.ioctls == fp.ioctls
        assert merged.libc_symbols == fp.libc_symbols

    @given(_footprints(), _footprints())
    def test_union_commutative(self, a, b):
        ab = a | b
        ba = b | a
        assert ab.syscalls == ba.syscalls
        assert ab.ioctls == ba.ioctls
        assert ab.libc_symbols == ba.libc_symbols

    @given(_footprints(), _footprints(), _footprints())
    def test_union_associative(self, a, b, c):
        left = (a | b) | c
        right = a | (b | c)
        assert left.syscalls == right.syscalls
        assert left.ioctls == right.ioctls

    @given(_footprints())
    def test_empty_is_identity(self, fp):
        merged = fp | Footprint.EMPTY
        assert merged.syscalls == fp.syscalls
        assert merged.unresolved_sites == fp.unresolved_sites

    @given(_footprints(), _footprints())
    def test_union_upper_bound(self, a, b):
        merged = a | b
        assert a.syscalls <= merged.syscalls
        assert b.syscalls <= merged.syscalls


class TestUnionAll:
    @given(st.lists(_footprints(), max_size=6))
    def test_equals_pairwise_fold(self, parts):
        folded = Footprint.EMPTY
        for part in parts:
            folded = folded | part
        assert Footprint.union_all(parts) == folded

    def test_empty_iterable(self):
        assert Footprint.union_all([]) is Footprint.EMPTY
        assert Footprint.union_all(iter([])) is Footprint.EMPTY

    def test_accepts_generators(self):
        fps = [Footprint.build(syscalls=[name])
               for name in ("read", "write")]
        merged = Footprint.union_all(fp for fp in fps)
        assert merged.syscalls == frozenset({"read", "write"})

    def test_sums_unresolved_sites(self):
        parts = [Footprint.build(unresolved_sites=1),
                 Footprint.build(unresolved_sites=4)]
        assert Footprint.union_all(parts).unresolved_sites == 5
