"""Text rendering tests."""

from hypothesis import given, strategies as st

from repro.reports import (
    format_percent,
    render_key_points,
    render_series,
    render_table,
)


class TestFormatPercent:
    def test_basic(self):
        assert format_percent(0.5) == "50.0%"
        assert format_percent(1.0) == "100.0%"
        assert format_percent(0.123, digits=2) == "12.30%"

    def test_zero(self):
        assert format_percent(0.0) == "0.0%"


class TestRenderTable:
    def test_alignment(self):
        text = render_table(("name", "value"),
                            [("a", 1), ("longer", 22)])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert set(lines[1]) <= {"-", " "}
        # all rows same padded width for first column
        assert lines[2].index("1") == lines[3].index("2")

    def test_title(self):
        text = render_table(("h",), [("x",)], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_empty_rows(self):
        text = render_table(("a", "b"), [])
        assert "a" in text and "b" in text

    def test_wide_cells_expand_columns(self):
        text = render_table(("h",), [("a-very-long-cell",)])
        header, rule, row = text.splitlines()
        assert len(rule) >= len("a-very-long-cell")

    @given(st.lists(st.tuples(st.text(max_size=8),
                              st.integers(0, 999)),
                    min_size=1, max_size=10))
    def test_row_count_preserved(self, rows):
        text = render_table(("x", "y"), rows)
        assert len(text.splitlines()) == 2 + len(rows)


class TestRenderSeries:
    def test_empty(self):
        assert "(empty series)" in render_series([])

    def test_shape_and_footer(self):
        text = render_series([1.0, 0.5, 0.0], width=10, height=5)
        lines = text.splitlines()
        assert len(lines) == 5 + 2  # grid + axis + footer
        assert lines[-2].startswith("+")
        assert "x: 1..3" in lines[-1]

    def test_title_first(self):
        text = render_series([1.0], title="T")
        assert text.splitlines()[0] == "T"

    def test_monotone_series_monotone_columns(self):
        text = render_series([1.0] * 10 + [0.0] * 10,
                             width=10, height=4)
        top_row = text.splitlines()[0]
        # head columns filled at the top, tail columns empty
        assert top_row[1] == "#"
        assert top_row[10] == " "

    @given(st.lists(st.floats(0, 1), min_size=1, max_size=200))
    def test_never_crashes(self, values):
        assert render_series(values, width=20, height=5)


class TestRenderKeyPoints:
    def test_alignment(self):
        text = render_key_points([("a", 1), ("longer label", 2)])
        lines = text.splitlines()
        assert lines[0].index(":") == lines[1].index(":")

    def test_title(self):
        text = render_key_points([("k", "v")], title="Points")
        assert text.splitlines()[0] == "Points"

    def test_empty(self):
        assert render_key_points([]) == ""
