"""Relational store tests: inserts and recursive CTE aggregation."""

import pytest

from repro.analysis.database import AnalysisDatabase
from repro.analysis.footprint import Footprint
from repro.analysis.pipeline import AnalysisPipeline
from repro.synth import EcosystemConfig, build_ecosystem


class TestInsertAndQuery:
    def setup_method(self):
        self.db = AnalysisDatabase()

    def teardown_method(self):
        self.db.close()

    def test_package_rows(self):
        self.db.add_package("demo", "tools", depends=["libc6"])
        counts = self.db.row_counts()
        assert counts["packages"] == 1
        assert counts["package_dependencies"] == 1

    def test_binary_ids_increment(self):
        first = self.db.add_binary("p", "bin/a", "elf-executable")
        second = self.db.add_binary("p", "bin/b", "elf-executable")
        assert second == first + 1

    def test_executable_effects_round_trip(self):
        binary = self.db.add_binary("p", "bin/a", "elf-executable")
        self.db.add_executable_effects(binary, Footprint.build(
            syscalls=["read", "write"], ioctls=["TCGETS"],
            pseudo_files=["/dev/null"], libc_symbols=["printf"]))
        footprint = self.db.executable_footprint(binary)
        assert footprint.syscalls == frozenset({"read", "write"})
        assert footprint.ioctls == frozenset({"TCGETS"})
        assert footprint.pseudo_files == frozenset({"/dev/null"})
        assert footprint.libc_symbols == frozenset({"printf"})

    def test_recursive_closure_one_level(self):
        binary = self.db.add_binary("p", "bin/a", "elf-executable")
        self.db.add_export_effects("libc.so.6", "printf",
                                   Footprint.build(syscalls=["write"]))
        self.db.add_executable_call(binary, "libc.so.6", "printf")
        footprint = self.db.executable_footprint(binary)
        assert "write" in footprint.syscalls

    def test_recursive_closure_deep(self):
        binary = self.db.add_binary("p", "bin/a", "elf-executable")
        self.db.add_export_effects("liba.so", "fa",
                                   Footprint.build(syscalls=["read"]))
        self.db.add_export_effects("libb.so", "fb",
                                   Footprint.build(syscalls=["write"]))
        self.db.add_export_call("liba.so", "fa", "libb.so", "fb")
        self.db.add_executable_call(binary, "liba.so", "fa")
        footprint = self.db.executable_footprint(binary)
        assert footprint.syscalls == frozenset({"read", "write"})

    def test_recursive_closure_cycle_terminates(self):
        self.db.add_export_effects("liba.so", "fa",
                                   Footprint.build(syscalls=["read"]))
        self.db.add_export_effects("libb.so", "fb",
                                   Footprint.build(syscalls=["write"]))
        self.db.add_export_call("liba.so", "fa", "libb.so", "fb")
        self.db.add_export_call("libb.so", "fb", "liba.so", "fa")
        footprint = self.db.export_footprint("liba.so", "fa")
        assert footprint.syscalls == frozenset({"read", "write"})

    def test_package_footprint_unions_executables(self):
        a = self.db.add_binary("p", "bin/a", "elf-executable")
        b = self.db.add_binary("p", "bin/b", "elf-executable")
        self.db.add_binary("other", "bin/c", "elf-executable")
        self.db.add_executable_effects(a, Footprint.build(
            syscalls=["read"]))
        self.db.add_executable_effects(b, Footprint.build(
            syscalls=["write"]))
        footprint = self.db.package_footprint("p")
        assert footprint.syscalls == frozenset({"read", "write"})

    def test_popcon_storage(self):
        self.db.set_popcon("p", 12345)
        (value,) = self.db.connection.execute(
            "SELECT installations FROM popcon WHERE package='p'"
        ).fetchone()
        assert value == 12345

    def test_context_manager(self):
        with AnalysisDatabase() as db:
            db.add_package("x")
            assert db.row_counts()["packages"] == 1


class TestSqlMatchesInMemoryResolver:
    """The paper's recursive-SQL engine and the procedural resolver
    must agree on every executable's syscall footprint."""

    @pytest.fixture(scope="class")
    def setup(self, tiny_config):
        ecosystem = build_ecosystem(tiny_config)
        database = AnalysisDatabase()
        pipeline = AnalysisPipeline(ecosystem.repository,
                                    ecosystem.interpreters)
        result = pipeline.run(database)
        return ecosystem, database, result

    def test_syscall_footprints_agree(self, setup):
        ecosystem, database, result = setup
        rows = database.connection.execute(
            "SELECT id, package, name FROM binaries "
            "WHERE kind IN ('elf-executable', 'elf-static')").fetchall()
        assert rows
        checked = 0
        for binary_id, package, name in rows:
            expected = result.binary_footprints.get((package, name))
            if expected is None:
                continue
            actual = database.executable_footprint(binary_id)
            assert actual.syscalls == expected.syscalls, (package, name)
            assert actual.ioctls == expected.ioctls, (package, name)
            assert actual.libc_symbols == expected.libc_symbols
            checked += 1
        assert checked >= 10

    def test_row_counts_substantial(self, setup):
        _, database, result = setup
        assert database.total_rows() > 1000
