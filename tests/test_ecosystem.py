"""Ecosystem builder tests."""

import pytest

from repro.packages.package import BinaryKind
from repro.synth import (
    ESSENTIAL_PACKAGES,
    EcosystemConfig,
    build_ecosystem,
)


@pytest.fixture(scope="module")
def tiny():
    return build_ecosystem(EcosystemConfig(
        n_filler_packages=24, n_driver_packages=6,
        n_script_packages=10, seed=7))


class TestStructure:
    def test_runtime_package_present(self, tiny):
        libc6 = tiny.repository.get("libc6")
        sonames = {a.name.rsplit("/", 1)[-1] for a in libc6.artifacts}
        assert "libc.so.6" in sonames
        assert "ld-linux-x86-64.so.2" in sonames

    def test_essential_packages_present(self, tiny):
        for name in ESSENTIAL_PACKAGES:
            assert name in tiny.repository, name

    def test_anchor_packages_present(self, tiny):
        for name in ("libnuma", "kexec-tools", "qemu-user", "systemd",
                     "nfs-utils", "coop-computing-tools"):
            assert name in tiny.repository

    def test_filler_count(self, tiny):
        fillers = [p for p in tiny.repository
                   if p.category in ("cli-tool", "daemon",
                                     "desktop-app", "devtool",
                                     "terminal-app", "sysadmin",
                                     "science", "trivial")]
        assert len(fillers) == 24

    def test_every_package_has_valid_dependencies(self, tiny):
        assert tiny.repository.validate_dependencies() == []

    def test_script_packages_depend_on_interpreter(self, tiny):
        scripts = [p for p in tiny.repository
                   if p.category == "scripts"]
        assert scripts
        for package in scripts:
            interpreters = {a.interpreter for a in package.artifacts
                            if a.kind == BinaryKind.SCRIPT}
            for interp in interpreters:
                provider = tiny.interpreters[interp]
                assert provider in package.depends

    def test_all_elf_artifacts_have_bytes(self, tiny):
        for package in tiny.repository:
            for artifact in package.elf_artifacts():
                assert artifact.data[:4] == b"\x7fELF", (
                    package.name, artifact.name)

    def test_scripts_have_shebangs(self, tiny):
        for package in tiny.repository:
            for artifact in package.artifacts:
                if artifact.kind == BinaryKind.SCRIPT:
                    assert artifact.data.startswith(b"#!")


class TestPopcon:
    def test_essential_always_installed(self, tiny):
        for name in ("libc6", "coreutils"):
            assert tiny.popcon.install_probability(name) == 1.0

    def test_anchor_probabilities_pinned(self, tiny):
        assert tiny.popcon.install_probability(
            "libnuma") == pytest.approx(0.36, abs=0.001)
        assert tiny.popcon.install_probability(
            "kexec-tools") == pytest.approx(0.01, abs=0.001)

    def test_every_package_surveyed(self, tiny):
        for package in tiny.repository:
            assert tiny.popcon.installations(package.name) >= 1


class TestDeterminism:
    def test_same_seed_same_bytes(self):
        config = EcosystemConfig(n_filler_packages=6,
                                 n_driver_packages=2,
                                 n_script_packages=4, seed=42)
        first = build_ecosystem(config)
        second = build_ecosystem(config)
        assert first.repository.names() == second.repository.names()
        for package in first.repository:
            other = second.repository.get(package.name)
            for a, b in zip(package.artifacts, other.artifacts):
                assert a.name == b.name
                assert a.data == b.data

    def test_different_seed_differs(self):
        base = EcosystemConfig(n_filler_packages=6,
                               n_driver_packages=2,
                               n_script_packages=4, seed=1)
        other = EcosystemConfig(n_filler_packages=6,
                                n_driver_packages=2,
                                n_script_packages=4, seed=2)
        first = build_ecosystem(base)
        second = build_ecosystem(other)
        differs = False
        for package in first.repository:
            if package.name not in second.repository:
                differs = True
                break
            twin = second.repository.get(package.name)
            if any(a.data != b.data for a, b in
                   zip(package.artifacts, twin.artifacts)):
                differs = True
                break
        assert differs


class TestGroundTruth:
    def test_ground_truth_for_all_generated(self, tiny):
        assert "qemu-user" in tiny.ground_truth
        assert "coreutils" in tiny.ground_truth

    def test_qemu_truth_is_wide(self, tiny):
        truth = tiny.ground_truth["qemu-user"]
        assert len(truth.syscalls) >= 260

    def test_anchor_truth_contains_pinned_syscalls(self, tiny):
        truth = tiny.ground_truth["kexec-tools"]
        assert "kexec_load" in truth.syscalls
