"""Cross-backend observability conformance suite.

The contract: running the *same corpus* on the serial, thread, and
process backends must produce identical metric counter values and the
same multiset of span names — only timings may differ.  This is what
makes the serial backend a trustworthy oracle for the parallel ones,
and it is deliberately strict: any backend that skips a stage, loses a
cache event, or drops a worker span fails loudly here.
"""

from collections import Counter

import pytest

from repro.analysis import AnalysisPipeline
from repro.engine import AnalysisEngine, EngineConfig
from repro.engine.stats import COUNTER_METRICS
from repro.obs import span_to_dict, validate_span_dict
from repro.synth import MUTATIONS, build_ecosystem, inject_corrupt_package

BACKENDS = [("serial", 1), ("thread", 3), ("process", 3)]


def _run(tiny_config, backend, jobs, corrupt=False):
    ecosystem = build_ecosystem(tiny_config)
    if corrupt:
        inject_corrupt_package(ecosystem.repository, seed=0)
    engine = AnalysisEngine(EngineConfig(jobs=jobs, backend=backend))
    result = AnalysisPipeline(ecosystem.repository,
                              ecosystem.interpreters,
                              engine=engine).run()
    return result.engine_stats


def _fingerprint(stats):
    """Everything that must be backend-invariant."""
    histogram_counts = {
        name: snapshot["count"]
        for name, snapshot in stats.registry.histogram_values().items()
    }
    return {
        "counters": stats.registry.counter_values(),
        "span_names": stats.tracer.name_multiset(),
        "histogram_counts": histogram_counts,
    }


@pytest.fixture(scope="module")
def clean_runs(tiny_config):
    return {backend: _run(tiny_config, backend, jobs)
            for backend, jobs in BACKENDS}


@pytest.fixture(scope="module")
def corrupt_runs(tiny_config):
    return {backend: _run(tiny_config, backend, jobs, corrupt=True)
            for backend, jobs in BACKENDS}


class TestCleanCorpusConformance:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_matches_serial_fingerprint(self, clean_runs, backend):
        assert (_fingerprint(clean_runs[backend])
                == _fingerprint(clean_runs["serial"]))

    def test_all_counter_metrics_present(self, clean_runs):
        for stats in clean_runs.values():
            assert (set(stats.registry.counter_values())
                    == set(COUNTER_METRICS.values()))

    def test_clean_run_has_no_quarantine_spans(self, clean_runs):
        for stats in clean_runs.values():
            names = stats.tracer.name_multiset()
            assert names["quarantine"] == 0
            assert names["binary"] == stats.binaries_analyzed > 0
            # Every binary span carries its full child set.
            for child in ("decode", "validate", "record"):
                assert names[child] == names["binary"]

    def test_every_span_is_schema_valid(self, clean_runs):
        for stats in clean_runs.values():
            spans = stats.tracer.finished()
            assert spans
            for span in spans:
                validate_span_dict(span_to_dict(span))

    def test_worker_spans_parented_under_analyze_stage(
            self, clean_runs):
        for stats in clean_runs.values():
            spans = stats.tracer.finished()
            stage_ids = {s.span_id for s in spans
                         if s.name == "stage:analyze"}
            assert len(stage_ids) == 1
            binary_spans = [s for s in spans if s.name == "binary"]
            assert binary_spans
            for span in binary_spans:
                assert span.parent_id in stage_ids


class TestCorruptCorpusConformance:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_matches_serial_fingerprint(self, corrupt_runs, backend):
        assert (_fingerprint(corrupt_runs[backend])
                == _fingerprint(corrupt_runs["serial"]))

    def test_quarantine_spans_cover_every_mutation(self, corrupt_runs):
        for stats in corrupt_runs.values():
            spans = [s for s in stats.tracer.finished()
                     if s.name == "quarantine"]
            assert len(spans) == len(MUTATIONS)
            assert all(s.error for s in spans)
            artifacts = {s.attrs["artifact"] for s in spans}
            assert artifacts == {f"bin/corrupt-{name}"
                                 for name in MUTATIONS}
            for span in spans:
                validate_span_dict(span_to_dict(span))

    def test_quarantine_attrs_identical_across_backends(
            self, corrupt_runs):
        def census(stats):
            return Counter(
                tuple(sorted(s.attrs.items()))
                for s in stats.tracer.finished()
                if s.name == "quarantine")

        serial = census(corrupt_runs["serial"])
        assert serial
        for backend in ("thread", "process"):
            assert census(corrupt_runs[backend]) == serial

    def test_quarantine_latency_counted(self, corrupt_runs):
        for stats in corrupt_runs.values():
            histograms = stats.registry.histogram_values()
            snapshot = histograms["engine.quarantine.task_seconds"]
            assert snapshot["count"] == len(MUTATIONS)


class TestTracingDisabled:
    def test_counters_unaffected_by_tracing_flag(self, tiny_config):
        traced = _run(tiny_config, "serial", 1)
        ecosystem = build_ecosystem(tiny_config)
        engine = AnalysisEngine(EngineConfig(tracing=False))
        untraced = AnalysisPipeline(
            ecosystem.repository, ecosystem.interpreters,
            engine=engine).run().engine_stats
        assert untraced.tracer.finished() == []
        assert (untraced.registry.counter_values()
                == traced.registry.counter_values())
