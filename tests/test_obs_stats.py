"""EngineStats as a thin view over repro.obs, and its rendering.

Includes the regression test for the thread-backend stage-timing race:
the old implementation accumulated ``stage_seconds`` with an
unsynchronized dict read-modify-write, silently losing wall time when
stages overlapped across threads.  The hammer below runs stages from
many threads against a deterministic per-thread clock so the expected
total is *exact* — any lost update breaks the equality.
"""

import sys
import threading

import pytest

import repro.engine.stats as stats_module
from repro.engine.errors import FailureRecord
from repro.engine.stats import (
    ANALYZE_LATENCY_METRIC,
    COUNTER_METRICS,
    QUARANTINE_LATENCY_METRIC,
    EngineStats,
)
from repro.obs import MetricsRegistry, SpanTracer, render_trace_report


class PerThreadClock:
    """Each thread sees its own monotonic counter: +1.0 per call.

    A ``stage()`` call touches the clock exactly four times on its own
    thread (stage start, span open, span close, stage end), so every
    call contributes exactly 3.0 to the stage gauge no matter how the
    threads interleave.
    """

    def __init__(self) -> None:
        self._local = threading.local()

    def __call__(self) -> float:
        now = getattr(self._local, "now", 0.0) + 1.0
        self._local.now = now
        return now


class TestStageThreadSafety:
    def test_concurrent_stage_accumulation_is_exact(self, monkeypatch):
        clock = PerThreadClock()
        monkeypatch.setattr(stats_module.time, "perf_counter", clock)
        stats = EngineStats(backend="thread", jobs=8,
                            tracer=SpanTracer(clock=clock))
        threads, iterations = 8, 200
        barrier = threading.Barrier(threads)

        def hammer():
            barrier.wait()
            for _ in range(iterations):
                with stats.stage("analyze"):
                    pass

        old_interval = sys.getswitchinterval()
        sys.setswitchinterval(1e-5)  # provoke interleaving
        try:
            pool = [threading.Thread(target=hammer)
                    for _ in range(threads)]
            for thread in pool:
                thread.start()
            for thread in pool:
                thread.join()
        finally:
            sys.setswitchinterval(old_interval)

        # 3.0 per call, no lost updates: equality must be exact.
        assert (stats.stage_seconds["analyze"]
                == threads * iterations * 3.0)
        assert (stats.tracer.name_multiset()["stage:analyze"]
                == threads * iterations)


class TestCounterView:
    def test_attributes_are_registry_backed(self):
        stats = EngineStats()
        stats.cache_hits += 3
        stats.cache_hits += 2
        assert stats.cache_hits == 5
        assert (stats.registry.counter_values()["engine.cache.hits"]
                == 5)
        # And the other direction: registry writes show up.
        stats.registry.counter("engine.retries").inc()
        assert stats.retries == 1

    def test_all_counters_materialized_up_front(self):
        stats = EngineStats()
        assert (set(stats.registry.counter_values())
                == set(COUNTER_METRICS.values()))
        assert all(value == 0 for value
                   in stats.registry.counter_values().values())


def _failures():
    return [
        FailureRecord(package="corrupt", artifact="bin/bad-magic",
                      sha256="0" * 64, error_class="decode",
                      exc_type="ElfFormatError", message="bad magic",
                      stage="decode"),
        FailureRecord(package="corrupt", artifact="bin/bad-phdr",
                      sha256="1" * 64, error_class="format",
                      exc_type="ElfFormatError", message="bad phdr",
                      stage="parse"),
    ]


class TestRender:
    def test_empty_run(self):
        rendered = EngineStats().render()
        assert "engine run statistics" in rendered
        assert "binaries submitted : 0" in rendered
        assert "serial x1" in rendered
        # No observations -> no latency or span lines.
        assert "per-binary latency" not in rendered
        assert "spans recorded" not in rendered

    def test_failures_only_run(self):
        stats = EngineStats()
        stats.binaries_total = 2
        stats.binaries_failed = 2
        stats.failures.extend(_failures())
        histogram = stats.registry.histogram(QUARANTINE_LATENCY_METRIC)
        histogram.observe(0.01)
        histogram.observe(0.02)
        rendered = stats.render()
        assert "quarantined" in rendered
        assert "2 binaries (decode: 1, format: 1)" in rendered
        assert "0.0 binaries/s" in rendered
        assert stats.failures_by_class == {"decode": 1, "format": 1}
        # Nothing analyzed -> still no analyze-latency line.
        assert "per-binary latency" not in rendered

    def test_mixed_run(self, result):
        rendered = result.engine_stats.render()
        assert "per-binary latency" in rendered
        assert "p50" in rendered and "p99" in rendered
        assert "spans recorded" in rendered
        assert "hit rate" in rendered

    def test_latency_snapshot_shape(self, result):
        latency = result.engine_stats.analyze_latency()
        assert latency is not None
        assert latency["count"] > 0
        assert (latency["min"] <= latency["p50"] <= latency["p90"]
                <= latency["p99"] <= latency["max"])
        assert ANALYZE_LATENCY_METRIC in (
            result.engine_stats.registry.histogram_values())


def _mixed_spans():
    tracer = SpanTracer()
    with tracer.span("stage:scan"):
        pass
    with tracer.span("stage:analyze") as analyze:
        with tracer.span("binary", binary="bin/app"):
            pass
        with tracer.span("binary", binary="bin/tool"):
            pass
        tracer.record_span(
            "quarantine", seconds=9.0, error=True,
            parent_id=analyze.span_id,
            attrs={"package": "corrupt", "artifact": "bin/bad",
                   "error_class": "format"})
    return tracer.finished()


class TestTraceReport:
    def test_empty_run(self):
        rendered = render_trace_report([])
        assert "no spans recorded" in rendered

    def test_failures_only_run(self):
        tracer = SpanTracer()
        tracer.record_span("quarantine", seconds=1.0, error=True,
                           attrs={"package": "corrupt",
                                  "artifact": "bin/bad",
                                  "error_class": "decode"})
        rendered = render_trace_report(tracer.finished())
        assert "slowest binaries (top 1 of 1)" in rendered
        assert "corrupt:bin/bad" in rendered
        assert "error:decode" in rendered

    def test_mixed_run(self):
        rendered = render_trace_report(_mixed_spans())
        assert "trace report — stage breakdown" in rendered
        assert "scan" in rendered and "analyze" in rendered
        assert "slowest binaries (top 3 of 3)" in rendered
        assert "bin/app" in rendered and "bin/tool" in rendered
        # The synthesized quarantine span is the slowest: rank 1.
        first_row = [line for line in rendered.splitlines()
                     if "corrupt:bin/bad" in line][0]
        assert first_row.strip().startswith("1")
        assert "error:format" in first_row

    def test_top_truncates(self):
        rendered = render_trace_report(_mixed_spans(), top=1)
        assert "slowest binaries (top 1 of 3)" in rendered

    def test_spans_without_binaries_still_render(self):
        tracer = SpanTracer()
        with tracer.span("stage:scan"):
            pass
        rendered = render_trace_report(tracer.finished())
        assert "stage breakdown" in rendered
        assert "(1 spans recorded)" in rendered


class TestMetricsPrimitives:
    def test_nearest_rank_percentiles(self):
        histogram = MetricsRegistry().histogram("h.values")
        for value in range(1, 101):
            histogram.observe(float(value))
        assert histogram.p50 == 50.0
        assert histogram.p90 == 90.0
        assert histogram.p99 == 99.0
        assert histogram.percentile(100) == 100.0

    def test_empty_histogram_snapshot(self):
        snapshot = MetricsRegistry().histogram("h.empty").snapshot()
        assert snapshot["count"] == 0
        assert snapshot["p99"] == 0.0

    def test_invalid_metric_name_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="invalid metric name"):
            registry.counter("Bad Name!")

    def test_instruments_are_get_or_create(self):
        registry = MetricsRegistry()
        assert registry.counter("a.b") is registry.counter("a.b")
        assert registry.gauge("a.b") is registry.gauge("a.b")
        registry.counter("a.b").inc(2)
        assert registry.counter_values() == {"a.b": 2}
