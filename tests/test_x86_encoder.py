"""Encoder unit tests: exact byte sequences for each instruction form."""

import pytest

from repro.x86 import registers as R
from repro.x86.encoder import Assembler


def _code(build):
    asm = Assembler()
    build(asm)
    return bytes(asm.code)


class TestDataMovement:
    def test_mov_imm32_eax(self):
        assert _code(lambda a: a.mov_imm32(R.RAX, 1)) == (
            b"\xb8\x01\x00\x00\x00")

    def test_mov_imm32_edi(self):
        assert _code(lambda a: a.mov_imm32(R.RDI, 0x5401)) == (
            b"\xbf\x01\x54\x00\x00")

    def test_mov_imm32_r8d_has_rex(self):
        assert _code(lambda a: a.mov_imm32(R.R8, 2)) == (
            b"\x41\xb8\x02\x00\x00\x00")

    def test_mov_imm64(self):
        assert _code(lambda a: a.mov_imm64(R.RAX, 0x1122334455667788)) == (
            b"\x48\xb8\x88\x77\x66\x55\x44\x33\x22\x11")

    def test_xor_eax(self):
        assert _code(lambda a: a.xor_reg(R.RAX)) == b"\x31\xc0"

    def test_xor_r9d(self):
        assert _code(lambda a: a.xor_reg(R.R9)) == b"\x45\x31\xc9"

    def test_mov_reg_reg64(self):
        # mov %rsp, %rbp
        assert _code(lambda a: a.mov_reg_reg64(R.RBP, R.RSP)) == (
            b"\x48\x89\xe5")

    def test_mov_reg_reg64_extended(self):
        # mov %r9, %r8
        assert _code(lambda a: a.mov_reg_reg64(R.R8, R.R9)) == (
            b"\x4d\x89\xc8")


class TestSyscallInstructions:
    def test_syscall(self):
        assert _code(lambda a: a.syscall()) == b"\x0f\x05"

    def test_int80(self):
        assert _code(lambda a: a.int80()) == b"\xcd\x80"

    def test_sysenter(self):
        assert _code(lambda a: a.sysenter()) == b"\x0f\x34"


class TestControlFlow:
    def test_call_import_opcode_and_fixup(self):
        asm = Assembler()
        asm.call_import("printf")
        assert bytes(asm.code) == b"\xe8\x00\x00\x00\x00"
        (fixup,) = asm.fixups
        assert fixup.text_offset == 1
        assert fixup.kind == "rel32"
        assert fixup.target == ("import", "printf")

    def test_call_local_fixup(self):
        asm = Assembler()
        asm.call_local("helper")
        (fixup,) = asm.fixups
        assert fixup.target == ("local", "helper")

    def test_jmp_local(self):
        asm = Assembler()
        asm.jmp_local("loop")
        assert asm.code[0] == 0xE9

    def test_jz_jnz(self):
        asm = Assembler()
        asm.jz_local("a")
        asm.jnz_local("b")
        assert bytes(asm.code[:2]) == b"\x0f\x84"
        assert bytes(asm.code[6:8]) == b"\x0f\x85"

    def test_call_reg(self):
        assert _code(lambda a: a.call_reg(R.RAX)) == b"\xff\xd0"
        assert _code(lambda a: a.call_reg(R.R10)) == b"\x41\xff\xd2"

    def test_ret_leave_nop_hlt(self):
        assert _code(lambda a: a.ret()) == b"\xc3"
        assert _code(lambda a: a.leave()) == b"\xc9"
        assert _code(lambda a: a.nop()) == b"\x90"
        assert _code(lambda a: a.hlt()) == b"\xf4"


class TestStackAndMisc:
    def test_prologue(self):
        assert _code(lambda a: a.prologue()) == b"\x55\x48\x89\xe5"

    def test_epilogue(self):
        assert _code(lambda a: a.epilogue()) == b"\x5d\xc3"

    def test_sub_add_rsp(self):
        assert _code(lambda a: a.sub_rsp_imm8(0x20)) == (
            b"\x48\x83\xec\x20")
        assert _code(lambda a: a.add_rsp_imm8(0x20)) == (
            b"\x48\x83\xc4\x20")

    def test_cmp_eax(self):
        assert _code(lambda a: a.cmp_eax_imm32(5)) == (
            b"\x3d\x05\x00\x00\x00")

    def test_lea_rip_rodata_fixup(self):
        asm = Assembler()
        asm.lea_rip_rodata(R.RDI, 16)
        assert bytes(asm.code[:3]) == b"\x48\x8d\x3d"
        (fixup,) = asm.fixups
        assert fixup.kind == "rip32"
        assert fixup.target == ("rodata", 16)

    def test_align_pads_with_nops(self):
        asm = Assembler()
        asm.ret()
        asm.align(16)
        assert asm.offset == 16
        assert bytes(asm.code[1:]) == b"\x90" * 15

    def test_align_noop_when_aligned(self):
        asm = Assembler()
        asm.align(16)
        assert asm.offset == 0


class TestLabels:
    def test_label_records_offset(self):
        asm = Assembler()
        asm.nop(3)
        assert asm.label("here") == 3
        assert asm.labels["here"] == 3

    def test_duplicate_label_rejected(self):
        asm = Assembler()
        asm.label("once")
        with pytest.raises(ValueError):
            asm.label("once")
