"""The paper-scale corpus tier, exercised at test scale.

``build_paper_corpus`` must deliver a corpus with the study
population's *shape* — shared archetype footprints, an empty tail,
Zipf popcon, a cyclic dependency skeleton with ghost edges — while
remaining deterministic in the seed and fast enough that the full
30,976-package tier builds in CI (the ``store`` job times it).
"""

import pytest

from repro.analysis.footprint import Footprint
from repro.metrics import completeness_curve, importance_table
from repro.synth import (PAPER_BINARIES, PAPER_PACKAGES, PaperCorpus,
                         PaperScaleConfig, build_paper_corpus)

CONFIG = PaperScaleConfig.tiny()


@pytest.fixture(scope="module")
def corpus() -> PaperCorpus:
    return build_paper_corpus(CONFIG)


class TestShape:
    def test_population_counts(self, corpus):
        assert len(corpus.dataset.packages) == CONFIG.n_packages
        assert corpus.n_binaries == CONFIG.n_binaries

    def test_full_scale_defaults_match_the_paper(self):
        config = PaperScaleConfig()
        assert config.n_packages == PAPER_PACKAGES == 30_976
        assert config.n_binaries == PAPER_BINARIES == 66_275

    def test_empty_tail_exists(self, corpus):
        empty = [name for name in corpus.dataset.packages
                 if corpus.dataset[name] is Footprint.EMPTY]
        fraction = len(empty) / len(corpus.dataset.packages)
        assert 0.02 < fraction < 0.20

    def test_footprints_are_shared_archetypes(self, corpus):
        distinct = {id(fp) for fp in corpus.dataset.values()}
        # Far fewer footprint objects than packages: the redundancy
        # that makes 30k packages buildable in seconds.
        assert len(distinct) < len(corpus.dataset.packages) / 2

    def test_popcon_is_skewed(self, corpus):
        weights = sorted(corpus.dataset.weights, reverse=True)
        head = sum(weights[:len(weights) // 10])
        assert head > sum(weights) * 0.3

    def test_repository_has_ghosts_cycles_and_unmeasured(self,
                                                         corpus):
        repo = corpus.repository
        assert repo.validate_dependencies()  # ghost deps dangle
        assert len(repo) > len(corpus.dataset.packages)  # unmeasured
        measured = set(corpus.dataset.packages)
        extra = [p.name for p in repo if p.name not in measured]
        assert extra
        # At least one dependency cycle: an app reachable from one of
        # its own dependencies.
        cyclic = any(
            package.name != dep
            and package.name in repo.dependency_closure(dep)
            for package in repo for dep in package.depends
            if dep in repo)
        assert cyclic

    def test_unused_band_stays_unused(self, corpus):
        from repro.synth.profiles import UNUSED_SYSCALLS
        used = set()
        for footprint in corpus.dataset.values():
            used |= footprint.syscalls
        assert not used & UNUSED_SYSCALLS


class TestDeterminism:
    def test_same_seed_same_corpus(self, corpus):
        again = build_paper_corpus(CONFIG)
        assert again.dataset.packages == corpus.dataset.packages
        assert dict(again.dataset) == dict(corpus.dataset)
        assert again.binaries_per_package == \
            corpus.binaries_per_package

    def test_different_seed_different_corpus(self, corpus):
        other = build_paper_corpus(
            PaperScaleConfig.at_scale(0.01, seed=7))
        assert dict(other.dataset) != dict(corpus.dataset)


class TestQueryable:
    def test_metrics_run_end_to_end(self, corpus):
        table = importance_table(corpus.dataset)
        assert table
        assert all(0.0 <= v <= 1.0 for v in table.values())
        curve = completeness_curve(corpus.dataset)
        assert curve
        assert curve[-1].completeness == pytest.approx(1.0)

    def test_scale_validation(self):
        with pytest.raises(ValueError):
            PaperScaleConfig.at_scale(0.0)
