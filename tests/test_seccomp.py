"""seccomp-BPF generation and interpreter tests."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis.footprint import Footprint
from repro.security.seccomp import (
    AUDIT_ARCH_X86_64,
    BpfInsn,
    BpfInterpreter,
    BpfProgramError,
    JEQ_K,
    LD_W_ABS,
    RET_K,
    SECCOMP_DATA_ARCH_OFFSET,
    SECCOMP_DATA_NR_OFFSET,
    SECCOMP_RET_ALLOW,
    SECCOMP_RET_ERRNO,
    SECCOMP_RET_KILL,
    SeccompData,
    generate_policy,
)
from repro.syscalls.table import SYSCALLS, number_of


class TestInterpreter:
    def test_ret_immediate(self):
        program = [BpfInsn(RET_K, 0, 0, 42)]
        assert BpfInterpreter(program).run(SeccompData(nr=0)) == 42

    def test_load_and_compare_taken(self):
        program = [
            BpfInsn(LD_W_ABS, 0, 0, SECCOMP_DATA_NR_OFFSET),
            BpfInsn(JEQ_K, 0, 1, 5),
            BpfInsn(RET_K, 0, 0, 1),   # matched
            BpfInsn(RET_K, 0, 0, 2),   # not matched
        ]
        assert BpfInterpreter(program).run(SeccompData(nr=5)) == 1
        assert BpfInterpreter(program).run(SeccompData(nr=6)) == 2

    def test_arch_load(self):
        program = [
            BpfInsn(LD_W_ABS, 0, 0, SECCOMP_DATA_ARCH_OFFSET),
            BpfInsn(JEQ_K, 0, 1, AUDIT_ARCH_X86_64),
            BpfInsn(RET_K, 0, 0, 1),
            BpfInsn(RET_K, 0, 0, 0),
        ]
        interp = BpfInterpreter(program)
        assert interp.run(SeccompData(nr=0)) == 1
        assert interp.run(SeccompData(nr=0, arch=0x1234)) == 0

    def test_empty_program_rejected(self):
        with pytest.raises(BpfProgramError):
            BpfInterpreter([])

    def test_missing_return_rejected(self):
        with pytest.raises(BpfProgramError):
            BpfInterpreter([BpfInsn(LD_W_ABS, 0, 0, 0)])

    def test_out_of_range_jump_rejected(self):
        program = [
            BpfInsn(JEQ_K, 10, 0, 1),
            BpfInsn(RET_K, 0, 0, 0),
        ]
        with pytest.raises(BpfProgramError):
            BpfInterpreter(program)

    def test_unsupported_opcode_raises_at_run(self):
        program = [BpfInsn(0x07, 0, 0, 0), BpfInsn(RET_K, 0, 0, 0)]
        with pytest.raises(BpfProgramError):
            BpfInterpreter(program).run(SeccompData(nr=0))


class TestPolicyGeneration:
    def test_allowed_set_exact(self):
        policy = generate_policy(Footprint.build(
            syscalls=["read", "write", "openat"]))
        allowed = {entry.name for entry in SYSCALLS
                   if policy.allows(entry.number)}
        assert allowed == {"read", "write", "openat"}

    def test_empty_footprint_denies_everything(self):
        policy = generate_policy(Footprint.EMPTY)
        for number in (0, 1, 59, 231):
            assert not policy.allows(number)

    def test_arch_mismatch_killed(self):
        policy = generate_policy(Footprint.build(syscalls=["read"]))
        assert policy.evaluate(0, arch=0x40000003) == SECCOMP_RET_KILL

    def test_default_action_configurable(self):
        policy = generate_policy(Footprint.build(syscalls=["read"]),
                                 default_action=SECCOMP_RET_ERRNO)
        assert policy.evaluate(1) == SECCOMP_RET_ERRNO
        assert policy.evaluate(0) == SECCOMP_RET_ALLOW

    def test_extra_syscalls_added(self):
        policy = generate_policy(Footprint.build(syscalls=["read"]),
                                 extra_syscalls=["write"])
        assert policy.allows(1)

    def test_unknown_names_ignored(self):
        policy = generate_policy(Footprint.build(
            syscalls=["read", "ioctl:TCGETS-not-a-syscall"]))
        assert policy.allows(0)

    def test_render_contains_program(self):
        policy = generate_policy(Footprint.build(syscalls=["read"]))
        text = policy.render()
        assert "ld [0]" in text
        assert "ret" in text

    def test_program_length_linear(self):
        small = generate_policy(Footprint.build(syscalls=["read"]))
        large = generate_policy(Footprint.build(
            syscalls=[s.name for s in SYSCALLS[:100]]))
        assert len(large.program) > len(small.program)

    @given(st.sets(st.sampled_from(
        [s.name for s in SYSCALLS if s.is_live]), min_size=1,
        max_size=40))
    def test_policy_sound_and_complete(self, names):
        """For any footprint: allow exactly the footprint, kill the
        rest — the security property §6 relies on."""
        policy = generate_policy(Footprint.build(syscalls=names))
        expected_numbers = {number_of(name) for name in names}
        for entry in SYSCALLS:
            allowed = policy.allows(entry.number)
            assert allowed == (entry.number in expected_numbers)

    @given(st.integers(0, 2 ** 32 - 1))
    def test_arbitrary_numbers_never_crash(self, number):
        policy = generate_policy(Footprint.build(syscalls=["read"]))
        verdict = policy.evaluate(number)
        assert verdict in (SECCOMP_RET_ALLOW, SECCOMP_RET_KILL)


class TestTreePolicy:
    """Balanced-BST compilation (libseccomp-style)."""

    def _numbers(self, policy):
        return {entry.number for entry in SYSCALLS
                if policy.allows(entry.number)}

    def test_equivalent_to_linear_small(self):
        from repro.security.seccomp import generate_tree_policy
        fp = Footprint.build(syscalls=["read", "write", "futex"])
        linear = generate_policy(fp)
        tree = generate_tree_policy(fp)
        assert self._numbers(linear) == self._numbers(tree)

    def test_equivalent_full_table(self):
        from repro.security.seccomp import generate_tree_policy
        fp = Footprint.build(syscalls=[s.name for s in SYSCALLS])
        linear = generate_policy(fp)
        tree = generate_tree_policy(fp)
        assert self._numbers(linear) == self._numbers(tree)

    def test_empty_footprint_denies(self):
        from repro.security.seccomp import generate_tree_policy
        tree = generate_tree_policy(Footprint.EMPTY)
        assert not tree.allows(0)

    def test_arch_check_enforced(self):
        from repro.security.seccomp import generate_tree_policy
        tree = generate_tree_policy(Footprint.build(syscalls=["read"]))
        assert tree.evaluate(0, arch=0x1234) == SECCOMP_RET_KILL

    def test_logarithmic_evaluation(self):
        from repro.security.seccomp import generate_tree_policy
        fp = Footprint.build(
            syscalls=[s.name for s in SYSCALLS if s.is_live][:270])
        linear = generate_policy(fp)
        tree = generate_tree_policy(fp)
        nr = 322  # worst case for the linear ladder
        _, linear_steps = BpfInterpreter(linear.program).run_with_stats(
            SeccompData(nr=nr))
        _, tree_steps = BpfInterpreter(tree.program).run_with_stats(
            SeccompData(nr=nr))
        assert tree_steps * 5 < linear_steps

    @given(st.sets(st.sampled_from(
        [s.name for s in SYSCALLS]), min_size=1, max_size=60))
    def test_random_subsets_equivalent(self, names):
        from repro.security.seccomp import generate_tree_policy
        fp = Footprint.build(syscalls=names)
        linear = generate_policy(fp)
        tree = generate_tree_policy(fp)
        for entry in SYSCALLS:
            assert linear.allows(entry.number) == tree.allows(
                entry.number)


class TestAttackSurfaceReport:
    def test_empty_archive(self):
        from repro.security.seccomp import attack_surface_report
        report = attack_surface_report({})
        assert report["packages"] == 0

    def test_statistics_computed(self):
        from repro.security.seccomp import attack_surface_report
        footprints = {
            "small": Footprint.build(syscalls=["read", "write"]),
            "large": Footprint.build(
                syscalls=[s.name for s in SYSCALLS[:100]]),
            "empty": Footprint.EMPTY,
        }
        report = attack_surface_report(footprints)
        assert report["packages"] == 2
        assert report["max_whitelist"] == 100
        assert report["median_whitelist"] in (2, 100)
        assert 0 < report["mean_reachable_fraction"] < 1

    def test_on_measured_archive(self, study):
        from repro.security.seccomp import attack_surface_report
        report = attack_surface_report(study.footprints)
        assert report["packages"] > 200
        assert report["mean_reachable_fraction"] < 0.5
