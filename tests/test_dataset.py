"""Unit tests for the interned, bitset-backed dataset substrate."""

import json

import pytest

from repro.analysis.footprint import Footprint, PackageFootprint
from repro.dataset import (
    ALL_DIMENSIONS,
    ApiInterner,
    ApiSpace,
    BitsetFootprint,
    CondensedDependencyGraph,
    DIMENSION_ORDER,
    DIMENSIONS,
    Dataset,
    DatasetCodecError,
    as_dataset,
    dataset_from_json,
    dataset_to_json,
    footprints_fingerprint,
    iter_bits,
    namespaced,
    popcount,
    split_namespaced,
)
from repro.dataset import reference
from repro.packages.package import Package
from repro.packages.popcon import PopularityContest
from repro.packages.repository import Repository


def _corpus():
    """A small handcrafted corpus touching every dimension."""
    footprints = {
        "editor": Footprint.build(
            syscalls=["read", "write", "open"],
            ioctls=["TCGETS"], libc_symbols=["printf", "malloc"]),
        "daemon": Footprint.build(
            syscalls=["read", "epoll_wait", "accept"],
            fcntls=["F_SETFL"], prctls=["PR_SET_NAME"],
            pseudo_files=["/proc/self/status"]),
        "tool": Footprint.build(syscalls=["read", "write"],
                                libc_symbols=["printf"]),
        "doc-pack": Footprint.EMPTY,
    }
    popcon = PopularityContest(1000, {
        "editor": 800, "daemon": 150, "tool": 420, "doc-pack": 90})
    repository = Repository([
        Package("editor", depends=["tool"]),
        Package("daemon", depends=["editor", "ghost-dep"]),
        Package("tool", depends=["editor"]),    # cycle editor<->tool
        Package("doc-pack"),
    ])
    return footprints, popcon, repository


class TestInterner:
    def test_sorted_dense_ids(self):
        interner = ApiInterner(["write", "read", "open", "read"])
        assert interner.names == ("open", "read", "write")
        assert [interner.id_of(n) for n in interner.names] == [0, 1, 2]
        assert interner.name_of(1) == "read"
        assert len(interner) == 3
        assert "read" in interner and "close" not in interner

    def test_mask_roundtrip(self):
        interner = ApiInterner(["a", "b", "c", "d"])
        mask = interner.mask_of(["d", "a"])
        assert interner.names_of(mask) == ["a", "d"]
        assert popcount(mask) == 2

    def test_unknown_names_ignored_unless_strict(self):
        interner = ApiInterner(["a"])
        assert interner.mask_of(["a", "zz"]) == interner.mask_of(["a"])
        with pytest.raises(KeyError):
            interner.mask_of(["zz"], strict=True)

    def test_universe_mask(self):
        interner = ApiInterner(["a", "b", "c"])
        assert interner.universe_mask == 0b111
        assert interner.names_of(interner.universe_mask) == \
            ["a", "b", "c"]

    def test_iter_bits(self):
        assert list(iter_bits(0)) == []
        assert list(iter_bits(0b101001)) == [0, 3, 5]


class TestBitsetFootprint:
    def test_algebra(self):
        a = BitsetFootprint([0b011, 0, 0, 0, 0, 0])
        b = BitsetFootprint([0b110, 0, 0, 0, 0, 1])
        union = a | b
        assert union.mask("syscall") == 0b111
        assert union.mask("libc") == 1
        assert a.difference(b).mask("syscall") == 0b001
        assert not a.subset_of(b)
        assert a.subset_of(union)
        assert union.bit_count() == 4
        assert BitsetFootprint.union_all([a, b]) == union

    def test_empty(self):
        empty = BitsetFootprint()
        assert empty.is_empty
        assert empty.bit_count() == 0


class TestDimensions:
    def test_namespacing_roundtrip(self):
        for dimension in DIMENSION_ORDER:
            api = namespaced(dimension, "NAME")
            assert split_namespaced(api) == (dimension, "NAME")
        # Unprefixed names are syscalls.
        assert split_namespaced("read") == ("syscall", "read")

    def test_registry_is_shared_with_metrics(self):
        from repro.metrics import importance
        assert importance.DIMENSIONS is DIMENSIONS
        assert set(DIMENSIONS) == set(ALL_DIMENSIONS)


class TestApiSpace:
    def test_all_dimension_matches_api_set(self):
        footprints, _, _ = _corpus()
        space = ApiSpace.from_footprints(footprints.values())
        for name, footprint in footprints.items():
            bitset = space.intern(footprint)
            all_names = space.names_of("all",
                                       space.all_mask(bitset))
            assert frozenset(all_names) == footprint.api_set()

    def test_id_of_unknown_raises(self):
        footprints, _, _ = _corpus()
        space = ApiSpace.from_footprints(footprints.values())
        with pytest.raises(KeyError):
            space.id_of("syscall", "no_such_call")


class TestDataset:
    def test_mapping_protocol_preserves_order(self):
        footprints, popcon, repository = _corpus()
        dataset = Dataset(footprints, popcon, repository)
        assert list(dataset) == list(footprints)
        assert dataset["editor"] == footprints["editor"]
        assert len(dataset) == 4
        assert dict(dataset) == footprints

    def test_users_index_matches_reference(self):
        footprints, popcon, _ = _corpus()
        dataset = Dataset(footprints, popcon)
        for dimension in ALL_DIMENSIONS:
            index = reference.dependents_index(footprints, dimension)
            users = dataset.users_index(dimension)
            rebuilt = {
                dataset.space.name_of(dimension, api_id):
                    [dataset.packages[i] for i in pkg_ids]
                for api_id, pkg_ids in enumerate(users) if pkg_ids}
            assert rebuilt == {api: list(pkgs)
                               for api, pkgs in index.items()}

    def test_importance_equals_reference(self):
        footprints, popcon, _ = _corpus()
        dataset = Dataset(footprints, popcon)
        for dimension in ALL_DIMENSIONS:
            assert dataset.importance_table(dimension) == \
                reference.importance_table(footprints, popcon,
                                           dimension)

    def test_usage_equals_reference(self):
        footprints, popcon, _ = _corpus()
        dataset = Dataset(footprints, popcon)
        assert dataset.usage_table("syscall") == \
            reference.unweighted_importance_table(footprints)

    def test_importance_table_returns_fresh_copies(self):
        footprints, popcon, _ = _corpus()
        dataset = Dataset(footprints, popcon)
        first = dataset.importance_table("syscall")
        first["injected"] = 1.0
        assert "injected" not in dataset.importance_table("syscall")

    def test_empty_names(self):
        footprints, popcon, _ = _corpus()
        dataset = Dataset(footprints, popcon)
        assert dataset.empty_names("syscall") == {"doc-pack"}
        assert dataset.empty_names("ioctl") == \
            {"daemon", "tool", "doc-pack"}

    def test_rebound_shares_popcon_independent_caches(self):
        footprints, popcon, repository = _corpus()
        dataset = Dataset(footprints, popcon, repository)
        masks = dataset.masks("syscall")
        other = PopularityContest(1000, {"editor": 10})
        rebound = dataset.rebound(other, repository)
        assert rebound.masks("syscall") is masks
        assert rebound.weight_of("editor") == 0.01
        assert dataset.weight_of("editor") == 0.8

    def test_stats(self):
        footprints, popcon, repository = _corpus()
        stats = Dataset(footprints, popcon, repository).stats()
        assert stats.n_packages == 4
        assert stats.n_apis["syscall"] == 5
        assert stats.n_nonempty["syscall"] == 3
        assert stats.has_popcon and stats.has_repository
        assert stats.n_dependency_edges == 4
        assert stats.total_weight == pytest.approx(1.46)

    def test_as_dataset_passthrough(self):
        footprints, popcon, repository = _corpus()
        dataset = Dataset(footprints, popcon, repository)
        assert as_dataset(dataset) is dataset
        assert as_dataset(dataset, popcon, repository) is dataset
        adapted = as_dataset(footprints, popcon)
        assert isinstance(adapted, Dataset)
        assert adapted.popcon is popcon


class TestCondensedGraph:
    def test_tracker_matches_reference(self):
        footprints, _, repository = _corpus()
        universe = [pkg for pkg, fp in footprints.items()
                    if fp.syscalls]
        graph = CondensedDependencyGraph(universe, repository,
                                         frozenset(["doc-pack"]))
        legacy = reference._SupportTracker(universe, repository,
                                           frozenset(["doc-pack"]))
        tracker = graph.tracker()
        for package in universe:
            assert tracker.mark_satisfied(package) == \
                legacy.mark_satisfied(package)

    def test_ghost_dependency_poisons_component(self):
        footprints, _, repository = _corpus()
        graph = CondensedDependencyGraph(
            list(footprints), repository, frozenset())
        tracker = graph.tracker()
        # daemon depends on ghost-dep (outside the repository is fine,
        # APT-style) — but editor/tool form a cycle, each satisfiable.
        newly = []
        for package in footprints:
            newly.extend(tracker.mark_satisfied(package))
        assert set(newly) == set(footprints)

    def test_trackers_are_independent(self):
        footprints, _, repository = _corpus()
        graph = CondensedDependencyGraph(
            list(footprints), repository, frozenset())
        first = graph.tracker()
        first.mark_satisfied("editor")
        second = graph.tracker()
        assert second.mark_satisfied("editor") == \
            graph.tracker().mark_satisfied("editor")


class TestCodec:
    def test_roundtrip_exact(self):
        footprints, popcon, repository = _corpus()
        dataset = Dataset(footprints, popcon, repository)
        loaded = dataset_from_json(dataset_to_json(dataset),
                                   popcon, repository)
        assert loaded.packages == dataset.packages
        assert dict(loaded) == dict(dataset)
        assert loaded.space == dataset.space
        for dimension in ALL_DIMENSIONS:
            assert loaded.masks(dimension) == dataset.masks(dimension)
            assert loaded.importance_table(dimension) == \
                dataset.importance_table(dimension)

    def test_version_mismatch_rejected(self):
        footprints, popcon, _ = _corpus()
        payload = json.loads(dataset_to_json(Dataset(footprints)))
        payload["dataset_codec_version"] = "999"
        with pytest.raises(DatasetCodecError):
            dataset_from_json(json.dumps(payload))

    def test_garbage_rejected(self):
        with pytest.raises(DatasetCodecError):
            dataset_from_json("{not json")

    def test_fingerprint_insertion_order_invariant(self):
        footprints, _, _ = _corpus()
        shuffled = dict(reversed(list(footprints.items())))
        assert footprints_fingerprint(footprints) == \
            footprints_fingerprint(shuffled)

    def test_fingerprint_tracks_content(self):
        footprints, _, _ = _corpus()
        changed = dict(footprints)
        changed["tool"] = Footprint.build(syscalls=["read"])
        assert footprints_fingerprint(footprints) != \
            footprints_fingerprint(changed)


class TestEngineCacheDatasets:
    def test_disk_roundtrip(self, tmp_path):
        from repro.engine.cache import AnalysisCache
        footprints, popcon, repository = _corpus()
        dataset = Dataset(footprints, popcon, repository)
        fingerprint = footprints_fingerprint(footprints)
        cache = AnalysisCache(str(tmp_path))
        assert cache.get_dataset(fingerprint) is None
        cache.put_dataset(fingerprint, dataset)
        loaded = cache.get_dataset(fingerprint, popcon, repository)
        assert dict(loaded) == dict(dataset)
        assert loaded.popcon is popcon
        assert cache.stats.dataset_hits == 1
        assert cache.stats.dataset_misses == 1
        assert cache.stats.dataset_stores == 1

    def test_corrupt_snapshot_is_a_miss(self, tmp_path):
        from repro.engine.cache import AnalysisCache
        footprints, popcon, _ = _corpus()
        fingerprint = footprints_fingerprint(footprints)
        cache = AnalysisCache(str(tmp_path))
        cache.put_dataset(fingerprint, Dataset(footprints))
        path = cache._dataset_path(fingerprint)
        path.write_text("{torn", encoding="utf-8")
        assert cache.get_dataset(fingerprint) is None
        assert cache.stats.invalid == 1
        assert not path.exists()

    def test_memory_cache_rebinds(self):
        from repro.engine.cache import MemoryCache
        footprints, popcon, repository = _corpus()
        dataset = Dataset(footprints, popcon, repository)
        cache = MemoryCache()
        cache.put_dataset("fp", dataset)
        assert cache.get_dataset("fp") is dataset
        other = PopularityContest(10, {"editor": 1})
        rebound = cache.get_dataset("fp", other)
        assert rebound is not dataset
        assert rebound.popcon is other


class TestFootprintFastPaths:
    """Satellite: no-copy fast paths on the footprint model."""

    def test_requires_only_accepts_set_likes(self):
        footprint = Footprint.build(syscalls=["read", "write"])
        assert footprint.requires_only({"read", "write", "open"})
        assert footprint.requires_only(frozenset(["read", "write"]))
        assert not footprint.requires_only({"read"})
        # Non-set iterables still work (materialized once).
        assert footprint.requires_only(iter(["read", "write"]))

    def test_merged_with_shares_empty_provenance(self):
        base = PackageFootprint("pkg")
        merged = base.merged_with(Footprint.build(syscalls=["read"]))
        assert merged.per_executable is base.per_executable
        assert merged.footprint.syscalls == frozenset(["read"])

    def test_merged_with_copies_nonempty_provenance(self):
        base = PackageFootprint(
            "pkg", per_executable={"bin": Footprint.EMPTY})
        merged = base.merged_with(Footprint.EMPTY)
        assert merged.per_executable is not base.per_executable
        assert merged.per_executable == base.per_executable


class TestStudyIntegration:
    def test_study_threads_one_dataset(self, study):
        assert isinstance(study.footprints, Dataset)
        assert study.footprints is study.dataset
        assert study.dataset.popcon is study.popcon
        assert study.dataset.repository is study.repository

    def test_dataset_report_renders(self, study):
        output = study.dataset_report()
        assert output.experiment == "dataset"
        assert "syscall" in output.rendered
        assert "dependency graph" in output.rendered

    def test_export_dataset(self, study, tmp_path):
        path = tmp_path / "dataset.json"
        written = study.export_dataset(str(path))
        assert written == path.stat().st_size
        loaded = dataset_from_json(path.read_text(encoding="utf-8"))
        assert loaded.packages == study.dataset.packages
