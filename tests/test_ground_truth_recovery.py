"""The central validation: the analysis pipeline recovers, from ELF
bytes alone, exactly what the generator planted.

Ground truth is recorded by the ecosystem builder per package
(syscall closure through libc, opcodes, pseudo-files, imports); the
pipeline never sees it.  Equality here means disassembly, call-graph
construction, register dataflow, PLT resolution, and cross-library
closure all work end to end.
"""

import pytest

from repro.libc import runtime as RT
from repro.synth.runtime_gen import (
    LIBC_FCNTL_OPS,
    LIBC_IOCTL_OPS,
    LIBC_PRCTL_OPS,
    LIBC_PSEUDO_FILES,
)


def _expected_syscalls(truth, footprint):
    """Ground-truth syscalls plus runtime-mechanics the generator
    implies: libc startup (every exe calls __libc_start_main) and the
    vectored syscalls of any opcode-carrying wrapper."""
    expected = set(truth.syscalls)
    expected |= set(RT.LIBC_STARTUP_FOOTPRINT)
    if truth.ioctls:
        expected.add("ioctl")
    if truth.fcntls:
        expected.add("fcntl")
    if truth.prctls:
        expected.add("prctl")
    for symbol in truth.libc_symbols:
        if symbol in LIBC_IOCTL_OPS:
            expected.add("ioctl")
        if symbol in LIBC_FCNTL_OPS:
            expected.add("fcntl")
        if symbol in LIBC_PRCTL_OPS:
            expected.add("prctl")
    return expected


class TestRecovery:
    @pytest.fixture(scope="class")
    def data(self, study):
        return study.ecosystem, study.result

    def test_syscall_recovery_for_elf_packages(self, data):
        ecosystem, result = data
        mismatches = []
        checked = 0
        for name, truth in ecosystem.ground_truth.items():
            package = ecosystem.repository.get(name)
            if not any(a.kind.value == "elf-executable"
                       for a in package.artifacts):
                continue
            if any(a.kind.value == "script"
                   for a in package.artifacts):
                continue  # script contribution is interpreter-based
            recovered = result.footprint_of(name).syscalls
            expected = _expected_syscalls(truth,
                                          result.footprint_of(name))
            missing = expected - recovered
            if missing:
                mismatches.append((name, sorted(missing)[:5]))
            checked += 1
        assert checked > 50
        assert not mismatches, mismatches[:5]

    def test_opcode_recovery(self, data):
        ecosystem, result = data
        for name, truth in ecosystem.ground_truth.items():
            recovered = result.footprint_of(name)
            assert set(truth.ioctls) <= recovered.ioctls, name
            assert set(truth.fcntls) <= recovered.fcntls, name
            assert set(truth.prctls) <= recovered.prctls, name

    def test_pseudo_file_recovery(self, data):
        ecosystem, result = data
        for name, truth in ecosystem.ground_truth.items():
            if not truth.pseudo_files:
                continue
            recovered = result.package_full_footprints[name]
            for path in truth.pseudo_files:
                # generator paths with placeholders normalize to %d
                normalized = path.replace("%s", "%d").replace(
                    "%u", "%d")
                assert normalized in recovered.pseudo_files, (
                    name, path)

    def test_libc_import_recovery(self, data):
        ecosystem, result = data
        checked = 0
        for name, truth in ecosystem.ground_truth.items():
            if not truth.libc_symbols:
                continue
            package = ecosystem.repository.get(name)
            if any(a.kind.value == "script"
                   for a in package.artifacts):
                continue
            recovered = result.footprint_of(name).libc_symbols
            if recovered:  # pure-library packages record imports too
                planted = set(truth.libc_symbols)
                assert planted <= recovered | {"__libc_start_main"}, (
                    name, sorted(planted - recovered)[:5])
                checked += 1
        assert checked > 50

    def test_qemu_footprint_size_matches_paper(self, data):
        """§3.2: qemu's MIPS emulator requires 270 system calls."""
        _, result = data
        qemu = result.footprint_of("qemu-user")
        assert 260 <= len(qemu.syscalls) <= 285
