"""Effect-extraction tests: register dataflow over function bodies."""

from repro.analysis.disassembler import FunctionBody
from repro.analysis.extract import extract_effects
from repro.x86 import registers as R
from repro.x86.decoder import linear_sweep
from repro.x86.encoder import Assembler


def _effects(build, plt=None):
    """Assemble a function, sweep it, and extract effects."""
    asm = Assembler()
    asm.label("f")
    build(asm)
    asm.ret()
    code = bytes(asm.code)
    plt_map = dict(plt or {})
    # resolve import fixups to fake PLT addresses outside .text
    resolved = bytearray(code)
    plt_base = 0x100000
    assigned = {}
    for fixup in asm.fixups:
        kind, payload = fixup.target
        if kind != "import":
            continue
        address = assigned.setdefault(
            payload, plt_base + 16 * len(assigned))
        plt_map[address] = payload
        site = 0x400000 + fixup.text_offset
        rel = address - (site + 4)
        resolved[fixup.text_offset:fixup.text_offset + 4] = (
            rel & 0xFFFFFFFF).to_bytes(4, "little")
    body = FunctionBody(start=0x400000)
    body.instructions = list(linear_sweep(bytes(resolved), 0x400000))
    return extract_effects(body, plt_map)


class TestDirectSyscalls:
    def test_mov_imm_then_syscall(self):
        effects = _effects(lambda a: (a.mov_imm32(R.RAX, 1),
                                      a.syscall()))
        assert effects.syscall_numbers == {1}
        assert effects.raw_syscall_numbers == {1}
        assert effects.unresolved_syscall_sites == 0

    def test_xor_zero_then_syscall_is_read(self):
        effects = _effects(lambda a: (a.xor_reg(R.RAX), a.syscall()))
        assert effects.syscall_numbers == {0}

    def test_int80_counts(self):
        effects = _effects(lambda a: (a.mov_imm32(R.RAX, 3),
                                      a.int80()))
        assert effects.syscall_numbers == {3}

    def test_multiple_sites(self):
        def build(a):
            a.mov_imm32(R.RAX, 0)
            a.syscall()
            a.mov_imm32(R.RAX, 1)
            a.syscall()
        effects = _effects(build)
        assert effects.syscall_numbers == {0, 1}

    def test_number_via_mov_chain(self):
        def build(a):
            a.mov_imm32(R.RBX, 60)
            a.mov_reg_reg64(R.RAX, R.RBX)
            a.syscall()
        effects = _effects(build)
        assert effects.syscall_numbers == {60}

    def test_unresolved_when_number_from_parameter(self):
        def build(a):
            a.mov_reg_reg64(R.RAX, R.RDI)  # number arrives in %rdi
            a.syscall()
        effects = _effects(build)
        assert effects.syscall_numbers == set()
        assert effects.unresolved_syscall_sites == 1

    def test_call_clobbers_rax(self):
        def build(a):
            a.mov_imm32(R.RAX, 1)
            a.call_import("helper")
            a.syscall()  # rax no longer known
        effects = _effects(build)
        assert effects.unresolved_syscall_sites == 1

    def test_callee_saved_value_survives_call(self):
        def build(a):
            a.mov_imm32(R.RBX, 2)
            a.call_import("helper")
            a.mov_reg_reg64(R.RAX, R.RBX)  # rbx is callee-saved
            a.syscall()
        effects = _effects(build)
        assert effects.syscall_numbers == {2}


class TestVectoredOpcodes:
    def test_ioctl_via_libc_wrapper(self):
        def build(a):
            a.xor_reg(R.RDI)
            a.mov_imm32(R.RSI, 0x5401)  # TCGETS
            a.call_import("ioctl")
        effects = _effects(build)
        assert effects.ioctl_codes == {0x5401}
        assert "ioctl" in effects.plt_calls

    def test_fcntl_via_libc_wrapper(self):
        def build(a):
            a.xor_reg(R.RDI)
            a.mov_imm32(R.RSI, 2)  # F_SETFD
            a.call_import("fcntl")
        effects = _effects(build)
        assert effects.fcntl_codes == {2}

    def test_prctl_opcode_in_rdi(self):
        def build(a):
            a.mov_imm32(R.RDI, 15)  # PR_SET_NAME
            a.call_import("prctl")
        effects = _effects(build)
        assert effects.prctl_codes == {15}

    def test_direct_ioctl_syscall_opcode_in_rsi(self):
        def build(a):
            a.xor_reg(R.RDI)
            a.mov_imm32(R.RSI, 0x5413)  # TIOCGWINSZ
            a.mov_imm32(R.RAX, 16)
            a.syscall()
        effects = _effects(build)
        assert effects.syscall_numbers == {16}
        assert effects.ioctl_codes == {0x5413}

    def test_direct_prctl_syscall_opcode_in_rdi(self):
        def build(a):
            a.mov_imm32(R.RDI, 4)  # PR_SET_DUMPABLE
            a.mov_imm32(R.RAX, 157)
            a.syscall()
        effects = _effects(build)
        assert effects.prctl_codes == {4}

    def test_unknown_opcode_counts_unresolved(self):
        def build(a):
            a.call_import("ioctl")  # rsi never set
        effects = _effects(build)
        assert effects.unresolved_vector_sites == 1


class TestSyscallWrapper:
    def test_syscall3_with_immediate(self):
        def build(a):
            a.mov_imm32(R.RDI, 318)  # SYS_getrandom
            a.call_import("syscall")
        effects = _effects(build)
        assert effects.syscall_numbers == {318}
        assert effects.raw_syscall_numbers == set()

    def test_syscall3_ioctl_opcode_in_rdx(self):
        def build(a):
            a.mov_imm32(R.RDI, 16)   # SYS_ioctl
            a.xor_reg(R.RSI)
            a.mov_imm32(R.RDX, 0x541B)  # FIONREAD
            a.call_import("syscall")
        effects = _effects(build)
        assert effects.syscall_numbers == {16}
        assert effects.ioctl_codes == {0x541B}

    def test_syscall3_unresolved_number(self):
        def build(a):
            a.mov_reg_reg64(R.RDI, R.RSI)
            a.call_import("syscall")
        effects = _effects(build)
        assert effects.unresolved_syscall_sites == 1


class TestPltCallRecording:
    def test_plt_calls_recorded(self):
        effects = _effects(lambda a: (a.call_import("printf"),
                                      a.call_import("malloc")))
        assert effects.plt_calls == {"printf", "malloc"}

    def test_local_calls_not_in_plt(self):
        asm = Assembler()
        asm.label("f")
        asm.call_local("g")
        asm.ret()
        asm.label("g")
        asm.ret()
        # resolve the local fixup manually
        code = bytearray(asm.code)
        target = 0x400000 + asm.labels["g"]
        (fixup,) = asm.fixups
        rel = target - (0x400000 + fixup.text_offset + 4)
        code[fixup.text_offset:fixup.text_offset + 4] = (
            rel & 0xFFFFFFFF).to_bytes(4, "little")
        body = FunctionBody(start=0x400000)
        body.instructions = list(linear_sweep(bytes(code), 0x400000))
        effects = extract_effects(body, {})
        assert effects.plt_calls == set()
