"""Dynamic tracer tests: concrete execution of generated binaries."""

import pytest

from repro.analysis.binary import BinaryAnalysis
from repro.analysis.dynamic import (
    CodePointer,
    DynamicTracer,
    TraceError,
    trace_executable,
    validate_over_approximation,
)
from repro.analysis.resolver import FootprintResolver, LibraryIndex
from repro.synth.codegen import BinarySpec, FunctionSpec, generate_binary


def _analysis(spec):
    return BinaryAnalysis.from_bytes(generate_binary(spec))


def _static_exe(functions, needed=()):
    spec = BinarySpec(name="t", functions=functions, needed=needed,
                      entry_function="main",
                      interp=None if not needed else
                      "/lib64/ld-linux-x86-64.so.2")
    return _analysis(spec)


def _library(soname, functions, needed=()):
    spec = BinarySpec(name=soname, functions=functions, needed=needed,
                      soname=soname, entry_function=None)
    return _analysis(spec)


class TestStandaloneExecution:
    def test_direct_syscalls_in_order(self):
        exe = _static_exe([FunctionSpec(
            name="main", direct_syscalls=("getpid", "getuid"))])
        trace = trace_executable(exe, LibraryIndex())
        names = trace.syscall_names()
        # main's calls in order, then crt0's exit_group
        assert names == ["getpid", "getuid", "exit_group"]
        assert trace.exited

    def test_local_call_and_return(self):
        exe = _static_exe([
            FunctionSpec(name="helper", direct_syscalls=("gettid",)),
            FunctionSpec(name="main", local_calls=("helper",),
                         direct_syscalls=("getppid",)),
        ])
        trace = trace_executable(exe, LibraryIndex())
        assert trace.syscall_names() == ["gettid", "getppid",
                                         "exit_group"]

    def test_unreachable_code_not_executed(self):
        exe = _static_exe([
            FunctionSpec(name="dead", direct_syscalls=("reboot",),
                         exported=True),
            FunctionSpec(name="main", direct_syscalls=("getpid",)),
        ])
        trace = trace_executable(exe, LibraryIndex())
        assert "reboot" not in trace.syscall_set()

    def test_exit_group_stops_trace(self):
        exe = _static_exe([FunctionSpec(
            name="main",
            direct_syscalls=("exit_group", "reboot"))])
        trace = trace_executable(exe, LibraryIndex())
        assert trace.exited
        assert "reboot" not in trace.syscall_set()

    def test_fuel_limit_raises(self):
        # _start without libc loops forever only via... there is no
        # loop; instead exercise fuel with a tiny budget.
        exe = _static_exe([FunctionSpec(
            name="main", direct_syscalls=("getpid",) * 1)])
        with pytest.raises(TraceError):
            DynamicTracer(exe, LibraryIndex(), fuel=3).run()

    def test_syscall_arguments_concrete(self):
        exe = _static_exe([FunctionSpec(
            name="main", ioctl_ops=("TCGETS",),
            direct_syscalls=())], needed=("libc.so.6",))
        index = LibraryIndex()
        index.add(_library("libc.so.6", [
            FunctionSpec(name="ioctl", direct_syscalls=("ioctl",),
                         exported=True),
        ]))
        trace = trace_executable(exe, index)
        (event,) = [e for e in trace.events if e.name == "ioctl"]
        assert event.args[1] == 0x5401  # TCGETS travelled through


class TestCrossModuleExecution:
    def _index(self):
        index = LibraryIndex()
        index.add(_library("libc.so.6", [
            FunctionSpec(name="printf", direct_syscalls=("write",),
                         exported=True),
            FunctionSpec(name="fopen",
                         direct_syscalls=("open", "fstat"),
                         exported=True),
            FunctionSpec(name="popen", direct_syscalls=("pipe",),
                         local_calls=("fopen",), exported=True),
        ]))
        return index

    def test_plt_binding_executes_library_code(self):
        exe = _static_exe([FunctionSpec(
            name="main", libc_calls=("printf",))],
            needed=("libc.so.6",))
        trace = trace_executable(exe, self._index())
        assert "write" in trace.syscall_set()

    def test_nested_library_calls(self):
        exe = _static_exe([FunctionSpec(
            name="main", libc_calls=("popen",))],
            needed=("libc.so.6",))
        trace = trace_executable(exe, self._index())
        assert {"pipe", "open", "fstat"} <= trace.syscall_set()

    def test_unresolved_symbol_raises(self):
        exe = _static_exe([FunctionSpec(
            name="main", libc_calls=("ghost_fn",))],
            needed=("libc.so.6",))
        with pytest.raises(TraceError):
            trace_executable(exe, self._index())

    def test_event_modules_attributed(self):
        exe = _static_exe([FunctionSpec(
            name="main", libc_calls=("printf",),
            direct_syscalls=("getpid",))],
            needed=("libc.so.6",))
        trace = trace_executable(exe, self._index())
        by_name = {e.name: e.module for e in trace.events}
        assert by_name["write"] == "libc.so.6"
        assert by_name["getpid"] == "<exe>"


class TestArchiveWide:
    """The paper's §2.3 spot check, run over the whole test archive:
    every dynamic trace is a subset of the static footprint."""

    def test_dynamic_subset_of_static(self, study):
        index = study.result.library_index
        resolver = FootprintResolver(index)
        checked = 0
        for package in list(study.repository)[:120]:
            for artifact in package.executables():
                if not artifact.is_elf:
                    continue
                analysis = BinaryAnalysis.from_bytes(artifact.data)
                if analysis.entry_root() is None:
                    continue
                trace = trace_executable(analysis, index)
                static = resolver.resolve_executable(analysis)
                missing = validate_over_approximation(
                    static.syscalls, trace)
                assert not missing, (package.name, missing)
                checked += 1
                break  # one executable per package is plenty
        assert checked >= 50

    def test_dynamic_strictly_smaller_sometimes(self, study):
        """Static over-approximates: some binaries have reachable-but-
        not-executed paths (the reason the paper prefers static)."""
        trace = study.trace_package("qemu-user")
        static = study.result.footprint_of("qemu-user")
        assert trace.syscall_set() < static.syscalls

    def test_startup_syscalls_observed_first(self, study):
        trace = study.trace_package("coreutils")
        names = trace.syscall_names()
        assert names[0] == "arch_prctl"
        assert names[-1] == "exit_group"

    def test_trace_render(self, study):
        trace = study.trace_package("dash")
        text = trace.render(limit=5)
        assert "exited" in text


class TestCodePointer:
    def test_tagged_pointer_equality(self):
        a = CodePointer("m", 0x10)
        assert a == CodePointer("m", 0x10)
        assert a != CodePointer("n", 0x10)
