"""Binary generator tests: specs round-trip through ELF and analysis."""

import pytest

from repro.analysis.binary import BinaryAnalysis
from repro.elf import ElfReader
from repro.synth.codegen import (
    BinarySpec,
    FunctionSpec,
    generate_binary,
    stable_seed,
)


def _analysis(spec):
    return BinaryAnalysis.from_bytes(generate_binary(spec))


class TestExecutableGeneration:
    def test_minimal_binary_parses(self):
        spec = BinarySpec(name="t",
                          functions=[FunctionSpec(name="main")],
                          entry_function="main")
        reader = ElfReader(generate_binary(spec))
        assert reader.header.e_entry != 0

    def test_direct_syscalls_recovered(self):
        spec = BinarySpec(
            name="t",
            functions=[FunctionSpec(
                name="main",
                direct_syscalls=("read", "write", "openat"))],
            entry_function="main")
        analysis = _analysis(spec)
        effects = analysis.effects_from(analysis.entry_root())
        assert {"read", "write", "openat"} <= effects.syscalls

    def test_wrapper_syscalls_recovered_not_raw(self):
        spec = BinarySpec(
            name="t",
            functions=[FunctionSpec(
                name="main", syscall_via_wrapper=("getrandom",))],
            entry_function="main")
        analysis = _analysis(spec)
        effects = analysis.effects_from(analysis.entry_root())
        assert "getrandom" in effects.syscalls
        assert "getrandom" not in analysis.all_direct_syscalls()

    def test_ioctl_ops_recovered(self):
        spec = BinarySpec(
            name="t",
            functions=[FunctionSpec(name="main",
                                    ioctl_ops=("TCGETS", "FIONREAD"))],
            entry_function="main")
        analysis = _analysis(spec)
        effects = analysis.effects_from(analysis.entry_root())
        assert effects.ioctls == frozenset({"TCGETS", "FIONREAD"})

    def test_fcntl_and_prctl_ops_recovered(self):
        spec = BinarySpec(
            name="t",
            functions=[FunctionSpec(name="main",
                                    fcntl_ops=("F_SETFD",),
                                    prctl_ops=("PR_SET_NAME",))],
            entry_function="main")
        analysis = _analysis(spec)
        effects = analysis.effects_from(analysis.entry_root())
        assert effects.fcntls == frozenset({"F_SETFD"})
        assert effects.prctls == frozenset({"PR_SET_NAME"})

    def test_strings_embedded(self):
        spec = BinarySpec(
            name="t",
            functions=[FunctionSpec(name="main",
                                    strings=("/proc/%d/cmdline",))],
            entry_function="main")
        analysis = _analysis(spec)
        assert "/proc/%d/cmdline" in analysis.pseudo_files

    def test_unknown_syscall_rejected(self):
        spec = BinarySpec(
            name="t",
            functions=[FunctionSpec(name="main",
                                    direct_syscalls=("nonsense",))],
            entry_function="main")
        with pytest.raises(KeyError):
            generate_binary(spec)

    def test_unknown_opcode_rejected(self):
        spec = BinarySpec(
            name="t",
            functions=[FunctionSpec(name="main",
                                    ioctl_ops=("NOT_AN_OP",))],
            entry_function="main")
        with pytest.raises(KeyError):
            generate_binary(spec)

    def test_hex_opcode_accepted(self):
        spec = BinarySpec(
            name="t",
            functions=[FunctionSpec(name="main",
                                    ioctl_ops=("0xdeadbeef",))],
            entry_function="main")
        analysis = _analysis(spec)
        effects = analysis.effects_from(analysis.entry_root())
        assert "0xdeadbeef" in effects.ioctls

    def test_unresolvable_site_counted(self):
        spec = BinarySpec(
            name="t",
            functions=[FunctionSpec(name="main",
                                    unresolvable_syscall_site=True)],
            entry_function="main")
        analysis = _analysis(spec)
        effects = analysis.effects_from(analysis.entry_root())
        assert effects.unresolved_sites >= 1

    def test_needed_and_interp(self):
        spec = BinarySpec(
            name="t",
            functions=[FunctionSpec(name="main",
                                    libc_calls=("printf",))],
            needed=("libc.so.6", "libm.so.6"),
            entry_function="main")
        reader = ElfReader(generate_binary(spec))
        assert reader.needed_libraries() == ["libc.so.6", "libm.so.6"]
        assert reader.interpreter() is not None


class TestLibraryGeneration:
    def test_exports_and_soname(self):
        spec = BinarySpec(
            name="libx",
            functions=[
                FunctionSpec(name="x_read", exported=True,
                             direct_syscalls=("read",)),
                FunctionSpec(name="x_write", exported=True,
                             direct_syscalls=("write",)),
            ],
            soname="libx.so.9",
            entry_function=None)
        reader = ElfReader(generate_binary(spec))
        assert reader.soname() == "libx.so.9"
        assert set(reader.exported_function_names()) == {
            "x_read", "x_write"}
        assert reader.header.e_entry == 0

    def test_deterministic_output(self):
        spec = BinarySpec(
            name="t",
            functions=[FunctionSpec(name="main",
                                    libc_calls=("printf",),
                                    direct_syscalls=("read",))],
            entry_function="main")
        assert generate_binary(spec) == generate_binary(spec)


class TestStableSeed:
    def test_deterministic(self):
        assert stable_seed("a", "b") == stable_seed("a", "b")

    def test_part_sensitivity(self):
        assert stable_seed("a", "b") != stable_seed("ab")
        assert stable_seed("a") != stable_seed("b")
