"""Shared fixtures.

The expensive artifacts — the synthetic ecosystem and its analysis —
are deterministic, so they are built once per session and shared.
"""

import pytest

from repro.study import Study
from repro.synth import EcosystemConfig


@pytest.fixture(scope="session")
def study() -> Study:
    """The reduced study used across integration tests."""
    return Study.small()


@pytest.fixture(scope="session")
def tiny_config() -> EcosystemConfig:
    """A very small configuration for tests building fresh ecosystems."""
    return EcosystemConfig(n_filler_packages=24, n_driver_packages=6,
                           n_script_packages=10, seed=7)


@pytest.fixture(scope="session")
def ecosystem(study):
    return study.ecosystem


@pytest.fixture(scope="session")
def result(study):
    return study.result
