"""ServeApp request-core tests: routing, envelope, errors, backpressure.

All through :meth:`repro.serve.ServeApp.handle` directly — no sockets
— which is the point of the framework-free core: the entire HTTP
behavior is testable as a pure ``Request -> Response`` function.
"""

import json

import pytest

from repro.obs import parse_metrics
from repro.serve import (SERVE_SCHEMA, SERVE_SCHEMA_VERSION, Request,
                         ServeApp, SnapshotHolder)


@pytest.fixture(scope="module")
def holder(study):
    return SnapshotHolder(study.dataset)


@pytest.fixture()
def app(holder):
    return ServeApp(holder)


def get(app, path, **query):
    return app.handle(Request("GET", path,
                              query={k: str(v)
                                     for k, v in query.items()}))


def post(app, path, body):
    return app.handle(Request("POST", path,
                              body=json.dumps(body).encode()))


class TestSystemEndpoints:
    def test_healthz_is_always_ok(self, app):
        response = get(app, "/healthz")
        assert response.status == 200
        assert response.json_payload()["status"] == "ok"

    def test_readyz_reports_generation_and_fingerprint(self, app,
                                                       holder):
        payload = get(app, "/readyz").json_payload()
        assert payload["ready"] is True
        assert payload["generation"] == holder.generation
        assert payload["fingerprint"] == \
            holder.current().fingerprint

    def test_readyz_503_while_not_ready(self, app, holder):
        holder._ready = False
        try:
            response = get(app, "/readyz")
        finally:
            holder._ready = True
        assert response.status == 503
        assert response.json_payload()["ready"] is False

    def test_index_lists_every_endpoint(self, app):
        payload = get(app, "/").json_payload()
        names = {e["name"] for e in payload["endpoints"]}
        assert names == {"importance", "unweighted", "completeness",
                         "curve", "plan", "evaluate", "stats",
                         "dep_semantics", "series_stats",
                         "trend_importance", "trend_completeness",
                         "release_diff"}

    def test_metrics_scrape_parses_and_carries_serve_gauges(self, app):
        get(app, "/v1/dataset/stats")
        response = get(app, "/metrics")
        assert response.status == 200
        assert response.content_type.startswith("text/plain")
        samples = parse_metrics(response.body.decode())
        assert samples["repro_serve_requests"] >= 1
        assert "repro_serve_snapshot_generation" in samples
        assert "repro_serve_qcache_entries" in samples


class TestEnvelope:
    def test_success_envelope_shape(self, app, holder):
        payload = get(app, "/v1/dataset/stats").json_payload()
        assert payload["schema"] == SERVE_SCHEMA
        assert payload["version"] == SERVE_SCHEMA_VERSION
        assert payload["endpoint"] == "stats"
        assert payload["fingerprint"] == \
            holder.current().fingerprint
        assert payload["generation"] == holder.generation
        assert payload["cached"] is False
        assert payload["data"]["n_packages"] == \
            len(holder.current().dataset.packages)

    def test_body_is_canonical_json(self, app):
        body = get(app, "/v1/dataset/stats").body
        decoded = json.loads(body)
        canonical = json.dumps(decoded, sort_keys=True,
                               separators=(",", ":")).encode() + b"\n"
        assert body == canonical

    def test_second_identical_query_is_served_from_cache(self, app):
        first = get(app, "/v1/importance", limit=5).json_payload()
        second = get(app, "/v1/importance", limit=5).json_payload()
        assert first["cached"] is False
        assert second["cached"] is True
        assert first["data"] == second["data"]

    def test_semantically_equal_queries_share_a_cache_entry(self, app):
        post(app, "/v1/completeness",
             {"supported": ["write", "read", "read"]})
        response = post(app, "/v1/completeness",
                        {"supported": ["read", "write"]})
        assert response.json_payload()["cached"] is True


class TestErrors:
    def test_unknown_path_is_404(self, app):
        response = get(app, "/v1/nope")
        assert response.status == 404
        error = response.json_payload()["error"]
        assert error["class"] == "not_found"
        assert error["status"] == 404

    def test_wrong_method_is_405(self, app):
        response = post(app, "/v1/importance", {})
        assert response.status == 405
        assert response.json_payload()["error"]["class"] == \
            "method_not_allowed"

    def test_bad_dimension_is_400(self, app):
        response = get(app, "/v1/importance", dimension="bogus")
        assert response.status == 400
        error = response.json_payload()["error"]
        assert error["class"] == "bad_request"
        assert "bogus" in error["message"]

    def test_malformed_json_body_is_400(self, app):
        response = app.handle(Request("POST", "/v1/completeness",
                                      body=b"{not json"))
        assert response.status == 400

    def test_missing_required_body_field_is_400(self, app):
        response = post(app, "/v1/completeness", {"dimension": "all"})
        assert response.status == 400
        assert "supported" in \
            response.json_payload()["error"]["message"]

    def test_error_envelope_carries_schema(self, app):
        payload = get(app, "/v1/nope").json_payload()
        assert payload["schema"] == SERVE_SCHEMA
        assert payload["version"] == SERVE_SCHEMA_VERSION
        assert "data" not in payload


class TestBackpressure:
    def test_saturated_slots_shed_with_429_and_retry_after(self,
                                                           holder):
        app = ServeApp(holder, concurrency=1,
                       max_wait_seconds=0.01)
        with app.admission.slot():  # occupy the only slot
            response = get(app, "/v1/dataset/stats")
        assert response.status == 429
        assert response.headers["Retry-After"] == "1"
        assert response.json_payload()["error"]["class"] == \
            "overloaded"
        assert app.admission.stats()["rejected"] == 1

    def test_retry_after_never_truncates_to_zero(self, holder):
        # str(int(0.4)) would have advertised "Retry-After: 0" — an
        # immediate-retry stampede invitation.  Sub-second hints must
        # round *up* to the one-second floor.
        from repro.serve import OverloadedError, Request
        app = ServeApp(holder)
        for hint, expected in ((0.05, "1"), (0.9, "1"),
                               (1.0, "1"), (2.3, "3")):
            response = app._error_response(
                Request("GET", "/v1/dataset/stats"),
                OverloadedError(hint, slots=1))
            assert response.status == 429
            assert response.headers["Retry-After"] == expected

    def test_slot_released_after_shed(self, holder):
        app = ServeApp(holder, concurrency=1,
                       max_wait_seconds=0.01)
        with app.admission.slot():
            assert get(app, "/v1/dataset/stats").status == 429
        assert get(app, "/v1/dataset/stats").status == 200

    def test_expired_deadline_maps_to_504(self, holder):
        app = ServeApp(holder, deadline_seconds=0.0)
        response = get(app, "/v1/dataset/stats")
        assert response.status == 504
        assert response.json_payload()["error"]["class"] == \
            "deadline"

    def test_probes_bypass_admission(self, holder):
        app = ServeApp(holder, concurrency=1,
                       max_wait_seconds=0.01)
        with app.admission.slot():
            assert get(app, "/healthz").status == 200
            assert get(app, "/readyz").status == 200
            assert get(app, "/metrics").status == 200


class TestReload:
    def test_reload_swaps_generation_and_keeps_fingerprint(
            self, holder, tmp_path):
        app = ServeApp(holder)
        path = tmp_path / "snapshot.json"
        holder.export_to_file(path)
        before = holder.generation
        response = post(app, "/admin/reload", {"path": str(path)})
        assert response.status == 200
        payload = response.json_payload()
        assert payload["generation"] == before + 1
        assert payload["fingerprint"] == \
            holder.current().fingerprint

    def test_reload_missing_body_is_400(self, app):
        response = post(app, "/admin/reload", {})
        assert response.status == 400

    def test_reload_bad_path_is_failure_not_crash(self, app, holder):
        before = holder.generation
        response = post(app, "/admin/reload",
                        {"path": "/nonexistent/snap.json"})
        assert response.status >= 400
        assert holder.generation == before  # old snapshot kept

    def test_reload_can_be_disabled(self, holder, tmp_path):
        app = ServeApp(holder, allow_reload=False)
        path = tmp_path / "snapshot.json"
        holder.export_to_file(path)
        response = post(app, "/admin/reload", {"path": str(path)})
        assert response.status == 500
        assert holder.generation == app.holder.generation
