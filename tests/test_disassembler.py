"""Call-graph builder tests over generated binaries."""

from repro.analysis.binary import BinaryAnalysis
from repro.synth.codegen import BinarySpec, FunctionSpec, generate_binary


def _analyze(spec: BinarySpec) -> BinaryAnalysis:
    return BinaryAnalysis.from_bytes(generate_binary(spec),
                                     name=spec.name)


class TestFunctionDiscovery:
    def test_entry_and_exports_are_roots(self):
        spec = BinarySpec(
            name="t",
            functions=[
                FunctionSpec(name="main", libc_calls=("printf",)),
                FunctionSpec(name="api", exported=True),
            ],
            entry_function="main",
        )
        analysis = _analyze(spec)
        roots = analysis.roots()
        assert "_start" in roots
        assert "api" in roots

    def test_local_call_creates_edge(self):
        spec = BinarySpec(
            name="t",
            functions=[
                FunctionSpec(name="helper",
                             direct_syscalls=("getpid",)),
                FunctionSpec(name="main", local_calls=("helper",)),
            ],
            entry_function="main",
        )
        analysis = _analyze(spec)
        entry = analysis.entry_root()
        effects = analysis.effects_from(entry)
        assert "getpid" in effects.syscalls

    def test_transitive_local_calls(self):
        spec = BinarySpec(
            name="t",
            functions=[
                FunctionSpec(name="c", direct_syscalls=("getuid",)),
                FunctionSpec(name="b", local_calls=("c",)),
                FunctionSpec(name="a", local_calls=("b",)),
                FunctionSpec(name="main", local_calls=("a",)),
            ],
            entry_function="main",
        )
        analysis = _analyze(spec)
        effects = analysis.effects_from(analysis.entry_root())
        assert "getuid" in effects.syscalls

    def test_unreachable_function_not_in_root_effects(self):
        spec = BinarySpec(
            name="t",
            functions=[
                FunctionSpec(name="dead", direct_syscalls=("reboot",),
                             exported=False),
                FunctionSpec(name="main",
                             direct_syscalls=("getpid",)),
            ],
            entry_function="main",
        )
        analysis = _analyze(spec)
        effects = analysis.effects_from(analysis.entry_root())
        assert "reboot" not in effects.syscalls
        assert "getpid" in effects.syscalls

    def test_pointer_formation_counts_as_call(self):
        """The §7 over-approximation: lea of a function address."""
        spec = BinarySpec(
            name="t",
            functions=[
                FunctionSpec(name="callback",
                             direct_syscalls=("kill",)),
                FunctionSpec(name="main",
                             take_pointer_of=("callback",)),
            ],
            entry_function="main",
        )
        analysis = _analyze(spec)
        effects = analysis.effects_from(analysis.entry_root())
        assert "kill" in effects.syscalls

    def test_export_root_effects_independent(self):
        spec = BinarySpec(
            name="t",
            functions=[
                FunctionSpec(name="api_a", exported=True,
                             direct_syscalls=("read",)),
                FunctionSpec(name="api_b", exported=True,
                             direct_syscalls=("write",)),
            ],
            soname="libt.so.1",
            entry_function=None,
        )
        analysis = _analyze(spec)
        effects_a = analysis.effects_from(analysis.export_root("api_a"))
        effects_b = analysis.effects_from(analysis.export_root("api_b"))
        assert effects_a.syscalls == frozenset({"read"})
        assert effects_b.syscalls == frozenset({"write"})

    def test_plt_calls_collected_per_root(self):
        spec = BinarySpec(
            name="t",
            functions=[FunctionSpec(name="main",
                                    libc_calls=("printf", "malloc"))],
            entry_function="main",
        )
        analysis = _analyze(spec)
        effects = analysis.effects_from(analysis.entry_root())
        assert {"printf", "malloc"} <= set(effects.called_imports)

    def test_all_direct_syscalls_ignores_reachability(self):
        spec = BinarySpec(
            name="t",
            functions=[
                FunctionSpec(name="dead", exported=True,
                             direct_syscalls=("reboot",)),
                FunctionSpec(name="main",
                             direct_syscalls=("getpid",)),
            ],
            entry_function="main",
        )
        analysis = _analyze(spec)
        assert {"reboot", "getpid"} <= analysis.all_direct_syscalls()

    def test_reachable_from_includes_self(self):
        spec = BinarySpec(
            name="t",
            functions=[FunctionSpec(name="main")],
            entry_function="main",
        )
        analysis = _analyze(spec)
        entry = analysis.entry_root()
        assert entry in analysis.graph.reachable_from(entry)

    def test_recursive_functions_terminate(self):
        spec = BinarySpec(
            name="t",
            functions=[
                FunctionSpec(name="even", local_calls=("odd",)),
                FunctionSpec(name="odd", local_calls=("even",),
                             direct_syscalls=("gettid",)),
                FunctionSpec(name="main", local_calls=("even",)),
            ],
            entry_function="main",
        )
        analysis = _analyze(spec)
        effects = analysis.effects_from(analysis.entry_root())
        assert "gettid" in effects.syscalls
