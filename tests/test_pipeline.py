"""Pipeline integration tests over a tiny fresh ecosystem."""

import pytest

from repro.analysis import AnalysisPipeline
from repro.analysis.footprint import Footprint
from repro.analysis.resolver import FootprintResolver
from repro.engine import (
    AnalysisEngine,
    EngineConfig,
    TooManyFailuresError,
)
from repro.packages import (
    BinaryArtifact,
    BinaryKind,
    Package,
    Repository,
)
from repro.synth import build_ecosystem
from repro.synth.codegen import BinarySpec, FunctionSpec, generate_binary


@pytest.fixture(scope="module")
def tiny_result(tiny_config):
    ecosystem = build_ecosystem(tiny_config)
    result = AnalysisPipeline(ecosystem.repository,
                              ecosystem.interpreters).run()
    return ecosystem, result


class TestPipelineOutputs:
    def test_every_package_has_footprint_entry(self, tiny_result):
        ecosystem, result = tiny_result
        for package in ecosystem.repository:
            assert package.name in result.package_footprints

    def test_full_footprints_superset(self, tiny_result):
        _, result = tiny_result
        for name, footprint in result.package_footprints.items():
            full = result.package_full_footprints[name]
            assert footprint.syscalls <= full.syscalls

    def test_libc6_exec_footprint_empty_full_rich(self, tiny_result):
        _, result = tiny_result
        assert result.footprint_of("libc6").is_empty
        assert len(result.full_footprint_of("libc6").syscalls) > 150

    def test_script_packages_inherit_interpreter(self, tiny_result):
        ecosystem, result = tiny_result
        script_pkgs = [p for p in ecosystem.repository
                       if p.category == "scripts"]
        assert script_pkgs
        for package in script_pkgs[:5]:
            interps = {a.interpreter for a in package.artifacts
                       if a.kind == BinaryKind.SCRIPT}
            footprint = result.footprint_of(package.name)
            for interp in interps:
                provider = ecosystem.interpreters[interp]
                provider_fp = result.footprint_of(provider)
                assert provider_fp.syscalls <= footprint.syscalls

    def test_type_stats_totals(self, tiny_result):
        ecosystem, result = tiny_result
        stats = result.type_stats
        elf = sum(len(p.elf_artifacts()) for p in ecosystem.repository)
        assert stats.elf_binaries == elf
        assert (stats.elf_shared_libraries
                + stats.elf_dynamic_executables
                + stats.elf_static) == elf

    def test_unresolved_sites_nonzero(self, tiny_result):
        # the syscall(2) wrapper and qemu guarantee some
        _, result = tiny_result
        assert result.unresolved_sites > 0

    def test_signature_stats_shape(self, tiny_result):
        _, result = tiny_result
        distinct, unique = result.syscall_signature_stats()
        assert 0 < unique <= distinct <= len(
            result.package_footprints)

    def test_direct_syscall_binaries_counted(self, tiny_result):
        _, result = tiny_result
        assert 0 < result.binaries_with_direct_syscalls < (
            result.binaries_analyzed)


class TestHandBuiltRepository:
    def _exe(self, functions, needed=("libc.so.6",)):
        spec = BinarySpec(name="x", functions=functions,
                          needed=needed, entry_function="main")
        return BinaryArtifact("bin/x", BinaryKind.ELF_EXECUTABLE,
                              data=generate_binary(spec))

    def test_minimal_repo_without_libc(self):
        package = Package("standalone", artifacts=[self._exe(
            [FunctionSpec(name="main",
                          direct_syscalls=("read", "exit_group"))],
            needed=())])
        result = AnalysisPipeline(Repository([package])).run()
        footprint = result.footprint_of("standalone")
        assert footprint.syscalls == frozenset({"read", "exit_group"})

    def test_script_without_interpreter_provider(self):
        package = Package("scripts-only", artifacts=[
            BinaryArtifact("bin/s", BinaryKind.SCRIPT,
                           data=b"#!/usr/bin/ghost\n",
                           interpreter="ghost")])
        result = AnalysisPipeline(Repository([package])).run()
        assert result.footprint_of("scripts-only").is_empty

    def test_interpreter_inference_from_basename(self):
        interp_pkg = Package("mylang", artifacts=[self._exe(
            [FunctionSpec(name="main",
                          direct_syscalls=("futex",))], needed=())])
        interp_pkg.artifacts[0].name = "bin/mylang"
        script_pkg = Package("uses-mylang", artifacts=[
            BinaryArtifact("bin/tool", BinaryKind.SCRIPT,
                           data=b"#!/usr/bin/mylang\n",
                           interpreter="mylang")])
        result = AnalysisPipeline(
            Repository([interp_pkg, script_pkg])).run()
        assert "futex" in result.footprint_of("uses-mylang").syscalls


class TestResolutionQuarantine:
    """Faults raised during footprint resolution (not analysis)."""

    def _library_repo(self):
        spec = BinarySpec(
            name="libx.so.1",
            functions=[
                FunctionSpec(name="aa_ok", direct_syscalls=("read",),
                             exported=True),
                FunctionSpec(name="zz_bad", direct_syscalls=("write",),
                             exported=True),
            ],
            needed=(), soname="libx.so.1", entry_function=None)
        artifact = BinaryArtifact("lib/libx.so.1",
                                  BinaryKind.SHARED_LIBRARY,
                                  data=generate_binary(spec))
        return Repository([Package("libx", artifacts=[artifact])])

    def _break_export(self, monkeypatch, export):
        original = FootprintResolver.resolve_export

        def poisoned(resolver, soname, symbol):
            if symbol == export:
                raise KeyError(symbol)
            return original(resolver, soname, symbol)

        monkeypatch.setattr(FootprintResolver, "resolve_export",
                            poisoned)

    def test_partial_library_parts_not_leaked(self, monkeypatch):
        # Exports sort "aa_ok" < "zz_bad": aa_ok resolves before the
        # failure, but the quarantined library must contribute nothing
        # at all to the package's full footprint.
        self._break_export(monkeypatch, "zz_bad")
        result = AnalysisPipeline(self._library_repo()).run()
        assert result.quarantined == {("libx", "lib/libx.so.1")}
        failure = result.failures[0]
        assert failure.error_class == "resolution"
        assert failure.stage == "resolve"
        assert result.package_full_footprints["libx"].is_empty

    def test_max_failures_bounds_resolution_failures(self,
                                                     monkeypatch):
        self._break_export(monkeypatch, "zz_bad")
        engine = AnalysisEngine(EngineConfig(max_failures=0))
        with pytest.raises(TooManyFailuresError):
            AnalysisPipeline(self._library_repo(), engine=engine).run()
        # A budget of one tolerates exactly one quarantined binary.
        engine = AnalysisEngine(EngineConfig(max_failures=1))
        result = AnalysisPipeline(self._library_repo(),
                                  engine=engine).run()
        assert len(result.failures) == 1
