"""Fault tolerance: taxonomy, capture policy, quarantine, negative cache."""

import functools

import pytest

from repro.elf.structs import ElfFormatError
from repro.engine import (
    AnalysisCache,
    AnalysisEngine,
    AnalysisFault,
    DecodeAnalysisError,
    EngineConfig,
    Executor,
    FailureRecord,
    FaultPolicy,
    FormatAnalysisError,
    InternalAnalysisError,
    MemoryCache,
    TimeoutAnalysisError,
    TooManyFailuresError,
    analyze_bytes,
    classify_exception,
    content_key,
)
from repro.engine.codec import entry_from_json, entry_to_json
from repro.synth.codegen import BinarySpec, FunctionSpec, generate_binary


@functools.lru_cache(maxsize=None)
def _sample_exe() -> bytes:
    spec = BinarySpec(
        name="sample",
        functions=[FunctionSpec(
            name="main", direct_syscalls=("read", "exit_group"))],
        needed=(), entry_function="main")
    return generate_binary(spec)


#: 18 bytes with a valid magic: the ISSUE's verified engine-killer.
_TRUNCATED = _sample_exe()[:18]


class TestTaxonomy:
    def test_classify_elf_format_error(self):
        fault = classify_exception(ElfFormatError("too small"))
        assert fault.error_class == "format"
        assert fault.stage == "parse"
        assert fault.exc_type == "ElfFormatError"

    def test_classify_taxonomy_error_keeps_class_and_stage(self):
        fault = classify_exception(
            DecodeAnalysisError("bad code", stage="decode"))
        assert fault.error_class == "decode"
        assert fault.stage == "decode"

    def test_classify_timeout(self):
        assert classify_exception(
            TimeoutError("slow")).error_class == "timeout"

    def test_classify_resolve_stage(self):
        fault = classify_exception(KeyError("libz"), stage="resolve")
        assert fault.error_class == "resolution"

    def test_classify_unknown_is_internal(self):
        assert classify_exception(
            RuntimeError("?")).error_class == "internal"

    def test_error_subclass_classes(self):
        assert FormatAnalysisError("x").error_class == "format"
        assert TimeoutAnalysisError("x").error_class == "timeout"
        assert InternalAnalysisError("x").error_class == "internal"

    def test_fault_to_error_round_trip(self):
        fault = classify_exception(ElfFormatError("bad"))
        error = fault.to_error()
        assert isinstance(error, FormatAnalysisError)
        assert "bad" in str(error)

    def test_failure_record_attribution(self):
        fault = classify_exception(ElfFormatError("bad"))
        record = FailureRecord.for_task(("pkg", "bin/x"), "ab" * 32,
                                        fault)
        assert record.package == "pkg"
        assert record.artifact == "bin/x"
        assert record.error_class == "format"
        assert record.fault.error_class == "format"

    def test_fault_codec_round_trip(self):
        fault = AnalysisFault(error_class="decode", exc_type="X",
                              message="m", stage="decode")
        assert entry_from_json(entry_to_json(fault)) == fault


class TestFaultPolicy:
    def test_capture_returns_outcomes(self):
        def boom(item):
            if item == 2:
                raise ValueError("two")
            return item * 10

        outcomes = Executor().map(boom, [1, 2, 3],
                                  policy=FaultPolicy())
        assert [o.ok for o in outcomes] == [True, False, True]
        assert outcomes[0].value == 10
        assert outcomes[1].fault.error_class == "internal"

    def test_strict_propagates_original_exception(self):
        def boom(item):
            raise ValueError("original")

        with pytest.raises(ValueError, match="original"):
            Executor().map(boom, [1], policy=FaultPolicy.strict())

    def test_transient_oserror_retried_once(self):
        calls = []

        def flaky(item):
            calls.append(item)
            if len(calls) == 1:
                raise OSError("transient")
            return item

        outcomes = Executor().map(flaky, [5], policy=FaultPolicy())
        assert outcomes[0].ok
        assert outcomes[0].retried
        assert len(calls) == 2

    def test_persistent_oserror_captured_after_retry(self):
        def broken(item):
            raise OSError("still broken")

        outcomes = Executor().map(broken, [1], policy=FaultPolicy())
        assert not outcomes[0].ok
        assert outcomes[0].retried
        assert outcomes[0].fault.retried

    def test_retry_opt_out(self):
        calls = []

        def broken(item):
            calls.append(item)
            raise OSError("nope")

        Executor().map(broken, [1],
                       policy=FaultPolicy(retry_transient=False))
        assert len(calls) == 1


class TestSingleJobShortcut:
    """backend='process', jobs=1 must not spin up a pool (satellite)."""

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_jobs_one_runs_in_process(self, backend):
        # A closure is unpicklable, so this would die in a real
        # ProcessPoolExecutor — passing proves the serial path ran.
        seen = []

        def fn(item):
            seen.append(item)
            return item + 1

        assert Executor(backend, 1).map(fn, [1, 2]) == [2, 3]
        assert seen == [1, 2]


class TestCacheNegativeEntries:
    def _fault(self):
        return AnalysisFault(error_class="format",
                             exc_type="ElfFormatError",
                             message="bad", stage="parse")

    def test_memory_cache(self):
        cache = MemoryCache()
        cache.put_fault("ab" * 32, self._fault())
        assert cache.get("ab" * 32) == self._fault()
        assert cache.stats.negative_stores == 1
        assert cache.stats.negative_hits == 1
        assert cache.stats.hits == 0

    def test_disk_cache(self, tmp_path):
        cache = AnalysisCache(str(tmp_path))
        cache.put_fault("cd" * 32, self._fault())
        reloaded = AnalysisCache(str(tmp_path))
        assert reloaded.get("cd" * 32) == self._fault()
        assert reloaded.stats.negative_hits == 1


def _tasks(blobs):
    return [((f"pkg{i}", f"bin/b{i}"), f"pkg{i}:bin/b{i}", blob)
            for i, blob in enumerate(blobs)]


class TestEngineQuarantine:
    def test_corrupt_binary_quarantined_not_fatal(self):
        engine = AnalysisEngine()
        stats = engine.new_stats()
        records, _ = engine.analyze(
            _tasks([_sample_exe(), _TRUNCATED]), stats)
        assert ("pkg0", "bin/b0") in records
        assert ("pkg1", "bin/b1") not in records
        assert stats.binaries_failed == 1
        assert [f.error_class for f in stats.failures] == ["format"]
        assert stats.failures_by_class == {"format": 1}

    def test_negative_cache_skips_known_bad_bytes(self):
        cache = MemoryCache()
        engine = AnalysisEngine(cache=cache)
        cold = engine.new_stats()
        engine.analyze(_tasks([_TRUNCATED]), cold)
        assert cold.negative_cache_stores == 1

        warm = engine.new_stats()
        records, _ = engine.analyze(_tasks([_TRUNCATED]), warm)
        assert records == {}
        assert warm.negative_cache_hits == 1
        assert warm.binaries_analyzed == 0
        assert warm.binaries_failed == 1
        assert [f.error_class for f in warm.failures] == ["format"]

    def test_strict_restores_fail_fast(self):
        engine = AnalysisEngine(EngineConfig(strict=True))
        with pytest.raises(ElfFormatError):
            engine.analyze(_tasks([_sample_exe(), _TRUNCATED]))

    def test_strict_raises_on_negative_cache_hit(self):
        cache = MemoryCache()
        cache.put_fault(content_key(_TRUNCATED), classify_exception(
            ElfFormatError("known bad")))
        engine = AnalysisEngine(EngineConfig(strict=True), cache=cache)
        with pytest.raises(FormatAnalysisError):
            engine.analyze(_tasks([_TRUNCATED]))

    def test_max_failures_budget(self):
        engine = AnalysisEngine(EngineConfig(max_failures=0))
        with pytest.raises(TooManyFailuresError):
            engine.analyze(_tasks([_TRUNCATED]))
        # A budget of one tolerates exactly one quarantined binary.
        engine = AnalysisEngine(EngineConfig(max_failures=1))
        records, _ = engine.analyze(
            _tasks([_sample_exe(), _TRUNCATED]))
        assert len(records) == 1

    def test_stats_render_mentions_quarantine(self):
        engine = AnalysisEngine()
        stats = engine.new_stats()
        engine.analyze(_tasks([_TRUNCATED]), stats)
        rendered = stats.render()
        assert "quarantined" in rendered
        assert "format: 1" in rendered


class TestAnalyzeBytesValidation:
    def test_good_binary_passes(self):
        record = analyze_bytes(_sample_exe())
        assert record.all_direct_syscalls()

    def test_truncated_raises_format(self):
        with pytest.raises(ElfFormatError):
            analyze_bytes(_TRUNCATED)

    def test_lying_entry_raises_decode(self):
        from repro.synth.corruptor import entry_outside_text
        with pytest.raises(DecodeAnalysisError):
            analyze_bytes(entry_outside_text(_sample_exe()))

    def test_garbage_code_raises_decode(self):
        from repro.synth.corruptor import garbage_code
        with pytest.raises(DecodeAnalysisError):
            analyze_bytes(garbage_code(_sample_exe()))
