"""Engine tests: backend determinism, caching, codec, incremental."""

import functools

import pytest

from repro.analysis import AnalysisPipeline
from repro.analysis.binary import BinaryAnalysis
from repro.analysis.footprint import Footprint
from repro.engine import (
    AnalysisCache,
    AnalysisEngine,
    BinaryRecord,
    CodecError,
    EngineConfig,
    Executor,
    IncrementalDriver,
    MemoryCache,
    analyze_bytes,
    content_key,
    diff_repositories,
    footprint_from_json,
    footprint_to_json,
    record_from_json,
    record_to_json,
)
from repro.packages import (
    BinaryArtifact,
    BinaryKind,
    Package,
    Repository,
)
from repro.synth import build_ecosystem
from repro.synth.codegen import BinarySpec, FunctionSpec, generate_binary


@pytest.fixture(scope="module")
def ecosystem(tiny_config):
    return build_ecosystem(tiny_config)


def _run(ecosystem, engine=None):
    return AnalysisPipeline(ecosystem.repository,
                            ecosystem.interpreters,
                            engine=engine).run()


def _comparable(result):
    """Everything the metrics layer consumes, for equality checks."""
    return (
        result.package_footprints,
        result.package_full_footprints,
        result.binary_footprints,
        result.direct_syscalls_by_binary,
        result.library_binaries,
        result.unresolved_sites,
        result.binaries_with_direct_syscalls,
        result.binaries_analyzed,
        result.type_stats.elf_binaries,
        dict(result.type_stats.scripts_by_interpreter),
        result.syscall_signature_stats(),
    )


@functools.lru_cache(maxsize=None)
def _sample_exe() -> bytes:
    spec = BinarySpec(
        name="sample",
        functions=[FunctionSpec(
            name="main", direct_syscalls=("read", "exit_group"))],
        needed=(), entry_function="main")
    return generate_binary(spec)


class TestBackendDeterminism:
    """Serial, threaded, and process backends must be byte-identical."""

    @pytest.fixture(scope="class")
    def serial_result(self, tiny_config):
        return _run(build_ecosystem(tiny_config))

    @pytest.mark.parametrize("backend,jobs", [
        ("serial", 1),
        ("thread", 2),
        ("process", 2),
        ("process", 4),
    ])
    def test_identical_results(self, tiny_config, serial_result,
                               backend, jobs):
        ecosystem = build_ecosystem(tiny_config)
        engine = AnalysisEngine(EngineConfig(jobs=jobs,
                                             backend=backend))
        result = _run(ecosystem, engine)
        assert _comparable(result) == _comparable(serial_result)

    def test_stats_attached(self, serial_result):
        stats = serial_result.engine_stats
        assert stats is not None
        assert stats.binaries_analyzed == serial_result.binaries_analyzed
        assert stats.binaries_per_second > 0
        assert "analyze" in stats.stage_seconds
        rendered = stats.render()
        assert "engine run statistics" in rendered
        assert "binaries/s" in rendered


class TestWarmCache:
    def test_disk_cache_warm_run_equals_cold(self, tiny_config,
                                             tmp_path):
        ecosystem = build_ecosystem(tiny_config)
        config = EngineConfig(cache_dir=str(tmp_path / "cache"))
        cold = _run(ecosystem, AnalysisEngine(config))
        assert cold.engine_stats.cache_misses == cold.binaries_analyzed
        warm = _run(ecosystem, AnalysisEngine(config))
        stats = warm.engine_stats
        assert stats.cache_misses == 0
        assert stats.cache_hits == warm.binaries_analyzed
        assert stats.hit_rate >= 0.95
        assert _comparable(warm) == _comparable(cold)

    def test_shared_engine_second_run_all_hits(self, tiny_config):
        ecosystem = build_ecosystem(tiny_config)
        engine = AnalysisEngine()
        _run(ecosystem, engine)
        warm = _run(ecosystem, engine)
        assert warm.engine_stats.cache_misses == 0

    def test_lazy_library_index_materializes(self, tiny_config,
                                             tmp_path):
        ecosystem = build_ecosystem(tiny_config)
        config = EngineConfig(cache_dir=str(tmp_path / "cache"))
        _run(ecosystem, AnalysisEngine(config))
        warm = _run(ecosystem, AnalysisEngine(config))
        # Warm runs hold no BinaryAnalysis objects; consumers that need
        # one (Table 5, the dynamic tracer) trigger a lazy re-analysis.
        index = warm.library_index
        assert "libc.so.6" in index
        analysis = index.get("libc.so.6")
        assert isinstance(analysis, BinaryAnalysis)
        assert analysis.all_direct_syscalls()


class TestCache:
    def _record(self):
        return analyze_bytes(_sample_exe(), name="sample")

    def test_disk_round_trip(self, tmp_path):
        cache = AnalysisCache(str(tmp_path))
        record = self._record()
        sha = content_key(_sample_exe())
        assert cache.get(sha) is None
        cache.put(sha, record)
        assert cache.get(sha) == record
        assert cache.entry_count() == 1
        assert cache.size_bytes() > 0

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = AnalysisCache(str(tmp_path))
        sha = content_key(_sample_exe())
        cache.put(sha, self._record())
        path = cache._path(sha)
        path.write_text("{not json", encoding="utf-8")
        assert cache.get(sha) is None
        assert cache.stats.invalid == 1

    def test_clear(self, tmp_path):
        cache = AnalysisCache(str(tmp_path))
        cache.put(content_key(_sample_exe()), self._record())
        assert cache.clear() == 1
        assert cache.entry_count() == 0

    def test_memory_cache_counters(self):
        cache = MemoryCache()
        record = self._record()
        assert cache.get("x") is None
        cache.put("x", record)
        assert cache.get("x") == record
        assert (cache.stats.hits, cache.stats.misses,
                cache.stats.stores) == (1, 1, 1)


class TestCodec:
    def test_record_round_trip(self):
        record = analyze_bytes(_sample_exe(), name="sample")
        assert record_from_json(record_to_json(record)) == record

    def test_record_round_trip_library(self, ecosystem):
        libc = None
        for package in ecosystem.repository:
            for artifact in package.artifacts:
                if artifact.kind == BinaryKind.SHARED_LIBRARY:
                    libc = analyze_bytes(artifact.data,
                                         name=artifact.name)
                    break
            if libc is not None:
                break
        assert libc is not None and libc.export_effects
        assert record_from_json(record_to_json(libc)) == libc

    def test_record_json_is_stable(self):
        record = analyze_bytes(_sample_exe(), name="sample")
        assert record_to_json(record) == record_to_json(
            record_from_json(record_to_json(record)))

    def test_footprint_round_trip(self):
        footprint = Footprint.build(
            syscalls=["read", "write"], ioctls=["TCGETS"],
            pseudo_files=["/dev/null"], libc_symbols=["printf"],
            unresolved_sites=3)
        assert footprint_from_json(
            footprint_to_json(footprint)) == footprint

    def test_version_mismatch_rejected(self):
        with pytest.raises(CodecError):
            footprint_from_json('{"codec_version": "999"}')
        with pytest.raises(CodecError):
            record_from_json("not json at all")


class TestExecutor:
    def test_rejects_unknown_backend(self):
        with pytest.raises(ValueError):
            Executor(backend="gpu")
        with pytest.raises(ValueError):
            Executor(jobs=0)

    @pytest.mark.parametrize("backend,jobs", [
        ("serial", 1), ("thread", 3), ("process", 2)])
    def test_map_preserves_order(self, backend, jobs):
        executor = Executor(backend=backend, jobs=jobs)
        items = list(range(20))
        assert executor.map(_square, items) == [i * i for i in items]

    def test_empty_batch(self):
        assert Executor("process", 2).map(_square, []) == []


def _square(x):
    return x * x


class TestIncremental:
    def _exe(self, syscalls):
        spec = BinarySpec(
            name="x",
            functions=[FunctionSpec(name="main",
                                    direct_syscalls=tuple(syscalls))],
            needed=(), entry_function="main")
        return generate_binary(spec)

    def _repo(self, table):
        """table: {package: {artifact: syscalls-tuple}}"""
        packages = []
        for pkg_name, artifacts in table.items():
            package = Package(pkg_name)
            for art_name, syscalls in artifacts.items():
                package.add(BinaryArtifact(
                    art_name, BinaryKind.ELF_EXECUTABLE,
                    data=self._exe(syscalls)))
            packages.append(package)
        return Repository(packages)

    def test_diff_repositories(self):
        old = self._repo({"a": {"bin/a": ("read",)},
                          "b": {"bin/b": ("write",)}})
        new = self._repo({"a": {"bin/a": ("read",)},
                          "b": {"bin/b": ("mmap",)},
                          "c": {"bin/c": ("futex",)}})
        diff = diff_repositories(old, new)
        assert diff.unchanged == frozenset({("a", "bin/a")})
        assert diff.changed == frozenset({("b", "bin/b")})
        assert diff.added == frozenset({("c", "bin/c")})
        assert diff.removed == frozenset()
        assert diff.reanalysis_set == frozenset(
            {("b", "bin/b"), ("c", "bin/c")})

    def test_driver_reanalyzes_only_changes(self):
        driver = IncrementalDriver()
        first = driver.run(self._repo(
            {"a": {"bin/a": ("read",)}, "b": {"bin/b": ("write",)}}))
        assert first.diff is None
        assert first.stats.cache_misses == 2

        second = driver.run(self._repo(
            {"a": {"bin/a": ("read",)}, "b": {"bin/b": ("mmap",)}}))
        assert second.diff.changed == frozenset({("b", "bin/b")})
        assert second.stats.cache_misses == len(
            second.diff.reanalysis_set) == 1
        assert second.stats.cache_hits == 1
        assert second.result.footprint_of("b").syscalls >= {"mmap"}
        assert second.result.footprint_of("a").syscalls >= {"read"}

    def test_content_addressing_survives_renames(self):
        driver = IncrementalDriver()
        driver.run(self._repo({"a": {"bin/a": ("read",)}}))
        # Same bytes under a new package/artifact name: still a hit.
        moved = driver.run(self._repo({"z": {"bin/z": ("read",)}}))
        assert moved.stats.cache_misses == 0
        assert moved.diff.added == frozenset({("z", "bin/z")})


class TestUnionAll:
    def test_matches_pairwise_fold(self):
        parts = [
            Footprint.build(syscalls=["read"], unresolved_sites=1),
            Footprint.build(ioctls=["TCGETS"], libc_symbols=["printf"]),
            Footprint.build(syscalls=["write"], fcntls=["F_GETFD"],
                            prctls=["PR_SET_NAME"],
                            pseudo_files=["/dev/null"],
                            unresolved_sites=2),
        ]
        folded = Footprint.EMPTY
        for part in parts:
            folded = folded | part
        assert Footprint.union_all(parts) == folded

    def test_empty_iterable_is_empty_sentinel(self):
        assert Footprint.union_all([]) is Footprint.EMPTY
        assert Footprint.union_all(
            [Footprint.EMPTY, Footprint.EMPTY]) is Footprint.EMPTY

    def test_unresolved_sites_sum(self):
        parts = [Footprint.build(unresolved_sites=2),
                 Footprint.build(unresolved_sites=3)]
        assert Footprint.union_all(parts).unresolved_sites == 5
