"""The ``.rsnap`` wire format: round-trips, integrity ladder, and the
engine-facing error contract.

Three promises are pinned here:

* a snapshot round-trips losslessly (JSON -> .rsnap -> JSON is
  byte-identical; embedded popcon/repository reconstruct bit-exact
  weights and closures, and explicit arguments override them);
* **no corruption produces a partial dataset** — truncation at any
  length, bad magic, wrong version, CRC damage, and single-bit flips
  anywhere in the file all raise a typed :class:`StoreError` before a
  single package is visible;
* the error types slot into the existing taxonomies: ``StoreError``
  is a :class:`repro.dataset.codec.DatasetCodecError` (the engine
  cache's delete-to-miss handler) and classifies as ``format`` in the
  engine fault taxonomy.
"""

import pytest

from repro.dataset import (Dataset, DatasetCodecError,
                           dataset_to_json, footprints_fingerprint)
from repro.engine import AnalysisCache
from repro.engine.errors import classify_exception
from repro.store import (MAGIC, STORE_VERSION, SnapshotDataset,
                         StoreCRCError, StoreError, StoreMagicError,
                         StoreTruncatedError, StoreVersionError,
                         load_snapshot, load_snapshot_bytes,
                         sniff_format, snapshot_info,
                         snapshot_to_bytes, write_snapshot)
from repro.synth import PaperScaleConfig, build_paper_corpus


@pytest.fixture(scope="module")
def corpus():
    return build_paper_corpus(PaperScaleConfig.tiny())


@pytest.fixture(scope="module")
def snapshot_bytes(corpus):
    return snapshot_to_bytes(corpus.dataset)


class TestRoundTrip:
    def test_json_rsnap_json_is_byte_identical(self, corpus,
                                               snapshot_bytes):
        before = dataset_to_json(corpus.dataset)
        after = dataset_to_json(load_snapshot_bytes(snapshot_bytes))
        assert before == after

    def test_fingerprint_is_embedded_not_recomputed(self, corpus,
                                                    snapshot_bytes):
        loaded = load_snapshot_bytes(snapshot_bytes)
        assert loaded.source_fingerprint == \
            footprints_fingerprint(corpus.dataset)

    def test_embedded_popcon_reconstructs_exact_weights(
            self, corpus, snapshot_bytes):
        loaded = load_snapshot_bytes(snapshot_bytes)
        assert loaded.popcon is not corpus.popcon
        assert loaded.weights == corpus.dataset.weights

    def test_embedded_repository_reconstructs_closures(
            self, corpus, snapshot_bytes):
        loaded = load_snapshot_bytes(snapshot_bytes)
        name = corpus.dataset.packages[-1]
        assert loaded.repository.dependency_closure(name) == \
            corpus.repository.dependency_closure(name)

    def test_explicit_bindings_override_embedded(self, corpus,
                                                 snapshot_bytes):
        loaded = load_snapshot_bytes(snapshot_bytes,
                                     popcon=corpus.popcon,
                                     repository=corpus.repository)
        assert loaded.popcon is corpus.popcon
        assert loaded.repository is corpus.repository

    def test_mmap_load_from_disk(self, corpus, tmp_path):
        path = tmp_path / "corpus.rsnap"
        written = write_snapshot(path, corpus.dataset)
        assert written == path.stat().st_size
        loaded = load_snapshot(path)
        assert dataset_to_json(loaded) == \
            dataset_to_json(corpus.dataset)

    def test_sniff_format(self, snapshot_bytes, corpus):
        assert sniff_format(snapshot_bytes) == "rsnap"
        assert sniff_format(
            dataset_to_json(corpus.dataset).encode()) == "json"

    def test_snapshot_info(self, corpus, tmp_path):
        path = tmp_path / "corpus.rsnap"
        write_snapshot(path, corpus.dataset)
        info = snapshot_info(path)
        assert info["format"] == "rsnap"
        assert info["version"] == STORE_VERSION
        assert info["n_packages"] == len(corpus.dataset.packages)
        assert info["fingerprint"] == \
            footprints_fingerprint(corpus.dataset)
        assert info["has_popcon"] and info["has_repository"]


class TestLazyMaterialization:
    def test_masks_equal_eager_per_dimension(self, corpus,
                                             snapshot_bytes):
        loaded = load_snapshot_bytes(snapshot_bytes)
        for dim in ("syscall", "ioctl", "fcntl", "prctl",
                    "pseudofile", "libc", "all"):
            assert loaded.masks(dim) == corpus.dataset.masks(dim)

    def test_footprints_equal_eager(self, corpus, snapshot_bytes):
        loaded = load_snapshot_bytes(snapshot_bytes)
        for name in corpus.dataset.packages:
            assert loaded[name] == corpus.dataset[name]

    def test_rebound_yields_complete_eager_clone(self, corpus,
                                                 snapshot_bytes):
        loaded = load_snapshot_bytes(snapshot_bytes)
        clone = loaded.rebound(corpus.popcon, corpus.repository)
        assert not isinstance(clone, SnapshotDataset)
        assert isinstance(clone, Dataset)
        assert dict(clone) == dict(corpus.dataset)
        assert clone.popcon is corpus.popcon


class TestCorruption:
    """Every damaged byte raises StoreError; never a partial dataset."""

    def test_bad_magic(self, snapshot_bytes):
        mangled = b"NOTSNAP\n" + snapshot_bytes[8:]
        with pytest.raises(StoreMagicError):
            load_snapshot_bytes(mangled)

    def test_json_payload_is_not_a_snapshot(self, corpus):
        with pytest.raises(StoreMagicError):
            load_snapshot_bytes(
                dataset_to_json(corpus.dataset).encode())

    def test_wrong_version(self, snapshot_bytes):
        bumped = bytearray(snapshot_bytes)
        bumped[8] = 0xFF  # version u32 starts right after magic
        with pytest.raises(StoreVersionError):
            load_snapshot_bytes(bytes(bumped))

    @pytest.mark.parametrize("keep", [0, 1, 7, 8, 50, 91, 92, 200])
    def test_truncation_at_any_prefix(self, snapshot_bytes, keep):
        with pytest.raises(StoreError):
            load_snapshot_bytes(snapshot_bytes[:keep])

    def test_truncated_payload(self, snapshot_bytes):
        with pytest.raises(StoreTruncatedError):
            load_snapshot_bytes(snapshot_bytes[:-1])

    def test_trailing_garbage(self, snapshot_bytes):
        with pytest.raises(StoreTruncatedError):
            load_snapshot_bytes(snapshot_bytes + b"\x00")

    def test_payload_bit_flips_raise_crc_error(self, snapshot_bytes):
        import random
        rng = random.Random(4)
        payload_start = len(snapshot_bytes) - 64
        for _ in range(32):
            position = rng.randrange(96, len(snapshot_bytes))
            flipped = bytearray(snapshot_bytes)
            flipped[position] ^= 1 << rng.randrange(8)
            with pytest.raises(StoreError):
                load_snapshot_bytes(bytes(flipped))
        assert payload_start > 96  # sanity: file has a payload

    def test_empty_file_on_disk(self, tmp_path):
        path = tmp_path / "empty.rsnap"
        path.write_bytes(b"")
        with pytest.raises(StoreTruncatedError):
            load_snapshot(path)


class TestErrorContract:
    def test_store_error_is_a_codec_error(self):
        assert issubclass(StoreError, DatasetCodecError)
        assert issubclass(StoreCRCError, StoreError)

    def test_classify_exception_maps_to_format(self):
        fault = classify_exception(
            StoreCRCError("payload CRC mismatch"))
        assert fault.error_class == "format"
        assert fault.stage == "load"

    def test_corrupt_cache_rsnap_self_deletes(self, corpus, tmp_path):
        cache = AnalysisCache(str(tmp_path))
        fingerprint = footprints_fingerprint(corpus.dataset)
        cache.put_dataset(fingerprint, corpus.dataset)
        path = cache._dataset_path(fingerprint)
        assert path.suffix == ".rsnap"
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        path.write_bytes(bytes(data))
        assert cache.get_dataset(fingerprint) is None
        assert cache.stats.invalid == 1
        assert not path.exists()

    def test_cache_roundtrip_through_rsnap(self, corpus, tmp_path):
        cache = AnalysisCache(str(tmp_path))
        fingerprint = footprints_fingerprint(corpus.dataset)
        cache.put_dataset(fingerprint, corpus.dataset)
        loaded = cache.get_dataset(fingerprint, corpus.popcon,
                                   corpus.repository)
        assert loaded is not None
        assert cache.stats.dataset_hits == 1
        assert dataset_to_json(loaded) == \
            dataset_to_json(corpus.dataset)
        assert loaded.popcon is corpus.popcon

    def test_cache_reads_legacy_json_snapshots(self, corpus,
                                               tmp_path):
        cache = AnalysisCache(str(tmp_path))
        fingerprint = footprints_fingerprint(corpus.dataset)
        legacy = cache._json_dataset_path(fingerprint)
        legacy.parent.mkdir(parents=True, exist_ok=True)
        legacy.write_text(dataset_to_json(corpus.dataset),
                          encoding="utf-8")
        loaded = cache.get_dataset(fingerprint)
        assert loaded is not None
        assert dataset_to_json(loaded) == \
            dataset_to_json(corpus.dataset)

    def test_magic_is_binary_sniffable(self):
        # PNG-style: high bit set, CR LF to catch text-mode mangling.
        assert MAGIC[0] == 0x89
        assert MAGIC.endswith(b"\r\n")
        assert sniff_format(b"{") == "json"
