"""JSON export tests."""

import json
from dataclasses import dataclass

from repro.reports.serialize import experiment_to_json, to_jsonable


@dataclass(frozen=True)
class _Point:
    x: int
    names: frozenset


class TestToJsonable:
    def test_primitives_pass_through(self):
        for value in (None, True, 3, 2.5, "s"):
            assert to_jsonable(value) == value

    def test_bytes_hex(self):
        assert to_jsonable(b"\x7fELF") == "7f454c46"

    def test_dataclass_fields(self):
        result = to_jsonable(_Point(1, frozenset({"b", "a"})))
        assert result == {"x": 1, "names": ["a", "b"]}

    def test_nested_containers(self):
        value = {"k": [(1, 2), frozenset({"z"})]}
        assert to_jsonable(value) == {"k": [[1, 2], ["z"]]}

    def test_dict_keys_stringified(self):
        assert to_jsonable({3: "x"}) == {"3": "x"}

    def test_depth_guard(self):
        nested = []
        cursor = nested
        for _ in range(40):
            inner = []
            cursor.append(inner)
            cursor = inner
        result = to_jsonable(nested)
        assert json.dumps(result)  # still serializable


class TestExperimentExport:
    def test_every_experiment_serializes(self, study):
        for output in study.all_experiments():
            text = experiment_to_json(output)
            payload = json.loads(text)
            assert payload["experiment"] == output.experiment
            assert payload["rendered"] == output.rendered


class TestFootprintCodecReexport:
    def test_round_trip(self):
        from repro.analysis.footprint import Footprint
        from repro.reports.serialize import (footprint_from_json,
                                             footprint_to_json)
        footprint = Footprint.build(
            syscalls=["read"], ioctls=["TCGETS"], unresolved_sites=1)
        text = footprint_to_json(footprint)
        assert json.loads(text)["codec_version"]
        assert footprint_from_json(text) == footprint
