"""Pseudo-file string extraction tests."""

from hypothesis import given, strategies as st

from repro.analysis.string_extract import (
    extract_pseudo_files,
    is_pseudo_file_string,
    normalize_pattern,
)


class TestRecognition:
    def test_plain_paths(self):
        assert is_pseudo_file_string("/dev/null")
        assert is_pseudo_file_string("/proc/cpuinfo")
        assert is_pseudo_file_string("/sys/devices/system/cpu")

    def test_printf_patterns(self):
        assert is_pseudo_file_string("/proc/%d/cmdline")
        assert is_pseudo_file_string("/proc/%s/status")

    def test_rejects_non_pseudo(self):
        assert not is_pseudo_file_string("/etc/passwd")
        assert not is_pseudo_file_string("/usr/bin/env")
        assert not is_pseudo_file_string("proc/cpuinfo")
        assert not is_pseudo_file_string("")

    def test_rejects_free_text_mentioning_proc(self):
        assert not is_pseudo_file_string("/proc read failed!")
        assert not is_pseudo_file_string("/dev ice busy")

    def test_rejects_free_text_with_percent(self):
        # percent placeholders are fine, prose with percents is not
        assert not is_pseudo_file_string("/proc/100% used")
        assert not is_pseudo_file_string("/dev/%q")

    def test_accepts_roots(self):
        assert is_pseudo_file_string("/proc")
        assert is_pseudo_file_string("/dev")

    def test_version_like_components(self):
        assert is_pseudo_file_string("/dev/input/event0")
        assert is_pseudo_file_string("/sys/class/net")


class TestNormalization:
    def test_placeholder_unification(self):
        assert normalize_pattern("/proc/%u/stat") == "/proc/%d/stat"
        assert normalize_pattern("/proc/%s/stat") == "/proc/%d/stat"

    def test_trailing_slash_dropped(self):
        assert normalize_pattern("/dev/pts/") == "/dev/pts"

    def test_plain_path_unchanged(self):
        assert normalize_pattern("/dev/null") == "/dev/null"

    @given(st.sampled_from(["%d", "%s", "%u", "%x"]))
    def test_all_placeholders_normalize_same(self, placeholder):
        assert (normalize_pattern(f"/proc/{placeholder}/fd")
                == "/proc/%d/fd")


class TestExtraction:
    def test_filters_and_normalizes(self):
        strings = ["hello world", "/dev/null", "/proc/%u/maps",
                   "/etc/hosts", "/sys/block/"]
        found = extract_pseudo_files(strings)
        assert found == frozenset({"/dev/null", "/proc/%d/maps",
                                   "/sys/block"})

    def test_empty_input(self):
        assert extract_pseudo_files([]) == frozenset()

    def test_deduplicates_equivalent_patterns(self):
        found = extract_pseudo_files(["/proc/%d/stat",
                                      "/proc/%u/stat"])
        assert found == frozenset({"/proc/%d/stat"})

    @given(st.lists(st.text(max_size=30), max_size=30))
    def test_never_crashes(self, strings):
        result = extract_pseudo_files(strings)
        for path in result:
            assert path.startswith(("/proc", "/dev", "/sys"))
