"""x86-64 subset assembler and disassembler.

The encoder emits real machine code for the synthetic binaries; the
decoder recovers syscall sites, immediates, and control flow for the
static analysis pipeline.
"""

from . import registers
from .encoder import Assembler
from .decoder import decode, linear_sweep
from .instructions import Instruction, InsnKind

__all__ = [
    "Assembler",
    "Instruction",
    "InsnKind",
    "decode",
    "linear_sweep",
    "registers",
]
