"""Decoded instruction model.

The analysis framework does not need a general disassembler; it needs
the handful of facts the paper's ``objdump``-based pipeline keys on
(§7): syscall instructions, immediate loads into argument registers,
control transfers (for the call graph), and RIP-relative address
formation (function pointers and string references).  The instruction
model therefore carries semantic *kinds* rather than full operand
trees.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto
from typing import Optional

from .registers import name32, name64


class InsnKind(Enum):
    """Semantic classification of a decoded instruction."""

    MOV_IMM_REG = auto()     # mov $imm, %reg        (imm, reg)
    XOR_REG_REG = auto()     # xor %r, %r  == zero   (reg) when both equal
    MOV_REG_REG = auto()     # mov %src, %dst        (reg=dst, src_reg)
    LEA_RIP = auto()         # lea disp(%rip), %reg  (reg, target)
    SYSCALL = auto()         # syscall
    SYSENTER = auto()        # sysenter
    INT80 = auto()           # int $0x80
    CALL_REL = auto()        # call rel32            (target)
    CALL_INDIRECT = auto()   # call *%reg / call *mem
    JMP_REL = auto()         # jmp rel8/rel32        (target)
    JMP_INDIRECT = auto()    # jmp *%reg
    JMP_RIP_MEM = auto()     # jmp *disp(%rip)       (target = mem slot)
    JCC_REL = auto()         # conditional jump      (target)
    PUSH = auto()
    POP = auto()
    RET = auto()
    LEAVE = auto()
    NOP = auto()
    CMP_IMM = auto()
    ADD_SUB_IMM = auto()
    ALU_REG_REG = auto()     # add/sub/and/or/xor %r, %r (distinct regs)
    TEST_REG_REG = auto()    # test %r, %r
    MOVZX = auto()           # movzx/movsx widening loads
    SHIFT_IMM = auto()       # shl/shr/sar $imm, %r
    INC_DEC = auto()         # inc/dec %r
    HLT = auto()
    OTHER = auto()           # decoded but irrelevant, or undecodable byte


@dataclass(frozen=True)
class Instruction:
    """One decoded instruction at virtual address ``address``."""

    address: int
    length: int
    kind: InsnKind
    reg: Optional[int] = None      # destination register where relevant
    src_reg: Optional[int] = None  # source register for reg-reg moves
    imm: Optional[int] = None      # immediate operand
    target: Optional[int] = None   # resolved branch/memory target vaddr
    raw: bytes = b""

    @property
    def end(self) -> int:
        return self.address + self.length

    @property
    def is_terminator(self) -> bool:
        """True when fall-through execution stops here."""
        return self.kind in (
            InsnKind.RET, InsnKind.JMP_REL, InsnKind.JMP_INDIRECT,
            InsnKind.JMP_RIP_MEM, InsnKind.HLT,
        )

    @property
    def is_call(self) -> bool:
        return self.kind in (InsnKind.CALL_REL, InsnKind.CALL_INDIRECT)

    @property
    def is_branch(self) -> bool:
        return self.kind in (
            InsnKind.JMP_REL, InsnKind.JCC_REL, InsnKind.CALL_REL,
        )

    @property
    def is_syscall_insn(self) -> bool:
        return self.kind in (
            InsnKind.SYSCALL, InsnKind.INT80, InsnKind.SYSENTER,
        )

    def mnemonic(self) -> str:
        """Human-readable rendering, used in diagnostics and tests."""
        kind = self.kind
        if kind == InsnKind.MOV_IMM_REG:
            return f"mov ${self.imm:#x}, %{name32(self.reg)}"
        if kind == InsnKind.XOR_REG_REG:
            return f"xor %{name32(self.reg)}, %{name32(self.reg)}"
        if kind == InsnKind.MOV_REG_REG:
            return f"mov %{name64(self.src_reg)}, %{name64(self.reg)}"
        if kind == InsnKind.LEA_RIP:
            return f"lea {self.target:#x}(%rip), %{name64(self.reg)}"
        if kind == InsnKind.SYSCALL:
            return "syscall"
        if kind == InsnKind.SYSENTER:
            return "sysenter"
        if kind == InsnKind.INT80:
            return "int $0x80"
        if kind == InsnKind.CALL_REL:
            return f"call {self.target:#x}"
        if kind == InsnKind.CALL_INDIRECT:
            return "call *(indirect)"
        if kind == InsnKind.JMP_REL:
            return f"jmp {self.target:#x}"
        if kind == InsnKind.JMP_RIP_MEM:
            return f"jmp *{self.target:#x}"
        if kind == InsnKind.JMP_INDIRECT:
            return "jmp *(indirect)"
        if kind == InsnKind.JCC_REL:
            return f"jcc {self.target:#x}"
        if kind == InsnKind.PUSH:
            return f"push %{name64(self.reg)}" if self.reg is not None else "push"
        if kind == InsnKind.POP:
            return f"pop %{name64(self.reg)}" if self.reg is not None else "pop"
        if kind == InsnKind.RET:
            return "ret"
        if kind == InsnKind.LEAVE:
            return "leave"
        if kind == InsnKind.NOP:
            return "nop"
        if kind == InsnKind.HLT:
            return "hlt"
        return f".byte {self.raw.hex()}"
