"""A small x86-64 assembler.

The synthetic binary generator uses this to emit genuine machine code:
function prologues, immediate loads, ``syscall`` / ``int $0x80``
instructions, PLT calls, RIP-relative string references, and control
flow.  Emitted code round-trips through :mod:`repro.x86.decoder`.

References to PLT stubs, local labels, and ``.rodata`` offsets are
recorded as :class:`repro.elf.writer.Fixup` entries and patched by the
ELF writer once the image layout is final.
"""

from __future__ import annotations

from typing import Dict, List

from ..elf.writer import Fixup


def _rex(w: int = 0, r: int = 0, x: int = 0, b: int = 0) -> int:
    return 0x40 | (w << 3) | (r << 2) | (x << 1) | b


def _modrm(mod: int, reg: int, rm: int) -> int:
    return (mod << 6) | ((reg & 7) << 3) | (rm & 7)


class Assembler:
    """Append-only code buffer with labels and symbolic fixups."""

    def __init__(self) -> None:
        self.code = bytearray()
        self.labels: Dict[str, int] = {}
        self.fixups: List[Fixup] = []
        self._pending_jumps: List[tuple] = []  # (patch_offset, label)

    # --- label management ---------------------------------------------------

    @property
    def offset(self) -> int:
        return len(self.code)

    def label(self, name: str) -> int:
        """Bind ``name`` to the current offset."""
        if name in self.labels:
            raise ValueError(f"label {name!r} already defined")
        self.labels[name] = self.offset
        return self.offset

    def _emit(self, *parts: bytes) -> None:
        for part in parts:
            self.code += part

    def _imm32(self, value: int) -> bytes:
        return (value & 0xFFFFFFFF).to_bytes(4, "little")

    # --- data movement ----------------------------------------------------

    def mov_imm32(self, reg: int, imm: int) -> None:
        """``mov $imm32, %r32`` — the canonical syscall-number load."""
        if reg >= 8:
            self._emit(bytes([_rex(b=1)]))
        self._emit(bytes([0xB8 + (reg & 7)]), self._imm32(imm))

    def mov_imm64(self, reg: int, imm: int) -> None:
        """``movabs $imm64, %r64``."""
        self._emit(bytes([_rex(w=1, b=reg >> 3), 0xB8 + (reg & 7)]))
        self._emit((imm & (2 ** 64 - 1)).to_bytes(8, "little"))

    def xor_reg(self, reg: int) -> None:
        """``xor %r32, %r32`` — idiomatic zeroing (immediate 0)."""
        if reg >= 8:
            self._emit(bytes([_rex(r=1, b=1)]))
        self._emit(bytes([0x31, _modrm(3, reg, reg)]))

    def mov_reg_reg64(self, dst: int, src: int) -> None:
        """``mov %src, %dst`` (64-bit)."""
        self._emit(bytes([
            _rex(w=1, r=src >> 3, b=dst >> 3),
            0x89,
            _modrm(3, src, dst),
        ]))

    def lea_rip_rodata(self, reg: int, rodata_offset: int) -> None:
        """``lea disp(%rip), %r64`` referencing a ``.rodata`` blob."""
        self._lea_rip(reg, ("rodata", rodata_offset))

    def lea_rip_local(self, reg: int, label: str) -> None:
        """``lea disp(%rip), %r64`` forming a local function pointer."""
        self._lea_rip(reg, ("local", label))

    def _lea_rip(self, reg: int, target: tuple) -> None:
        self._emit(bytes([_rex(w=1, r=reg >> 3), 0x8D,
                          _modrm(0, reg, 5)]))
        self.fixups.append(Fixup(self.offset, "rip32", target))
        self._emit(b"\x00\x00\x00\x00")

    # --- system call instructions -----------------------------------------

    def syscall(self) -> None:
        self._emit(b"\x0f\x05")

    def int80(self) -> None:
        self._emit(b"\xcd\x80")

    def sysenter(self) -> None:
        self._emit(b"\x0f\x34")

    # --- control flow -----------------------------------------------

    def call_import(self, name: str) -> None:
        """``call`` through the PLT stub of imported symbol ``name``."""
        self._emit(b"\xe8")
        self.fixups.append(Fixup(self.offset, "rel32", ("import", name)))
        self._emit(b"\x00\x00\x00\x00")

    def call_local(self, label: str) -> None:
        """``call`` a function defined in this binary."""
        self._emit(b"\xe8")
        self.fixups.append(Fixup(self.offset, "rel32", ("local", label)))
        self._emit(b"\x00\x00\x00\x00")

    def call_reg(self, reg: int) -> None:
        """``call *%r64`` — indirect call through a register."""
        if reg >= 8:
            self._emit(bytes([_rex(b=1)]))
        self._emit(bytes([0xFF, _modrm(3, 2, reg)]))

    def jmp_local(self, label: str) -> None:
        self._emit(b"\xe9")
        self.fixups.append(Fixup(self.offset, "rel32", ("local", label)))
        self._emit(b"\x00\x00\x00\x00")

    def jz_local(self, label: str) -> None:
        self._emit(b"\x0f\x84")
        self.fixups.append(Fixup(self.offset, "rel32", ("local", label)))
        self._emit(b"\x00\x00\x00\x00")

    def jnz_local(self, label: str) -> None:
        self._emit(b"\x0f\x85")
        self.fixups.append(Fixup(self.offset, "rel32", ("local", label)))
        self._emit(b"\x00\x00\x00\x00")

    # --- stack frame / misc ---------------------------------------------

    def push_rbp(self) -> None:
        self._emit(b"\x55")

    def pop_rbp(self) -> None:
        self._emit(b"\x5d")

    def mov_rbp_rsp(self) -> None:
        self.mov_reg_reg64(5, 4)  # mov %rsp, %rbp

    def sub_rsp_imm8(self, amount: int) -> None:
        self._emit(bytes([0x48, 0x83, 0xEC, amount & 0x7F]))

    def add_rsp_imm8(self, amount: int) -> None:
        self._emit(bytes([0x48, 0x83, 0xC4, amount & 0x7F]))

    def cmp_eax_imm32(self, imm: int) -> None:
        self._emit(b"\x3d", self._imm32(imm))

    # --- computation filler (realism; no analysis-visible effects) ---

    _ALU_OPCODES = {"add": 0x01, "or": 0x09, "and": 0x21,
                    "sub": 0x29, "xor": 0x31}

    def alu_reg_reg(self, op: str, dst: int, src: int) -> None:
        """``add/or/and/sub/xor %src32, %dst32``."""
        opcode = self._ALU_OPCODES[op]
        if dst >= 8 or src >= 8:
            self._emit(bytes([_rex(r=src >> 3, b=dst >> 3)]))
        self._emit(bytes([opcode, _modrm(3, src, dst)]))

    def test_reg_reg(self, dst: int, src: int) -> None:
        """``test %src32, %dst32``."""
        if dst >= 8 or src >= 8:
            self._emit(bytes([_rex(r=src >> 3, b=dst >> 3)]))
        self._emit(bytes([0x85, _modrm(3, src, dst)]))

    def movzx_reg8(self, dst: int, src: int) -> None:
        """``movzx %src8, %dst32``."""
        if dst >= 8 or src >= 8:
            self._emit(bytes([_rex(r=dst >> 3, b=src >> 3)]))
        self._emit(bytes([0x0F, 0xB6, _modrm(3, dst, src)]))

    def shl_imm8(self, reg: int, amount: int) -> None:
        """``shl $amount, %r32``."""
        if reg >= 8:
            self._emit(bytes([_rex(b=1)]))
        self._emit(bytes([0xC1, _modrm(3, 4, reg), amount & 0x1F]))

    def inc_reg(self, reg: int) -> None:
        """``inc %r32``."""
        if reg >= 8:
            self._emit(bytes([_rex(b=1)]))
        self._emit(bytes([0xFF, _modrm(3, 0, reg)]))

    def ret(self) -> None:
        self._emit(b"\xc3")

    def leave(self) -> None:
        self._emit(b"\xc9")

    def nop(self, count: int = 1) -> None:
        self._emit(b"\x90" * count)

    def hlt(self) -> None:
        self._emit(b"\xf4")

    # --- canned sequences ---------------------------------------------

    def prologue(self) -> None:
        self.push_rbp()
        self.mov_rbp_rsp()

    def epilogue(self) -> None:
        self.pop_rbp()
        self.ret()

    def align(self, boundary: int = 16) -> None:
        while self.offset % boundary:
            self.nop()
