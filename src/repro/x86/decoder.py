"""x86-64 instruction decoder (analysis subset).

Implements enough of the x86-64 encoding scheme to recover, from raw
``.text`` bytes, everything the API-footprint analysis needs: system
call instructions, immediate loads into registers, relative and
indirect control transfers, and RIP-relative address formation.
Anything outside the subset decodes to :data:`InsnKind.OTHER` with a
conservative one-byte length, which keeps a linear sweep moving; the
recursive-descent disassembler (see :mod:`repro.analysis.disassembler`)
only follows well-formed paths, so stray ``OTHER`` bytes in padding are
harmless.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

from .instructions import Instruction, InsnKind

_PREFIXES = frozenset([0x66, 0x67, 0xF0, 0xF2, 0xF3,
                       0x2E, 0x36, 0x3E, 0x26, 0x64, 0x65])


def _read_modrm(code: bytes, pos: int, rex_r: int, rex_b: int,
                ) -> Optional[Tuple[int, int, int, int, Optional[int]]]:
    """Decode a ModRM byte (plus SIB/displacement).

    Returns ``(mod, reg, rm, consumed, rip_disp)`` where ``consumed``
    counts the ModRM byte and any SIB/displacement bytes, and
    ``rip_disp`` is the 32-bit displacement when the operand is
    RIP-relative.  Returns ``None`` when the buffer is exhausted.
    """
    if pos >= len(code):
        return None
    modrm = code[pos]
    mod = modrm >> 6
    reg = ((modrm >> 3) & 7) | (rex_r << 3)
    rm_low = modrm & 7
    rm = rm_low | (rex_b << 3)
    consumed = 1
    rip_disp: Optional[int] = None
    if mod != 3:
        if rm_low == 4:  # SIB byte follows
            consumed += 1
        if mod == 0 and rm_low == 5:  # RIP-relative disp32
            if pos + consumed + 4 > len(code):
                return None
            rip_disp = int.from_bytes(
                code[pos + consumed:pos + consumed + 4], "little",
                signed=True)
            consumed += 4
        elif mod == 1:
            consumed += 1
        elif mod == 2:
            consumed += 4
    return mod, reg, rm, consumed, rip_disp


def decode(code: bytes, pos: int, vaddr: int) -> Instruction:
    """Decode one instruction starting at ``code[pos]``.

    ``vaddr`` is the virtual address of ``code[pos]``; branch targets
    are returned as absolute virtual addresses.
    """
    start = pos
    rex = 0
    # Legacy prefixes then at most one REX prefix.
    while pos < len(code) and code[pos] in _PREFIXES:
        pos += 1
    if pos < len(code) and 0x40 <= code[pos] <= 0x4F:
        rex = code[pos]
        pos += 1
    if pos >= len(code):
        return Instruction(vaddr, 1, InsnKind.OTHER, raw=code[start:start + 1])

    rex_w = (rex >> 3) & 1
    rex_r = (rex >> 2) & 1
    rex_b = rex & 1
    opcode = code[pos]
    pos += 1

    def done(kind: InsnKind, **kw) -> Instruction:
        length = pos - start
        return Instruction(vaddr, length, kind,
                           raw=bytes(code[start:start + length]), **kw)

    def fail() -> Instruction:
        return Instruction(vaddr, 1, InsnKind.OTHER,
                           raw=bytes(code[start:start + 1]))

    # --- two-byte opcodes (0F xx) ---
    if opcode == 0x0F:
        if pos >= len(code):
            return fail()
        second = code[pos]
        pos += 1
        if second == 0x05:
            return done(InsnKind.SYSCALL)
        if second == 0x34:
            return done(InsnKind.SYSENTER)
        if 0x80 <= second <= 0x8F:  # jcc rel32
            if pos + 4 > len(code):
                return fail()
            disp = int.from_bytes(code[pos:pos + 4], "little", signed=True)
            pos += 4
            return done(InsnKind.JCC_REL,
                        target=vaddr + (pos - start) + disp)
        if second in (0xB6, 0xB7, 0xBE, 0xBF):  # movzx / movsx
            decoded = _read_modrm(code, pos, rex_r, rex_b)
            if decoded is None:
                return fail()
            mod, reg_field, rm, consumed, _ = decoded
            pos += consumed
            if mod == 3:
                return done(InsnKind.MOVZX, reg=reg_field, src_reg=rm)
            return done(InsnKind.OTHER)
        if second == 0x1F:  # multi-byte NOP
            decoded = _read_modrm(code, pos, rex_r, rex_b)
            if decoded is None:
                return fail()
            pos += decoded[3]
            return done(InsnKind.NOP)
        return fail()

    # --- one-byte opcodes ---
    if 0x50 <= opcode <= 0x57:
        return done(InsnKind.PUSH, reg=(opcode - 0x50) | (rex_b << 3))
    if 0x58 <= opcode <= 0x5F:
        return done(InsnKind.POP, reg=(opcode - 0x58) | (rex_b << 3))
    if 0xB8 <= opcode <= 0xBF:
        reg = (opcode - 0xB8) | (rex_b << 3)
        width = 8 if rex_w else 4
        if pos + width > len(code):
            return fail()
        imm = int.from_bytes(code[pos:pos + width], "little")
        pos += width
        return done(InsnKind.MOV_IMM_REG, reg=reg, imm=imm)
    if opcode == 0xC7:  # mov imm32 -> r/m
        decoded = _read_modrm(code, pos, rex_r, rex_b)
        if decoded is None:
            return fail()
        mod, reg_field, rm, consumed, _ = decoded
        if reg_field & 7:  # only /0 is mov
            return fail()
        pos += consumed
        if pos + 4 > len(code):
            return fail()
        imm = int.from_bytes(code[pos:pos + 4], "little")
        pos += 4
        if mod == 3:
            return done(InsnKind.MOV_IMM_REG, reg=rm, imm=imm)
        return done(InsnKind.OTHER)
    if opcode == 0x31:  # xor r/m, r
        decoded = _read_modrm(code, pos, rex_r, rex_b)
        if decoded is None:
            return fail()
        mod, reg_field, rm, consumed, _ = decoded
        pos += consumed
        if mod == 3 and reg_field == rm:
            return done(InsnKind.XOR_REG_REG, reg=rm)
        if mod == 3:
            return done(InsnKind.ALU_REG_REG, reg=rm,
                        src_reg=reg_field)
        return done(InsnKind.OTHER)
    if opcode in (0x01, 0x29, 0x21, 0x09):  # add/sub/and/or r/m, r
        decoded = _read_modrm(code, pos, rex_r, rex_b)
        if decoded is None:
            return fail()
        mod, reg_field, rm, consumed, _ = decoded
        pos += consumed
        if mod == 3:
            return done(InsnKind.ALU_REG_REG, reg=rm,
                        src_reg=reg_field)
        return done(InsnKind.OTHER)
    if opcode == 0x85:  # test r/m, r
        decoded = _read_modrm(code, pos, rex_r, rex_b)
        if decoded is None:
            return fail()
        mod, reg_field, rm, consumed, _ = decoded
        pos += consumed
        if mod == 3:
            return done(InsnKind.TEST_REG_REG, reg=rm,
                        src_reg=reg_field)
        return done(InsnKind.OTHER)
    if opcode == 0xC1:  # shift group: shl/shr/sar r/m, imm8
        decoded = _read_modrm(code, pos, rex_r, rex_b)
        if decoded is None:
            return fail()
        mod, reg_field, rm, consumed, _ = decoded
        pos += consumed
        if pos + 1 > len(code):
            return fail()
        imm = code[pos]
        pos += 1
        if mod == 3 and (reg_field & 7) in (4, 5, 7):
            return done(InsnKind.SHIFT_IMM, reg=rm, imm=imm)
        return done(InsnKind.OTHER)
    if opcode in (0x89, 0x8B):  # mov between registers/memory
        decoded = _read_modrm(code, pos, rex_r, rex_b)
        if decoded is None:
            return fail()
        mod, reg_field, rm, consumed, _ = decoded
        pos += consumed
        if mod == 3:
            if opcode == 0x89:
                return done(InsnKind.MOV_REG_REG, reg=rm, src_reg=reg_field)
            return done(InsnKind.MOV_REG_REG, reg=reg_field, src_reg=rm)
        return done(InsnKind.OTHER)
    if opcode == 0x8D:  # lea
        decoded = _read_modrm(code, pos, rex_r, rex_b)
        if decoded is None:
            return fail()
        mod, reg_field, rm, consumed, rip_disp = decoded
        pos += consumed
        if rip_disp is not None:
            return done(InsnKind.LEA_RIP, reg=reg_field,
                        target=vaddr + (pos - start) + rip_disp)
        return done(InsnKind.OTHER)
    if opcode == 0xE8:  # call rel32
        if pos + 4 > len(code):
            return fail()
        disp = int.from_bytes(code[pos:pos + 4], "little", signed=True)
        pos += 4
        return done(InsnKind.CALL_REL, target=vaddr + (pos - start) + disp)
    if opcode == 0xE9:  # jmp rel32
        if pos + 4 > len(code):
            return fail()
        disp = int.from_bytes(code[pos:pos + 4], "little", signed=True)
        pos += 4
        return done(InsnKind.JMP_REL, target=vaddr + (pos - start) + disp)
    if opcode == 0xEB:  # jmp rel8
        if pos + 1 > len(code):
            return fail()
        disp = int.from_bytes(code[pos:pos + 1], "little", signed=True)
        pos += 1
        return done(InsnKind.JMP_REL, target=vaddr + (pos - start) + disp)
    if 0x70 <= opcode <= 0x7F:  # jcc rel8
        if pos + 1 > len(code):
            return fail()
        disp = int.from_bytes(code[pos:pos + 1], "little", signed=True)
        pos += 1
        return done(InsnKind.JCC_REL, target=vaddr + (pos - start) + disp)
    if opcode == 0xFE:  # inc/dec r/m8
        decoded = _read_modrm(code, pos, rex_r, rex_b)
        if decoded is None:
            return fail()
        mod, reg_field, rm, consumed, _ = decoded
        pos += consumed
        if mod == 3 and (reg_field & 7) in (0, 1):
            return done(InsnKind.INC_DEC, reg=rm)
        return done(InsnKind.OTHER)
    if opcode == 0xFF:  # group 5: inc/dec/call/jmp/push on r/m
        decoded = _read_modrm(code, pos, rex_r, rex_b)
        if decoded is None:
            return fail()
        mod, reg_field, rm, consumed, rip_disp = decoded
        pos += consumed
        op = reg_field & 7
        if op in (0, 1) and mod == 3:  # inc/dec r/m64
            return done(InsnKind.INC_DEC, reg=rm)
        if op == 2:  # call
            return done(InsnKind.CALL_INDIRECT)
        if op == 4:  # jmp
            if rip_disp is not None:
                return done(InsnKind.JMP_RIP_MEM,
                            target=vaddr + (pos - start) + rip_disp)
            return done(InsnKind.JMP_INDIRECT)
        if op == 6:
            return done(InsnKind.PUSH)
        return done(InsnKind.OTHER)
    if opcode == 0xCD:  # int imm8
        if pos + 1 > len(code):
            return fail()
        vector = code[pos]
        pos += 1
        if vector == 0x80:
            return done(InsnKind.INT80)
        return done(InsnKind.OTHER)
    if opcode == 0xC3:
        return done(InsnKind.RET)
    if opcode == 0xC2:
        pos += 2
        return done(InsnKind.RET)
    if opcode == 0xC9:
        return done(InsnKind.LEAVE)
    if opcode == 0x90:
        return done(InsnKind.NOP)
    if opcode == 0xF4:
        return done(InsnKind.HLT)
    if opcode == 0x3D:  # cmp eax, imm32
        if pos + 4 > len(code):
            return fail()
        imm = int.from_bytes(code[pos:pos + 4], "little")
        pos += 4
        return done(InsnKind.CMP_IMM, imm=imm)
    if opcode in (0x81, 0x83):  # group 1 immediates
        decoded = _read_modrm(code, pos, rex_r, rex_b)
        if decoded is None:
            return fail()
        mod, reg_field, rm, consumed, _ = decoded
        pos += consumed
        width = 1 if opcode == 0x83 else 4
        if pos + width > len(code):
            return fail()
        imm = int.from_bytes(code[pos:pos + width], "little")
        pos += width
        op = reg_field & 7
        if mod == 3 and op == 7:
            return done(InsnKind.CMP_IMM, reg=rm, imm=imm)
        return done(InsnKind.ADD_SUB_IMM, reg=rm if mod == 3 else None,
                    imm=imm)
    return fail()


def linear_sweep(code: bytes, base_vaddr: int) -> Iterator[Instruction]:
    """Decode ``code`` sequentially from its start.

    This matches the paper's ``objdump``-style disassembly pass and is
    accurate for generated (non-obfuscated) binaries, which is also the
    stated assumption of the original study (§2.3).
    """
    pos = 0
    while pos < len(code):
        insn = decode(code, pos, base_vaddr + pos)
        yield insn
        pos += insn.length
