"""x86-64 register numbering (System V AMD64 ABI ordering)."""

RAX = 0
RCX = 1
RDX = 2
RBX = 3
RSP = 4
RBP = 5
RSI = 6
RDI = 7
R8 = 8
R9 = 9
R10 = 10
R11 = 11
R12 = 12
R13 = 13
R14 = 14
R15 = 15

REGISTER_NAMES_64 = [
    "rax", "rcx", "rdx", "rbx", "rsp", "rbp", "rsi", "rdi",
    "r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15",
]

REGISTER_NAMES_32 = [
    "eax", "ecx", "edx", "ebx", "esp", "ebp", "esi", "edi",
    "r8d", "r9d", "r10d", "r11d", "r12d", "r13d", "r14d", "r15d",
]

# Integer argument registers in System V AMD64 call order.  The kernel
# syscall convention differs only in the fourth slot (r10 vs rcx).
CALL_ARG_REGISTERS = [RDI, RSI, RDX, RCX, R8, R9]
SYSCALL_ARG_REGISTERS = [RDI, RSI, RDX, R10, R8, R9]


def name64(reg: int) -> str:
    return REGISTER_NAMES_64[reg]


def name32(reg: int) -> str:
    return REGISTER_NAMES_32[reg]
