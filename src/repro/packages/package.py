"""Package and binary models (§2).

A *package* is the APT installation granularity: it bundles standalone
executables, shared libraries, scripts, and configuration.  A
*binary artifact* is one file in a package — an ELF image or an
interpreted script.  The paper's per-package API footprint is the union
of the footprints of the package's standalone executables (§2, "API
footprint").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, List, Optional, Tuple


def split_alternatives(dep: str) -> Tuple[str, ...]:
    """Parse one ``Depends:`` entry into its alternatives.

    APT separates alternative dependencies with ``|`` — any one of the
    alternatives satisfies the entry (``mawk | gawk``).  A plain entry
    parses to a single-alternative group, so pre-alternative dependency
    lists round-trip unchanged.
    """
    return tuple(alt for alt in
                 (part.strip() for part in dep.split("|")) if alt)


def dependency_groups(depends: Iterable[str],
                      ) -> Tuple[Tuple[str, ...], ...]:
    """Parse a ``Depends:`` list into AND-of-OR groups.

    Every group must be satisfied; a group is satisfied by any one of
    its alternatives.  Empty entries parse to no group at all.
    """
    groups = []
    for dep in depends:
        alternatives = split_alternatives(dep)
        if alternatives:
            groups.append(alternatives)
    return tuple(groups)


class BinaryKind(Enum):
    """How a file in a package executes."""

    ELF_EXECUTABLE = "elf-executable"      # dynamically linked ET_EXEC/ET_DYN
    ELF_STATIC = "elf-static"              # statically linked ET_EXEC
    SHARED_LIBRARY = "shared-library"      # ET_DYN with SONAME
    SCRIPT = "script"                      # shebang-interpreted


@dataclass
class BinaryArtifact:
    """One file shipped by a package."""

    name: str                     # file name, e.g. "bin/qemu-mips"
    kind: BinaryKind
    data: bytes = b""             # raw file contents (ELF image or script)
    interpreter: Optional[str] = None   # for scripts: "python", "dash", ...

    @property
    def is_elf(self) -> bool:
        return self.kind in (BinaryKind.ELF_EXECUTABLE,
                             BinaryKind.ELF_STATIC,
                             BinaryKind.SHARED_LIBRARY)

    @property
    def is_executable(self) -> bool:
        """Standalone executables contribute to the package footprint."""
        return self.kind in (BinaryKind.ELF_EXECUTABLE,
                             BinaryKind.ELF_STATIC, BinaryKind.SCRIPT)


@dataclass
class Package:
    """One APT package: artifacts plus dependency edges.

    ``depends`` entries may use APT's alternative syntax (``a | b``);
    :meth:`dependency_groups` exposes the parsed AND-of-OR view.
    ``provides`` lists the virtual package names this package
    satisfies (APT ``Provides:``) — a dependency on a virtual name is
    met by any provider.
    """

    name: str
    category: str = "misc"
    artifacts: List[BinaryArtifact] = field(default_factory=list)
    depends: List[str] = field(default_factory=list)
    description: str = ""
    provides: List[str] = field(default_factory=list)

    def dependency_groups(self) -> Tuple[Tuple[str, ...], ...]:
        """The parsed AND-of-OR dependency groups."""
        return dependency_groups(self.depends)

    def executables(self) -> List[BinaryArtifact]:
        return [a for a in self.artifacts if a.is_executable]

    def libraries(self) -> List[BinaryArtifact]:
        return [a for a in self.artifacts
                if a.kind == BinaryKind.SHARED_LIBRARY]

    def elf_artifacts(self) -> List[BinaryArtifact]:
        return [a for a in self.artifacts if a.is_elf]

    def artifact(self, name: str) -> Optional[BinaryArtifact]:
        for candidate in self.artifacts:
            if candidate.name == name:
                return candidate
        return None

    def add(self, artifact: BinaryArtifact) -> None:
        self.artifacts.append(artifact)


@dataclass(frozen=True)
class GroundTruthFootprint:
    """Generator-side record of the APIs a binary was built to use.

    Used only by tests to validate that the analysis pipeline recovers
    what the generator planted — never consumed by the metrics.
    """

    syscalls: Tuple[str, ...] = ()
    ioctls: Tuple[str, ...] = ()
    fcntls: Tuple[str, ...] = ()
    prctls: Tuple[str, ...] = ()
    pseudo_files: Tuple[str, ...] = ()
    libc_symbols: Tuple[str, ...] = ()

    def merged(self, other: "GroundTruthFootprint") -> "GroundTruthFootprint":
        def union(a: Tuple[str, ...], b: Tuple[str, ...]) -> Tuple[str, ...]:
            return tuple(sorted(set(a) | set(b)))
        return GroundTruthFootprint(
            syscalls=union(self.syscalls, other.syscalls),
            ioctls=union(self.ioctls, other.ioctls),
            fcntls=union(self.fcntls, other.fcntls),
            prctls=union(self.prctls, other.prctls),
            pseudo_files=union(self.pseudo_files, other.pseudo_files),
            libc_symbols=union(self.libc_symbols, other.libc_symbols),
        )
