"""APT-style package repository with dependency resolution.

Models the part of APT's behaviour the study relies on: the package
namespace, ``Depends:`` edges, and transitive dependency closure
(weighted completeness marks a package unsupported when any of its
dependencies is unsupported, §2.2 step 3).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set

from .package import Package


class UnknownPackageError(KeyError):
    """Raised when a dependency or lookup names a missing package."""


class Repository:
    """A collection of packages indexed by name."""

    def __init__(self, packages: Iterable[Package] = ()) -> None:
        self._packages: Dict[str, Package] = {}
        for package in packages:
            self.add(package)

    def add(self, package: Package) -> None:
        if package.name in self._packages:
            raise ValueError(f"duplicate package {package.name!r}")
        self._packages[package.name] = package

    def __contains__(self, name: str) -> bool:
        return name in self._packages

    def __len__(self) -> int:
        return len(self._packages)

    def __iter__(self) -> Iterator[Package]:
        return iter(self._packages.values())

    def get(self, name: str) -> Package:
        try:
            return self._packages[name]
        except KeyError:
            raise UnknownPackageError(name) from None

    def names(self) -> List[str]:
        return list(self._packages)

    # --- dependency handling ------------------------------------------------

    def dependency_closure(self, name: str) -> FrozenSet[str]:
        """All packages reachable from ``name`` via Depends, inclusive.

        Cycle-safe (APT permits dependency cycles; they are common
        between e.g. libc and libgcc).  Unknown dependencies are
        ignored, matching APT's behaviour for virtual packages.
        """
        closure: Set[str] = set()
        stack = [name]
        while stack:
            current = stack.pop()
            if current in closure or current not in self._packages:
                continue
            closure.add(current)
            stack.extend(self._packages[current].depends)
        return frozenset(closure)

    def reverse_dependencies(self, name: str) -> FrozenSet[str]:
        """Packages that directly depend on ``name``."""
        return frozenset(
            pkg.name for pkg in self if name in pkg.depends)

    def validate_dependencies(self) -> List[str]:
        """Return dangling dependency names (useful in tests)."""
        dangling = []
        for package in self:
            for dep in package.depends:
                if dep not in self._packages:
                    dangling.append(f"{package.name} -> {dep}")
        return dangling

    def topological_order(self) -> List[Package]:
        """Dependencies-first order; cycles broken arbitrarily."""
        order: List[Package] = []
        visited: Dict[str, int] = {}  # 0 = visiting, 1 = done

        def visit(name: str) -> None:
            state = visited.get(name)
            if state is not None:
                return
            visited[name] = 0
            package = self._packages.get(name)
            if package is not None:
                for dep in package.depends:
                    if visited.get(dep) != 0:
                        visit(dep)
                order.append(package)
            visited[name] = 1

        for name in self._packages:
            visit(name)
        return order
