"""APT-style package repository with dependency resolution.

Models the part of APT's behaviour the study relies on: the package
namespace, ``Depends:`` edges with ``a | b`` alternatives, ``Provides:``
virtual packages, and transitive dependency closure (weighted
completeness marks a package unsupported when any of its dependency
groups is unsatisfiable, §2.2 step 3).

Dependency semantics are AND-of-OR: every ``Depends:`` entry is a group
of alternatives and any one alternative satisfies the group.  An
alternative names either a real package or a virtual package; a virtual
is satisfied by any of its providers.  Flat dependency lists (no ``|``,
no ``Provides:``) degenerate to the plain AND-graph the paper assumes,
with behaviour identical to the pre-refactor model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (Dict, FrozenSet, Iterable, Iterator, List, Optional,
                    Set, Tuple)

from .package import Package, dependency_groups


class UnknownPackageError(KeyError):
    """Raised when a dependency or lookup names a missing package."""


@dataclass(frozen=True)
class DependencyReport:
    """Split dependency-validation report.

    ``dangling`` lists ``"pkg -> dep"`` entries whose target is neither
    a real package nor provided by one; ``virtual_satisfied`` lists
    entries whose target is absent as a real package but satisfied by
    at least one provider.
    """

    dangling: List[str]
    virtual_satisfied: List[str]

    def __bool__(self) -> bool:
        return bool(self.dangling or self.virtual_satisfied)


class Repository:
    """A collection of packages indexed by name.

    Provider/reverse-dependency/group indexes are built lazily on first
    use and invalidated by :meth:`add` — lookups between mutations are
    O(1) instead of a full repository scan per call.
    """

    def __init__(self, packages: Iterable[Package] = ()) -> None:
        self._packages: Dict[str, Package] = {}
        self._groups: Optional[Dict[str, Tuple[Tuple[str, ...], ...]]] = None
        self._providers: Optional[Dict[str, List[str]]] = None
        self._reverse: Optional[Dict[str, List[str]]] = None
        for package in packages:
            self.add(package)

    def add(self, package: Package) -> None:
        if package.name in self._packages:
            raise ValueError(f"duplicate package {package.name!r}")
        self._packages[package.name] = package
        self._groups = None
        self._providers = None
        self._reverse = None

    def __contains__(self, name: str) -> bool:
        return name in self._packages

    def __len__(self) -> int:
        return len(self._packages)

    def __iter__(self) -> Iterator[Package]:
        return iter(self._packages.values())

    def get(self, name: str) -> Package:
        try:
            return self._packages[name]
        except KeyError:
            raise UnknownPackageError(name) from None

    def names(self) -> List[str]:
        return list(self._packages)

    # --- cached dependency indexes ------------------------------------------

    def _ensure_indexes(self) -> None:
        if self._groups is not None:
            return
        groups: Dict[str, Tuple[Tuple[str, ...], ...]] = {}
        providers: Dict[str, List[str]] = {}
        for package in self._packages.values():
            groups[package.name] = dependency_groups(package.depends)
            for virtual in package.provides:
                providers.setdefault(virtual, []).append(package.name)
        reverse: Dict[str, List[str]] = {}
        for package in self._packages.values():
            seen: Set[str] = set()
            for group in groups[package.name]:
                for alternative in group:
                    targets = [alternative]
                    targets.extend(providers.get(alternative, ()))
                    for target in targets:
                        if target in seen:
                            continue
                        seen.add(target)
                        reverse.setdefault(target, []).append(package.name)
        self._groups = groups
        self._providers = providers
        self._reverse = reverse

    def dependency_groups_of(self, name: str) -> Tuple[Tuple[str, ...], ...]:
        """Parsed AND-of-OR groups of ``name`` (empty if unknown)."""
        self._ensure_indexes()
        return self._groups.get(name, ())

    def providers_of(self, name: str) -> Tuple[str, ...]:
        """Packages declaring ``Provides: name``, in insertion order."""
        self._ensure_indexes()
        return tuple(self._providers.get(name, ()))

    def is_virtual(self, name: str) -> bool:
        """True for names that exist only through providers."""
        self._ensure_indexes()
        return name not in self._packages and name in self._providers

    def satisfiers(self, name: str) -> Tuple[str, ...]:
        """Real packages that can stand in for dependency target ``name``.

        The real package of that name (if any) first, then providers in
        insertion order.  Empty for an unknown, unprovided name — which
        the closure ignores, matching APT's tolerance of dangling
        virtual references.
        """
        self._ensure_indexes()
        satisfiers: List[str] = []
        if name in self._packages:
            satisfiers.append(name)
        for provider in self._providers.get(name, ()):
            if provider not in satisfiers:
                satisfiers.append(provider)
        return tuple(satisfiers)

    def virtual_names(self) -> Tuple[str, ...]:
        """All provided names that are not also real packages."""
        self._ensure_indexes()
        return tuple(name for name in self._providers
                     if name not in self._packages)

    def n_provider_edges(self) -> int:
        """Total ``Provides:`` declarations across the repository."""
        self._ensure_indexes()
        return sum(len(names) for names in self._providers.values())

    def n_alternative_groups(self) -> int:
        """Dependency groups with more than one alternative."""
        self._ensure_indexes()
        return sum(1 for groups in self._groups.values()
                   for group in groups if len(group) > 1)

    # --- dependency handling ------------------------------------------------

    def dependency_closure(self, name: str) -> FrozenSet[str]:
        """All packages reachable from ``name`` via Depends, inclusive.

        Reachability follows every alternative of every group and every
        provider of a virtual alternative.  Cycle-safe (APT permits
        dependency cycles; they are common between e.g. libc and
        libgcc).  Unknown, unprovided dependencies are ignored,
        matching APT's behaviour for optional virtual packages.
        """
        closure: Set[str] = set()
        stack = [name]
        while stack:
            current = stack.pop()
            if current in closure or current not in self._packages:
                continue
            closure.add(current)
            for group in self.dependency_groups_of(current):
                for alternative in group:
                    stack.extend(self.satisfiers(alternative))
        return frozenset(closure)

    def reverse_dependencies(self, name: str) -> FrozenSet[str]:
        """Packages that depend on ``name`` directly or via a virtual.

        A package counts when some alternative names ``name`` itself,
        or names a virtual package that ``name`` provides.  Backed by
        the cached reverse-adjacency index.
        """
        self._ensure_indexes()
        dependents = set(self._reverse.get(name, ()))
        package = self._packages.get(name)
        if package is not None:
            for provided in package.provides:
                dependents.update(self._reverse.get(provided, ()))
        return frozenset(dependents)

    def validate_dependencies(self) -> List[str]:
        """Return genuinely dangling dependency targets.

        An alternative that is no real package but has a provider is
        *not* dangling — see :meth:`validate_dependencies_report` for
        the split view.  On repositories without ``Provides:`` this is
        exactly the pre-refactor report.
        """
        return self.validate_dependencies_report().dangling

    def validate_dependencies_report(self) -> DependencyReport:
        """Classify non-package dependency targets.

        ``dangling`` — no real package, no provider (a true ghost);
        ``virtual_satisfied`` — no real package but at least one
        provider declares it.
        """
        self._ensure_indexes()
        dangling: List[str] = []
        virtual_satisfied: List[str] = []
        for package in self:
            for group in self._groups[package.name]:
                for alternative in group:
                    if alternative in self._packages:
                        continue
                    entry = f"{package.name} -> {alternative}"
                    if self._providers.get(alternative):
                        virtual_satisfied.append(entry)
                    else:
                        dangling.append(entry)
        return DependencyReport(dangling=dangling,
                                virtual_satisfied=virtual_satisfied)

    def and_only_view(self) -> "Repository":
        """Degraded copy modelling AND-only resolvers.

        Collapses every group to its *first* alternative and drops all
        ``Provides:`` — the way pre-alternatives tooling (debootstrap,
        and this codebase before the AND-OR refactor) mishandles rich
        dependency metadata.  The ablation experiment measures the
        completeness error this degradation introduces.  On a corpus
        without alternatives or virtuals the view is semantically
        identical to the source repository.
        """
        collapsed = []
        for package in self:
            groups = dependency_groups(package.depends)
            collapsed.append(Package(
                name=package.name,
                category=package.category,
                artifacts=package.artifacts,
                depends=[group[0] for group in groups],
                description=package.description))
        return Repository(collapsed)

    def topological_order(self) -> List[Package]:
        """Dependencies-first order; cycles broken arbitrarily."""
        order: List[Package] = []
        visited: Dict[str, int] = {}  # 0 = visiting, 1 = done

        def visit(name: str) -> None:
            state = visited.get(name)
            if state is not None:
                return
            visited[name] = 0
            package = self._packages.get(name)
            if package is not None:
                for group in self.dependency_groups_of(name):
                    for alternative in group:
                        for dep in self.satisfiers(alternative):
                            if visited.get(dep) != 0:
                                visit(dep)
                order.append(package)
            visited[name] = 1

        for name in self._packages:
            visit(name)
        return order
