"""Popularity-contest survey model (§2).

The Debian/Ubuntu "popularity contest" reports, per package, how many
opted-in installations have it installed.  The study consumed the
by-install counts from 2,935,744 installations.  This module models
that data source: per-package installation counts plus the survey
total, with the derived quantity both metrics consume —
``Pr{pkg ∈ Inst} = installs(pkg) / total``.

Real popcon data is strongly heavy-tailed: a core of essential packages
is on ~100% of installations, and installation frequency then falls
off roughly like a power law.  :meth:`PopularityContest.synthesize`
reproduces that shape deterministically.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

# The survey size the paper reports (2,745,304 Ubuntu + 187,795 Debian
# minus overlap adjustments; the paper uses 2,935,744 in §2.4).
PAPER_TOTAL_INSTALLATIONS = 2_935_744


class PopularityContest:
    """Per-package installation counts over a survey population."""

    def __init__(self, total_installations: int,
                 counts: Optional[Mapping[str, int]] = None) -> None:
        if total_installations <= 0:
            raise ValueError("total_installations must be positive")
        self.total_installations = total_installations
        self._counts: Dict[str, int] = dict(counts or {})
        for name, count in self._counts.items():
            self._check(name, count)

    def _check(self, name: str, count: int) -> None:
        if count < 0 or count > self.total_installations:
            raise ValueError(
                f"count for {name!r} ({count}) outside "
                f"[0, {self.total_installations}]")

    # --- accessors -------------------------------------------------------

    def installations(self, package: str) -> int:
        return self._counts.get(package, 0)

    def set_installations(self, package: str, count: int) -> None:
        self._check(package, count)
        self._counts[package] = count

    def install_probability(self, package: str) -> float:
        """``Pr{pkg ∈ Inst}`` — the quantity both metrics consume."""
        return self.installations(package) / self.total_installations

    def packages(self) -> List[str]:
        return list(self._counts)

    def __contains__(self, package: str) -> bool:
        return package in self._counts

    def __len__(self) -> int:
        return len(self._counts)

    def most_installed(self, limit: int = 10) -> List[Tuple[str, int]]:
        ranked = sorted(self._counts.items(),
                        key=lambda item: (-item[1], item[0]))
        return ranked[:limit]

    # --- synthesis ----------------------------------------------------------

    @classmethod
    def synthesize(
        cls,
        package_names: Iterable[str],
        total_installations: int = PAPER_TOTAL_INSTALLATIONS,
        essential: Iterable[str] = (),
        pinned: Optional[Mapping[str, float]] = None,
        zipf_exponent: float = 1.0,
        head_probability: float = 0.995,
        seed: int = 2016,
    ) -> "PopularityContest":
        """Build a survey with popcon-like shape.

        ``essential`` packages get ~100% installation probability.
        ``pinned`` maps package names to exact probabilities (used to
        pin structurally important packages like qemu or kexec-tools).
        All remaining packages get Zipf-distributed probabilities in
        rank order of a deterministic per-name hash, scaled so the head
        approaches ``head_probability`` and the tail approaches zero.
        """
        names = list(package_names)
        pinned = dict(pinned or {})
        essential_set = set(essential)
        counts: Dict[str, int] = {}

        rest = [n for n in names
                if n not in essential_set and n not in pinned]
        # Deterministic rank: stable hash of the name mixed with seed.
        def rank_key(name: str) -> int:
            value = seed & 0xFFFFFFFF
            for char in name:
                value = (value * 1000003 ^ ord(char)) & 0xFFFFFFFF
            return value

        rest.sort(key=rank_key)
        n_rest = len(rest)
        for index, name in enumerate(rest):
            # Zipf-like decay over rank, normalized to (0, head].
            probability = head_probability / math.pow(
                index + 1.0, zipf_exponent)
            # Keep a realistic floor: popcon counts rarely hit zero for
            # packages that exist at all.
            probability = max(probability, 2.0 / total_installations)
            counts[name] = max(1, int(probability * total_installations))
        for name in essential_set:
            if name in names:
                counts[name] = total_installations
        for name, probability in pinned.items():
            if name in names:
                # Pins are exact at zero: an explicit 0.0 yields zero
                # installations.  Strictly positive pins keep the
                # one-installation floor so a tiny probability does not
                # truncate to absent.
                if probability == 0.0:
                    counts[name] = 0
                else:
                    counts[name] = max(1, min(
                        total_installations,
                        int(probability * total_installations)))
        return cls(total_installations, counts)
