"""Package, repository, and popularity-contest models."""

from .package import BinaryArtifact, BinaryKind, GroundTruthFootprint, Package
from .popcon import PAPER_TOTAL_INSTALLATIONS, PopularityContest
from .repository import Repository, UnknownPackageError

__all__ = [
    "BinaryArtifact",
    "BinaryKind",
    "GroundTruthFootprint",
    "PAPER_TOTAL_INSTALLATIONS",
    "Package",
    "PopularityContest",
    "Repository",
    "UnknownPackageError",
]
