"""Package, repository, and popularity-contest models."""

from .package import (BinaryArtifact, BinaryKind, GroundTruthFootprint,
                      Package, dependency_groups, split_alternatives)
from .popcon import PAPER_TOTAL_INSTALLATIONS, PopularityContest
from .repository import DependencyReport, Repository, UnknownPackageError

__all__ = [
    "BinaryArtifact",
    "BinaryKind",
    "DependencyReport",
    "GroundTruthFootprint",
    "PAPER_TOTAL_INSTALLATIONS",
    "Package",
    "PopularityContest",
    "Repository",
    "UnknownPackageError",
    "dependency_groups",
    "split_alternatives",
]
