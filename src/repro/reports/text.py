"""Plain-text rendering for tables and figure series.

Every benchmark prints its table or figure through these helpers, so
the output rows mirror the paper's presentation (aligned columns,
percentage formatting, coarse ASCII curves for the figures).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple


def format_percent(value: float, digits: int = 1) -> str:
    return f"{value * 100:.{digits}f}%"


def render_table(headers: Sequence[str],
                 rows: Iterable[Sequence[object]],
                 title: Optional[str] = None) -> str:
    """Render an aligned monospace table."""
    def clean(cell: object) -> str:
        # Control characters (newlines, separators) would break the
        # table's line structure; render them escaped instead.
        return "".join(
            ch if ch.isprintable() else repr(ch)[1:-1]
            for ch in str(cell))

    materialized: List[List[str]] = [[clean(cell) for cell in row]
                                     for row in rows]
    widths = [len(header) for header in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(
        header.ljust(widths[index])
        for index, header in enumerate(headers))
    lines.append(header_line)
    lines.append("  ".join("-" * width for width in widths))
    for row in materialized:
        lines.append("  ".join(
            cell.ljust(widths[index]) if index < len(widths) else cell
            for index, cell in enumerate(row)))
    return "\n".join(lines)


def render_series(values: Sequence[float],
                  title: Optional[str] = None,
                  width: int = 64,
                  height: int = 12,
                  y_label: str = "",
                  x_label: str = "") -> str:
    """Coarse ASCII plot of a numeric series (for figure benches)."""
    lines: List[str] = []
    if title:
        lines.append(title)
    if not values:
        lines.append("(empty series)")
        return "\n".join(lines)
    n = len(values)
    maximum = max(values) or 1.0
    # Downsample to `width` columns.
    columns: List[float] = []
    for column in range(width):
        start = column * n // width
        end = max(start + 1, (column + 1) * n // width)
        window = values[start:end]
        columns.append(sum(window) / len(window))
    grid = [[" "] * width for _ in range(height)]
    for column, value in enumerate(columns):
        filled = int(round((value / maximum) * (height - 1)))
        for row in range(filled + 1):
            grid[height - 1 - row][column] = (
                "#" if row == filled else ".")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    footer = f"x: 1..{n}"
    if x_label:
        footer += f" ({x_label})"
    footer += f"   y: 0..{maximum:.3g}"
    if y_label:
        footer += f" ({y_label})"
    lines.append(footer)
    return "\n".join(lines)


def render_dataset_stats(stats: "DatasetStats",
                         title: str = "dataset — interned footprint "
                                      "substrate") -> str:
    """Render a :class:`repro.dataset.DatasetStats` summary.

    One row per API dimension (interned universe size and how many
    packages are non-empty in it), plus the corpus-level bindings.
    """
    rows = [(dimension,
             stats.n_apis.get(dimension, 0),
             stats.n_nonempty.get(dimension, 0))
            for dimension in stats.n_apis]
    rendered = render_table(
        ("dimension", "interned APIs", "non-empty packages"), rows,
        title=title)
    points: List[Tuple[str, object]] = [
        ("packages", stats.n_packages),
        ("popcon weights", "bound" if stats.has_popcon else "absent"),
        ("dependency graph",
         f"bound ({stats.n_dependency_edges} edges)"
         if stats.has_repository else "absent"),
    ]
    if stats.has_repository:
        points.append(
            ("virtual packages",
             f"{stats.n_virtual_packages} "
             f"({stats.n_provider_edges} provider edges)"))
        points.append(("alternative groups",
                       stats.n_alternative_groups))
    if stats.total_weight is not None:
        points.append(("total install probability",
                       f"{stats.total_weight:.3f}"))
    return rendered + "\n" + render_key_points(points)


def render_key_points(points: Sequence[Tuple[str, object]],
                      title: Optional[str] = None) -> str:
    """Render labelled scalar results ("224 syscalls at 100%"...)."""
    lines: List[str] = []
    if title:
        lines.append(title)
    label_width = max((len(label) for label, _ in points), default=0)
    for label, value in points:
        lines.append(f"  {label.ljust(label_width)} : {value}")
    return "\n".join(lines)
