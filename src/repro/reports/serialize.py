"""JSON serialization for experiment outputs.

Experiment ``data`` payloads mix dataclasses, frozensets, tuples, and
plain containers; this encoder flattens them into JSON-compatible
structures so results can be exported, diffed, or post-processed
outside Python.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any


def to_jsonable(value: Any, _depth: int = 0) -> Any:
    """Recursively convert ``value`` into JSON-compatible data."""
    if _depth > 24:
        return repr(value)
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, bytes):
        return value.hex()
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {field.name: to_jsonable(getattr(value, field.name),
                                        _depth + 1)
                for field in dataclasses.fields(value)}
    if isinstance(value, dict):
        return {str(key): to_jsonable(item, _depth + 1)
                for key, item in value.items()}
    if isinstance(value, (frozenset, set)):
        return sorted(to_jsonable(item, _depth + 1) for item in value)
    if isinstance(value, (list, tuple)):
        return [to_jsonable(item, _depth + 1) for item in value]
    if hasattr(value, "__dict__"):
        return {key: to_jsonable(item, _depth + 1)
                for key, item in vars(value).items()
                if not key.startswith("_")}
    return repr(value)


def experiment_to_json(output, indent: int = 2) -> str:
    """Serialize an :class:`repro.study.ExperimentOutput`."""
    payload = {
        "experiment": output.experiment,
        "data": to_jsonable(output.data),
        "rendered": output.rendered,
    }
    return json.dumps(payload, indent=indent, sort_keys=True)


def footprint_to_json(footprint, indent: int = None) -> str:
    """Stable, versioned round-trip encoding of a Footprint.

    Unlike :func:`to_jsonable` (one-way, best-effort), this is the
    engine codec: sorted sets, a version tag, and an exact inverse in
    :func:`footprint_from_json`.
    """
    from ..engine.codec import footprint_to_json as encode
    return encode(footprint, indent=indent)


def footprint_from_json(text: str):
    """Inverse of :func:`footprint_to_json`."""
    from ..engine.codec import footprint_from_json as decode
    return decode(text)
