"""Text rendering for tables, figures, and key-point summaries."""

from .text import (
    format_percent,
    render_dataset_stats,
    render_key_points,
    render_series,
    render_table,
)

__all__ = [
    "format_percent",
    "render_dataset_stats",
    "render_key_points",
    "render_series",
    "render_table",
]
