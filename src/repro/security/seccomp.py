"""seccomp-BPF policy generation (§6).

The paper observes that per-application system-call footprints make it
possible to auto-generate seccomp policies, shrinking the kernel attack
surface after an application compromise.  This module implements that:

* a classic-BPF instruction model (the subset seccomp uses: absolute
  loads, jumps, returns) with a faithful in-process interpreter, so
  generated policies can be *executed* against synthetic syscall
  events in tests;
* a policy generator that turns a footprint into a whitelist program
  identical in structure to what ``libseccomp`` emits: load the
  syscall number, compare against each allowed number, fall through to
  the kill action.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from ..analysis.footprint import Footprint
from ..syscalls.table import number_of

# BPF opcode constants (linux/filter.h encoding).
BPF_LD = 0x00
BPF_JMP = 0x05
BPF_RET = 0x06
BPF_W = 0x00
BPF_ABS = 0x20
BPF_JEQ = 0x10
BPF_JGT = 0x20
BPF_JA = 0x00
BPF_K = 0x00

LD_W_ABS = BPF_LD | BPF_W | BPF_ABS      # ldw [k]
JEQ_K = BPF_JMP | BPF_JEQ | BPF_K        # jeq #k, jt, jf
JGT_K = BPF_JMP | BPF_JGT | BPF_K        # jgt #k, jt, jf
JA = BPF_JMP | BPF_JA                    # ja +k (unconditional)
RET_K = BPF_RET | BPF_K                  # ret #k

# seccomp return actions.
SECCOMP_RET_KILL = 0x00000000
SECCOMP_RET_TRAP = 0x00030000
SECCOMP_RET_ERRNO = 0x00050000
SECCOMP_RET_ALLOW = 0x7FFF0000

# Offsets within struct seccomp_data.
SECCOMP_DATA_NR_OFFSET = 0
SECCOMP_DATA_ARCH_OFFSET = 4

AUDIT_ARCH_X86_64 = 0xC000003E


@dataclass(frozen=True)
class BpfInsn:
    """One classic-BPF instruction (struct sock_filter)."""

    code: int
    jt: int
    jf: int
    k: int

    def render(self) -> str:
        if self.code == LD_W_ABS:
            return f"ld [{self.k}]"
        if self.code == JEQ_K:
            return f"jeq #{self.k}, {self.jt}, {self.jf}"
        if self.code == JGT_K:
            return f"jgt #{self.k}, {self.jt}, {self.jf}"
        if self.code == JA:
            return f"ja +{self.k}"
        if self.code == RET_K:
            return f"ret #{self.k:#010x}"
        return f".insn code={self.code:#x} k={self.k:#x}"


class BpfProgramError(ValueError):
    """Raised for malformed programs (bad jumps, missing return)."""


@dataclass
class SeccompData:
    """The kernel-supplied evaluation context (struct seccomp_data)."""

    nr: int
    arch: int = AUDIT_ARCH_X86_64

    def load_word(self, offset: int) -> int:
        if offset == SECCOMP_DATA_NR_OFFSET:
            return self.nr & 0xFFFFFFFF
        if offset == SECCOMP_DATA_ARCH_OFFSET:
            return self.arch & 0xFFFFFFFF
        return 0


class BpfInterpreter:
    """Executes a classic-BPF program over a :class:`SeccompData`.

    Mirrors the kernel's evaluator semantics: the accumulator starts at
    zero, jumps are forward-only, and execution must end at a ``ret``.
    """

    def __init__(self, program: Sequence[BpfInsn]) -> None:
        self.program = list(program)
        self._validate()

    def _validate(self) -> None:
        if not self.program:
            raise BpfProgramError("empty program")
        for index, insn in enumerate(self.program):
            if insn.code in (JEQ_K, JGT_K):
                for target in (index + 1 + insn.jt, index + 1 + insn.jf):
                    if target >= len(self.program):
                        raise BpfProgramError(
                            f"jump out of range at {index}")
            elif insn.code == JA:
                if index + 1 + insn.k >= len(self.program):
                    raise BpfProgramError(
                        f"jump out of range at {index}")
        if self.program[-1].code != RET_K:
            raise BpfProgramError("program does not end in ret")

    def run(self, data: SeccompData, fuel: int = 10_000) -> int:
        verdict, _ = self.run_with_stats(data, fuel=fuel)
        return verdict

    def run_with_stats(self, data: SeccompData,
                       fuel: int = 10_000) -> Tuple[int, int]:
        """Like :meth:`run`, but also returns executed-instruction
        count (used to compare filter layouts)."""
        steps = 0
        accumulator = 0
        pc = 0
        while fuel > 0:
            fuel -= 1
            steps += 1
            insn = self.program[pc]
            if insn.code == LD_W_ABS:
                accumulator = data.load_word(insn.k)
                pc += 1
            elif insn.code == JEQ_K:
                if accumulator == insn.k:
                    pc += 1 + insn.jt
                else:
                    pc += 1 + insn.jf
            elif insn.code == JGT_K:
                if accumulator > insn.k:
                    pc += 1 + insn.jt
                else:
                    pc += 1 + insn.jf
            elif insn.code == JA:
                pc += 1 + insn.k
            elif insn.code == RET_K:
                return insn.k, steps
            else:
                raise BpfProgramError(
                    f"unsupported opcode {insn.code:#x} at {pc}")
        raise BpfProgramError("fuel exhausted (loop?)")


@dataclass
class SeccompPolicy:
    """A whitelist policy plus its compiled BPF program."""

    allowed_syscalls: Tuple[str, ...]
    program: List[BpfInsn]
    default_action: int = SECCOMP_RET_KILL

    def render(self) -> str:
        lines = [f"; seccomp whitelist: {len(self.allowed_syscalls)} "
                 f"syscalls, default "
                 f"{'KILL' if self.default_action == SECCOMP_RET_KILL else hex(self.default_action)}"]
        for index, insn in enumerate(self.program):
            lines.append(f"{index:4d}: {insn.render()}")
        return "\n".join(lines)

    def evaluate(self, syscall_nr: int,
                 arch: int = AUDIT_ARCH_X86_64) -> int:
        return BpfInterpreter(self.program).run(
            SeccompData(nr=syscall_nr, arch=arch))

    def allows(self, syscall_nr: int) -> bool:
        return self.evaluate(syscall_nr) == SECCOMP_RET_ALLOW


def generate_policy(footprint: Footprint,
                    default_action: int = SECCOMP_RET_KILL,
                    extra_syscalls: Iterable[str] = (),
                    ) -> SeccompPolicy:
    """Compile a footprint into a seccomp whitelist program.

    Structure (same shape libseccomp emits):

    1. load ``seccomp_data.arch``; kill on mismatch (the classic
       cross-arch bypass defence);
    2. load ``seccomp_data.nr``;
    3. one ``jeq`` per allowed number jumping to the shared ALLOW;
    4. fall through to the default action.
    """
    names = sorted(set(footprint.syscalls) | set(extra_syscalls))
    numbers = sorted({number_of(name) for name in names
                      if number_of(name) is not None})
    program: List[BpfInsn] = [
        BpfInsn(LD_W_ABS, 0, 0, SECCOMP_DATA_ARCH_OFFSET),
        # arch matches -> continue (jt=0), else jump to the default
        # (kill) return, which sits right after the compare ladder.
        BpfInsn(JEQ_K, 0, len(numbers) + 1, AUDIT_ARCH_X86_64),
        BpfInsn(LD_W_ABS, 0, 0, SECCOMP_DATA_NR_OFFSET),
    ]
    for index, number in enumerate(numbers):
        remaining = len(numbers) - index - 1
        # match -> jump over the remaining compares to ALLOW
        program.append(BpfInsn(JEQ_K, remaining + 1, 0, number))
    program.append(BpfInsn(RET_K, 0, 0, default_action))
    program.append(BpfInsn(RET_K, 0, 0, SECCOMP_RET_ALLOW))
    return SeccompPolicy(
        allowed_syscalls=tuple(names),
        program=program,
        default_action=default_action,
    )


def policy_for_package(package_footprint: Footprint) -> SeccompPolicy:
    """Package-level policy: the union of its executables' needs."""
    return generate_policy(package_footprint)


# --- balanced-tree compilation ---------------------------------------------
#
# The linear ladder above evaluates O(n) compares per syscall; for the
# wide footprints this study measures (qemu: 270 calls) that is the
# filter's hot-path cost on *every* system call.  Like libseccomp's
# binary-tree output, ``generate_tree_policy`` arranges the compares as
# a balanced BST over the sorted numbers, evaluating O(log n) compares.

_LINEAR_LEAF = 8  # below this size a linear run beats tree overhead


def _emit_tree(numbers: Sequence[int], program: List[BpfInsn],
               default_action: int) -> None:
    """Recursively emit the BST.

    Every leaf is self-contained — it ends in its own DENY / ALLOW
    returns — so all jump offsets stay local and within classic BPF's
    8-bit range regardless of total program size.
    """
    if len(numbers) <= _LINEAR_LEAF:
        count = len(numbers)
        for index, number in enumerate(numbers):
            # match -> skip the remaining compares and the deny ret
            program.append(BpfInsn(JEQ_K, count - index, 0, number))
        program.append(BpfInsn(RET_K, 0, 0, default_action))
        program.append(BpfInsn(RET_K, 0, 0, SECCOMP_RET_ALLOW))
        return
    mid = len(numbers) // 2
    pivot = numbers[mid]
    # Left subtrees bigger than ~120 entries can exceed the 8-bit
    # conditional jump; route those through an unconditional ``ja``,
    # whose offset is a full 32-bit word (libseccomp does the same).
    long_jump = (mid + 1) > 120
    index = len(program)
    if long_jump:
        # not-greater skips the trampoline into the left subtree
        program.append(BpfInsn(JGT_K, 0, 1, pivot))
        program.append(BpfInsn(JA, 0, 0, 0))  # patched below
    else:
        program.append(BpfInsn(JGT_K, 0, 0, pivot))
    _emit_tree(numbers[:mid + 1], program, default_action)
    if long_jump:
        jump = len(program) - (index + 2)
        program[index + 1] = BpfInsn(JA, 0, 0, jump)
    else:
        jump = len(program) - (index + 1)
        if jump > 255:
            raise BpfProgramError("subtree jump exceeds 8-bit range")
        program[index] = BpfInsn(JGT_K, jump, 0, pivot)
    _emit_tree(numbers[mid + 1:], program, default_action)


def generate_tree_policy(footprint: Footprint,
                         default_action: int = SECCOMP_RET_KILL,
                         extra_syscalls: Iterable[str] = (),
                         ) -> SeccompPolicy:
    """Compile a footprint into a balanced-BST whitelist program.

    Semantically identical to :func:`generate_policy` but evaluates
    O(log n) instructions per incoming syscall instead of O(n) —
    libseccomp performs the same transformation for wide filters.
    """
    names = sorted(set(footprint.syscalls) | set(extra_syscalls))
    numbers = sorted({number_of(name) for name in names
                      if number_of(name) is not None})
    program: List[BpfInsn] = [
        BpfInsn(LD_W_ABS, 0, 0, SECCOMP_DATA_ARCH_OFFSET),
        BpfInsn(JEQ_K, 1, 0, AUDIT_ARCH_X86_64),  # match skips deny
        BpfInsn(RET_K, 0, 0, SECCOMP_RET_KILL),
        BpfInsn(LD_W_ABS, 0, 0, SECCOMP_DATA_NR_OFFSET),
    ]
    if numbers:
        _emit_tree(numbers, program, default_action)
    else:
        program.append(BpfInsn(RET_K, 0, 0, default_action))
    return SeccompPolicy(
        allowed_syscalls=tuple(names),
        program=program,
        default_action=default_action,
    )


def attack_surface_report(footprints, generate=generate_policy):
    """Archive-wide attack-surface statistics (§6).

    For every package with a syscall footprint, generate its whitelist
    policy and report how much of the kernel interface seccomp would
    close off after a compromise.  Returns a dict with the whitelist
    size distribution and the mean fraction of the syscall table left
    reachable.
    """
    from ..syscalls.table import SYSCALL_COUNT
    sizes = []
    for footprint in footprints.values():
        if not footprint.syscalls:
            continue
        policy = generate(footprint)
        sizes.append(len(policy.allowed_syscalls))
    if not sizes:
        return {"packages": 0, "mean_whitelist": 0.0,
                "median_whitelist": 0, "max_whitelist": 0,
                "mean_reachable_fraction": 0.0}
    sizes.sort()
    mean = sum(sizes) / len(sizes)
    return {
        "packages": len(sizes),
        "mean_whitelist": mean,
        "median_whitelist": sizes[len(sizes) // 2],
        "max_whitelist": sizes[-1],
        "mean_reachable_fraction": mean / SYSCALL_COUNT,
    }
