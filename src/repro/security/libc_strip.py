"""libc restructuring analysis (§3.5).

Quantifies the paper's proposal: strip (or demote to lazily-loaded
sub-libraries) every libc export whose API importance falls below a
threshold, and reorder the relocation table by importance so the hot
entries share the leading pages.

Sizes are measured from the *generated* libc binary — function body
sizes from its symbol ranges, relocation entries at the real 24-byte
``Elf64_Rela`` size — so the numbers respond to the actual artifact,
not to constants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from ..analysis.footprint import Footprint
from ..elf.constants import PAGE_SIZE, RELA_SIZE
from ..elf.reader import ElfReader
from ..metrics.completeness import weighted_completeness
from ..packages.popcon import PopularityContest


@dataclass(frozen=True)
class StripReport:
    """Result of stripping low-importance APIs from libc (§3.5)."""

    threshold: float
    total_symbols: int
    retained_symbols: int
    total_code_bytes: int
    retained_code_bytes: int
    miss_probability: float  # 1 - weighted completeness of stripped libc

    @property
    def retained_fraction(self) -> float:
        if self.total_code_bytes == 0:
            return 0.0
        return self.retained_code_bytes / self.total_code_bytes


def function_sizes(libc_image: bytes) -> Dict[str, int]:
    """Per-export code size, from consecutive symbol addresses."""
    elf = ElfReader(libc_image)
    functions = [(sym.st_value, sym.name)
                 for sym in elf.exported_symbols() if sym.is_function]
    functions.sort()
    text = elf.section(".text")
    text_end = (text.sh_addr + text.sh_size) if text else 0
    sizes: Dict[str, int] = {}
    for index, (address, name) in enumerate(functions):
        next_address = (functions[index + 1][0]
                        if index + 1 < len(functions) else text_end)
        sizes[name] = max(0, next_address - address)
    return sizes


def strip_report(libc_image: bytes,
                 importance: Mapping[str, float],
                 footprints: Mapping[str, Footprint],
                 popcon: PopularityContest,
                 threshold: float = 0.90) -> StripReport:
    """Strip every export with importance below ``threshold``.

    ``importance`` is the measured libc-symbol importance table;
    ``footprints``/``popcon`` feed the weighted completeness of the
    stripped library (the probability an application finds every
    function it needs).
    """
    sizes = function_sizes(libc_image)
    retained = {name for name in sizes
                if importance.get(name, 0.0) >= threshold}
    total_code = sum(sizes.values())
    retained_code = sum(size for name, size in sizes.items()
                        if name in retained)
    completeness = weighted_completeness(
        retained, footprints, popcon, dimension="libc")
    return StripReport(
        threshold=threshold,
        total_symbols=len(sizes),
        retained_symbols=len(retained),
        total_code_bytes=total_code,
        retained_code_bytes=retained_code,
        miss_probability=1.0 - completeness,
    )


@dataclass(frozen=True)
class RelocationLayout:
    """Relocation-table paging analysis (§3.5).

    GNU libc 2.21 carries one relocation entry per exported symbol
    (30,576 bytes for 1,274 entries).  Sorting the table by importance
    lets the loader touch only the leading pages for most programs.
    """

    total_entries: int
    table_bytes: int
    hot_entries: int          # entries above the importance threshold
    hot_pages: int            # pages covering the hot prefix, sorted
    unsorted_pages: int       # pages touched when hot entries scatter

    @property
    def pages_saved(self) -> int:
        return max(0, self.unsorted_pages - self.hot_pages)


def relocation_layout(importance: Mapping[str, float],
                      threshold: float = 0.90,
                      entry_size: int = RELA_SIZE,
                      page_size: int = PAGE_SIZE) -> RelocationLayout:
    """Model the paging benefit of importance-sorted relocations.

    In the unsorted table, hot entries are spread uniformly, so nearly
    every page contains one and all pages fault in.  Sorted, the hot
    prefix occupies ``ceil(hot * entry / page)`` pages.
    """
    names = list(importance)
    total = len(names)
    hot = sum(1 for name in names
              if importance.get(name, 0.0) >= threshold)
    table_bytes = total * entry_size
    total_pages = -(-table_bytes // page_size)
    hot_bytes = hot * entry_size
    hot_pages = -(-hot_bytes // page_size) if hot else 0
    entries_per_page = page_size // entry_size
    if hot == 0:
        unsorted_pages = 0
    else:
        # Probability a page holds no hot entry when hot entries are
        # uniformly scattered: C(total-epp, hot)/C(total, hot); for the
        # regimes here (hot >> pages) effectively every page is
        # touched.
        unsorted_pages = min(total_pages, hot)
        if hot >= entries_per_page:
            unsorted_pages = total_pages
    return RelocationLayout(
        total_entries=total,
        table_bytes=table_bytes,
        hot_entries=hot,
        hot_pages=hot_pages,
        unsorted_pages=unsorted_pages,
    )
