"""libc decomposition by co-usage clustering (§3.5).

Beyond stripping rarely-used symbols, the paper suggests "placing APIs
that are commonly accessed by the same application into the same
sub-library".  This module implements that proposal:

* build the co-usage graph — libc symbols as nodes, edges weighted by
  how many packages import both endpoints;
* partition it into sub-libraries with greedy modularity communities
  (networkx when available, a label-propagation fallback otherwise);
* evaluate the split: for each package, how many sub-libraries it must
  map and how much loaded-but-unused code the split eliminates
  compared to the monolithic library.
"""

from __future__ import annotations

import random
from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

try:
    import networkx as _nx
except ImportError:  # pragma: no cover
    _nx = None

from ..analysis.footprint import Footprint


@dataclass(frozen=True)
class SubLibrary:
    """One proposed sub-library."""

    index: int
    symbols: FrozenSet[str]
    code_bytes: int

    def __len__(self) -> int:
        return len(self.symbols)


@dataclass(frozen=True)
class DecompositionReport:
    """How a proposed split behaves across the archive."""

    sub_libraries: Tuple[SubLibrary, ...]
    mean_libraries_loaded: float      # sub-libs a package maps
    mean_loaded_bytes: int            # code mapped per package (split)
    monolithic_bytes: int             # code mapped per package (today)

    @property
    def loaded_fraction(self) -> float:
        if self.monolithic_bytes == 0:
            return 0.0
        return self.mean_loaded_bytes / self.monolithic_bytes


def co_usage_edges(footprints: Mapping[str, Footprint],
                   min_weight: int = 2,
                   ) -> Dict[Tuple[str, str], int]:
    """Symbol-pair co-import counts across packages.

    Pairs are capped per package footprint to keep the graph sparse:
    each package contributes edges between consecutive symbols of its
    sorted import list plus a bounded sample, which preserves the
    community structure without the quadratic blowup of 600-symbol
    cliques.
    """
    weights: Dict[Tuple[str, str], int] = defaultdict(int)
    for footprint in footprints.values():
        symbols = sorted(footprint.libc_symbols)
        if len(symbols) < 2:
            continue
        ring = list(symbols)
        # ring edges + a deterministic chord sample; each package
        # contributes at most one unit of weight per edge
        package_edges = set()
        for position, symbol in enumerate(ring):
            neighbour = ring[(position + 1) % len(ring)]
            if symbol != neighbour:
                package_edges.add(_edge(symbol, neighbour))
            chord = ring[(position * 7 + 3) % len(ring)]
            if symbol != chord:
                package_edges.add(_edge(symbol, chord))
        for edge in package_edges:
            weights[edge] += 1
    return {edge: weight for edge, weight in weights.items()
            if weight >= min_weight}


def _edge(a: str, b: str) -> Tuple[str, str]:
    return (a, b) if a < b else (b, a)


def _communities_networkx(nodes: Sequence[str],
                          edges: Mapping[Tuple[str, str], int],
                          ) -> List[FrozenSet[str]]:
    graph = _nx.Graph()
    graph.add_nodes_from(nodes)
    for (a, b), weight in edges.items():
        graph.add_edge(a, b, weight=weight)
    communities = _nx.algorithms.community.greedy_modularity_communities(
        graph, weight="weight")
    return [frozenset(c) for c in communities]


def _communities_label_propagation(
        nodes: Sequence[str],
        edges: Mapping[Tuple[str, str], int],
        rounds: int = 8, seed: int = 0) -> List[FrozenSet[str]]:
    """Deterministic weighted label propagation (no-networkx path)."""
    neighbours: Dict[str, List[Tuple[str, int]]] = defaultdict(list)
    for (a, b), weight in edges.items():
        neighbours[a].append((b, weight))
        neighbours[b].append((a, weight))
    labels = {node: node for node in nodes}
    ordering = sorted(nodes)
    rng = random.Random(seed)
    for _ in range(rounds):
        rng.shuffle(ordering)
        changed = False
        for node in ordering:
            if not neighbours[node]:
                continue
            tally: Dict[str, int] = defaultdict(int)
            for other, weight in neighbours[node]:
                tally[labels[other]] += weight
            best = max(sorted(tally), key=lambda l: tally[l])
            if labels[node] != best:
                labels[node] = best
                changed = True
        if not changed:
            break
    grouped: Dict[str, set] = defaultdict(set)
    for node, label in labels.items():
        grouped[label].add(node)
    return [frozenset(group) for group in grouped.values()]


def decompose_libc(footprints: Mapping[str, Footprint],
                   function_sizes: Mapping[str, int],
                   max_sub_libraries: int = 12,
                   min_weight: int = 2) -> List[SubLibrary]:
    """Partition libc's exports into co-usage sub-libraries."""
    used_symbols = set()
    for footprint in footprints.values():
        used_symbols |= footprint.libc_symbols
    nodes = sorted(used_symbols & set(function_sizes))
    edges = co_usage_edges(footprints, min_weight=min_weight)
    edges = {edge: weight for edge, weight in edges.items()
             if edge[0] in function_sizes and edge[1] in function_sizes}
    if _nx is not None:
        communities = _communities_networkx(nodes, edges)
    else:
        communities = _communities_label_propagation(nodes, edges)
    communities.sort(key=len, reverse=True)
    # Merge the long tail of tiny communities into one catch-all, plus
    # a final sub-library for exported-but-unused symbols.
    head = communities[:max_sub_libraries - 2]
    tail_symbols: set = set()
    for community in communities[max_sub_libraries - 2:]:
        tail_symbols |= community
    unused = frozenset(set(function_sizes) - used_symbols)

    def size_of(symbols: FrozenSet[str]) -> int:
        return sum(function_sizes.get(name, 0) for name in symbols)

    sub_libraries = [
        SubLibrary(index, frozenset(community), size_of(
            frozenset(community)))
        for index, community in enumerate(head)
    ]
    if tail_symbols:
        sub_libraries.append(SubLibrary(
            len(sub_libraries), frozenset(tail_symbols),
            size_of(frozenset(tail_symbols))))
    if unused:
        sub_libraries.append(SubLibrary(
            len(sub_libraries), unused, size_of(unused)))
    return sub_libraries


def evaluate_decomposition(sub_libraries: Sequence[SubLibrary],
                           footprints: Mapping[str, Footprint],
                           ) -> DecompositionReport:
    """Per-package cost of the split vs. the monolithic library."""
    monolithic = sum(lib.code_bytes for lib in sub_libraries)
    total_loaded = 0
    total_libs = 0
    counted = 0
    for footprint in footprints.values():
        needed = footprint.libc_symbols
        if not needed:
            continue
        counted += 1
        for library in sub_libraries:
            if needed & library.symbols:
                total_libs += 1
                total_loaded += library.code_bytes
    if counted == 0:
        return DecompositionReport(tuple(sub_libraries), 0.0, 0,
                                   monolithic)
    return DecompositionReport(
        sub_libraries=tuple(sub_libraries),
        mean_libraries_loaded=total_libs / counted,
        mean_loaded_bytes=total_loaded // counted,
        monolithic_bytes=monolithic,
    )
