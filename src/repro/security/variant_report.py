"""Security-variant adoption reports (§5, Tables 8-11).

Builds the paper's four comparison tables from a measured unweighted
importance table, and derives the actionable summaries: how many
packages still use race-prone directory calls, which deprecated APIs
retain users, and where the portable variant dominates the
Linux-specific one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

from ..syscalls.variants import (
    ALL_VARIANT_GROUPS,
    OLD_NEW_VARIANTS,
    PORTABILITY_VARIANTS,
    POWER_VARIANTS,
    SECURE_VARIANTS,
    VariantPair,
)


@dataclass(frozen=True)
class VariantRow:
    """One comparison row: the two variants and their usage."""

    left: str
    left_usage: float
    right: str
    right_usage: float
    axis: str
    note: str

    @property
    def preferred_is_adopted(self) -> bool:
        """Did developers adopt the right-hand (recommended) variant?

        For the security and deprecation axes, the right column is the
        recommended API; adoption means it out-uses the legacy one.
        """
        return self.right_usage > self.left_usage


def build_rows(pairs: List[VariantPair],
               usage: Mapping[str, float]) -> List[VariantRow]:
    return [
        VariantRow(
            left=pair.left,
            left_usage=usage.get(pair.left, 0.0),
            right=pair.right,
            right_usage=usage.get(pair.right, 0.0),
            axis=pair.axis,
            note=pair.note,
        )
        for pair in pairs
    ]


def secure_variant_rows(usage: Mapping[str, float]) -> List[VariantRow]:
    """Table 8: insecure vs. secure API variants."""
    return build_rows(SECURE_VARIANTS, usage)


def old_new_rows(usage: Mapping[str, float]) -> List[VariantRow]:
    """Table 9: deprecated vs. preferred variants."""
    return build_rows(OLD_NEW_VARIANTS, usage)


def portability_rows(usage: Mapping[str, float]) -> List[VariantRow]:
    """Table 10: Linux-specific vs. portable variants."""
    return build_rows(PORTABILITY_VARIANTS, usage)


def power_rows(usage: Mapping[str, float]) -> List[VariantRow]:
    """Table 11: powerful vs. simple variants."""
    return build_rows(POWER_VARIANTS, usage)


@dataclass(frozen=True)
class AdoptionSummary:
    """§5's headline conclusions, computed."""

    race_prone_directory_usage: float   # e.g. access at ~74%
    atomic_variant_usage: float         # e.g. faccessat at ~0.6%
    deprecated_with_users: Tuple[str, ...]
    portable_preferred_count: int
    linux_specific_preferred_count: int


def adoption_summary(usage: Mapping[str, float]) -> AdoptionSummary:
    directory_pairs = [p for p in SECURE_VARIANTS
                       if "TOCTTOU" in p.note or "atomic" in p.note]
    race_usage = max((usage.get(p.left, 0.0) for p in directory_pairs),
                     default=0.0)
    atomic_usage = max((usage.get(p.right, 0.0)
                        for p in directory_pairs), default=0.0)
    deprecated = tuple(
        pair.left for pair in OLD_NEW_VARIANTS
        if usage.get(pair.left, 0.0) > 0.10)
    portable_wins = sum(
        1 for pair in PORTABILITY_VARIANTS
        if usage.get(pair.right, 0.0) > usage.get(pair.left, 0.0))
    linux_wins = len(PORTABILITY_VARIANTS) - portable_wins
    return AdoptionSummary(
        race_prone_directory_usage=race_usage,
        atomic_variant_usage=atomic_usage,
        deprecated_with_users=deprecated,
        portable_preferred_count=portable_wins,
        linux_specific_preferred_count=linux_wins,
    )


def all_variant_tables(usage: Mapping[str, float],
                       ) -> Dict[str, List[VariantRow]]:
    return {name: build_rows(pairs, usage)
            for name, pairs in ALL_VARIANT_GROUPS}
