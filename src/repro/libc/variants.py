"""Models of libc variants for the Table 7 comparison (§4.2).

Each variant is described by the subset of GNU libc 2.21's exported
function symbols it also exports, plus a nominal total export count
(variants also export symbols glibc does not; those never matter for
running glibc-linked binaries, but they explain the paper's "#"
column).

The paper's key observation: binaries compiled against glibc headers
import *glibc-specific* symbols — fortify ``_chk`` wrappers and stdio
internals like ``__uflow`` — so raw symbol matching makes every
alternative libc look incompatible.  Normalizing the compile-time
replacements (``printf_chk`` → ``printf``) recovers the real picture.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, List

from .symbols import ALL_NAMES, BY_NAME, FORTIFY_MAP, LIBC_SYMBOLS


@dataclass(frozen=True)
class LibcVariant:
    """A libc implementation compared against GNU libc 2.21."""

    name: str
    version: str
    nominal_export_count: int
    supported: FrozenSet[str]  # GNU-symbol subset this variant exports

    def supports(self, symbol: str) -> bool:
        return symbol in self.supported

    def missing(self) -> List[str]:
        """GNU symbols this variant does not export, sorted."""
        return sorted(ALL_NAMES - self.supported)


def normalize_symbol(name: str) -> str:
    """Reverse glibc compile-time replacement (``__printf_chk`` → ``printf``).

    Used when evaluating non-GNU libcs: a binary importing a ``_chk``
    wrapper really just needs the plain function.
    """
    return FORTIFY_MAP.get(name, name)


def normalize_footprint(symbols: FrozenSet[str]) -> FrozenSet[str]:
    return frozenset(normalize_symbol(s) for s in symbols)


_GLIBC_ONLY_CATEGORIES = ("stdio-internal",)
_GLIBC_ONLY_PREFIXES = ("__", "_IO_")


def _is_glibc_internal(name: str) -> bool:
    symbol = BY_NAME[name]
    if symbol.category in _GLIBC_ONLY_CATEGORIES:
        return True
    return name.startswith(_GLIBC_ONLY_PREFIXES)


def _subset(exclude: Callable[[str], bool]) -> FrozenSet[str]:
    return frozenset(s.name for s in LIBC_SYMBOLS if not exclude(s.name))


def _build_eglibc() -> LibcVariant:
    # eglibc is a (now re-merged) fork of glibc: export-compatible.
    return LibcVariant("eglibc", "2.19", 2198, frozenset(ALL_NAMES))


_UCLIBC_MISSING_CATEGORIES = {
    "stdio-internal", "gnuext", "numa", "debug", "aio",
}
_UCLIBC_MISSING_NAMES = {
    "secure_getenv", "random_r", "srandom_r", "strverscmp", "strfry",
    "memfd_create", "fanotify_init", "fanotify_mark", "getauxval",
    "getentropy", "getrandom_wrapper", "mcheck", "mcheck_pedantic",
    "mtrace", "muntrace", "dl_iterate_phdr", "fexecve", "execvpe",
    "qsort_r", "mkostemps", "mkstemps", "renameat2",
    "copy_file_range", "preadv", "pwritev", "explicit_bzero",
}


def _build_uclibc() -> LibcVariant:
    def excluded(name: str) -> bool:
        symbol = BY_NAME[name]
        return (name in FORTIFY_MAP
                or symbol.category in _UCLIBC_MISSING_CATEGORIES
                or name in _UCLIBC_MISSING_NAMES)
    return LibcVariant("uClibc", "0.9.33", 1867, _subset(excluded))


_MUSL_MISSING_CATEGORIES = {"stdio-internal", "rpc", "debug"}
_MUSL_MISSING_NAMES = {
    "secure_getenv", "random_r", "srandom_r", "initstate", "setstate",
    "argp_parse", "argp_usage", "argp_error", "argp_failure",
    "argp_state_help", "argp_help", "obstack_free", "_obstack_newchunk",
    "_obstack_begin", "_obstack_begin_1", "_obstack_allocated_p",
    "_obstack_memory_used", "obstack_alloc_failed_handler",
    "mcheck", "mcheck_pedantic", "mcheck_check_all", "mprobe",
    "mallopt", "malloc_trim", "malloc_stats", "mallinfo", "cfree",
    "fcrypt", "vlimit", "vtimes", "sstk", "revoke", "rexec", "rcmd",
    "ruserok", "rresvport", "getusershell", "setusershell",
    "endusershell", "sgetspent",
}


def _build_musl() -> LibcVariant:
    def excluded(name: str) -> bool:
        symbol = BY_NAME[name]
        return (name in FORTIFY_MAP
                or symbol.category in _MUSL_MISSING_CATEGORIES
                or name in _MUSL_MISSING_NAMES)
    return LibcVariant("musl", "1.1.14", 1890, _subset(excluded))


# dietlibc is aggressively minimal: it keeps a small POSIX core and
# drops glibc extensions, including ubiquitously-imported symbols like
# memalign and __cxa_finalize — which the paper finds makes it
# incompatible with effectively every glibc-linked binary.
_DIETLIBC_CATEGORIES = {
    "string", "ctype", "io", "process", "identity", "signal",
    "memory", "stdlib",
}
_DIETLIBC_EXTRA_MISSING = {
    # in kept categories, but absent from dietlibc 0.33
    "memalign", "stpcpy", "stpncpy", "strverscmp", "strfry",
    "strcasestr", "memrchr", "mempcpy", "memccpy", "memmem",
    "posix_memalign", "aligned_alloc", "valloc", "pvalloc",
    "malloc_usable_size", "mallopt", "malloc_trim", "malloc_stats",
    "mallinfo", "reallocarray", "cfree", "qsort_r", "random_r",
    "srandom_r", "canonicalize_file_name", "mkostemp", "mkostemps",
    "mkstemps", "fexecve", "execvpe", "posix_fallocate",
    "copy_file_range", "renameat2", "preadv", "pwritev",
    "get_current_dir_name", "versionsort", "scandir64", "nftw",
    "euidaccess", "eaccess",
}
_DIETLIBC_KEPT_ELSEWHERE = {
    # a partial stdio/misc core dietlibc does provide
    "printf", "fprintf", "sprintf", "snprintf", "vprintf", "vfprintf",
    "vsnprintf", "fopen", "fclose", "fread", "fwrite", "fgets",
    "fputs", "fgetc", "fputc", "getc", "putc", "getchar", "putchar",
    "puts", "fflush", "fseek", "ftell", "rewind", "feof", "ferror",
    "fileno", "perror", "setvbuf", "remove", "getenv", "setenv",
    "unsetenv", "putenv", "atoi", "atol", "strtol", "strtoul",
    "strtoll", "strtoull", "strtod", "qsort", "bsearch", "rand",
    "srand", "random", "srandom", "abs", "labs", "getopt", "time",
    "gettimeofday", "localtime", "gmtime", "mktime", "strftime",
    "socket", "bind", "listen", "accept", "connect", "send", "sendto",
    "recv", "recvfrom", "select", "poll", "isatty", "tcgetattr",
    "tcsetattr",
}


def _build_dietlibc() -> LibcVariant:
    def included(name: str) -> bool:
        if name in _DIETLIBC_EXTRA_MISSING:
            return False
        if _is_glibc_internal(name) or name in FORTIFY_MAP:
            return False
        symbol = BY_NAME[name]
        if symbol.category in _DIETLIBC_CATEGORIES:
            return True
        return name in _DIETLIBC_KEPT_ELSEWHERE
    supported = frozenset(s.name for s in LIBC_SYMBOLS
                          if included(s.name))
    return LibcVariant("dietlibc", "0.33", 962, supported)


EGLIBC = _build_eglibc()
UCLIBC = _build_uclibc()
MUSL = _build_musl()
DIETLIBC = _build_dietlibc()

VARIANTS: Dict[str, LibcVariant] = {
    v.name: v for v in (EGLIBC, UCLIBC, MUSL, DIETLIBC)
}
