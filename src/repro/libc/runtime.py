"""Runtime library models: ld.so, libpthread, librt, libdl (§3.5, Table 5).

Every dynamically-linked executable pulls in the dynamic linker and
usually libc; threads pull in libpthread.  Their initialization and
finalization paths issue system calls on behalf of *every* program,
which gives those syscalls 100% API importance regardless of
application code.  Table 5 attributes each startup syscall to the
library that issues it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Tuple

# Table 5 — system calls issued during initialization/finalization of
# the libc family, attributed to the issuing libraries.
STARTUP_SYSCALLS: Dict[str, Tuple[str, ...]] = {
    "access": ("ld.so",),
    "arch_prctl": ("ld.so",),
    "clone": ("libc",),
    "execve": ("libc",),
    "getuid": ("libc",),
    "gettid": ("libc",),
    "kill": ("libc",),
    "getrlimit": ("libc",),
    "setresuid": ("libc",),
    "close": ("libc", "ld.so"),
    "exit": ("libc", "ld.so"),
    "exit_group": ("libc", "ld.so"),
    "getcwd": ("libc", "ld.so"),
    "getdents": ("libc", "ld.so"),
    "getpid": ("libc", "ld.so"),
    "lseek": ("libc", "ld.so"),
    "lstat": ("libc", "ld.so"),
    "mmap": ("libc", "ld.so"),
    "munmap": ("libc", "ld.so"),
    "madvise": ("libc", "ld.so"),
    "mprotect": ("libc", "ld.so"),
    "mremap": ("libc", "ld.so"),
    "newfstatat": ("libc", "ld.so"),
    "read": ("libc", "ld.so"),
    "fstat": ("libc", "ld.so"),
    "open": ("libc", "ld.so"),
    "write": ("libc", "ld.so"),
    "brk": ("libc", "ld.so"),
    "rt_sigaction": ("libc",),
    "rt_sigprocmask": ("librt", "libc"),
    "rt_sigreturn": ("libpthread",),
    "set_robust_list": ("libpthread",),
    "set_tid_address": ("libpthread",),
    "futex": ("libc", "ld.so", "libpthread"),
    "uname": ("ld.so",),
    # Reachable from libc's process-spawn path (posix_spawn applies
    # scheduler attributes); under the study's function-pointer
    # over-approximation (§7) this makes the pair part of every
    # program's footprint — the reason Graphene's weighted completeness
    # collapses until both are added (Table 6).
    "sched_setscheduler": ("libc",),
    "sched_setparam": ("libc",),
    # Further calls the study finds at ~99.7% unweighted importance
    # (Tables 8-9): reachable from glibc's setxid broadcast and spawn
    # machinery, which the call-graph over-approximation ties to every
    # program.
    "setresgid": ("libc",),
    "getgid": ("libc",),
    "vfork": ("libc",),
}

# The subset of startup syscalls issued by ld.so alone — these hit
# every dynamically linked binary before main() runs.
LD_SO_FOOTPRINT: FrozenSet[str] = frozenset(
    name for name, libs in STARTUP_SYSCALLS.items() if "ld.so" in libs)

LIBC_STARTUP_FOOTPRINT: FrozenSet[str] = frozenset(
    name for name, libs in STARTUP_SYSCALLS.items() if "libc" in libs)

LIBPTHREAD_FOOTPRINT: FrozenSet[str] = frozenset(
    name for name, libs in STARTUP_SYSCALLS.items()
    if "libpthread" in libs)


@dataclass(frozen=True)
class RuntimeLibrary:
    """A low-level runtime library and its exported surface."""

    soname: str
    exports: Tuple[str, ...]
    # syscalls issued unconditionally at load/startup/teardown
    startup_syscalls: FrozenSet[str]
    # per-export syscall footprints beyond startup
    export_syscalls: Dict[str, Tuple[str, ...]]


_PTHREAD_EXPORTS = (
    "pthread_create", "pthread_join", "pthread_detach", "pthread_exit",
    "pthread_self", "pthread_equal", "pthread_cancel",
    "pthread_setcancelstate", "pthread_setcanceltype",
    "pthread_testcancel", "pthread_kill", "pthread_sigmask",
    "pthread_attr_init", "pthread_attr_destroy",
    "pthread_attr_setdetachstate", "pthread_attr_getdetachstate",
    "pthread_attr_setstacksize", "pthread_attr_getstacksize",
    "pthread_attr_setscope", "pthread_attr_setschedparam",
    "pthread_mutex_init", "pthread_mutex_destroy",
    "pthread_mutex_lock", "pthread_mutex_trylock",
    "pthread_mutex_unlock", "pthread_mutex_timedlock",
    "pthread_mutexattr_init", "pthread_mutexattr_destroy",
    "pthread_mutexattr_settype", "pthread_mutexattr_setpshared",
    "pthread_cond_init", "pthread_cond_destroy", "pthread_cond_wait",
    "pthread_cond_timedwait", "pthread_cond_signal",
    "pthread_cond_broadcast", "pthread_condattr_init",
    "pthread_condattr_destroy", "pthread_rwlock_init",
    "pthread_rwlock_destroy", "pthread_rwlock_rdlock",
    "pthread_rwlock_wrlock", "pthread_rwlock_tryrdlock",
    "pthread_rwlock_trywrlock", "pthread_rwlock_unlock",
    "pthread_spin_init", "pthread_spin_destroy", "pthread_spin_lock",
    "pthread_spin_trylock", "pthread_spin_unlock",
    "pthread_barrier_init", "pthread_barrier_destroy",
    "pthread_barrier_wait", "pthread_key_create", "pthread_key_delete",
    "pthread_getspecific", "pthread_setspecific", "pthread_once",
    "pthread_atfork", "pthread_getschedparam", "pthread_setschedparam",
    "pthread_setname_np", "pthread_getname_np", "pthread_yield",
    "pthread_getattr_np", "pthread_setaffinity_np",
    "pthread_getaffinity_np", "sem_init", "sem_destroy", "sem_wait",
    "sem_trywait", "sem_timedwait", "sem_post", "sem_getvalue",
    "sem_open", "sem_close", "sem_unlink",
)

_PTHREAD_SYSCALLS = {
    "pthread_create": ("clone", "mmap", "mprotect", "futex"),
    "pthread_join": ("futex",),
    "pthread_exit": ("exit", "futex", "munmap"),
    "pthread_cancel": ("tgkill",),
    "pthread_kill": ("tgkill",),
    "pthread_sigmask": ("rt_sigprocmask",),
    "pthread_mutex_lock": ("futex",),
    "pthread_mutex_timedlock": ("futex",),
    "pthread_mutex_unlock": ("futex",),
    "pthread_cond_wait": ("futex",),
    "pthread_cond_timedwait": ("futex",),
    "pthread_cond_signal": ("futex",),
    "pthread_cond_broadcast": ("futex",),
    "pthread_rwlock_rdlock": ("futex",),
    "pthread_rwlock_wrlock": ("futex",),
    "pthread_rwlock_unlock": ("futex",),
    "pthread_barrier_wait": ("futex",),
    "pthread_once": ("futex",),
    "pthread_setname_np": ("prctl",),
    "pthread_getname_np": ("prctl",),
    "pthread_yield": ("sched_yield",),
    "pthread_setaffinity_np": ("sched_setaffinity",),
    "pthread_getaffinity_np": ("sched_getaffinity",),
    "pthread_setschedparam": ("sched_setscheduler",),
    "pthread_getschedparam": ("sched_getscheduler", "sched_getparam"),
    "sem_wait": ("futex",),
    "sem_timedwait": ("futex",),
    "sem_post": ("futex",),
    "sem_open": ("open", "mmap"),
    "sem_close": ("munmap",),
    "sem_unlink": ("unlink",),
}

_LIBRT_EXPORTS = (
    "clock_gettime", "clock_settime", "clock_getres", "clock_nanosleep",
    "timer_create", "timer_delete", "timer_settime", "timer_gettime",
    "timer_getoverrun", "mq_open", "mq_close", "mq_unlink", "mq_send",
    "mq_receive", "mq_timedsend", "mq_timedreceive", "mq_notify",
    "mq_getattr", "mq_setattr", "shm_open", "shm_unlink",
    "aio_read", "aio_write", "aio_error", "aio_return", "aio_suspend",
    "aio_cancel", "aio_fsync", "lio_listio",
)

_LIBRT_SYSCALLS = {
    "clock_gettime": ("clock_gettime",),
    "clock_settime": ("clock_settime",),
    "clock_getres": ("clock_getres",),
    "clock_nanosleep": ("clock_nanosleep",),
    "timer_create": ("timer_create",),
    "timer_delete": ("timer_delete",),
    "timer_settime": ("timer_settime",),
    "timer_gettime": ("timer_gettime",),
    "timer_getoverrun": ("timer_getoverrun",),
    "mq_open": ("mq_open",), "mq_close": ("close",),
    "mq_unlink": ("mq_unlink",), "mq_send": ("mq_timedsend",),
    "mq_receive": ("mq_timedreceive",),
    "mq_timedsend": ("mq_timedsend",),
    "mq_timedreceive": ("mq_timedreceive",),
    "mq_notify": ("mq_notify",),
    "mq_getattr": ("mq_getsetattr",), "mq_setattr": ("mq_getsetattr",),
    "shm_open": ("open",), "shm_unlink": ("unlink",),
    "aio_read": ("pread64", "clone"), "aio_write": ("pwrite64", "clone"),
    "aio_suspend": ("futex",), "lio_listio": ("pread64", "pwrite64"),
}

_LIBDL_EXPORTS = (
    "dlopen", "dlclose", "dlsym", "dlerror", "dladdr", "dlinfo",
    "dlvsym", "dlmopen",
)

_LIBDL_SYSCALLS = {
    "dlopen": ("open", "read", "fstat", "mmap", "mprotect", "close"),
    "dlmopen": ("open", "read", "fstat", "mmap", "mprotect", "close"),
    "dlclose": ("munmap",),
}

LD_SO = RuntimeLibrary(
    soname="ld-linux-x86-64.so.2",
    exports=("_dl_open", "_dl_close", "_dl_addr", "__tls_get_addr"),
    startup_syscalls=LD_SO_FOOTPRINT,
    export_syscalls={
        "_dl_open": ("open", "read", "fstat", "mmap", "mprotect",
                     "close"),
        "_dl_close": ("munmap",),
        "__tls_get_addr": (),
        "_dl_addr": (),
    },
)

LIBPTHREAD = RuntimeLibrary(
    soname="libpthread.so.0",
    exports=_PTHREAD_EXPORTS,
    startup_syscalls=LIBPTHREAD_FOOTPRINT,
    export_syscalls=_PTHREAD_SYSCALLS,
)

LIBRT = RuntimeLibrary(
    soname="librt.so.1",
    exports=_LIBRT_EXPORTS,
    startup_syscalls=frozenset({"rt_sigprocmask"}),
    export_syscalls=_LIBRT_SYSCALLS,
)

LIBDL = RuntimeLibrary(
    soname="libdl.so.2",
    exports=_LIBDL_EXPORTS,
    startup_syscalls=frozenset(),
    export_syscalls=_LIBDL_SYSCALLS,
)

RUNTIME_LIBRARIES: List[RuntimeLibrary] = [LD_SO, LIBPTHREAD, LIBRT, LIBDL]

# Table 1 — system calls whose only direct users are particular
# libraries (applications reach them exclusively through the wrappers).
LIBRARY_ONLY_SYSCALLS: Dict[str, Tuple[str, ...]] = {
    "clock_settime": ("libc",),
    "iopl": ("libc",),
    "ioperm": ("libc",),
    "signalfd4": ("libc",),
    "mbind": ("libnuma", "libopenblas"),
    "add_key": ("libkeyutils",),
    "keyctl": ("pam_keyutil", "libkeyutils"),
    "request_key": ("libkeyutils",),
    "preadv": ("libc",),
    "pwritev": ("libc",),
}
