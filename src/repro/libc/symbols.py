"""GNU libc 2.21 exported-function catalogue (§3.5, Figure 7).

The paper analyzes the 1,274 global function symbols exported by
``libc-2.21.so``.  This module reconstructs that surface: every symbol
carries a category, a usage *tier* (ground-truth calibration for the
synthetic ecosystem, mirroring Figure 7's distribution), and — for
symbols that wrap kernel functionality — the set of system calls the
implementation issues.

Tier semantics (these drive how the ecosystem generator attaches
symbols to binaries; the analysis pipeline never reads them):

* ``universal``  — linked by essentially every dynamically-linked
  program (startup path, core stdio/string/malloc).
* ``common``     — used by most nontrivial programs.
* ``occasional`` — used by a meaningful minority (wide chars, locale).
* ``rare``       — used by few packages (rpc, obstack, resolver).
* ``unused``     — exported but effectively dead (legacy compat).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Sequence, Tuple

TIERS = ("universal", "common", "occasional", "rare", "unused")


@dataclass(frozen=True)
class LibcSymbol:
    """One exported function of libc-2.21.so."""

    name: str
    category: str
    tier: str
    syscalls: Tuple[str, ...] = ()
    internal_calls: Tuple[str, ...] = ()  # other libc symbols it calls

    def __post_init__(self) -> None:
        if self.tier not in TIERS:
            raise ValueError(f"bad tier {self.tier!r} for {self.name}")


def _family(category: str, tier: str, names: Sequence[str],
            syscalls: Dict[str, Tuple[str, ...]] = {},
            internal: Dict[str, Tuple[str, ...]] = {},
            ) -> List[LibcSymbol]:
    return [
        LibcSymbol(name, category, tier,
                   syscalls=tuple(syscalls.get(name, ())),
                   internal_calls=tuple(internal.get(name, ())))
        for name in names
    ]


_SYMBOLS: List[LibcSymbol] = []

# --- startup & runtime internals (universal) ---------------------------------
_SYMBOLS += _family("startup", "universal", [
    "__libc_start_main", "__libc_init_first", "__cxa_atexit",
    "__cxa_finalize", "__errno_location", "__stack_chk_fail",
    "__assert_fail", "__assert_perror_fail", "__fxstat", "__xstat",
    "__lxstat", "__fxstatat", "_exit", "abort", "atexit", "on_exit",
    "exit", "__libc_current_sigrtmin", "__libc_current_sigrtmax",
    "__sched_cpucount", "__sched_cpualloc", "__sched_cpufree",
    "__libc_malloc", "__libc_free", "__libc_calloc", "__libc_realloc",
    "__libc_memalign", "__register_atfork", "__getpagesize",
    "__h_errno_location", "__res_init", "__libc_alloca_cutoff",
    "_setjmp", "setjmp", "longjmp", "_longjmp", "__sigsetjmp",
    "__longjmp_chk", "siglongjmp", "secure_getenv",
], syscalls={
    "__libc_start_main": ("exit_group", "arch_prctl", "set_tid_address",
                          "set_robust_list", "rt_sigaction",
                          "rt_sigprocmask", "getrlimit"),
    "_exit": ("exit_group", "exit"),
    "exit": ("exit_group",),
    "abort": ("rt_sigprocmask", "gettid", "tgkill", "exit_group"),
    "__fxstat": ("fstat",), "__xstat": ("stat",), "__lxstat": ("lstat",),
    "__fxstatat": ("newfstatat",),
    "__getpagesize": (),
    "__assert_fail": ("write", "exit_group"),
}, internal={
    "__libc_start_main": ("exit", "__libc_init_first"),
    "__assert_fail": ("fprintf", "abort"),
})

# --- malloc (universal) -----------------------------------------------------
_SYMBOLS += _family("malloc", "universal", [
    "malloc", "free", "calloc", "realloc", "posix_memalign", "memalign",
    "valloc", "pvalloc", "aligned_alloc", "malloc_usable_size",
    "mallopt", "malloc_trim", "malloc_stats", "mallinfo",
    "reallocarray", "cfree",
], syscalls={
    "malloc": ("brk", "mmap"),
    "free": ("munmap", "brk"),
    "calloc": ("brk", "mmap"),
    "realloc": ("brk", "mmap", "mremap", "munmap"),
    "memalign": ("brk", "mmap"),
    "posix_memalign": ("brk", "mmap"),
    "aligned_alloc": ("brk", "mmap"),
    "valloc": ("brk", "mmap"),
    "pvalloc": ("brk", "mmap"),
    "malloc_trim": ("madvise", "brk"),
})

# --- string & memory (universal) --------------------------------------------
_SYMBOLS += _family("string", "universal", [
    "memcpy", "memmove", "memset", "memcmp", "memchr", "memrchr",
    "mempcpy", "memccpy", "memmem", "strcpy", "strncpy", "strcat",
    "strncat", "strcmp", "strncmp", "strcasecmp", "strncasecmp",
    "strchr", "strrchr", "strchrnul", "strstr", "strcasestr", "strlen",
    "strnlen", "strdup", "strndup", "strtok", "strtok_r", "strsep",
    "strspn", "strcspn", "strpbrk", "strerror", "strerror_r",
    "strsignal", "stpcpy", "stpncpy", "strcoll", "strxfrm", "strfry",
    "basename", "dirname", "index", "rindex", "bcopy", "bzero", "bcmp",
    "ffs", "ffsl", "ffsll", "swab", "strverscmp",
])

# --- stdio (universal head) -------------------------------------------------
_SYMBOLS += _family("stdio", "universal", [
    "printf", "fprintf", "sprintf", "snprintf", "vprintf", "vfprintf",
    "vsprintf", "vsnprintf", "asprintf", "vasprintf", "dprintf",
    "vdprintf", "scanf", "fscanf", "sscanf", "vscanf", "vfscanf",
    "vsscanf", "fopen", "freopen", "fdopen", "fclose", "fflush",
    "fread", "fwrite", "fgetc", "fgets", "fputc", "fputs", "getc",
    "getchar", "putc", "putchar", "puts", "ungetc", "fseek", "ftell",
    "rewind", "fgetpos", "fsetpos", "fseeko", "ftello", "feof",
    "ferror", "clearerr", "fileno", "perror", "setbuf", "setvbuf",
    "setbuffer", "setlinebuf", "tmpfile", "tmpnam", "tempnam",
    "getline", "getdelim", "fmemopen", "open_memstream", "fpurge",
    "__fpending", "flockfile", "funlockfile", "ftrylockfile",
    "getc_unlocked", "getchar_unlocked", "putc_unlocked",
    "putchar_unlocked", "fgets_unlocked", "fputs_unlocked",
    "fread_unlocked", "fwrite_unlocked", "feof_unlocked",
    "ferror_unlocked", "fileno_unlocked", "clearerr_unlocked",
    "fgetc_unlocked", "fputc_unlocked", "popen", "pclose", "ctermid",
    "cuserid", "remove", "renameat_wrapper_unused",
], syscalls={
    "printf": ("write", "writev", "fstat", "mmap"),
    "fprintf": ("write", "writev"), "vfprintf": ("write", "writev"),
    "dprintf": ("write",),
    "vdprintf": ("write",), "vprintf": ("write",), "puts": ("write",),
    "putchar": ("write",), "fputs": ("write",), "fputc": ("write",),
    "putc": ("write",), "fwrite": ("write",),
    "scanf": ("read",), "fscanf": ("read", "readv"),
    "vfscanf": ("read", "readv"),
    "fopen": ("open", "fstat", "mmap"),
    "freopen": ("close", "open", "fstat"),
    "fdopen": ("fcntl", "fstat"),
    "fclose": ("close", "munmap", "write"),
    "fflush": ("write",),
    "fread": ("read",), "fgets": ("read",), "fgetc": ("read",),
    "getc": ("read",), "getchar": ("read",), "getline": ("read",),
    "getdelim": ("read", "readv"), "ungetc": (),
    "fseek": ("lseek",), "fseeko": ("lseek",), "ftell": ("lseek",),
    "ftello": ("lseek",), "rewind": ("lseek",),
    "tmpfile": ("open", "unlink"),
    "popen": ("pipe2", "clone", "vfork", "execve", "close", "dup2"),
    "pclose": ("wait4", "close"),
    "perror": ("write",),
    "remove": ("unlink", "rmdir"),
}, internal={
    "printf": ("vfprintf",), "fprintf": ("vfprintf",),
    "sprintf": ("vsnprintf",), "snprintf": ("vsnprintf",),
    "asprintf": ("vasprintf", "malloc"),
    "perror": ("strerror", "fprintf"),
    "popen": ("fdopen",),
})

# --- stdlib (universal) ------------------------------------------------
_SYMBOLS += _family("stdlib", "universal", [
    "atoi", "atol", "atoll", "atof", "strtol", "strtoul", "strtoll",
    "strtoull", "strtod", "strtof", "strtold", "strtoq", "strtouq",
    "qsort", "qsort_r", "bsearch", "lsearch", "lfind", "rand", "srand",
    "rand_r", "random", "srandom", "initstate", "setstate", "random_r",
    "srandom_r", "drand48", "lrand48", "mrand48", "srand48", "seed48",
    "erand48", "nrand48", "jrand48", "lcong48", "abs", "labs", "llabs",
    "div", "ldiv", "lldiv", "getenv", "setenv", "unsetenv", "putenv",
    "clearenv", "mkstemp", "mkstemps", "mkostemp", "mkostemps",
    "mkdtemp", "mktemp", "realpath", "canonicalize_file_name", "system",
    "a64l", "l64a", "ecvt", "fcvt", "gcvt", "ecvt_r", "fcvt_r",
    "qecvt", "qfcvt", "qgcvt", "atexit_unused_alias",
], syscalls={
    "mkstemp": ("open",), "mkostemp": ("open",), "mkstemps": ("open",),
    "mkostemps": ("open",), "mkdtemp": ("mkdir",),
    "realpath": ("lstat", "readlink", "getcwd"),
    "canonicalize_file_name": ("lstat", "readlink"),
    "system": ("clone", "vfork", "execve", "wait4", "rt_sigaction",
               "rt_sigprocmask"),
    "getenv": (), "setenv": (), "putenv": (),
})

# --- process control (universal/common) -----------------------------------
_SYMBOLS += _family("process", "universal", [
    "fork", "vfork", "execve", "execv", "execvp", "execvpe", "execl",
    "execlp", "execle", "fexecve", "waitpid", "wait", "wait3", "wait4",
    "waitid", "getpid", "getppid", "kill", "raise", "sleep", "usleep",
    "nanosleep", "pause", "alarm", "getpgrp", "getpgid", "setpgid",
    "setpgrp", "setsid", "getsid", "nice", "daemon", "_Fork",
], syscalls={
    "fork": ("clone",), "vfork": ("vfork", "clone"), "_Fork": ("clone",),
    "execve": ("execve",), "execv": ("execve",), "execvp": ("execve",),
    "execvpe": ("execve",), "execl": ("execve",), "execlp": ("execve",),
    "execle": ("execve",), "fexecve": ("execveat", "execve"),
    "waitpid": ("wait4",), "wait": ("wait4",), "wait3": ("wait4",),
    "wait4": ("wait4",), "waitid": ("waitid",),
    "getpid": ("getpid",), "getppid": ("getppid",), "kill": ("kill",),
    "raise": ("gettid", "tgkill"),
    "sleep": ("nanosleep", "rt_sigprocmask"), "usleep": ("nanosleep",),
    "nanosleep": ("nanosleep",), "pause": ("pause",), "alarm": ("alarm",),
    "getpgrp": ("getpgrp",), "getpgid": ("getpgid",),
    "setpgid": ("setpgid",), "setpgrp": ("setpgid",),
    "setsid": ("setsid",), "getsid": ("getsid",),
    "nice": ("setpriority", "getpriority"),
    "daemon": ("clone", "setsid", "open", "dup2", "close"),
})

# --- identity (universal) ---------------------------------------------------
_SYMBOLS += _family("identity", "universal", [
    "getuid", "geteuid", "getgid", "getegid", "setuid", "setgid",
    "seteuid", "setegid", "setreuid", "setregid", "setresuid",
    "setresgid", "getresuid", "getresgid", "getgroups", "setgroups",
    "initgroups", "group_member", "setfsuid", "setfsgid",
], syscalls={
    "getuid": ("getuid",), "geteuid": ("geteuid",), "getgid": ("getgid",),
    "getegid": ("getegid",), "setuid": ("setresuid", "setuid"),
    "setgid": ("setresgid", "setgid"),
    "seteuid": ("setresuid",), "setegid": ("setresgid",),
    "setreuid": ("setreuid",), "setregid": ("setregid",),
    "setresuid": ("setresuid",), "setresgid": ("setresgid",),
    "getresuid": ("getresuid",), "getresgid": ("getresgid",),
    "getgroups": ("getgroups",), "setgroups": ("setgroups",),
    "initgroups": ("setgroups",), "setfsuid": ("setfsuid",),
    "setfsgid": ("setfsgid",),
})

# --- file & directory I/O (universal) -------------------------------------
_SYMBOLS += _family("io", "universal", [
    "open", "open64", "openat", "openat64", "creat", "creat64", "close",
    "read", "write", "pread", "pwrite", "pread64", "pwrite64", "readv",
    "writev", "preadv", "pwritev", "lseek", "lseek64", "dup", "dup2",
    "dup3", "pipe", "pipe2", "fcntl", "ioctl", "fsync", "fdatasync",
    "sync", "syncfs", "truncate", "ftruncate", "truncate64",
    "ftruncate64", "stat", "fstat", "lstat", "stat64", "fstat64",
    "lstat64", "fstatat", "fstatat64", "access", "faccessat", "chmod",
    "fchmod", "fchmodat", "chown", "fchown", "lchown", "fchownat",
    "umask", "mkdir", "mkdirat", "rmdir", "rename", "renameat",
    "renameat2", "link", "linkat", "unlink", "unlinkat", "symlink",
    "symlinkat", "readlink", "readlinkat", "mknod", "mknodat",
    "mkfifo", "mkfifoat", "chdir", "fchdir", "getcwd", "getwd",
    "get_current_dir_name", "opendir", "fdopendir", "readdir",
    "readdir_r", "readdir64", "closedir", "rewinddir", "seekdir",
    "telldir", "dirfd", "scandir", "scandir64", "alphasort",
    "versionsort", "nftw", "ftw", "sendfile", "sendfile64", "splice",
    "tee", "vmsplice", "copy_file_range", "posix_fadvise",
    "posix_fallocate", "fallocate", "readahead", "flock", "lockf",
    "lockf64", "statfs", "fstatfs", "statvfs", "fstatvfs", "ustat",
    "utime", "utimes", "futimes", "lutimes", "futimens", "utimensat",
    "futimesat", "pathconf", "fpathconf", "realpath_unused_alias",
], syscalls={
    "open": ("open",), "open64": ("open",), "openat": ("openat",),
    "openat64": ("openat",), "creat": ("open",), "creat64": ("open",),
    "close": ("close",), "read": ("read",), "write": ("write",),
    "pread": ("pread64",), "pread64": ("pread64",),
    "pwrite": ("pwrite64",), "pwrite64": ("pwrite64",),
    "readv": ("readv",), "writev": ("writev",),
    "preadv": ("preadv",), "pwritev": ("pwritev",),
    "lseek": ("lseek",), "lseek64": ("lseek",),
    "dup": ("dup",), "dup2": ("dup2",), "dup3": ("dup3",),
    "pipe": ("pipe",), "pipe2": ("pipe2",),
    "fcntl": ("fcntl",), "ioctl": ("ioctl",),
    "fsync": ("fsync",), "fdatasync": ("fdatasync",), "sync": ("sync",),
    "syncfs": ("syncfs",),
    "truncate": ("truncate",), "ftruncate": ("ftruncate",),
    "truncate64": ("truncate",), "ftruncate64": ("ftruncate",),
    "stat": ("stat",), "fstat": ("fstat",), "lstat": ("lstat",),
    "stat64": ("stat",), "fstat64": ("fstat",), "lstat64": ("lstat",),
    "fstatat": ("newfstatat",), "fstatat64": ("newfstatat",),
    "access": ("access",), "faccessat": ("faccessat",),
    "chmod": ("chmod",), "fchmod": ("fchmod",), "fchmodat": ("fchmodat",),
    "chown": ("chown",), "fchown": ("fchown",), "lchown": ("lchown",),
    "fchownat": ("fchownat",), "umask": ("umask",),
    "mkdir": ("mkdir",), "mkdirat": ("mkdirat",), "rmdir": ("rmdir",),
    "rename": ("rename",), "renameat": ("renameat",),
    "renameat2": ("renameat2",),
    "link": ("link",), "linkat": ("linkat",),
    "unlink": ("unlink",), "unlinkat": ("unlinkat",),
    "symlink": ("symlink",), "symlinkat": ("symlinkat",),
    "readlink": ("readlink",), "readlinkat": ("readlinkat",),
    "mknod": ("mknod",), "mknodat": ("mknodat",),
    "mkfifo": ("mknod",), "mkfifoat": ("mknodat",),
    "chdir": ("chdir",), "fchdir": ("fchdir",),
    "getcwd": ("getcwd",), "getwd": ("getcwd",),
    "get_current_dir_name": ("getcwd",),
    "opendir": ("open", "fstat"), "fdopendir": ("fstat", "fcntl"),
    "readdir": ("getdents",), "readdir_r": ("getdents",),
    "readdir64": ("getdents",), "closedir": ("close",),
    "rewinddir": ("lseek",), "seekdir": ("lseek",),
    "telldir": (), "dirfd": (),
    "scandir": ("open", "getdents", "close"),
    "scandir64": ("open", "getdents", "close"),
    "nftw": ("open", "getdents", "stat", "fchdir", "close"),
    "ftw": ("open", "getdents", "stat", "close"),
    "sendfile": ("sendfile",), "sendfile64": ("sendfile",),
    "splice": ("splice",), "tee": ("tee",), "vmsplice": ("vmsplice",),
    "copy_file_range": ("sendfile",),
    "posix_fadvise": ("fadvise64",), "posix_fallocate": ("fallocate",),
    "fallocate": ("fallocate",), "readahead": ("readahead",),
    "flock": ("flock",), "lockf": ("fcntl",), "lockf64": ("fcntl",),
    "statfs": ("statfs",), "fstatfs": ("fstatfs",),
    "statvfs": ("statfs",), "fstatvfs": ("fstatfs",),
    "ustat": ("ustat",),
    "utime": ("utime",), "utimes": ("utimes",),
    "futimes": ("utimes",), "lutimes": ("utimensat",),
    "futimens": ("utimensat",), "utimensat": ("utimensat",),
    "futimesat": ("futimesat",),
    "pathconf": ("statfs",), "fpathconf": ("fstatfs",),
})

# --- memory management wrappers (universal) ----------------------------------
_SYMBOLS += _family("memory", "universal", [
    "mmap", "mmap64", "munmap", "mprotect", "mremap", "msync",
    "madvise", "mincore", "mlock", "munlock", "mlockall", "munlockall",
    "brk", "sbrk", "shm_open", "shm_unlink", "memfd_create",
    "remap_file_pages_wrapper_unused",
], syscalls={
    "mmap": ("mmap",), "mmap64": ("mmap",), "munmap": ("munmap",),
    "mprotect": ("mprotect",), "mremap": ("mremap",), "msync": ("msync",),
    "madvise": ("madvise",), "mincore": ("mincore",),
    "mlock": ("mlock",), "munlock": ("munlock",),
    "mlockall": ("mlockall",), "munlockall": ("munlockall",),
    "brk": ("brk",), "sbrk": ("brk",),
    "shm_open": ("open",), "shm_unlink": ("unlink",),
    "memfd_create": ("memfd_create",),
})

# --- signals (universal) ----------------------------------------------------
_SYMBOLS += _family("signal", "universal", [
    "signal", "sigaction", "sigprocmask", "sigpending", "sigsuspend",
    "sigwait", "sigwaitinfo", "sigtimedwait", "sigqueue", "sigemptyset",
    "sigfillset", "sigaddset", "sigdelset", "sigismember", "sigaltstack",
    "siginterrupt", "killpg", "psignal", "psiginfo", "sigsetmask",
    "sigblock", "siggetmask", "sigvec", "sigstack", "sigreturn",
    "bsd_signal", "sysv_signal", "gsignal", "ssignal",
], syscalls={
    "signal": ("rt_sigaction",), "sigaction": ("rt_sigaction",),
    "sigprocmask": ("rt_sigprocmask",), "sigpending": ("rt_sigpending",),
    "sigsuspend": ("rt_sigsuspend",),
    "sigwait": ("rt_sigtimedwait",), "sigwaitinfo": ("rt_sigtimedwait",),
    "sigtimedwait": ("rt_sigtimedwait",),
    "sigqueue": ("rt_sigqueueinfo",), "sigaltstack": ("sigaltstack",),
    "killpg": ("kill",), "sigreturn": ("rt_sigreturn",),
    "sigsetmask": ("rt_sigprocmask",), "sigblock": ("rt_sigprocmask",),
    "sigvec": ("rt_sigaction",), "bsd_signal": ("rt_sigaction",),
    "sysv_signal": ("rt_sigaction",), "gsignal": ("gettid", "tgkill"),
    "ssignal": ("rt_sigaction",),
})

# --- time (universal/common) ------------------------------------------------
_SYMBOLS += _family("time", "universal", [
    "time", "gettimeofday", "settimeofday", "clock_gettime",
    "clock_settime", "clock_getres", "clock_nanosleep", "clock",
    "times", "localtime", "localtime_r", "gmtime", "gmtime_r",
    "mktime", "timegm", "timelocal", "asctime", "asctime_r", "ctime",
    "ctime_r", "strftime", "strptime", "difftime", "tzset", "ftime",
    "adjtime", "adjtimex", "ntp_gettime", "ntp_adjtime", "stime",
    "getitimer", "setitimer", "timer_create", "timer_delete",
    "timer_settime", "timer_gettime", "timer_getoverrun",
    "timerfd_create", "timerfd_settime", "timerfd_gettime", "dysize",
], syscalls={
    "time": ("time",), "gettimeofday": ("gettimeofday",),
    "settimeofday": ("settimeofday",),
    "clock_gettime": ("clock_gettime",),
    "clock_settime": ("clock_settime",),
    "clock_getres": ("clock_getres",),
    "clock_nanosleep": ("clock_nanosleep",),
    "clock": ("times", "clock_gettime"), "times": ("times",),
    "tzset": ("open", "read", "close", "fstat", "mmap"),
    "adjtime": ("adjtimex",), "adjtimex": ("adjtimex",),
    "ntp_gettime": ("adjtimex",), "ntp_adjtime": ("adjtimex",),
    "stime": ("settimeofday",),
    "getitimer": ("getitimer",), "setitimer": ("setitimer",),
    "timer_create": ("timer_create",), "timer_delete": ("timer_delete",),
    "timer_settime": ("timer_settime",),
    "timer_gettime": ("timer_gettime",),
    "timer_getoverrun": ("timer_getoverrun",),
    "timerfd_create": ("timerfd_create",),
    "timerfd_settime": ("timerfd_settime",),
    "timerfd_gettime": ("timerfd_gettime",),
    "ftime": ("gettimeofday",),
})

# --- system info / resources (universal/common) -----------------------------
_SYMBOLS += _family("system", "universal", [
    "uname", "gethostname", "sethostname", "getdomainname",
    "setdomainname", "sysinfo", "sysconf", "getrlimit", "setrlimit",
    "getrusage", "getpriority", "setpriority", "prlimit", "prlimit64",
    "getloadavg", "gethostid", "sethostid", "select", "pselect",
    "poll", "ppoll", "epoll_create", "epoll_create1", "epoll_ctl",
    "epoll_wait", "epoll_pwait", "eventfd", "eventfd_read",
    "eventfd_write", "signalfd", "inotify_init", "inotify_init1",
    "inotify_add_watch", "inotify_rm_watch", "fanotify_init",
    "fanotify_mark", "syscall", "prctl", "arch_prctl_unused_alias",
    "personality", "syslog_wrapper_unused", "klogctl", "acct",
    "swapon", "swapoff", "reboot", "mount", "umount", "umount2",
    "pivot_root", "chroot", "sethostent", "vhangup", "quotactl",
    "nfsservctl", "sysctl",
], syscalls={
    "uname": ("uname",), "gethostname": ("uname",),
    "sethostname": ("sethostname",), "getdomainname": ("uname",),
    "setdomainname": ("setdomainname",), "sysinfo": ("sysinfo",),
    "sysconf": ("sysinfo", "open", "read", "close"),
    "getrlimit": ("getrlimit", "prlimit64"),
    "setrlimit": ("setrlimit", "prlimit64"),
    "getrusage": ("getrusage",),
    "getpriority": ("getpriority",), "setpriority": ("setpriority",),
    "prlimit": ("prlimit64",), "prlimit64": ("prlimit64",),
    "getloadavg": ("open", "read", "close"),
    "gethostid": ("open", "read", "close", "uname"),
    "sethostid": ("open", "write", "close"),
    "select": ("select",), "pselect": ("pselect6",),
    "poll": ("poll",), "ppoll": ("ppoll",),
    "epoll_create": ("epoll_create",),
    "epoll_create1": ("epoll_create1",),
    "epoll_ctl": ("epoll_ctl",), "epoll_wait": ("epoll_wait",),
    "epoll_pwait": ("epoll_pwait",),
    "eventfd": ("eventfd2",), "eventfd_read": ("read",),
    "eventfd_write": ("write",), "signalfd": ("signalfd4",),
    "inotify_init": ("inotify_init",),
    "inotify_init1": ("inotify_init1",),
    "inotify_add_watch": ("inotify_add_watch",),
    "inotify_rm_watch": ("inotify_rm_watch",),
    "fanotify_init": ("fanotify_init",),
    "fanotify_mark": ("fanotify_mark",),
    "syscall": (), "prctl": ("prctl",), "personality": ("personality",),
    "klogctl": ("syslog",), "acct": ("acct",),
    "swapon": ("swapon",), "swapoff": ("swapoff",),
    "reboot": ("reboot",), "mount": ("mount",),
    "umount": ("umount2",), "umount2": ("umount2",),
    "pivot_root": ("pivot_root",), "chroot": ("chroot",),
    "vhangup": ("vhangup",), "quotactl": ("quotactl",),
    "nfsservctl": ("nfsservctl",), "sysctl": ("_sysctl",),
})

# --- scheduling & threads-in-libc (common) ---------------------------------
_SYMBOLS += _family("sched", "common", [
    "sched_yield", "sched_setscheduler", "sched_getscheduler",
    "sched_setparam", "sched_getparam", "sched_get_priority_max",
    "sched_get_priority_min", "sched_rr_get_interval",
    "sched_setaffinity", "sched_getaffinity", "getcpu", "clone",
    "unshare", "setns", "posix_spawn", "posix_spawnp",
    "posix_spawn_file_actions_init", "posix_spawn_file_actions_destroy",
    "posix_spawn_file_actions_addopen",
    "posix_spawn_file_actions_addclose",
    "posix_spawn_file_actions_adddup2", "posix_spawnattr_init",
    "posix_spawnattr_destroy", "posix_spawnattr_setflags",
    "posix_spawnattr_getflags", "posix_spawnattr_setsigmask",
    "posix_spawnattr_setpgroup", "gettid",
], syscalls={
    "sched_yield": ("sched_yield",),
    "sched_setscheduler": ("sched_setscheduler",),
    "sched_getscheduler": ("sched_getscheduler",),
    "sched_setparam": ("sched_setparam",),
    "sched_getparam": ("sched_getparam",),
    "sched_get_priority_max": ("sched_get_priority_max",),
    "sched_get_priority_min": ("sched_get_priority_min",),
    "sched_rr_get_interval": ("sched_rr_get_interval",),
    "sched_setaffinity": ("sched_setaffinity",),
    "sched_getaffinity": ("sched_getaffinity",),
    "getcpu": ("getcpu",), "clone": ("clone",),
    "unshare": ("unshare",), "setns": ("setns",),
    "posix_spawn": ("clone", "execve", "dup2", "close"),
    "posix_spawnp": ("clone", "execve", "dup2", "close"),
    "gettid": ("gettid",),
})

# --- sockets & network (common) ----------------------------------------------
_SYMBOLS += _family("network", "common", [
    "socket", "socketpair", "bind", "listen", "accept", "accept4",
    "connect", "shutdown", "send", "sendto", "sendmsg", "sendmmsg",
    "recv", "recvfrom", "recvmsg", "recvmmsg", "getsockname",
    "getpeername", "getsockopt", "setsockopt", "gethostbyname",
    "gethostbyname2", "gethostbyaddr", "gethostbyname_r",
    "gethostbyname2_r", "gethostbyaddr_r", "gethostent", "endhostent",
    "getaddrinfo", "freeaddrinfo", "getnameinfo", "gai_strerror",
    "getservbyname", "getservbyport", "getservent", "setservent",
    "endservent", "getprotobyname", "getprotobynumber", "getprotoent",
    "getnetbyname", "getnetbyaddr", "getnetent", "inet_addr",
    "inet_aton", "inet_ntoa", "inet_ntop", "inet_pton", "inet_network",
    "inet_makeaddr", "inet_lnaof", "inet_netof", "htonl", "htons",
    "ntohl", "ntohs", "if_nametoindex", "if_indextoname",
    "if_nameindex", "if_freenameindex", "getifaddrs", "freeifaddrs",
    "rcmd", "rresvport", "ruserok", "rexec", "herror", "hstrerror",
    "bindresvport", "ether_ntoa", "ether_aton", "ether_ntohost",
    "ether_hostton", "ether_line",
], syscalls={
    "socket": ("socket",), "socketpair": ("socketpair",),
    "bind": ("bind",), "listen": ("listen",),
    "accept": ("accept",), "accept4": ("accept4",),
    "connect": ("connect",), "shutdown": ("shutdown",),
    "send": ("sendto",), "sendto": ("sendto",),
    "sendmsg": ("sendmsg",), "sendmmsg": ("sendmmsg",),
    "recv": ("recvfrom",), "recvfrom": ("recvfrom",),
    "recvmsg": ("recvmsg",), "recvmmsg": ("recvmmsg",),
    "getsockname": ("getsockname",), "getpeername": ("getpeername",),
    "getsockopt": ("getsockopt",), "setsockopt": ("setsockopt",),
    "gethostbyname": ("socket", "connect", "sendto", "recvfrom",
                      "open", "read", "close"),
    "getaddrinfo": ("socket", "connect", "sendto", "recvfrom",
                    "open", "read", "close", "stat"),
    "getnameinfo": ("socket", "connect", "sendto", "recvfrom"),
    "getifaddrs": ("socket", "sendto", "recvmsg", "close"),
    "if_nametoindex": ("socket", "ioctl", "close"),
    "if_indextoname": ("socket", "ioctl", "close"),
    "rcmd": ("socket", "connect", "bind"),
    "rresvport": ("socket", "bind"),
    "bindresvport": ("bind",),
})

# --- users, groups, accounting databases (common) ---------------------------
_SYMBOLS += _family("nss", "common", [
    "getpwnam", "getpwuid", "getpwnam_r", "getpwuid_r", "getpwent",
    "setpwent", "endpwent", "fgetpwent", "putpwent", "getgrnam",
    "getgrgid", "getgrnam_r", "getgrgid_r", "getgrent", "setgrent",
    "endgrent", "fgetgrent", "putgrent", "getgrouplist", "getspnam",
    "getspent", "setspent", "endspent", "getlogin", "getlogin_r",
    "cuserid_unused_alias", "getutent", "getutid", "getutline",
    "setutent", "endutent", "pututline", "utmpname", "updwtmp",
    "login_tty", "logout", "logwtmp", "getpass", "getusershell",
    "setusershell", "endusershell", "sgetspent", "lckpwdf", "ulckpwdf",
], syscalls={
    "getpwnam": ("open", "read", "close", "fstat", "mmap", "socket",
                 "connect"),
    "getpwuid": ("open", "read", "close", "fstat", "mmap", "socket",
                 "connect"),
    "getgrnam": ("open", "read", "close", "fstat", "socket", "connect"),
    "getgrgid": ("open", "read", "close", "fstat", "socket", "connect"),
    "getspnam": ("open", "read", "close", "fstat"),
    "getlogin": ("open", "read", "close", "getuid"),
    "getutent": ("open", "read", "close"),
    "pututline": ("open", "write", "lseek", "close"),
    "updwtmp": ("open", "write", "close"),
    "login_tty": ("setsid", "ioctl", "dup2", "close"),
    "getpass": ("open", "ioctl", "read", "write", "close"),
    "lckpwdf": ("open", "fcntl", "close"),
})

# --- terminals & ptys (common) ------------------------------------------------
_SYMBOLS += _family("tty", "common", [
    "isatty", "ttyname", "ttyname_r", "tcgetattr", "tcsetattr",
    "tcsendbreak", "tcdrain", "tcflush", "tcflow", "tcgetpgrp",
    "tcsetpgrp", "tcgetsid", "cfgetispeed", "cfgetospeed",
    "cfsetispeed", "cfsetospeed", "cfsetspeed", "cfmakeraw",
    "openpty", "forkpty", "posix_openpt", "grantpt", "unlockpt",
    "ptsname", "ptsname_r", "getpt",
], syscalls={
    "isatty": ("ioctl",), "ttyname": ("ioctl", "readlink", "fstat"),
    "ttyname_r": ("ioctl", "readlink", "fstat"),
    "tcgetattr": ("ioctl",), "tcsetattr": ("ioctl",),
    "tcsendbreak": ("ioctl",), "tcdrain": ("ioctl",),
    "tcflush": ("ioctl",), "tcflow": ("ioctl",),
    "tcgetpgrp": ("ioctl",), "tcsetpgrp": ("ioctl",),
    "tcgetsid": ("ioctl",),
    "openpty": ("open", "ioctl"), "forkpty": ("open", "ioctl", "clone"),
    "posix_openpt": ("open",), "grantpt": ("ioctl",),
    "unlockpt": ("ioctl",), "ptsname": ("ioctl",),
    "ptsname_r": ("ioctl",), "getpt": ("open",),
})

# --- xattr & capabilities (occasional) ----------------------------------------
_SYMBOLS += _family("xattr", "occasional", [
    "setxattr", "lsetxattr", "fsetxattr", "getxattr", "lgetxattr",
    "fgetxattr", "listxattr", "llistxattr", "flistxattr", "removexattr",
    "lremovexattr", "fremovexattr", "capget", "capset",
], syscalls={name: (name,) for name in [
    "setxattr", "lsetxattr", "fsetxattr", "getxattr", "lgetxattr",
    "fgetxattr", "listxattr", "llistxattr", "flistxattr", "removexattr",
    "lremovexattr", "fremovexattr", "capget", "capset"]})

# --- System V IPC (occasional) -----------------------------------------------
# POSIX message queues live in librt (see repro.libc.runtime), matching
# the real layout; only the System V family is exported by libc.
_SYMBOLS += _family("ipc", "occasional", [
    "shmget", "shmat", "shmdt", "shmctl", "semget", "semop", "semctl",
    "semtimedop", "msgget", "msgsnd", "msgrcv", "msgctl", "ftok",
], syscalls={
    "shmget": ("shmget",), "shmat": ("shmat",), "shmdt": ("shmdt",),
    "shmctl": ("shmctl",), "semget": ("semget",), "semop": ("semop",),
    "semctl": ("semctl",), "semtimedop": ("semtimedop",),
    "msgget": ("msgget",), "msgsnd": ("msgsnd",), "msgrcv": ("msgrcv",),
    "msgctl": ("msgctl",), "ftok": ("stat",),
})

# --- locale & iconv (occasional) ---------------------------------------------
_SYMBOLS += _family("locale", "occasional", [
    "setlocale", "localeconv", "nl_langinfo", "nl_langinfo_l",
    "newlocale", "duplocale", "freelocale", "uselocale", "iconv_open",
    "iconv", "iconv_close", "gettext", "dgettext", "dcgettext",
    "ngettext", "dngettext", "dcngettext", "textdomain",
    "bindtextdomain", "bind_textdomain_codeset", "catopen", "catgets",
    "catclose", "strcoll_l", "strxfrm_l", "strcasecmp_l",
    "strncasecmp_l", "strftime_l", "strtod_l", "strtol_l", "strtoul_l",
    "isalpha_l", "isdigit_l", "toupper_l", "tolower_l",
], syscalls={
    "setlocale": ("open", "read", "fstat", "mmap", "close"),
    "iconv_open": ("open", "read", "fstat", "mmap", "close"),
    "gettext": ("open", "read", "fstat", "mmap", "close"),
    "catopen": ("open", "fstat", "mmap", "close"),
})

# --- ctype (universal) ---------------------------------------------------
_SYMBOLS += _family("ctype", "universal", [
    "isalpha", "isdigit", "isalnum", "isspace", "isupper", "islower",
    "isprint", "ispunct", "isgraph", "iscntrl", "isxdigit", "isblank",
    "isascii", "toupper", "tolower", "toascii", "__ctype_b_loc",
    "__ctype_tolower_loc", "__ctype_toupper_loc",
])

# --- wide characters (occasional) ------------------------------------------
_WCHAR_BASE = [
    "wcscpy", "wcsncpy", "wcscat", "wcsncat", "wcscmp", "wcsncmp",
    "wcscasecmp", "wcsncasecmp", "wcschr", "wcsrchr", "wcsstr",
    "wcslen", "wcsnlen", "wcsdup", "wcstok", "wcsspn", "wcscspn",
    "wcspbrk", "wcscoll", "wcsxfrm", "wmemcpy", "wmemmove", "wmemset",
    "wmemcmp", "wmemchr", "wcstol", "wcstoul", "wcstoll", "wcstoull",
    "wcstod", "wcstof", "wcstold", "wcwidth", "wcswidth", "mbtowc",
    "wctomb", "mbstowcs", "wcstombs", "mblen", "mbrlen", "mbrtowc",
    "wcrtomb", "mbsrtowcs", "wcsrtombs", "mbsnrtowcs", "wcsnrtombs",
    "mbsinit", "btowc", "wctob", "fgetwc", "fgetws", "fputwc", "fputws",
    "getwc", "getwchar", "putwc", "putwchar", "ungetwc", "fwide",
    "wprintf", "fwprintf", "swprintf", "vwprintf", "vfwprintf",
    "vswprintf", "wscanf", "fwscanf", "swscanf", "vwscanf", "vfwscanf",
    "vswscanf", "wcsftime", "iswalpha", "iswdigit", "iswalnum",
    "iswspace", "iswupper", "iswlower", "iswprint", "iswpunct",
    "iswgraph", "iswcntrl", "iswxdigit", "iswblank", "towupper",
    "towlower", "towctrans", "wctrans", "wctype", "iswctype",
    "wcpcpy", "wcpncpy", "wcschrnul", "wcsncasecmp_l", "wcscasecmp_l",
]
_SYMBOLS += _family("wchar", "occasional", _WCHAR_BASE, syscalls={
    "fgetwc": ("read",), "fgetws": ("read",),
    "fputwc": ("write",), "fputws": ("write",),
    "wprintf": ("write",), "fwprintf": ("write",),
    "vfwprintf": ("write",), "wscanf": ("read",), "fwscanf": ("read",),
})

# --- regex / glob / matching (common) ----------------------------------------
_SYMBOLS += _family("match", "common", [
    "regcomp", "regexec", "regfree", "regerror", "fnmatch", "glob",
    "glob64", "globfree", "globfree64", "wordexp", "wordfree",
    "re_compile_pattern", "re_search", "re_match", "re_set_syntax",
    "re_compile_fastmap", "re_search_2", "re_match_2",
], syscalls={
    "glob": ("open", "getdents", "stat", "close"),
    "glob64": ("open", "getdents", "stat", "close"),
    "wordexp": ("clone", "execve", "pipe2", "read", "wait4"),
})

# --- dynamic loading hooks kept in libc (common) -------------------------------
_SYMBOLS += _family("dl", "common", [
    "dlopen", "dlclose", "dlsym", "dlerror", "dladdr", "dlinfo",
    "dlvsym", "dl_iterate_phdr",
], syscalls={
    "dlopen": ("open", "read", "fstat", "mmap", "mprotect", "close"),
    "dl_iterate_phdr": (),
})

# --- searching / hashing / trees (rare) --------------------------------------
_SYMBOLS += _family("search", "rare", [
    "hcreate", "hdestroy", "hsearch", "hcreate_r", "hdestroy_r",
    "hsearch_r", "tsearch", "tfind", "tdelete", "twalk", "tdestroy",
    "insque", "remque",
])

# --- argz / envz / obstack / argp (rare) ---------------------------------------
_SYMBOLS += _family("gnuext", "rare", [
    "argz_create", "argz_create_sep", "argz_count", "argz_extract",
    "argz_stringify", "argz_add", "argz_add_sep", "argz_append",
    "argz_delete", "argz_insert", "argz_next", "argz_replace",
    "envz_entry", "envz_get", "envz_add", "envz_merge", "envz_remove",
    "envz_strip", "obstack_free", "_obstack_newchunk",
    "_obstack_begin", "_obstack_begin_1", "_obstack_allocated_p",
    "_obstack_memory_used", "obstack_alloc_failed_handler",
    "argp_parse", "argp_usage", "argp_error", "argp_failure",
    "argp_state_help", "argp_help",
], syscalls={
    "argp_error": ("write", "exit_group"),
    "argp_failure": ("write",),
})

# --- Sun RPC & XDR (rare → unused; deprecated surface) -----------------------
_RPC = [
    "clnt_create", "clnt_destroy", "clnt_pcreateerror",
    "clnt_perrno", "clnt_perror", "clnt_spcreateerror", "clnt_sperrno",
    "clnt_sperror", "clntraw_create", "clnttcp_create", "clntudp_create",
    "clntudp_bufcreate", "clntunix_create", "clnt_broadcast",
    "svc_register", "svc_unregister", "svc_run", "svc_exit",
    "svc_getreq", "svc_getreqset", "svc_sendreply", "svcerr_auth",
    "svcerr_decode", "svcerr_noproc", "svcerr_noprog", "svcerr_progvers",
    "svcerr_systemerr", "svcerr_weakauth", "svcraw_create",
    "svctcp_create", "svcudp_create", "svcudp_bufcreate",
    "svcunix_create", "svcfd_create", "xprt_register", "xprt_unregister",
    "pmap_getmaps", "pmap_getport", "pmap_rmtcall", "pmap_set",
    "pmap_unset", "callrpc", "registerrpc", "authnone_create",
    "authunix_create", "authunix_create_default", "authdes_create",
    "authdes_pk_create", "auth_destroy", "get_myaddress",
    "getrpcbyname", "getrpcbynumber", "getrpcent", "setrpcent",
    "endrpcent", "getrpcport", "rpc_createerr_location",
    "xdr_void", "xdr_int", "xdr_u_int", "xdr_long", "xdr_u_long",
    "xdr_short", "xdr_u_short", "xdr_char", "xdr_u_char", "xdr_bool",
    "xdr_enum", "xdr_array", "xdr_bytes", "xdr_opaque", "xdr_string",
    "xdr_union", "xdr_vector", "xdr_reference", "xdr_pointer",
    "xdr_wrapstring", "xdr_float", "xdr_double", "xdr_quad_t",
    "xdr_u_quad_t", "xdr_int8_t", "xdr_uint8_t", "xdr_int16_t",
    "xdr_uint16_t", "xdr_int32_t", "xdr_uint32_t", "xdr_int64_t",
    "xdr_uint64_t", "xdr_netobj", "xdr_free", "xdrmem_create",
    "xdrrec_create", "xdrrec_endofrecord", "xdrrec_eof",
    "xdrrec_skiprecord", "xdrstdio_create", "xdr_sizeof",
    "key_decryptsession", "key_encryptsession", "key_gendes",
    "key_setsecret", "key_secretkey_is_set", "netname2host",
    "netname2user", "user2netname", "host2netname", "getnetname",
    "rtime",
]
_SYMBOLS += _family("rpc", "rare", _RPC[:40], syscalls={
    "clnttcp_create": ("socket", "connect"),
    "clntudp_create": ("socket", "connect"),
    "svctcp_create": ("socket", "bind", "listen"),
    "svcudp_create": ("socket", "bind"),
    "svc_run": ("poll",),
    "pmap_getport": ("socket", "connect", "sendto", "recvfrom"),
})
_SYMBOLS += _family("rpc", "unused", _RPC[40:])

# --- resolver (rare) ---------------------------------------------------------
_SYMBOLS += _family("resolver", "rare", [
    "res_init", "res_query", "res_search", "res_querydomain",
    "res_mkquery", "res_send", "res_nquery", "res_nsearch",
    "res_nmkquery", "res_nsend", "res_ninit", "res_nclose",
    "dn_comp", "dn_expand", "dn_skipname", "ns_initparse",
    "ns_parserr", "ns_sprintrr", "ns_name_ntop", "ns_name_pton",
    "ns_name_unpack", "ns_name_pack", "ns_name_compress",
    "ns_name_uncompress", "ns_get16", "ns_get32", "ns_put16",
    "ns_put32",
], syscalls={
    "res_query": ("socket", "connect", "sendto", "recvfrom", "poll"),
    "res_send": ("socket", "connect", "sendto", "recvfrom", "poll"),
    "res_init": ("open", "read", "close", "fstat"),
})

# --- AIO (rare) -------------------------------------------------------------
_SYMBOLS += _family("aio", "rare", [
    "aio_read", "aio_write", "aio_error", "aio_return", "aio_suspend",
    "aio_cancel", "aio_fsync", "lio_listio", "aio_init",
], syscalls={
    "aio_read": ("pread64", "clone"),
    "aio_write": ("pwrite64", "clone"),
    "aio_suspend": ("futex",),
    "lio_listio": ("pread64", "pwrite64", "clone"),
})

# --- profiling & debugging (rare) ------------------------------------------
_SYMBOLS += _family("debug", "rare", [
    "backtrace", "backtrace_symbols", "backtrace_symbols_fd", "ptrace",
    "profil", "moncontrol", "monstartup", "mcount", "mcheck",
    "mcheck_pedantic", "mcheck_check_all", "mprobe", "mtrace",
    "muntrace", "gcvt_unused_alias",
], syscalls={
    "backtrace_symbols_fd": ("write",),
    "ptrace": ("ptrace",),
    "profil": ("setitimer", "rt_sigaction"),
    "mtrace": ("open", "fstat"),
})

# --- crypt & legacy misc (rare/unused) ---------------------------------------
_SYMBOLS += _family("legacy", "rare", [
    "crypt", "crypt_r", "encrypt", "encrypt_r", "setkey", "setkey_r",
    "fcrypt", "gets", "gets_unused_alias", "vlimit", "vtimes",
    "ulimit", "ioperm", "iopl", "getcontext", "setcontext",
    "makecontext", "swapcontext", "sstk", "revoke", "sigignore",
    "sigset", "sighold", "sigrelse",
], syscalls={
    "gets": ("read",), "ulimit": ("getrlimit", "setrlimit"),
    "ioperm": ("ioperm",), "iopl": ("iopl",),
    "getcontext": ("rt_sigprocmask",), "setcontext": ("rt_sigprocmask",),
    "swapcontext": ("rt_sigprocmask",),
    "sigignore": ("rt_sigaction",), "sigset": ("rt_sigaction",),
    "sighold": ("rt_sigprocmask",), "sigrelse": ("rt_sigprocmask",),
})

# --- keys & security (rare) ----------------------------------------------
_SYMBOLS += _family("security", "rare", [
    "getauxval", "issetugid_np", "explicit_bzero", "getentropy",
    "getrandom_wrapper",
], syscalls={
    "getentropy": ("getrandom",),
    "getrandom_wrapper": ("getrandom",),
})

# --- glibc stdio internals exported for header macros (common) ---------------
# getc()/putc() compile to calls into these on glibc; other libcs do not
# export them, which drives Table 7's uClibc/musl results.
_SYMBOLS += _family("stdio-internal", "common", [
    "__uflow", "__overflow", "__underflow", "_IO_getc", "_IO_putc",
    "_IO_puts", "_IO_feof", "_IO_ferror", "_IO_ungetc", "_IO_fread",
    "_IO_fwrite", "_IO_fopen", "_IO_fclose", "_IO_fgets", "_IO_fputs",
    "_IO_fflush", "_IO_fseek", "_IO_ftell", "_IO_printf",
    "_IO_vfprintf", "_IO_vfscanf", "_IO_seekoff", "_IO_seekpos",
    "_IO_setvbuf", "__wuflow", "__woverflow", "__wunderflow",
], syscalls={
    "__uflow": ("read",), "__underflow": ("read",),
    "__overflow": ("write",), "_IO_getc": ("read",),
    "_IO_putc": ("write",), "_IO_puts": ("write",),
    "_IO_fread": ("read",), "_IO_fwrite": ("write",),
    "_IO_fopen": ("open", "fstat", "mmap"), "_IO_fclose": ("close",),
    "_IO_fgets": ("read",), "_IO_fputs": ("write",),
    "_IO_fflush": ("write",), "_IO_fseek": ("lseek",),
    "_IO_ftell": ("lseek",), "_IO_printf": ("write",),
    "_IO_vfprintf": ("write",), "_IO_vfscanf": ("read",),
    "_IO_seekoff": ("lseek",), "_IO_seekpos": ("lseek",),
    "__wuflow": ("read",), "__woverflow": ("write",),
    "__wunderflow": ("read",),
})

# --- fortify (_chk) variants ---------------------------------------------
# GNU libc headers transparently replace many calls with checked
# variants at compile time (``-D_FORTIFY_SOURCE``); §4.2 normalizes
# these when comparing libc variants.
FORTIFY_MAP: Dict[str, str] = {
    "__printf_chk": "printf",
    "__fprintf_chk": "fprintf",
    "__sprintf_chk": "sprintf",
    "__snprintf_chk": "snprintf",
    "__vprintf_chk": "vprintf",
    "__vfprintf_chk": "vfprintf",
    "__vsprintf_chk": "vsprintf",
    "__vsnprintf_chk": "vsnprintf",
    "__asprintf_chk": "asprintf",
    "__dprintf_chk": "dprintf",
    "__memcpy_chk": "memcpy",
    "__memmove_chk": "memmove",
    "__memset_chk": "memset",
    "__mempcpy_chk": "mempcpy",
    "__strcpy_chk": "strcpy",
    "__strncpy_chk": "strncpy",
    "__strcat_chk": "strcat",
    "__strncat_chk": "strncat",
    "__stpcpy_chk": "stpcpy",
    "__stpncpy_chk": "stpncpy",
    "__fgets_chk": "fgets",
    "__fgets_unlocked_chk": "fgets_unlocked",
    "__gets_chk": "gets",
    "__read_chk": "read",
    "__pread_chk": "pread",
    "__pread64_chk": "pread64",
    "__readlink_chk": "readlink",
    "__readlinkat_chk": "readlinkat",
    "__getcwd_chk": "getcwd",
    "__getwd_chk": "getwd",
    "__realpath_chk": "realpath",
    "__recv_chk": "recv",
    "__recvfrom_chk": "recvfrom",
    "__poll_chk": "poll",
    "__ppoll_chk": "ppoll",
    "__wcscpy_chk": "wcscpy",
    "__wcsncpy_chk": "wcsncpy",
    "__wcscat_chk": "wcscat",
    "__wcsncat_chk": "wcsncat",
    "__wmemcpy_chk": "wmemcpy",
    "__wmemmove_chk": "wmemmove",
    "__wmemset_chk": "wmemset",
    "__swprintf_chk": "swprintf",
    "__fwprintf_chk": "fwprintf",
    "__wprintf_chk": "wprintf",
    "__vswprintf_chk": "vswprintf",
    "__vfwprintf_chk": "vfwprintf",
    "__vwprintf_chk": "vwprintf",
    "__confstr_chk": "confstr",
    "__gethostname_chk": "gethostname",
    "__getdomainname_chk": "getdomainname",
    "__getgroups_chk": "getgroups",
    "__ttyname_r_chk": "ttyname_r",
    "__getlogin_r_chk": "getlogin_r",
    "__mbstowcs_chk": "mbstowcs",
    "__wcstombs_chk": "wcstombs",
    "__mbsrtowcs_chk": "mbsrtowcs",
    "__wcsrtombs_chk": "wcsrtombs",
    "__mbsnrtowcs_chk": "mbsnrtowcs",
    "__wcsnrtombs_chk": "wcsnrtombs",
    "__strtok_r_chk": "strtok_r",
    "__syslog_chk": "syslog",
    "__vsyslog_chk": "vsyslog",
    "__fread_chk": "fread",
    "__fread_unlocked_chk": "fread_unlocked",
    "__longjmp_chk_alias": "longjmp",
    "__fdelt_chk": "select",
    "__explicit_bzero_chk": "explicit_bzero",
}


def _fortify_symbols() -> List[LibcSymbol]:
    by_name = {s.name: s for s in _SYMBOLS}
    out = []
    for chk, plain in FORTIFY_MAP.items():
        base = by_name.get(plain)
        tier = base.tier if base else "common"
        syscalls = base.syscalls if base else ()
        category = base.category if base else "fortify"
        out.append(LibcSymbol(chk, category, tier, syscalls=syscalls))
    return out


# --- syslog & misc daemons helpers (common) -----------------------------------
_SYMBOLS += _family("syslog", "common", [
    "openlog", "syslog", "vsyslog", "closelog", "setlogmask",
    "err", "errx", "warn", "warnx", "verr", "verrx", "vwarn", "vwarnx",
    "error", "error_at_line",
], syscalls={
    "openlog": ("socket", "connect"),
    "syslog": ("socket", "connect", "sendto", "write"),
    "vsyslog": ("socket", "connect", "sendto", "write"),
    "closelog": ("close",),
    "err": ("write", "exit_group"), "errx": ("write", "exit_group"),
    "warn": ("write",), "warnx": ("write",),
    "error": ("write",),
})

# --- confstr & get options (universal) ---------------------------------------
_SYMBOLS += _family("misc", "universal", [
    "getopt", "getopt_long", "getopt_long_only", "confstr",
    "gnu_get_libc_version", "gnu_get_libc_release", "getsubopt",
    "getpagesize", "ptsname_unused_alias", "euidaccess", "eaccess",
    "readlinkat_unused_alias", "freopen64", "fopen64", "tmpfile64",
], syscalls={
    "euidaccess": ("faccessat", "access"),
    "eaccess": ("faccessat", "access"),
    "fopen64": ("open", "fstat", "mmap"),
    "freopen64": ("close", "open"),
    "tmpfile64": ("open", "unlink"),
    "getpagesize": (),
})

_SYMBOLS += _fortify_symbols()


def _dedupe(symbols: List[LibcSymbol]) -> List[LibcSymbol]:
    seen: Dict[str, LibcSymbol] = {}
    for symbol in symbols:
        if symbol.name not in seen:
            seen[symbol.name] = symbol
    return list(seen.values())


LIBC_SYMBOLS: List[LibcSymbol] = _dedupe(_SYMBOLS)
BY_NAME: Dict[str, LibcSymbol] = {s.name: s for s in LIBC_SYMBOLS}
ALL_NAMES: FrozenSet[str] = frozenset(BY_NAME)


def by_tier(tier: str) -> List[LibcSymbol]:
    return [s for s in LIBC_SYMBOLS if s.tier == tier]


def by_category(category: str) -> List[LibcSymbol]:
    return [s for s in LIBC_SYMBOLS if s.category == category]


def syscall_footprint_closure() -> Dict[str, FrozenSet[str]]:
    """Per-symbol syscall footprint, closed over ``internal_calls``.

    This is the generator-side ground truth: when the synthetic
    ``libc.so.6`` is emitted, each exported function's body contains
    these syscalls (directly or via calls to other exports), and the
    analysis pipeline must recover the same closure from the binary.
    """
    closure: Dict[str, FrozenSet[str]] = {}

    def resolve(name: str, stack: Tuple[str, ...] = ()) -> FrozenSet[str]:
        if name in closure:
            return closure[name]
        if name in stack:  # defensive: cycles would mean a modeling bug
            return frozenset()
        symbol = BY_NAME.get(name)
        if symbol is None:
            return frozenset()
        result = set(symbol.syscalls)
        for callee in symbol.internal_calls:
            result |= resolve(callee, stack + (name,))
        closure[name] = frozenset(result)
        return closure[name]

    for symbol in LIBC_SYMBOLS:
        resolve(symbol.name)
    return closure
