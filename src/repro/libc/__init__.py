"""GNU libc 2.21 surface model, variants, and runtime libraries."""

from . import runtime, symbols, variants
from .symbols import LIBC_SYMBOLS, LibcSymbol, FORTIFY_MAP
from .variants import (
    DIETLIBC,
    EGLIBC,
    MUSL,
    UCLIBC,
    VARIANTS,
    LibcVariant,
    normalize_footprint,
    normalize_symbol,
)

__all__ = [
    "DIETLIBC",
    "EGLIBC",
    "FORTIFY_MAP",
    "LIBC_SYMBOLS",
    "LibcSymbol",
    "LibcVariant",
    "MUSL",
    "UCLIBC",
    "VARIANTS",
    "normalize_footprint",
    "normalize_symbol",
    "runtime",
    "symbols",
    "variants",
]
