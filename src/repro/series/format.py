"""The ``.rser`` wire format: a base snapshot plus delta sections.

Layout mirrors ``.rsnap`` byte for byte (same header struct, section
table, and two-checksum integrity ladder — see
:mod:`repro.store.format`), under a distinct magic so one-read format
sniffing keeps working::

    offset 0   magic        8 bytes   b"\\x89RSERS\\r\\n"
    offset 8   version      u32       SERIES_VERSION
    ...        (header, section table, meta_crc, payload — as .rsnap)

Sections:

======  ==================================================================
SMET    canonical JSON: {"n_releases", "fingerprints", "n_packages"}
BASE    release 0 as a complete, self-contained ``.rsnap`` file image
D001..  one delta per later release k (tag ``D%03d`` % k), in order
======  ==================================================================

Embedding a whole ``.rsnap`` as the BASE payload means release 0 loads
through the existing mmap-lazy :func:`repro.store.load_snapshot_bytes`
on a zero-copy slice — the series format adds no second code path for
the expensive part, and inherits the store's corruption guarantees.

A delta section encodes the difference between release k-1 and k under
the **canonical package order** rule (survivors keep their order, added
packages append — :mod:`repro.synth.evolve`), so the receiver rebuilds
release k's exact package order, and therefore its bit-exact metric
floats, from the delta alone::

    removed      str list      names dropped since k-1 (sorted)
    changed      u32 + entry*  survivors whose row changed (pkg order)
    added        u32 + entry*  new packages, release order
    popcon u8    0 = no popcon in this series
      total      u64           new total_installations
      set        u32 + (name, u64 count)*   upserted counts (sorted)
      removed    str list      names leaving the survey (sorted)
    deps u8      0 = no repository in this series
      removed    str list      packages leaving the skeleton (sorted)
      upserts    u32 + (name, category, depends str list)*  (sorted)
    provides     OPTIONAL trailing block (DEPS-v2), present only when
      upserts    some upserted package declares Provides: —
                 u32 + (name, provides str list)*  (upsert order).
                 Upserted packages absent from the block have no
                 Provides; a delta with no block at all is byte-
                 identical to the pre-refactor encoding, so flat
                 corpora round-trip unchanged and old files decode as
                 degenerate AND graphs.

    entry = name + u64 unresolved_sites
            + one fixed-width little-endian mask row per dimension
              (row width fixed by the series' shared ApiSpace)

All releases share the BASE snapshot's interned space — the union of
every release's APIs — so mask rows are directly comparable and the
fixed row width is known before any entry is read.

Every reader failure raises the *store's* typed error ladder
(:class:`repro.store.StoreError` subclasses): to callers and to the
engine's error taxonomy, a torn series is the same class of fault as a
torn snapshot.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..dataset.core import ApiSpace, Dataset
from ..dataset.dimensions import DIMENSION_ORDER
from ..store.errors import (StoreCRCError, StoreLayoutError,
                            StoreMagicError, StoreTruncatedError,
                            StoreVersionError)
from ..store.format import (Cursor, SnapshotHeader, crc32,
                            mask_row_bytes, pack_str, pack_str_list)

#: First bytes of every series file (PNG-style, like .rsnap).
SERIES_MAGIC = b"\x89RSERS\r\n"

#: Bump on incompatible wire-layout change.
SERIES_VERSION = 1

# Same packed layout as the store's (private) header/section structs —
# byte-compatible on purpose, duplicated so neither format can drift
# the other's wire layout by accident.
_HEADER = struct.Struct("<8sIIQ64sI")
_SECTION = struct.Struct("<4sQQ")
_U8 = struct.Struct("<B")
_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")

HEADER_SIZE = _HEADER.size
SECTION_SIZE = _SECTION.size

REQUIRED_TAGS = (b"SMET", b"BASE")

#: SMET + BASE + up to 999 deltas (``D001``..``D999``).
MAX_RELEASES = 1000
_MAX_SECTIONS = 2 + (MAX_RELEASES - 1)


def delta_tag(release: int) -> bytes:
    """Section tag of the delta producing ``release`` (k >= 1)."""
    if not 1 <= release < MAX_RELEASES:
        raise ValueError(f"release {release} out of delta-tag range")
    return f"D{release:03d}".encode("ascii")


# --- file assembly / validation ------------------------------------------

def encode_series_file(fingerprint: str,
                       sections: List[Tuple[bytes, bytes]]) -> bytes:
    """Assemble a complete ``.rser`` file from (tag, payload) pairs."""
    fp_bytes = fingerprint.encode("ascii")
    if len(fp_bytes) != 64:
        raise ValueError("fingerprint must be 64 ascii hex chars")
    n_sections = len(sections)
    payload_start = (HEADER_SIZE + n_sections * SECTION_SIZE
                     + _U32.size)
    table = []
    offset = payload_start
    payload_parts = []
    for tag, payload in sections:
        table.append(_SECTION.pack(tag, offset, len(payload)))
        payload_parts.append(payload)
        offset += len(payload)
    payload = b"".join(payload_parts)
    file_size = payload_start + len(payload)
    header = _HEADER.pack(SERIES_MAGIC, SERIES_VERSION, n_sections,
                          file_size, fp_bytes, crc32(payload))
    meta = header + b"".join(table)
    return meta + _U32.pack(crc32(meta)) + payload


def decode_series_header(data) -> SnapshotHeader:
    """Validate a series buffer and decode its header.

    The same integrity ladder as :func:`repro.store.format.decode_header`
    — magic, version, size, both CRCs, section-table sanity — raising
    the same typed errors, so no corruption can ever yield a partial
    release.
    """
    size = len(data)
    if size < HEADER_SIZE:
        raise StoreTruncatedError(
            f"series is {size} bytes; header needs {HEADER_SIZE}")
    (magic, version, n_sections, file_size, fp_bytes,
     payload_crc) = _HEADER.unpack_from(data, 0)
    if magic != SERIES_MAGIC:
        raise StoreMagicError(
            f"bad magic {bytes(magic)!r}; not a .rser series")
    if version != SERIES_VERSION:
        raise StoreVersionError(
            f"series version {version} != supported {SERIES_VERSION}")
    if file_size != size:
        raise StoreTruncatedError(
            f"header claims {file_size} bytes, file has {size}")
    if n_sections > _MAX_SECTIONS:
        raise StoreLayoutError(
            f"implausible section count {n_sections}")
    meta_end = HEADER_SIZE + n_sections * SECTION_SIZE
    payload_start = meta_end + _U32.size
    if payload_start > size:
        raise StoreTruncatedError(
            f"section table overruns the file "
            f"({payload_start} > {size})")
    (meta_crc,) = _U32.unpack_from(data, meta_end)
    if crc32(data[:meta_end]) != meta_crc:
        raise StoreCRCError("header/section-table checksum mismatch")
    if crc32(data[payload_start:]) != payload_crc:
        raise StoreCRCError("payload checksum mismatch")
    try:
        fingerprint = bytes(fp_bytes).decode("ascii")
    except UnicodeDecodeError:  # pragma: no cover - crc catches first
        raise StoreCRCError("fingerprint is not ascii") from None
    sections: Dict[bytes, Tuple[int, int]] = {}
    for index in range(n_sections):
        tag, offset, length = _SECTION.unpack_from(
            data, HEADER_SIZE + index * SECTION_SIZE)
        tag = bytes(tag)
        if tag in sections:
            raise StoreLayoutError(f"duplicate section {tag!r}")
        if offset < payload_start or offset + length > size:
            raise StoreLayoutError(
                f"section {tag!r} [{offset}, {offset + length}) "
                f"outside payload [{payload_start}, {size})")
        sections[tag] = (offset, length)
    for tag in REQUIRED_TAGS:
        if tag not in sections:
            raise StoreLayoutError(f"missing section {tag!r}")
    return SnapshotHeader(version=version, file_size=file_size,
                          fingerprint=fingerprint,
                          payload_crc=payload_crc, sections=sections)


# --- delta model ---------------------------------------------------------

@dataclass(frozen=True)
class ReleaseEntry:
    """One package's full row: the unit added/changed deltas carry."""

    name: str
    unresolved: int
    #: One interned mask per dimension, DIMENSION_ORDER.
    masks: Tuple[int, ...]


@dataclass(frozen=True)
class ReleaseDelta:
    """Everything that changed between release k-1 and release k."""

    removed: Tuple[str, ...]
    changed: Tuple[ReleaseEntry, ...]
    added: Tuple[ReleaseEntry, ...]
    has_popcon: bool = False
    popcon_total: int = 0
    popcon_set: Tuple[Tuple[str, int], ...] = ()
    popcon_removed: Tuple[str, ...] = ()
    has_deps: bool = False
    deps_removed: Tuple[str, ...] = ()
    deps_upserts: Tuple[Tuple[str, str, Tuple[str, ...]], ...] = ()
    #: Provides: lists for upserted packages that declare any —
    #: ``(name, provides)`` pairs, a subset of ``deps_upserts`` names.
    provides_upserts: Tuple[Tuple[str, Tuple[str, ...]], ...] = ()


def _row_widths(space: ApiSpace) -> List[int]:
    return [mask_row_bytes(space.size(dim)) for dim in DIMENSION_ORDER]


def _encode_entry(entry: ReleaseEntry, widths: List[int]) -> bytes:
    parts = [pack_str(entry.name), _U64.pack(entry.unresolved)]
    parts.extend(mask.to_bytes(width, "little")
                 for mask, width in zip(entry.masks, widths))
    return b"".join(parts)


def encode_delta(delta: ReleaseDelta, space: ApiSpace) -> bytes:
    """Encode one delta section payload (mask widths fixed by space)."""
    widths = _row_widths(space)
    parts = [pack_str_list(delta.removed),
             _U32.pack(len(delta.changed))]
    parts.extend(_encode_entry(entry, widths)
                 for entry in delta.changed)
    parts.append(_U32.pack(len(delta.added)))
    parts.extend(_encode_entry(entry, widths)
                 for entry in delta.added)
    parts.append(_U8.pack(1 if delta.has_popcon else 0))
    if delta.has_popcon:
        parts.append(_U64.pack(delta.popcon_total))
        parts.append(_U32.pack(len(delta.popcon_set)))
        for name, count in delta.popcon_set:
            parts.append(pack_str(name))
            parts.append(_U64.pack(count))
        parts.append(pack_str_list(delta.popcon_removed))
    parts.append(_U8.pack(1 if delta.has_deps else 0))
    if delta.has_deps:
        parts.append(pack_str_list(delta.deps_removed))
        parts.append(_U32.pack(len(delta.deps_upserts)))
        for name, category, depends in delta.deps_upserts:
            parts.append(pack_str(name))
            parts.append(pack_str(category))
            parts.append(pack_str_list(depends))
        if delta.provides_upserts:
            # Optional DEPS-v2 trailing block — omitted entirely when
            # no upsert declares Provides, keeping flat-corpus deltas
            # byte-identical to the pre-refactor encoding.
            parts.append(_U32.pack(len(delta.provides_upserts)))
            for name, provides in delta.provides_upserts:
                parts.append(pack_str(name))
                parts.append(pack_str_list(provides))
    return b"".join(parts)


def _decode_entry(cursor: Cursor, widths: List[int]) -> ReleaseEntry:
    name = cursor.string()
    unresolved = cursor.u64()
    masks = tuple(int.from_bytes(cursor._take(width), "little")
                  for width in widths)
    return ReleaseEntry(name=name, unresolved=unresolved, masks=masks)


def decode_delta(data, tag: str, space: ApiSpace) -> ReleaseDelta:
    """Decode one delta section; trailing bytes are a layout error."""
    widths = _row_widths(space)
    cursor = Cursor(data, tag)
    removed = tuple(cursor.string_list())
    changed = tuple(_decode_entry(cursor, widths)
                    for _ in range(cursor.u32()))
    added = tuple(_decode_entry(cursor, widths)
                  for _ in range(cursor.u32()))
    has_popcon = cursor._take(1)[0] != 0
    popcon_total = 0
    popcon_set: Tuple[Tuple[str, int], ...] = ()
    popcon_removed: Tuple[str, ...] = ()
    if has_popcon:
        popcon_total = cursor.u64()
        popcon_set = tuple((cursor.string(), cursor.u64())
                           for _ in range(cursor.u32()))
        popcon_removed = tuple(cursor.string_list())
    has_deps = cursor._take(1)[0] != 0
    deps_removed: Tuple[str, ...] = ()
    deps_upserts: Tuple[Tuple[str, str, Tuple[str, ...]], ...] = ()
    provides_upserts: Tuple[Tuple[str, Tuple[str, ...]], ...] = ()
    if has_deps:
        deps_removed = tuple(cursor.string_list())
        deps_upserts = tuple(
            (cursor.string(), cursor.string(),
             tuple(cursor.string_list()))
            for _ in range(cursor.u32()))
        if not cursor.exhausted():
            # DEPS-v2 trailing block: pre-refactor deltas simply end
            # here and decode with no Provides.
            if len(data) - cursor.pos < 4:
                raise StoreLayoutError(
                    f"section {tag}: {len(data) - cursor.pos} "
                    f"trailing bytes")
            upsert_names = {name for name, _, _ in deps_upserts}
            provides_upserts = tuple(
                (cursor.string(), tuple(cursor.string_list()))
                for _ in range(cursor.u32()))
            if not provides_upserts:
                raise StoreLayoutError(
                    f"section {tag}: empty provides block (the "
                    f"encoder omits it entirely)")
            for name, provides in provides_upserts:
                if name not in upsert_names:
                    raise StoreLayoutError(
                        f"section {tag}: provides for non-upserted "
                        f"package {name!r}")
                if not provides:
                    raise StoreLayoutError(
                        f"section {tag}: empty provides entry "
                        f"{name!r}")
    if not cursor.exhausted():
        raise StoreLayoutError(
            f"section {tag}: {len(data) - cursor.pos} trailing bytes")
    return ReleaseDelta(
        removed=removed, changed=changed, added=added,
        has_popcon=has_popcon, popcon_total=popcon_total,
        popcon_set=popcon_set, popcon_removed=popcon_removed,
        has_deps=has_deps, deps_removed=deps_removed,
        deps_upserts=deps_upserts, provides_upserts=provides_upserts)


# --- delta derivation ----------------------------------------------------

def _entry_of(dataset: Dataset, name: str,
              columns: List[List[int]]) -> ReleaseEntry:
    index = dataset.package_index[name]
    return ReleaseEntry(
        name=name,
        unresolved=dataset[name].unresolved_sites,
        masks=tuple(column[index] for column in columns))


def delta_between(previous: Dataset, current: Dataset) -> ReleaseDelta:
    """Derive the delta from ``previous`` to ``current``.

    Both datasets must share one interned space and follow the
    canonical package order rule (survivors keep ``previous``'s order,
    added packages append); violations raise ``ValueError`` at build
    time rather than corrupting the decode invariant.
    """
    if previous.space != current.space:
        raise ValueError("releases must share one interned ApiSpace")
    prev_names = set(previous.packages)
    cur_names = set(current.packages)
    removed = tuple(sorted(prev_names - cur_names))
    added_names = [name for name in current.packages
                   if name not in prev_names]
    survivors = [name for name in previous.packages
                 if name in cur_names]
    if list(current.packages) != survivors + added_names:
        raise ValueError(
            "canonical package order violated: survivors must keep "
            "their order and added packages must append")

    prev_columns = [previous.masks(dim) for dim in DIMENSION_ORDER]
    cur_columns = [current.masks(dim) for dim in DIMENSION_ORDER]
    changed = []
    for name in survivors:
        pi = previous.package_index[name]
        ci = current.package_index[name]
        same = (previous[name].unresolved_sites
                == current[name].unresolved_sites)
        if same:
            for prev_col, cur_col in zip(prev_columns, cur_columns):
                if prev_col[pi] != cur_col[ci]:
                    same = False
                    break
        if not same:
            changed.append(_entry_of(current, name, cur_columns))
    added = tuple(_entry_of(current, name, cur_columns)
                  for name in added_names)

    has_popcon = current.popcon is not None
    if has_popcon != (previous.popcon is not None):
        raise ValueError("popcon must be present in all releases "
                         "or none")
    popcon_total = 0
    popcon_set: Tuple[Tuple[str, int], ...] = ()
    popcon_removed: Tuple[str, ...] = ()
    if has_popcon:
        popcon_total = current.popcon.total_installations
        prev_counts = {name: previous.popcon.installations(name)
                       for name in previous.popcon.packages()}
        cur_counts = {name: current.popcon.installations(name)
                      for name in current.popcon.packages()}
        popcon_set = tuple(sorted(
            (name, count) for name, count in cur_counts.items()
            if prev_counts.get(name) != count))
        popcon_removed = tuple(sorted(
            name for name in prev_counts if name not in cur_counts))

    has_deps = current.repository is not None
    if has_deps != (previous.repository is not None):
        raise ValueError("repository must be present in all releases "
                         "or none")
    deps_removed: Tuple[str, ...] = ()
    deps_upserts: Tuple[Tuple[str, str, Tuple[str, ...]], ...] = ()
    provides_upserts: Tuple[Tuple[str, Tuple[str, ...]], ...] = ()
    if has_deps:
        prev_deps = {package.name: (package.category,
                                    tuple(package.depends),
                                    tuple(package.provides))
                     for package in previous.repository}
        cur_deps = {package.name: (package.category,
                                   tuple(package.depends),
                                   tuple(package.provides))
                    for package in current.repository}
        deps_removed = tuple(sorted(
            name for name in prev_deps if name not in cur_deps))
        upserts = sorted(
            (name, row) for name, row in cur_deps.items()
            if prev_deps.get(name) != row)
        deps_upserts = tuple(
            (name, category, depends)
            for name, (category, depends, _) in upserts)
        provides_upserts = tuple(
            (name, provides)
            for name, (_, _, provides) in upserts if provides)

    return ReleaseDelta(
        removed=removed, changed=tuple(changed), added=added,
        has_popcon=has_popcon, popcon_total=popcon_total,
        popcon_set=popcon_set, popcon_removed=popcon_removed,
        has_deps=has_deps, deps_removed=deps_removed,
        deps_upserts=deps_upserts, provides_upserts=provides_upserts)


def apply_delta_names(previous: List[str],
                      delta: ReleaseDelta) -> List[str]:
    """The canonical package order of the next release."""
    removed = set(delta.removed)
    names = [name for name in previous if name not in removed]
    names.extend(entry.name for entry in delta.added)
    return names
