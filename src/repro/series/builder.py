"""Series writer: a list of release datasets -> ``.rser`` bytes.

The builder canonicalizes its input into one shared interned space
(the union of every release's APIs) so delta mask rows are directly
comparable, stores release 0 through the existing ``.rsnap`` writer,
and derives one delta per later release.  Everything it enforces at
build time — one space, canonical package order, popcon/repository
present in all releases or none — is exactly what the reader's decode
invariant assumes, so a well-formed file can never decode into an
inconsistent release chain.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import pathlib
import tempfile
from typing import List, Sequence, Tuple

from ..dataset.codec import footprints_fingerprint
from ..dataset.core import ApiSpace, Dataset, as_dataset
from ..store.writer import snapshot_to_bytes
from .format import (MAX_RELEASES, ReleaseDelta, delta_between,
                     delta_tag, encode_delta, encode_series_file)


def series_fingerprint_of(fingerprints: Sequence[str]) -> str:
    """Content address of a series: a hash over its release chain."""
    digest = hashlib.sha256()
    digest.update(b"repro.series:1:")
    digest.update(":".join(fingerprints).encode("ascii"))
    return digest.hexdigest()


def _release_fingerprint(dataset: Dataset) -> str:
    fingerprint = getattr(dataset, "source_fingerprint", None)
    if fingerprint is None:
        fingerprint = footprints_fingerprint(dataset)
    return fingerprint


def _canonical_releases(releases: Sequence) -> List[Dataset]:
    """Adapt inputs to Datasets sharing one interned space.

    Datasets that already share a space (the :mod:`repro.synth.evolve`
    output, or a series' own materialized releases) pass through with
    their bitsets intact; mixed-space inputs are re-interned into the
    union of every release's APIs.  Either way the result satisfies
    :func:`repro.series.format.delta_between`'s preconditions.
    """
    if not releases:
        raise ValueError("a series needs at least one release")
    if len(releases) > MAX_RELEASES:
        raise ValueError(
            f"a series holds at most {MAX_RELEASES} releases")
    datasets = [as_dataset(release) for release in releases]
    first_space = datasets[0].space
    if all(dataset.space == first_space for dataset in datasets[1:]):
        return datasets
    union = ApiSpace.from_footprints(itertools.chain.from_iterable(
        (dataset[name] for name in dataset.packages)
        for dataset in datasets))
    rebuilt = []
    for dataset in datasets:
        clone = Dataset(
            {name: dataset[name] for name in dataset.packages},
            popcon=dataset.popcon, repository=dataset.repository,
            space=union)
        fingerprint = getattr(dataset, "source_fingerprint", None)
        if fingerprint is not None:
            clone.source_fingerprint = fingerprint
        rebuilt.append(clone)
    return rebuilt


def series_to_bytes(releases: Sequence) -> bytes:
    """Encode a release train as one complete ``.rser`` file image."""
    datasets = _canonical_releases(releases)
    fingerprints = [_release_fingerprint(dataset)
                    for dataset in datasets]
    meta = {
        "n_releases": len(datasets),
        "fingerprints": fingerprints,
        "n_packages": [len(dataset.packages) for dataset in datasets],
    }
    sections: List[Tuple[bytes, bytes]] = [
        (b"SMET", json.dumps(meta, sort_keys=True,
                             separators=(",", ":")).encode("utf-8")),
        (b"BASE", snapshot_to_bytes(datasets[0],
                                    fingerprint=fingerprints[0])),
    ]
    space = datasets[0].space
    for release in range(1, len(datasets)):
        delta = delta_between(datasets[release - 1], datasets[release])
        sections.append((delta_tag(release),
                         encode_delta(delta, space)))
    return encode_series_file(series_fingerprint_of(fingerprints),
                              sections)


def build_series(releases: Sequence):
    """Build an in-memory :class:`repro.series.DatasetSeries`."""
    from .reader import load_series_bytes
    return load_series_bytes(series_to_bytes(releases))


def write_series(path, releases: Sequence) -> int:
    """Atomically write a series to ``path``; return bytes written."""
    data = series_to_bytes(releases)
    target = pathlib.Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=str(target.parent),
                                    suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
        os.replace(tmp_name, target)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return len(data)
