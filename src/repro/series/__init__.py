"""Longitudinal dataset series: delta-encoded multi-release snapshots.

A ``.rser`` file stores release 0 of an evolved ecosystem as a full,
self-contained ``.rsnap`` image and every later release as a delta
section (packages added/removed, changed mask rows, popcon and
dependency churn).  :class:`DatasetSeries` materializes any release
lazily and bit-identically to an eager rebuild, and backs the
time-travel query surface (``?release=`` / ``?from=&to=``) in
:mod:`repro.serve`.
"""

from .builder import build_series, series_to_bytes, write_series
from .format import (
    SERIES_MAGIC,
    SERIES_VERSION,
    ReleaseDelta,
    ReleaseEntry,
    decode_delta,
    delta_between,
    encode_delta,
)
from .reader import (
    DatasetSeries,
    load_series,
    load_series_bytes,
    series_info,
    sniff_series,
)

__all__ = [
    "DatasetSeries",
    "ReleaseDelta",
    "ReleaseEntry",
    "SERIES_MAGIC",
    "SERIES_VERSION",
    "build_series",
    "decode_delta",
    "delta_between",
    "encode_delta",
    "load_series",
    "load_series_bytes",
    "series_info",
    "series_to_bytes",
    "sniff_series",
    "write_series",
]
