"""Series reader: mmap-backed, per-release lazy materialization.

Opening a ``.rser`` does O(header + SMET) work: both CRCs are
verified, the release index is decoded, and nothing else moves.  The
base snapshot loads through :func:`repro.store.load_snapshot_bytes` on
a zero-copy slice the first time any release is touched; each delta
decodes the first time the chain walks past it, and materialized
releases are cached so trend queries that sweep release ranges pay for
each release once.

Corruption discipline matches the store: every failure raises a typed
:class:`repro.store.StoreError` *before* any partial state is
published — a release either materializes completely or the series
object is left exactly as it was.
"""

from __future__ import annotations

import io
import json
import mmap
import pathlib
from typing import Dict, List, Optional, Tuple

from ..analysis.footprint import Footprint
from ..dataset.bitset import BitsetFootprint
from ..dataset.core import Dataset
from ..dataset.dimensions import DIMENSION_ORDER, FOOTPRINT_FIELDS
from ..packages.package import Package
from ..packages.popcon import PopularityContest
from ..packages.repository import Repository
from ..store.errors import StoreLayoutError, StoreTruncatedError
from ..store.format import SnapshotHeader
from ..store.reader import load_snapshot_bytes
from .format import (MAX_RELEASES, SERIES_MAGIC, ReleaseDelta,
                     decode_delta, decode_series_header, delta_tag)


def sniff_series(head: bytes) -> bool:
    """True when a file's first bytes are a ``.rser`` series."""
    return bytes(head[:len(SERIES_MAGIC)]) == SERIES_MAGIC


#: name -> (unresolved_sites, one mask per dimension); insertion order
#: is the release's canonical package order.
_Rows = Dict[str, Tuple[int, Tuple[int, ...]]]


class _ReleaseState:
    """Everything needed to materialize one release, order-preserving."""

    __slots__ = ("rows", "popcon", "deps")

    def __init__(self, rows: _Rows,
                 popcon: Optional[Tuple[int, Dict[str, int]]],
                 deps: Optional[Dict[str, Tuple[str, Tuple[str, ...],
                                                Tuple[str, ...]]]],
                 ) -> None:
        self.rows = rows
        self.popcon = popcon
        self.deps = deps


class DatasetSeries:
    """A validated multi-release series with lazy time travel.

    ``at(k)`` returns release ``k`` as a real
    :class:`repro.dataset.Dataset` — bit-identical metric results to an
    eager rebuild of that release — materializing (and caching) only
    the releases actually touched.
    """

    def __init__(self, data, resources: Tuple = ()) -> None:
        header = decode_series_header(data)
        self._data = data
        self._header = header
        self._resources = resources
        meta = self._decode_smet(data, header)
        self.n_releases: int = meta["n_releases"]
        self.fingerprints: Tuple[str, ...] = tuple(meta["fingerprints"])
        self.n_packages: Tuple[int, ...] = tuple(meta["n_packages"])
        #: The content address of the whole release chain.
        self.series_fingerprint: str = header.fingerprint
        for release in range(1, self.n_releases):
            if delta_tag(release) not in header.sections:
                raise StoreLayoutError(
                    f"missing delta section for release {release}")
        expected = {b"SMET", b"BASE"}
        expected.update(delta_tag(release)
                        for release in range(1, self.n_releases))
        for tag in header.sections:
            if tag not in expected:
                raise StoreLayoutError(
                    f"unexpected section {tag!r} for "
                    f"{self.n_releases} releases")
        self._base: Optional[Dataset] = None
        self._deltas: Dict[int, ReleaseDelta] = {}
        self._states: Dict[int, _ReleaseState] = {}
        self._datasets: Dict[int, Dataset] = {}
        # Footprint rows repeat heavily across releases (survivors
        # dominate); share the constructed objects.
        self._footprint_memo: Dict[Tuple[int, Tuple[int, ...]],
                                   Footprint] = {}

    @staticmethod
    def _decode_smet(data, header: SnapshotHeader) -> Dict:
        offset, length = header.sections[b"SMET"]
        try:
            meta = json.loads(bytes(data[offset:offset + length]))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise StoreLayoutError(
                f"SMET is not JSON ({exc})") from None
        if not isinstance(meta, dict):
            raise StoreLayoutError("SMET is not an object")
        n_releases = meta.get("n_releases")
        fingerprints = meta.get("fingerprints")
        n_packages = meta.get("n_packages")
        if (not isinstance(n_releases, int)
                or not 1 <= n_releases <= MAX_RELEASES):
            raise StoreLayoutError("SMET has no sane n_releases")
        if (not isinstance(fingerprints, list)
                or len(fingerprints) != n_releases
                or not all(isinstance(fp, str) and len(fp) == 64
                           for fp in fingerprints)):
            raise StoreLayoutError(
                "SMET fingerprints do not match n_releases")
        if (not isinstance(n_packages, list)
                or len(n_packages) != n_releases
                or not all(isinstance(n, int) and n >= 0
                           for n in n_packages)):
            raise StoreLayoutError(
                "SMET n_packages does not match n_releases")
        return meta

    # --- lazy chain ------------------------------------------------------

    def _base_dataset(self) -> Dataset:
        if self._base is None:
            offset, length = self._header.sections[b"BASE"]
            view = memoryview(self._data)[offset:offset + length]
            base = load_snapshot_bytes(
                view, resources=(view,) + self._resources)
            if base.source_fingerprint != self.fingerprints[0]:
                raise StoreLayoutError(
                    "BASE fingerprint disagrees with SMET")
            if len(base.packages) != self.n_packages[0]:
                raise StoreLayoutError(
                    f"BASE holds {len(base.packages)} packages, "
                    f"SMET says {self.n_packages[0]}")
            self._base = base
        return self._base

    def _delta(self, release: int) -> ReleaseDelta:
        delta = self._deltas.get(release)
        if delta is None:
            tag = delta_tag(release)
            offset, length = self._header.sections[tag]
            delta = decode_delta(self._data[offset:offset + length],
                                 tag.decode("ascii"),
                                 self._base_dataset().space)
            self._deltas[release] = delta
        return delta

    def _state(self, release: int) -> _ReleaseState:
        state = self._states.get(release)
        if state is not None:
            return state
        if release == 0:
            base = self._base_dataset()
            columns = [base.masks(dim) for dim in DIMENSION_ORDER]
            unresolved = base._unresolved
            rows: _Rows = {
                name: (unresolved[i],
                       tuple(column[i] for column in columns))
                for i, name in enumerate(base.packages)}
            popcon = None
            if base.popcon is not None:
                popcon = (base.popcon.total_installations,
                          {name: base.popcon.installations(name)
                           for name in base.popcon.packages()})
            deps = None
            if base.repository is not None:
                deps = {package.name: (package.category,
                                       tuple(package.depends),
                                       tuple(package.provides))
                        for package in base.repository}
            state = _ReleaseState(rows, popcon, deps)
        else:
            state = self._advance(self._state(release - 1),
                                  self._delta(release), release)
        self._states[release] = state
        return state

    @staticmethod
    def _advance(previous: _ReleaseState, delta: ReleaseDelta,
                 release: int) -> _ReleaseState:
        """Apply one delta, committing nothing until it fully checks out."""

        def bad(reason: str) -> StoreLayoutError:
            return StoreLayoutError(
                f"delta for release {release}: {reason}")

        rows = dict(previous.rows)
        for name in delta.removed:
            if name not in rows:
                raise bad(f"removes unknown package {name!r}")
            del rows[name]
        for entry in delta.changed:
            if entry.name not in rows:
                raise bad(f"changes unknown package {entry.name!r}")
            rows[entry.name] = (entry.unresolved, entry.masks)
        for entry in delta.added:
            if entry.name in rows:
                raise bad(f"adds existing package {entry.name!r}")
            rows[entry.name] = (entry.unresolved, entry.masks)

        popcon = previous.popcon
        if delta.has_popcon != (popcon is not None):
            raise bad("popcon presence flips mid-series")
        if delta.has_popcon:
            counts = dict(popcon[1])
            for name in delta.popcon_removed:
                if name not in counts:
                    raise bad(f"popcon removes unknown {name!r}")
                del counts[name]
            for name, count in delta.popcon_set:
                counts[name] = count
            popcon = (delta.popcon_total, counts)

        deps = previous.deps
        if delta.has_deps != (deps is not None):
            raise bad("repository presence flips mid-series")
        if delta.has_deps:
            deps = dict(deps)
            for name in delta.deps_removed:
                if name not in deps:
                    raise bad(f"deps removes unknown {name!r}")
                del deps[name]
            provides_of = dict(delta.provides_upserts)
            for name, category, depends in delta.deps_upserts:
                deps[name] = (category, depends,
                              provides_of.get(name, ()))

        return _ReleaseState(rows, popcon, deps)

    # --- public surface --------------------------------------------------

    def at(self, release: int) -> Dataset:
        """Materialize release ``release`` (cached per release)."""
        if not isinstance(release, int) or isinstance(release, bool):
            raise ValueError(f"unknown release {release!r}")
        if not 0 <= release < self.n_releases:
            raise ValueError(
                f"unknown release {release}; series holds releases "
                f"0..{self.n_releases - 1}")
        cached = self._datasets.get(release)
        if cached is not None:
            return cached
        if release == 0:
            dataset = self._base_dataset()
        else:
            state = self._state(release)
            if len(state.rows) != self.n_packages[release]:
                raise StoreLayoutError(
                    f"release {release} materializes "
                    f"{len(state.rows)} packages, SMET says "
                    f"{self.n_packages[release]}")
            space = self._base_dataset().space
            interners = [space.interner(dim) for dim in DIMENSION_ORDER]
            fields = [FOOTPRINT_FIELDS[dim] for dim in DIMENSION_ORDER]
            memo = self._footprint_memo
            footprints: Dict[str, Footprint] = {}
            bitsets: List[BitsetFootprint] = []
            for name, row in state.rows.items():
                footprint = memo.get(row)
                if footprint is None:
                    unresolved, masks = row
                    footprint = Footprint(
                        unresolved_sites=unresolved,
                        **{field: frozenset(interner.names_of(mask))
                           for field, interner, mask
                           in zip(fields, interners, masks)})
                    memo[row] = footprint
                footprints[name] = footprint
                bitsets.append(BitsetFootprint(row[1]))
            popcon = None
            if state.popcon is not None:
                try:
                    popcon = PopularityContest(state.popcon[0],
                                               state.popcon[1])
                except ValueError as exc:
                    raise StoreLayoutError(
                        f"release {release} popcon: {exc}") from None
            repository = None
            if state.deps is not None:
                try:
                    repository = Repository(
                        [Package(name, category=category,
                                 depends=list(depends),
                                 provides=list(provides))
                         for name, (category, depends, provides)
                         in state.deps.items()])
                except ValueError as exc:
                    raise StoreLayoutError(
                        f"release {release} deps: {exc}") from None
            dataset = Dataset(footprints, popcon=popcon,
                              repository=repository, space=space,
                              bitsets=bitsets)
            dataset.source_fingerprint = self.fingerprints[release]
        self._datasets[release] = dataset
        return dataset

    @property
    def head(self) -> Dataset:
        """The newest release — what un-versioned queries serve."""
        return self.at(self.n_releases - 1)

    def releases(self) -> List[Dataset]:
        return [self.at(release)
                for release in range(self.n_releases)]

    def stats(self) -> Dict[str, object]:
        """Header-level series metadata (no release materialization)."""
        base_offset, base_length = self._header.sections[b"BASE"]
        deltas = {
            release: self._header.sections[delta_tag(release)][1]
            for release in range(1, self.n_releases)}
        return {
            "format": "rser",
            "version": self._header.version,
            "series_fingerprint": self.series_fingerprint,
            "file_size": self._header.file_size,
            "n_releases": self.n_releases,
            "n_packages": list(self.n_packages),
            "fingerprints": list(self.fingerprints),
            "base_bytes": base_length,
            "delta_bytes": sum(deltas.values()),
            "delta_bytes_per_release": deltas,
        }

    def dependency_drift(self) -> List[Dict[str, int]]:
        """Per-release drift of the dependency-semantics surface.

        Materializes every release (cached) and reports how many
        virtual packages, provider edges, and alternative groups each
        one carries — flat releases report zeros.  Releases without a
        repository report zeros too, so the shape is stable across
        series kinds.
        """
        drift: List[Dict[str, int]] = []
        for release in range(self.n_releases):
            repository = self.at(release).repository
            if repository is None:
                drift.append({"release": release,
                              "n_virtual_packages": 0,
                              "n_provider_edges": 0,
                              "n_alternative_groups": 0})
            else:
                drift.append({
                    "release": release,
                    "n_virtual_packages": len(repository.virtual_names()),
                    "n_provider_edges": repository.n_provider_edges(),
                    "n_alternative_groups":
                        repository.n_alternative_groups(),
                })
        return drift

    # --- trend/diff queries (delegating to repro.metrics.trends) --------

    def release_diff(self, frm: int, to: int, dimension: str = "syscall",
                     weighted: bool = False, noise_floor: float = 0.02):
        from ..metrics.trends import release_diff
        return release_diff(self, frm, to, dimension=dimension,
                            weighted=weighted, noise_floor=noise_floor)

    def importance_trend(self, apis=None, dimension: str = "syscall",
                         weighted: bool = True, limit: int = 5,
                         start: int = 0, stop: Optional[int] = None):
        from ..metrics.trends import importance_trend
        return importance_trend(self, apis=apis, dimension=dimension,
                                weighted=weighted, limit=limit,
                                start=start, stop=stop)

    def completeness_trend(self, supported, dimension: str = "syscall",
                           ignore_empty: bool = True, start: int = 0,
                           stop: Optional[int] = None):
        from ..metrics.trends import completeness_trend
        return completeness_trend(self, supported, dimension=dimension,
                                  ignore_empty=ignore_empty,
                                  start=start, stop=stop)

    def __repr__(self) -> str:
        return (f"DatasetSeries({self.n_releases} releases, "
                f"{self.n_packages[0]}->{self.n_packages[-1]} "
                f"packages, fingerprint="
                f"{self.series_fingerprint[:12]}...)")


# --- public loaders ------------------------------------------------------

def load_series_bytes(data, resources: Tuple = ()) -> DatasetSeries:
    """Load a series from an in-memory buffer (bytes or mmap)."""
    return DatasetSeries(data, resources=resources)


def load_series(path) -> DatasetSeries:
    """mmap ``path`` read-only and load it lazily.

    Falls back to a plain read where mapping is unsupported, exactly
    like :func:`repro.store.load_snapshot`.
    """
    target = pathlib.Path(path)
    handle = open(target, "rb")
    try:
        size = target.stat().st_size
        if size == 0:
            raise StoreTruncatedError(f"{target} is empty")
        try:
            mapped = mmap.mmap(handle.fileno(), 0,
                               access=mmap.ACCESS_READ)
        except (OSError, ValueError, io.UnsupportedOperation):
            data = handle.read()
            return load_series_bytes(data)
    except BaseException:
        handle.close()
        raise
    try:
        return load_series_bytes(mapped, resources=(mapped, handle))
    except BaseException:
        mapped.close()
        handle.close()
        raise


def series_info(path) -> Dict[str, object]:
    """Header-level metadata without materializing any release."""
    data = pathlib.Path(path).read_bytes()
    series = DatasetSeries(data)
    info = series.stats()
    info["sections"] = {
        tag.decode("ascii"): length
        for tag, (_, length) in sorted(series._header.sections.items())}
    return info
