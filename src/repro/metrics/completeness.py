"""Weighted completeness (Appendix A.2).

For a target system described by its supported API set, the expected
fraction of packages in a typical installation that the system can run::

    WC = sum_{pkg supported} Pr{pkg} / sum_{pkg} Pr{pkg}

A package is *supported* when its API footprint is a subset of the
supported set **and** all of its (transitive) dependencies are
supported — §2.2 step 3 marks a supported package unsupported when it
depends on an unsupported one.

The subset tests run on interned bitmasks (``mask & ~supported == 0``)
via :mod:`repro.dataset`; plain footprint mappings are interned on
entry.  Where a result is a float sum over a package *set*, the set is
built with the same insertion history the legacy set-based code used,
so summation order — and therefore every last bit of the result — is
unchanged.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Set

from ..dataset.core import FootprintsLike, as_dataset
from ..dataset.dimensions import DIMENSIONS
from ..packages.popcon import PopularityContest
from ..packages.repository import Repository


def directly_supported(footprints: FootprintsLike,
                       supported_apis: FrozenSet[str],
                       dimension: str = "syscall",
                       ) -> Set[str]:
    """Packages whose own footprint fits in ``supported_apis``."""
    dataset = as_dataset(footprints)
    supported_mask = dataset.space.mask_of(dimension, supported_apis)
    packages = dataset.packages
    return {packages[i] for i, mask in
            enumerate(dataset.masks(dimension))
            if mask & ~supported_mask == 0}


def close_over_dependencies(supported: Set[str],
                            repository: Repository,
                            assume_supported: Optional[Set[str]] = None,
                            ) -> Set[str]:
    """Drop packages with an unsatisfiable dependency group.

    Dependency semantics are AND-of-OR with virtual providers: every
    group must keep at least one satisfiable alternative, where an
    alternative is satisfiable when it has no satisfier in the
    repository at all (a dangling virtual reference never gates), or
    when some satisfier — the real package or any provider — is in the
    result or assumed.  On a repository without alternatives or
    ``Provides:`` this degenerates to the pre-refactor AND rule with
    an identical discard history.

    ``assume_supported`` names packages outside the measurement
    universe (e.g. footprint-less library packages) whose presence in a
    dependency list never invalidates a dependent.

    Fixed-point: removing a package can invalidate its dependents, so
    iterate until stable (the graph may contain cycles; the loop
    terminates because the set only shrinks).
    """
    result = set(supported)
    assumed = assume_supported or set()
    changed = True
    while changed:
        changed = False
        for name in list(result):
            if name not in repository:
                # A footprint package absent from the repository has no
                # dependency metadata to check; absence alone never
                # invalidates it (same treatment as assume_supported).
                continue
            for group in repository.dependency_groups_of(name):
                satisfied = False
                for alternative in group:
                    satisfiers = repository.satisfiers(alternative)
                    if not satisfiers:
                        satisfied = True
                        break
                    if any(s in result or s in assumed
                           for s in satisfiers):
                        satisfied = True
                        break
                if not satisfied:
                    result.discard(name)
                    changed = True
                    break
    return result


def _closed_supported(dataset, supported: Set[str], dimension: str,
                      ignore_empty: bool,
                      assume_trivial: bool) -> Set[str]:
    """Dependency-close ``supported`` via the cached condensation.

    Returns a set whose iteration order matches what the legacy
    ``close_over_dependencies(supported, ...)`` produced: same copy of
    the same source set, same discards — so float sums over it are
    bit-for-bit identical.
    """
    graph = dataset.condensed_graph(dimension, ignore_empty,
                                    assume_trivial=assume_trivial)
    tracker = graph.tracker()
    survivors: Set[str] = set()
    for name in supported:
        survivors.update(tracker.mark_satisfied(name))
    result = set(supported)
    for name in supported:
        if name not in survivors:
            result.discard(name)
    return result


def weighted_completeness(supported_apis: Iterable[str],
                          footprints: FootprintsLike,
                          popcon: Optional[PopularityContest] = None,
                          repository: Optional[Repository] = None,
                          dimension: str = "syscall",
                          ignore_empty: bool = True) -> float:
    """The paper's system-wide compatibility metric.

    ``ignore_empty`` drops packages with an empty footprint in the
    chosen dimension (pure library/data packages) from both numerator
    and denominator: they run trivially on any system and would only
    dilute the measurement.
    """
    dataset = as_dataset(footprints, popcon, repository)
    popcon = dataset._require_popcon()
    repository = dataset.repository
    universe_ids = dataset.universe_ids(dimension, ignore_empty)
    supported_mask = dataset.space.mask_of(dimension, supported_apis)
    masks = dataset.masks(dimension)
    packages = dataset.packages
    supported = {packages[i] for i in universe_ids
                 if masks[i] & ~supported_mask == 0}
    if repository is not None:
        # Legacy assumed exactly the packages outside the universe
        # supported — the empty-footprint set when ignore_empty.
        supported = _closed_supported(dataset, supported, dimension,
                                      ignore_empty,
                                      assume_trivial=ignore_empty)
    weights = dataset.weights
    numerator = sum(dataset.weight_of(pkg) for pkg in supported)
    denominator = sum(weights[i] for i in universe_ids)
    return numerator / denominator if denominator else 0.0


def supported_packages(supported_apis: Iterable[str],
                       footprints: FootprintsLike,
                       repository: Optional[Repository] = None,
                       dimension: str = "syscall") -> Set[str]:
    """The concrete supported-package set (steps 2-3 of §2.2)."""
    dataset = as_dataset(footprints, repository=repository)
    supported_mask = dataset.space.mask_of(dimension, supported_apis)
    packages = dataset.packages
    supported = {packages[i] for i, mask in
                 enumerate(dataset.masks(dimension))
                 if mask & ~supported_mask == 0}
    if dataset.repository is not None:
        # Full universe, but empty-footprint packages still count as
        # trivially supported dependencies (legacy behaviour).
        supported = _closed_supported(dataset, supported, dimension,
                                      ignore_empty=False,
                                      assume_trivial=True)
    return supported


def missing_apis_report(supported_apis: Iterable[str],
                        footprints: FootprintsLike,
                        popcon: Optional[PopularityContest] = None,
                        dimension: str = "syscall",
                        limit: int = 10,
                        ignore_empty: bool = True,
                        ) -> List[tuple]:
    """Most valuable APIs to add next (§4.1's "suggested APIs").

    Ranks each unsupported API by the total installation probability of
    the packages it currently blocks.  ``ignore_empty`` restricts the
    accounting to the same universe :func:`weighted_completeness` uses
    — packages empty in the dimension contribute no blocked weight.
    (An empty-in-dimension package has nothing missing, so today the
    filter cannot change any ranking; the shared universe keeps the two
    metrics structurally consistent if that invariant ever shifts.)
    """
    dataset = as_dataset(footprints, popcon)
    popcon = dataset._require_popcon()
    universe_ids = dataset.universe_ids(dimension, ignore_empty)
    supported_mask = dataset.space.mask_of(dimension, supported_apis)
    masks = dataset.masks(dimension)
    weights = dataset.weights
    blocked_weight: Dict[int, float] = {}
    for i in universe_ids:
        missing = masks[i] & ~supported_mask
        if not missing:
            continue
        weight = weights[i]
        while missing:
            low = missing & -missing
            api_id = low.bit_length() - 1
            blocked_weight[api_id] = (blocked_weight.get(api_id, 0.0)
                                      + weight)
            missing ^= low
    name_of = dataset.space.name_of
    ranked = sorted(
        ((name_of(dimension, api_id), weight)
         for api_id, weight in blocked_weight.items()),
        key=lambda item: (-item[1], item[0]))
    return ranked[:limit]
