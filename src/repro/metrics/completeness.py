"""Weighted completeness (Appendix A.2).

For a target system described by its supported API set, the expected
fraction of packages in a typical installation that the system can run::

    WC = sum_{pkg supported} Pr{pkg} / sum_{pkg} Pr{pkg}

A package is *supported* when its API footprint is a subset of the
supported set **and** all of its (transitive) dependencies are
supported — §2.2 step 3 marks a supported package unsupported when it
depends on an unsupported one.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Iterable, List, Mapping, Optional, Set

from ..analysis.footprint import Footprint
from ..packages.popcon import PopularityContest
from ..packages.repository import Repository


def directly_supported(footprints: Mapping[str, Footprint],
                       supported_apis: FrozenSet[str],
                       dimension: str = "syscall",
                       ) -> Set[str]:
    """Packages whose own footprint fits in ``supported_apis``."""
    from .importance import DIMENSIONS
    select = DIMENSIONS[dimension]
    return {package for package, footprint in footprints.items()
            if select(footprint) <= supported_apis}


def close_over_dependencies(supported: Set[str],
                            repository: Repository,
                            assume_supported: Optional[Set[str]] = None,
                            ) -> Set[str]:
    """Drop packages whose dependency closure leaves ``supported``.

    ``assume_supported`` names packages outside the measurement
    universe (e.g. footprint-less library packages) whose presence in a
    dependency list never invalidates a dependent.

    Fixed-point: removing a package can invalidate its dependents, so
    iterate until stable (the graph may contain cycles; the loop
    terminates because the set only shrinks).
    """
    result = set(supported)
    assumed = assume_supported or set()
    changed = True
    while changed:
        changed = False
        for name in list(result):
            if name not in repository:
                # A footprint package absent from the repository has no
                # dependency metadata to check; absence alone never
                # invalidates it (same treatment as assume_supported).
                continue
            package = repository.get(name)
            for dep in package.depends:
                if (dep in repository and dep not in result
                        and dep not in assumed):
                    result.discard(name)
                    changed = True
                    break
    return result


def weighted_completeness(supported_apis: Iterable[str],
                          footprints: Mapping[str, Footprint],
                          popcon: PopularityContest,
                          repository: Optional[Repository] = None,
                          dimension: str = "syscall",
                          ignore_empty: bool = True) -> float:
    """The paper's system-wide compatibility metric.

    ``ignore_empty`` drops packages with an empty footprint in the
    chosen dimension (pure library/data packages) from both numerator
    and denominator: they run trivially on any system and would only
    dilute the measurement.
    """
    from .importance import DIMENSIONS
    select = DIMENSIONS[dimension]
    universe = {pkg: fp for pkg, fp in footprints.items()
                if not ignore_empty or select(fp)}
    supported_set = frozenset(supported_apis)
    supported = directly_supported(universe, supported_set, dimension)
    if repository is not None:
        trivially = {pkg for pkg in footprints if pkg not in universe}
        supported = close_over_dependencies(supported, repository,
                                            assume_supported=trivially)
    numerator = sum(popcon.install_probability(pkg)
                    for pkg in supported)
    denominator = sum(popcon.install_probability(pkg)
                      for pkg in universe)
    return numerator / denominator if denominator else 0.0


def supported_packages(supported_apis: Iterable[str],
                       footprints: Mapping[str, Footprint],
                       repository: Optional[Repository] = None,
                       dimension: str = "syscall") -> Set[str]:
    """The concrete supported-package set (steps 2-3 of §2.2)."""
    from .importance import DIMENSIONS
    select = DIMENSIONS[dimension]
    supported = directly_supported(
        footprints, frozenset(supported_apis), dimension)
    if repository is not None:
        trivially = {pkg for pkg, fp in footprints.items()
                     if not select(fp)}
        supported = close_over_dependencies(supported, repository,
                                            assume_supported=trivially)
    return supported


def missing_apis_report(supported_apis: Iterable[str],
                        footprints: Mapping[str, Footprint],
                        popcon: PopularityContest,
                        dimension: str = "syscall",
                        limit: int = 10,
                        ) -> List[tuple]:
    """Most valuable APIs to add next (§4.1's "suggested APIs").

    Ranks each unsupported API by the total installation probability of
    the packages it currently blocks.
    """
    from .importance import DIMENSIONS
    select = DIMENSIONS[dimension]
    supported_set = frozenset(supported_apis)
    blocked_weight: Dict[str, float] = {}
    for package, footprint in footprints.items():
        missing = select(footprint) - supported_set
        if not missing:
            continue
        weight = popcon.install_probability(package)
        for api in missing:
            blocked_weight[api] = blocked_weight.get(api, 0.0) + weight
    ranked = sorted(blocked_weight.items(),
                    key=lambda item: (-item[1], item[0]))
    return ranked[:limit]
