"""Cross-release trend and diff queries over a release train.

The paper measures one archive snapshot; these entry points answer the
longitudinal questions its §2.4 limitation leaves open: how does an
API's importance move release over release, how does a target system's
weighted completeness erode (or recover) as the ecosystem drifts, and
what changed between two releases.

Every function takes any *release source* — a
:class:`repro.series.DatasetSeries` or a plain sequence of datasets /
footprint mappings — duck-typed on ``at(k)`` / ``n_releases`` so this
module never imports :mod:`repro.series` (metrics stay a layer below
storage).  ``release_diff`` is the engine behind the serve
``/v1/release/diff`` endpoint and the ``ext_release_diff`` benchmark;
the trend functions back ``/v1/trend/*`` and ``series diff`` in the
CLI.  Range violations raise ``ValueError`` (the serve layer maps that
to a 400 envelope).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from ..dataset.core import as_dataset
from .completeness import weighted_completeness
from .diffing import UsageDiff


class _SequenceSource:
    """Adapter giving a dataset sequence the series ``at`` protocol."""

    def __init__(self, releases: Sequence) -> None:
        self._releases = list(releases)
        self.n_releases = len(self._releases)

    def at(self, release: int):
        if not 0 <= release < self.n_releases:
            raise ValueError(
                f"unknown release {release}; source holds releases "
                f"0..{self.n_releases - 1}")
        return as_dataset(self._releases[release])


def _as_source(source):
    if hasattr(source, "at") and hasattr(source, "n_releases"):
        return source
    return _SequenceSource(source)


def _release_index(source, value, name: str) -> int:
    try:
        release = int(value)
    except (TypeError, ValueError):
        raise ValueError(f"{name} must be a release index, "
                         f"got {value!r}") from None
    if not 0 <= release < source.n_releases:
        raise ValueError(
            f"unknown release {release}; source holds releases "
            f"0..{source.n_releases - 1}")
    return release


def _release_range(source, start: int,
                   stop: Optional[int]) -> range:
    first = _release_index(source, start, "from")
    last = (source.n_releases - 1 if stop is None
            else _release_index(source, stop, "to"))
    if last < first:
        raise ValueError(
            f"empty release range: from={first} > to={last}")
    return range(first, last + 1)


def release_diff(source, frm: int, to: int,
                 dimension: str = "syscall",
                 weighted: bool = False,
                 noise_floor: float = 0.02) -> UsageDiff:
    """What changed between two releases, as a :class:`UsageDiff`.

    ``weighted=False`` compares unweighted usage tables (the paper's
    §5 adoption metric and what the legacy ``ext_release_diff``
    experiment computed); ``weighted=True`` compares popcon-weighted
    importance.
    """
    source = _as_source(source)
    frm = _release_index(source, frm, "from")
    to = _release_index(source, to, "to")
    return UsageDiff.between(source.at(frm), source.at(to),
                             dimension=dimension, weighted=weighted,
                             noise_floor=noise_floor)


def importance_trend(source, apis: Optional[Iterable[str]] = None,
                     dimension: str = "syscall", weighted: bool = True,
                     limit: int = 5, start: int = 0,
                     stop: Optional[int] = None) -> Dict[str, object]:
    """Per-release importance of a set of APIs across a release range.

    ``apis`` defaults to the ``limit`` most important APIs of the
    *newest* release in range — "what do today's top calls look like
    backwards through time".
    """
    source = _as_source(source)
    releases = _release_range(source, start, stop)
    if limit < 1:
        raise ValueError("limit must be >= 1")

    def table_of(release: int) -> Dict[str, float]:
        dataset = source.at(release)
        if weighted:
            return dataset.importance_table(dimension)
        return dataset.usage_table(dimension, ignore_empty=False)

    if apis is None:
        newest = table_of(releases[-1])
        chosen = [api for api, _ in sorted(
            newest.items(), key=lambda item: (-item[1], item[0]))]
        chosen = chosen[:limit]
    else:
        chosen = sorted(set(apis))
        if not chosen:
            raise ValueError("apis must name at least one API")
    trend: Dict[str, List[float]] = {api: [] for api in chosen}
    for release in releases:
        table = table_of(release)
        for api in chosen:
            trend[api].append(table.get(api, 0.0))
    return {
        "dimension": dimension,
        "weighted": weighted,
        "from": releases[0],
        "to": releases[-1],
        "releases": list(releases),
        "apis": chosen,
        "trend": trend,
    }


def completeness_trend(source, supported: Iterable[str],
                       dimension: str = "syscall",
                       ignore_empty: bool = True, start: int = 0,
                       stop: Optional[int] = None) -> Dict[str, object]:
    """Weighted completeness of one fixed API set, release by release.

    The longitudinal version of the paper's compatibility metric: a
    target system that stops adding APIs watches its completeness
    drift as the ecosystem evolves under it.
    """
    source = _as_source(source)
    releases = _release_range(source, start, stop)
    supported = sorted(set(supported))
    values = []
    for release in releases:
        dataset = source.at(release)
        values.append(weighted_completeness(
            supported, dataset, dimension=dimension,
            ignore_empty=ignore_empty))
    return {
        "dimension": dimension,
        "ignore_empty": ignore_empty,
        "supported": supported,
        "from": releases[0],
        "to": releases[-1],
        "releases": list(releases),
        "values": values,
    }
