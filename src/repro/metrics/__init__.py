"""Metrics: API importance, unweighted importance, weighted
completeness, and the incremental implementation path."""

from .ablation import dep_semantics_ablation
from .diffing import ApiDelta, MigrationVerdict, UsageDiff
from .montecarlo import (
    approximation_error_report,
    empirical_api_importance,
    empirical_weighted_completeness,
    sample_installation,
)
from .sensitivity import (
    ImportanceInterval,
    bootstrap_importance,
    survey_noise_report,
    unstable_bands,
)
from .completeness import (
    close_over_dependencies,
    directly_supported,
    missing_apis_report,
    supported_packages,
    weighted_completeness,
)
from .importance import (
    api_importance,
    band_counts,
    count_at_least,
    dependents_index,
    importance_of_packages,
    importance_table,
    ranked,
)
from .ranking import (
    CurvePoint,
    Stage,
    completeness_curve,
    first_rank_reaching,
    inverted_cdf,
    stages,
)
from .trends import (
    completeness_trend,
    importance_trend,
    release_diff,
)
from .unweighted import (
    unweighted_api_importance,
    unweighted_importance_table,
    variant_comparison,
)

__all__ = [
    "ApiDelta",
    "CurvePoint",
    "ImportanceInterval",
    "MigrationVerdict",
    "UsageDiff",
    "approximation_error_report",
    "bootstrap_importance",
    "empirical_api_importance",
    "empirical_weighted_completeness",
    "sample_installation",
    "survey_noise_report",
    "unstable_bands",
    "Stage",
    "api_importance",
    "band_counts",
    "close_over_dependencies",
    "completeness_curve",
    "completeness_trend",
    "count_at_least",
    "dep_semantics_ablation",
    "dependents_index",
    "directly_supported",
    "first_rank_reaching",
    "importance_of_packages",
    "importance_table",
    "importance_trend",
    "inverted_cdf",
    "missing_apis_report",
    "ranked",
    "release_diff",
    "stages",
    "supported_packages",
    "unweighted_api_importance",
    "unweighted_importance_table",
    "variant_comparison",
    "weighted_completeness",
]
