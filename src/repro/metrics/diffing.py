"""Cross-release API usage diffing.

The paper's dataset is a single snapshot; §2.4 lists the lack of
historical data as a limitation, and §6 argues the methodology should
be re-run per release to track API migration.  This module implements
that comparison: given two measured usage (or importance) tables —
e.g. from ecosystems synthesized with different
:attr:`EcosystemConfig.adoption_shift` values — it reports which APIs
gained users, which declined, and whether recommended migrations
actually happened.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..syscalls.variants import ALL_VARIANT_GROUPS


@dataclass(frozen=True)
class ApiDelta:
    """Change in one API's usage between two releases."""

    api: str
    before: float
    after: float

    @property
    def delta(self) -> float:
        return self.after - self.before

    @property
    def relative(self) -> Optional[float]:
        if self.before == 0.0:
            return None
        return self.delta / self.before


@dataclass(frozen=True)
class MigrationVerdict:
    """Did users move from a legacy API to its preferred variant?"""

    legacy: str
    preferred: str
    legacy_delta: float
    preferred_delta: float

    @property
    def migrated(self) -> bool:
        return self.legacy_delta < 0 and self.preferred_delta > 0


class UsageDiff:
    """Comparison of two usage/importance tables."""

    def __init__(self, before: Mapping[str, float],
                 after: Mapping[str, float],
                 noise_floor: float = 0.02) -> None:
        """``noise_floor`` suppresses deltas smaller than sampling
        noise between two independently synthesized archives."""
        self.before = dict(before)
        self.after = dict(after)
        self.noise_floor = noise_floor

    @classmethod
    def between(cls, before, after, dimension: str = "syscall",
                weighted: bool = False,
                noise_floor: float = 0.02) -> "UsageDiff":
        """Diff two releases given their footprint datasets.

        ``before``/``after`` are footprint mappings or
        :class:`repro.dataset.Dataset` instances; ``weighted`` diffs
        popcon-weighted importance instead of package-count usage.
        """
        from ..dataset.core import as_dataset
        ds_before = as_dataset(before)
        ds_after = as_dataset(after)
        if weighted:
            return cls(ds_before.importance_table(dimension),
                       ds_after.importance_table(dimension),
                       noise_floor=noise_floor)
        return cls(ds_before.usage_table(dimension),
                   ds_after.usage_table(dimension),
                   noise_floor=noise_floor)

    def delta_of(self, api: str) -> ApiDelta:
        return ApiDelta(api, self.before.get(api, 0.0),
                        self.after.get(api, 0.0))

    def _significant(self) -> List[ApiDelta]:
        apis = set(self.before) | set(self.after)
        deltas = [self.delta_of(api) for api in sorted(apis)]
        return [d for d in deltas if abs(d.delta) >= self.noise_floor]

    def risers(self, limit: int = 20) -> List[ApiDelta]:
        """APIs gaining users, biggest gain first."""
        gains = [d for d in self._significant() if d.delta > 0]
        gains.sort(key=lambda d: -d.delta)
        return gains[:limit]

    def fallers(self, limit: int = 20) -> List[ApiDelta]:
        """APIs losing users, biggest loss first."""
        losses = [d for d in self._significant() if d.delta < 0]
        losses.sort(key=lambda d: d.delta)
        return losses[:limit]

    def migration_verdicts(self) -> List[MigrationVerdict]:
        """For every variant pair the study tracks (Tables 8-11),
        whether the recommended migration progressed."""
        verdicts = []
        for _, pairs in ALL_VARIANT_GROUPS:
            for pair in pairs:
                legacy = self.delta_of(pair.left)
                preferred = self.delta_of(pair.right)
                verdicts.append(MigrationVerdict(
                    legacy=pair.left, preferred=pair.right,
                    legacy_delta=legacy.delta,
                    preferred_delta=preferred.delta))
        return verdicts

    def migrated_pairs(self) -> List[MigrationVerdict]:
        return [v for v in self.migration_verdicts()
                if v.migrated
                and (abs(v.legacy_delta) >= self.noise_floor
                     or abs(v.preferred_delta) >= self.noise_floor)]

    def summary_rows(self, limit: int = 12,
                     ) -> List[Tuple[str, str, str, str]]:
        rows = []
        for delta in (self.risers(limit // 2)
                      + self.fallers(limit // 2)):
            rows.append((
                delta.api,
                f"{delta.before:.2%}",
                f"{delta.after:.2%}",
                f"{delta.delta:+.2%}",
            ))
        return rows
