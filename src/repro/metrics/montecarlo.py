"""Monte-Carlo validation of the Appendix A formulas.

The paper's metrics are closed-form expressions over per-package
installation probabilities, derived under the assumption that package
installations are independent (§2.2: the survey publishes no
correlations).  This module checks those derivations empirically:

* :func:`sample_installation` draws a concrete installation — a set of
  packages — from the independence model;
* :func:`empirical_api_importance` estimates
  ``Pr{installation needs api}`` by sampling, which must converge to
  Appendix A.1's product formula;
* :func:`empirical_weighted_completeness` estimates
  ``E[|supported ∩ inst| / |inst|]`` directly — the quantity
  Appendix A.2 *approximates* with a ratio of expectations
  ``E[|supported ∩ inst|] / E[|inst|]``.  Comparing the two quantifies
  the approximation error the paper accepts silently.
"""

from __future__ import annotations

import random
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Set, Tuple

from ..analysis.footprint import Footprint
from ..dataset.core import Dataset, FootprintsLike, as_dataset
from ..packages.popcon import PopularityContest


def sample_installation(packages: List[str],
                        probabilities: List[float],
                        rng: random.Random) -> Set[str]:
    """Draw one installation under the independence model."""
    return {package
            for package, probability in zip(packages, probabilities)
            if rng.random() < probability}


def _materialize(footprints: FootprintsLike,
                 popcon: Optional[PopularityContest],
                 ) -> Tuple[List[str], List[float]]:
    if popcon is None and isinstance(footprints, Dataset):
        popcon = footprints.popcon
    packages = sorted(footprints)
    probabilities = [popcon.install_probability(p) for p in packages]
    return packages, probabilities


def empirical_api_importance(api: str,
                             footprints: FootprintsLike,
                             popcon: Optional[PopularityContest] = None,
                             dimension: str = "syscall",
                             n_samples: int = 2000,
                             seed: int = 0) -> float:
    """Estimate API importance by sampling installations."""
    dataset = as_dataset(footprints, popcon)
    popcon = dataset._require_popcon()
    try:
        api_id = dataset.space.id_of(dimension, api)
    except KeyError:
        users: FrozenSet[str] = frozenset()
    else:
        users = frozenset(dataset.packages[i] for i in
                          dataset.users_index(dimension)[api_id])
    if not users:
        return 0.0
    packages = sorted(users)
    probabilities = [popcon.install_probability(p) for p in packages]
    rng = random.Random(seed)
    hits = 0
    for _ in range(n_samples):
        if any(rng.random() < probability
               for probability in probabilities):
            hits += 1
    return hits / n_samples


def empirical_weighted_completeness(
    supported_packages: Iterable[str],
    footprints: FootprintsLike,
    popcon: Optional[PopularityContest] = None,
    n_samples: int = 2000,
    seed: int = 0,
) -> float:
    """Estimate ``E[|supported ∩ inst| / |inst|]`` by sampling.

    This is the quantity Appendix A.2 defines; the closed form the
    paper computes is the ratio-of-expectations approximation.
    Installations that draw no packages are skipped (an empty install
    has no completeness to speak of).
    """
    supported = frozenset(supported_packages)
    packages, probabilities = _materialize(footprints, popcon)
    rng = random.Random(seed)
    total = 0.0
    counted = 0
    for _ in range(n_samples):
        installation = sample_installation(packages, probabilities,
                                           rng)
        if not installation:
            continue
        counted += 1
        total += len(installation & supported) / len(installation)
    return total / counted if counted else 0.0


def approximation_error_report(
    supported_packages: Iterable[str],
    footprints: FootprintsLike,
    popcon: Optional[PopularityContest] = None,
    n_samples: int = 2000,
    seed: int = 0,
) -> Dict[str, float]:
    """Analytic vs. empirical weighted completeness side by side."""
    supported = frozenset(supported_packages)
    packages, probabilities = _materialize(footprints, popcon)
    numerator = sum(probability
                    for package, probability in zip(packages,
                                                    probabilities)
                    if package in supported)
    denominator = sum(probabilities)
    analytic = numerator / denominator if denominator else 0.0
    empirical = empirical_weighted_completeness(
        supported, footprints, popcon, n_samples=n_samples, seed=seed)
    return {
        "analytic": analytic,
        "empirical": empirical,
        "absolute_error": abs(analytic - empirical),
    }
