"""Sensitivity of API importance to survey sampling noise (§2.4).

The popularity contest is an opt-in survey: each package's
installation probability is estimated from a finite sample.  The paper
flags representativeness as a limitation but does not quantify it;
this module does, with a parametric bootstrap:

* resample each package's installation count as
  ``Binomial(total, p̂) / total``;
* recompute API importance under each resample;
* report per-API confidence intervals and which APIs' *band*
  (indispensable / mid / low) is unstable under sampling noise.

Uses numpy for the vectorized resampling; a pure-Python fallback
keeps the module importable without it.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

try:
    import numpy as _np
except ImportError:  # pragma: no cover - numpy is normally present
    _np = None

from ..analysis.footprint import Footprint
from ..dataset.core import Dataset, FootprintsLike
from ..packages.popcon import PopularityContest
from .importance import dependents_index


@dataclass(frozen=True)
class ImportanceInterval:
    """Bootstrap confidence interval for one API's importance."""

    api: str
    point: float
    low: float
    high: float

    @property
    def width(self) -> float:
        return self.high - self.low

    def band(self, value: Optional[float] = None) -> str:
        v = self.point if value is None else value
        if v >= 0.995:
            return "indispensable"
        if v >= 0.10:
            return "mid"
        if v > 0.0:
            return "low"
        return "unused"

    @property
    def band_stable(self) -> bool:
        """Band assignment unchanged across the whole interval."""
        return self.band(self.low) == self.band(self.high)


def _resample_probabilities(probabilities: Sequence[float],
                            total: int, n_boot: int,
                            seed: int) -> List[List[float]]:
    """``n_boot`` parametric resamples of the installation rates."""
    if _np is not None:
        rng = _np.random.default_rng(seed)
        p = _np.asarray(probabilities)
        draws = rng.binomial(total, p, size=(n_boot, len(p)))
        return (draws / total).tolist()
    rng = random.Random(seed)
    out = []
    for _ in range(n_boot):
        row = []
        for p in probabilities:
            # normal approximation to the binomial is fine here
            sd = math.sqrt(max(p * (1 - p) / total, 0.0))
            row.append(min(1.0, max(0.0, rng.gauss(p, sd))))
        out.append(row)
    return out


def bootstrap_importance(
    footprints: FootprintsLike,
    popcon: Optional[PopularityContest] = None,
    apis: Optional[Sequence[str]] = None,
    dimension: str = "syscall",
    n_boot: int = 200,
    confidence: float = 0.95,
    seed: int = 0,
) -> Dict[str, ImportanceInterval]:
    """Bootstrap CIs for API importance under survey noise."""
    if popcon is None and isinstance(footprints, Dataset):
        popcon = footprints.popcon
    index = dependents_index(footprints, dimension)
    if apis is None:
        apis = sorted(index)
    packages = sorted({pkg for api in apis
                       for pkg in index.get(api, [])})
    package_pos = {pkg: i for i, pkg in enumerate(packages)}
    probabilities = [popcon.install_probability(pkg)
                     for pkg in packages]
    total = popcon.total_installations
    resamples = _resample_probabilities(probabilities, total, n_boot,
                                        seed)

    alpha = (1.0 - confidence) / 2.0
    lo_index = max(0, int(math.floor(alpha * n_boot)))
    hi_index = min(n_boot - 1, int(math.ceil((1 - alpha) * n_boot)) - 1)

    intervals: Dict[str, ImportanceInterval] = {}
    for api in apis:
        users = [package_pos[pkg] for pkg in index.get(api, [])]
        point = 1.0
        for position in users:
            point *= 1.0 - probabilities[position]
        point = 1.0 - point
        values = []
        for row in resamples:
            miss = 1.0
            for position in users:
                miss *= 1.0 - row[position]
            values.append(1.0 - miss)
        values.sort()
        intervals[api] = ImportanceInterval(
            api=api, point=point,
            low=values[lo_index], high=values[hi_index])
    return intervals


def unstable_bands(intervals: Mapping[str, ImportanceInterval],
                   ) -> List[ImportanceInterval]:
    """APIs whose importance band flips within its CI — the cases the
    survey's sample size cannot settle."""
    return sorted((ci for ci in intervals.values()
                   if not ci.band_stable),
                  key=lambda ci: -ci.width)


def survey_noise_report(footprints: FootprintsLike,
                        popcon: Optional[PopularityContest] = None,
                        dimension: str = "syscall",
                        n_boot: int = 200,
                        seed: int = 0) -> Tuple[int, int, float]:
    """(APIs measured, band-unstable APIs, max CI width)."""
    intervals = bootstrap_importance(
        footprints, popcon, dimension=dimension, n_boot=n_boot,
        seed=seed)
    unstable = unstable_bands(intervals)
    widest = max((ci.width for ci in intervals.values()),
                 default=0.0)
    return len(intervals), len(unstable), widest
