"""Dependency-semantics ablation: AND-only vs full AND-OR closure.

The pre-refactor model — and real pre-alternatives tooling like
debootstrap (see the mkosi workaround in SNIPPETS.md) — resolves the
dependency graph as a plain AND over single targets: ``a | b`` is
collapsed to ``a`` and ``Provides:`` edges vanish.  This experiment
quantifies the completeness error that degradation introduces on a
given corpus by running the full Figure-3 curve twice over the *same*
interned footprints: once against the real repository, once against
:meth:`repro.packages.Repository.and_only_view`.

The AND-only error has two opposing components: collapsing a group to
its first alternative *understates* completeness (a package whose
second alternative is supported is wrongly dropped), while dropping
``Provides:`` turns virtual-only dependencies into dangling references
the closure ignores, *overstating* it.  The report therefore records
signed gaps.  On a corpus without alternatives or virtual packages the
two curves are bit-for-bit identical and every gap is exactly ``0.0``.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..dataset.core import FootprintsLike, as_dataset
from ..packages.popcon import PopularityContest
from ..packages.repository import Repository
from .ranking import completeness_curve


def dep_semantics_ablation(footprints: FootprintsLike,
                           popcon: Optional[PopularityContest] = None,
                           repository: Optional[Repository] = None,
                           dimension: str = "syscall",
                           ) -> Dict[str, object]:
    """Compare full AND-OR vs AND-only completeness on one corpus.

    Returns a JSON-ready report.  ``gap`` values are
    ``full - and_only`` at each curve rank: positive means AND-only
    *understates* completeness (alternatives mishandled), negative
    means it *overstates* (virtual dependencies silently dropped).
    """
    dataset = as_dataset(footprints, popcon, repository)
    if dataset.repository is None:
        raise ValueError("dep_semantics_ablation needs a Repository")
    repository = dataset.repository
    and_only = dataset.rebound(dataset.popcon,
                               repository.and_only_view())

    full_curve = completeness_curve(dataset, dimension=dimension)
    and_only_curve = completeness_curve(and_only, dimension=dimension)

    gaps = [full.completeness - degraded.completeness
            for full, degraded in zip(full_curve, and_only_curve)]
    max_abs_gap = 0.0
    max_gap = 0.0
    max_gap_rank = 0
    for point, gap in zip(full_curve, gaps):
        if abs(gap) > max_abs_gap:
            max_abs_gap = abs(gap)
            max_gap = gap
            max_gap_rank = point.n_apis
    n_points = len(gaps)
    mean_abs_gap = (sum(abs(gap) for gap in gaps) / n_points
                    if n_points else 0.0)

    def _curve_summary(curve) -> Dict[str, float]:
        if not curve:
            return {"final_completeness": 0.0, "mean_completeness": 0.0}
        return {
            "final_completeness": curve[-1].completeness,
            "mean_completeness": (sum(p.completeness for p in curve)
                                  / len(curve)),
        }

    return {
        "dimension": dimension,
        "n_apis": n_points,
        "n_packages": len(dataset.packages),
        "n_virtual_packages": len(repository.virtual_names()),
        "n_provider_edges": repository.n_provider_edges(),
        "n_alternative_groups": repository.n_alternative_groups(),
        "full": _curve_summary(full_curve),
        "and_only": _curve_summary(and_only_curve),
        "final_gap": gaps[-1] if gaps else 0.0,
        "max_gap": max_gap,
        "max_abs_gap": max_abs_gap,
        "max_gap_rank": max_gap_rank,
        "mean_abs_gap": mean_abs_gap,
        "n_ranks_diverging": sum(1 for gap in gaps if gap != 0.0),
    }
