"""API importance (Appendix A.1).

For a given API, the probability that a random installation includes at
least one package whose footprint requires the API::

    Importance(api) = 1 - prod_{pkg in Dependents(api)} (1 - Pr{pkg in Inst})

Package installations are treated as independent (the survey publishes
no correlations), exactly as in the paper.

All functions accept either a plain ``Mapping[str, Footprint]`` (which
is interned on entry — the adapter shim) or a prebuilt
:class:`repro.dataset.Dataset`, whose cached interned tables make
repeated queries cheap.  Results are bit-for-bit identical either way.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from ..dataset.core import FootprintsLike, as_dataset
# Re-exported for backwards compatibility: the selector registry now
# lives in repro.dataset.dimensions (shared by the whole stack).
from ..dataset.dimensions import DIMENSIONS  # noqa: F401
from ..packages.popcon import PopularityContest


def dependents_index(footprints: FootprintsLike,
                     dimension: str = "syscall",
                     ) -> Dict[str, List[str]]:
    """api -> packages whose footprint includes it (package order)."""
    dataset = as_dataset(footprints)
    packages = dataset.packages
    name_of = dataset.space.name_of
    index: Dict[str, List[str]] = {}
    for api_id, users in enumerate(dataset.users_index(dimension)):
        if users:
            index[name_of(dimension, api_id)] = [packages[i]
                                                 for i in users]
    return index


def importance_of_packages(packages: Iterable[str],
                           popcon: PopularityContest) -> float:
    """Probability at least one of ``packages`` is installed."""
    probability_none = 1.0
    for package in packages:
        probability_none *= 1.0 - popcon.install_probability(package)
    return 1.0 - probability_none


def api_importance(api: str,
                   footprints: FootprintsLike,
                   popcon: Optional[PopularityContest] = None,
                   dimension: str = "syscall") -> float:
    """Importance of a single API (see :func:`importance_table` for
    bulk queries)."""
    dataset = as_dataset(footprints, popcon)
    try:
        api_id = dataset.space.id_of(dimension, api)
    except KeyError:
        return 0.0
    users = [dataset.packages[i]
             for i in dataset.users_index(dimension)[api_id]]
    return importance_of_packages(users, dataset._require_popcon())


def importance_table(footprints: FootprintsLike,
                     popcon: Optional[PopularityContest] = None,
                     dimension: str = "syscall",
                     universe: Iterable[str] = (),
                     ) -> Dict[str, float]:
    """Importance of every API in one pass.

    ``universe`` optionally adds APIs that no package uses, which then
    report importance 0.0 (needed for Figure 2's full x-axis).
    """
    dataset = as_dataset(footprints, popcon)
    return dataset.importance_table(dimension, universe)


def ranked(table: Mapping[str, float]) -> List[Tuple[str, float]]:
    """APIs sorted by importance, descending, ties by name."""
    return sorted(table.items(), key=lambda item: (-item[1], item[0]))


def count_at_least(table: Mapping[str, float],
                   threshold: float) -> int:
    """How many APIs have importance >= threshold."""
    return sum(1 for value in table.values() if value >= threshold)


def band_counts(table: Mapping[str, float],
                full_threshold: float = 0.995,
                ) -> Dict[str, int]:
    """Figure 2-style bands: indispensable / mid / low / unused."""
    bands = {"indispensable": 0, "mid": 0, "low": 0, "unused": 0}
    for value in table.values():
        if value >= full_threshold:
            bands["indispensable"] += 1
        elif value >= 0.10:
            bands["mid"] += 1
        elif value > 0.0:
            bands["low"] += 1
        else:
            bands["unused"] += 1
    return bands
