"""API importance (Appendix A.1).

For a given API, the probability that a random installation includes at
least one package whose footprint requires the API::

    Importance(api) = 1 - prod_{pkg in Dependents(api)} (1 - Pr{pkg in Inst})

Package installations are treated as independent (the survey publishes
no correlations), exactly as in the paper.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Iterable, List, Mapping, Tuple

from ..analysis.footprint import Footprint
from ..packages.popcon import PopularityContest

# Selector: which footprint dimension an importance query ranges over.
# "all" spans the entire API surface with namespaced identifiers
# (§3.2: "one can construct a similar path including other APIs, such
# as vectored system calls, pseudo-files and library APIs").
DIMENSIONS: Dict[str, Callable[[Footprint], FrozenSet[str]]] = {
    "syscall": lambda fp: fp.syscalls,
    "ioctl": lambda fp: fp.ioctls,
    "fcntl": lambda fp: fp.fcntls,
    "prctl": lambda fp: fp.prctls,
    "pseudofile": lambda fp: fp.pseudo_files,
    "libc": lambda fp: fp.libc_symbols,
    "all": lambda fp: fp.api_set(),
}


def dependents_index(footprints: Mapping[str, Footprint],
                     dimension: str = "syscall",
                     ) -> Dict[str, List[str]]:
    """api -> packages whose footprint includes it."""
    select = DIMENSIONS[dimension]
    index: Dict[str, List[str]] = {}
    for package, footprint in footprints.items():
        for api in select(footprint):
            index.setdefault(api, []).append(package)
    return index


def importance_of_packages(packages: Iterable[str],
                           popcon: PopularityContest) -> float:
    """Probability at least one of ``packages`` is installed."""
    probability_none = 1.0
    for package in packages:
        probability_none *= 1.0 - popcon.install_probability(package)
    return 1.0 - probability_none


def api_importance(api: str,
                   footprints: Mapping[str, Footprint],
                   popcon: PopularityContest,
                   dimension: str = "syscall") -> float:
    """Importance of a single API (slow path; see :func:`importance_table`
    for bulk queries)."""
    select = DIMENSIONS[dimension]
    users = [pkg for pkg, fp in footprints.items() if api in select(fp)]
    return importance_of_packages(users, popcon)


def importance_table(footprints: Mapping[str, Footprint],
                     popcon: PopularityContest,
                     dimension: str = "syscall",
                     universe: Iterable[str] = (),
                     ) -> Dict[str, float]:
    """Importance of every API in one pass.

    ``universe`` optionally adds APIs that no package uses, which then
    report importance 0.0 (needed for Figure 2's full x-axis).
    """
    index = dependents_index(footprints, dimension)
    table = {api: importance_of_packages(users, popcon)
             for api, users in index.items()}
    for api in universe:
        table.setdefault(api, 0.0)
    return table


def ranked(table: Mapping[str, float]) -> List[Tuple[str, float]]:
    """APIs sorted by importance, descending, ties by name."""
    return sorted(table.items(), key=lambda item: (-item[1], item[0]))


def count_at_least(table: Mapping[str, float],
                   threshold: float) -> int:
    """How many APIs have importance >= threshold."""
    return sum(1 for value in table.values() if value >= threshold)


def band_counts(table: Mapping[str, float],
                full_threshold: float = 0.995,
                ) -> Dict[str, int]:
    """Figure 2-style bands: indispensable / mid / low / unused."""
    bands = {"indispensable": 0, "mid": 0, "low": 0, "unused": 0}
    for value in table.values():
        if value >= full_threshold:
            bands["indispensable"] += 1
        elif value >= 0.10:
            bands["mid"] += 1
        elif value > 0.0:
            bands["low"] += 1
        else:
            bands["unused"] += 1
    return bands
