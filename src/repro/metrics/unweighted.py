"""Unweighted API importance (§5).

The probability that a *package* uses an API, irrespective of how often
the package is installed::

    UnweightedImportance(api) = |Dependents(api)| / |Pkg_all|

Used to study developer behaviour: adoption of secure variants
(Table 8), migration off deprecated calls (Table 9), portability
preferences (Table 10), and simple-over-powerful choices (Table 11).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Tuple

from ..analysis.footprint import Footprint
from .importance import DIMENSIONS, dependents_index


def unweighted_importance_table(footprints: Mapping[str, Footprint],
                                dimension: str = "syscall",
                                universe: Iterable[str] = (),
                                ) -> Dict[str, float]:
    """Fraction of packages using each API."""
    total = len(footprints)
    if total == 0:
        return {api: 0.0 for api in universe}
    index = dependents_index(footprints, dimension)
    table = {api: len(users) / total for api, users in index.items()}
    for api in universe:
        table.setdefault(api, 0.0)
    return table


def unweighted_api_importance(api: str,
                              footprints: Mapping[str, Footprint],
                              dimension: str = "syscall") -> float:
    select = DIMENSIONS[dimension]
    total = len(footprints)
    if total == 0:
        return 0.0
    users = sum(1 for fp in footprints.values() if api in select(fp))
    return users / total


def variant_comparison(pairs: Iterable,
                       table: Mapping[str, float],
                       ) -> List[Tuple[str, float, str, float]]:
    """Rows of (left, left_importance, right, right_importance) for a
    variant group from :mod:`repro.syscalls.variants`."""
    rows = []
    for pair in pairs:
        rows.append((pair.left, table.get(pair.left, 0.0),
                     pair.right, table.get(pair.right, 0.0)))
    return rows
