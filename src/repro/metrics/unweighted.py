"""Unweighted API importance (§5).

The probability that a *package* uses an API, irrespective of how often
the package is installed::

    UnweightedImportance(api) = |Dependents(api)| / |Pkg_all|

Used to study developer behaviour: adoption of secure variants
(Table 8), migration off deprecated calls (Table 9), portability
preferences (Table 10), and simple-over-powerful choices (Table 11).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Tuple

from ..dataset.core import FootprintsLike, as_dataset


def unweighted_importance_table(footprints: FootprintsLike,
                                dimension: str = "syscall",
                                universe: Iterable[str] = (),
                                ) -> Dict[str, float]:
    """Fraction of packages using each API."""
    dataset = as_dataset(footprints)
    return dataset.usage_table(dimension, ignore_empty=False,
                               universe=universe)


def unweighted_api_importance(api: str,
                              footprints: FootprintsLike,
                              dimension: str = "syscall") -> float:
    dataset = as_dataset(footprints)
    total = len(dataset)
    if total == 0:
        return 0.0
    try:
        api_id = dataset.space.id_of(dimension, api)
    except KeyError:
        return 0.0
    return len(dataset.users_index(dimension)[api_id]) / total


def variant_comparison(pairs: Iterable,
                       table: Mapping[str, float],
                       ) -> List[Tuple[str, float, str, float]]:
    """Rows of (left, left_importance, right, right_importance) for a
    variant group from :mod:`repro.syscalls.variants`."""
    rows = []
    for pair in pairs:
        rows.append((pair.left, table.get(pair.left, 0.0),
                     pair.right, table.get(pair.right, 0.0)))
    return rows
