"""Importance ranking and the incremental implementation path (§3.2).

Implements the greedy strategy behind Figure 3 and Table 4: order APIs
by importance, then measure weighted completeness as the top-N set
grows.  The resulting curve tells a system builder what the next most
valuable API is and how much of a typical installation each
implementation stage unlocks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

from ..analysis.footprint import Footprint
from ..packages.popcon import PopularityContest
from ..packages.repository import Repository
from .importance import DIMENSIONS, ranked


class _SupportTracker:
    """Incremental dependency closure over the condensation DAG.

    :func:`repro.metrics.completeness.close_over_dependencies` computes
    the *greatest* fixed point of "supported and all dependencies
    supported" — a dependency cycle whose members are all satisfied
    stays supported.  A naive additive worklist computes the *least*
    fixed point, which wrongly drops such cycles.  Condensing the
    dependency graph into strongly connected components first makes the
    two coincide: on a DAG, a component is supported exactly when every
    member is directly satisfied, no member depends on a package that
    can never be supported, and every successor component is supported.

    Packages then flip to supported monotonically as APIs are added, so
    one run over the ranked API list costs O(edges) total instead of
    re-running the fixed point at every rank (the old quadratic path).
    """

    def __init__(self, universe, repository: Repository,
                 assumed) -> None:
        nodes = list(universe)
        node_set = set(nodes)
        adjacency: Dict[str, List[str]] = {name: [] for name in nodes}
        poisoned_nodes = set()
        for name in nodes:
            if name not in repository:
                # No dependency metadata: never invalidated (mirrors
                # close_over_dependencies skipping unknown packages).
                continue
            for dep in repository.get(name).depends:
                if dep == name:
                    continue
                if dep not in repository or dep in assumed:
                    # close_over_dependencies only invalidates on deps
                    # that are present in the repository and not
                    # assumed supported — even a dep with its own
                    # footprint never gates its dependents when the
                    # repository lacks it.
                    continue
                if dep in node_set:
                    adjacency[name].append(dep)
                else:
                    # Depends on a measured-universe outsider that is
                    # neither assumed supported nor absent: the closure
                    # can never keep this package.
                    poisoned_nodes.add(name)

        component_of = self._condense(nodes, adjacency)
        n_components = max(component_of.values()) + 1 if nodes else 0
        self._component_of = component_of
        self._members: List[List[str]] = [[] for _ in range(n_components)]
        for name in nodes:
            self._members[component_of[name]].append(name)
        self._unsatisfied = [len(members) for members in self._members]
        self._poisoned = [False] * n_components
        for name in poisoned_nodes:
            self._poisoned[component_of[name]] = True
        dependents: List[set] = [set() for _ in range(n_components)]
        unmet = [set() for _ in range(n_components)]
        for name in nodes:
            comp = component_of[name]
            for dep in adjacency[name]:
                dep_comp = component_of[dep]
                if dep_comp != comp:
                    unmet[comp].add(dep_comp)
                    dependents[dep_comp].add(comp)
        self._unmet_deps = [len(deps) for deps in unmet]
        self._dependents = [sorted(deps) for deps in dependents]
        self._supported = [False] * n_components

    @staticmethod
    def _condense(nodes, adjacency) -> Dict[str, int]:
        """Iterative Tarjan SCC; returns node -> component id."""
        index_of: Dict[str, int] = {}
        lowlink: Dict[str, int] = {}
        on_stack = set()
        stack: List[str] = []
        component_of: Dict[str, int] = {}
        counter = [0]
        components = [0]

        for root in nodes:
            if root in index_of:
                continue
            work = [(root, iter(adjacency[root]))]
            index_of[root] = lowlink[root] = counter[0]
            counter[0] += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                node, edges = work[-1]
                advanced = False
                for dep in edges:
                    if dep not in index_of:
                        index_of[dep] = lowlink[dep] = counter[0]
                        counter[0] += 1
                        stack.append(dep)
                        on_stack.add(dep)
                        work.append((dep, iter(adjacency[dep])))
                        advanced = True
                        break
                    if dep in on_stack:
                        lowlink[node] = min(lowlink[node],
                                            index_of[dep])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent],
                                          lowlink[node])
                if lowlink[node] == index_of[node]:
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component_of[member] = components[0]
                        if member == node:
                            break
                    components[0] += 1
        return component_of

    def mark_satisfied(self, package: str) -> List[str]:
        """One package's own footprint is now covered.

        Returns every package that *became supported* as a result —
        the package's component if it just completed, plus any
        dependent components cascading to supported.
        """
        comp = self._component_of[package]
        self._unsatisfied[comp] -= 1
        newly: List[str] = []
        worklist = [comp]
        while worklist:
            candidate = worklist.pop()
            if (self._supported[candidate]
                    or self._unsatisfied[candidate] > 0
                    or self._unmet_deps[candidate] > 0
                    or self._poisoned[candidate]):
                continue
            self._supported[candidate] = True
            newly.extend(self._members[candidate])
            for dependent in self._dependents[candidate]:
                self._unmet_deps[dependent] -= 1
                worklist.append(dependent)
        return newly


@dataclass(frozen=True)
class CurvePoint:
    """One point on the Figure 3 curve."""

    n_apis: int
    api: str                 # the API added at this step
    completeness: float


@dataclass(frozen=True)
class Stage:
    """One row of Table 4."""

    number: int
    start: int               # first rank in this stage (1-based)
    end: int                 # last rank
    completeness: float
    sample_apis: Tuple[str, ...]


def completeness_curve(footprints: Mapping[str, Footprint],
                       popcon: PopularityContest,
                       repository: Optional[Repository] = None,
                       dimension: str = "syscall",
                       importance: Optional[Mapping[str, float]] = None,
                       ignore_empty: bool = True,
                       ) -> List[CurvePoint]:
    """Weighted completeness after adding each next-most-important API.

    APIs are added in decreasing weighted importance; ties (the large
    100%-importance head) are broken by unweighted importance, so the
    calls every binary needs come first — this is what makes the
    minimal "hello world" set appear at the head of the curve (§3.2).
    Packages with an empty footprint are excluded (see
    :func:`repro.metrics.completeness.weighted_completeness`).

    Runs incrementally: per package, how many required APIs are still
    missing; per dependency-graph component (via :class:`_SupportTracker`),
    how many members and dependencies are still unsupported — so the
    whole curve costs O(APIs + packages + dependency edges) instead of
    re-running the dependency fixed point at every rank.
    """
    select = DIMENSIONS[dimension]
    trivially_supported = {pkg for pkg, fp in footprints.items()
                           if not select(fp)}
    if ignore_empty:
        footprints = {pkg: fp for pkg, fp in footprints.items()
                      if select(fp)}
    if importance is None:
        from .importance import importance_table
        importance = importance_table(footprints, popcon, dimension)
    from .unweighted import unweighted_importance_table
    usage = unweighted_importance_table(footprints, dimension)
    order = sorted(importance,
                   key=lambda api: (-importance[api],
                                    -usage.get(api, 0.0), api))

    requirement_count: Dict[str, int] = {}
    users: Dict[str, List[str]] = {}
    for package, footprint in footprints.items():
        needs = select(footprint)
        requirement_count[package] = len(needs)
        for api in needs:
            users.setdefault(api, []).append(package)

    total_weight = sum(popcon.install_probability(p) for p in footprints)
    if total_weight == 0:
        return []

    tracker = (None if repository is None else _SupportTracker(
        footprints, repository, trivially_supported))

    supported_weight = 0.0

    def note_satisfied(package: str) -> float:
        if tracker is None:
            return popcon.install_probability(package)
        return sum(popcon.install_probability(p)
                   for p in tracker.mark_satisfied(package))

    for package, count in requirement_count.items():
        if count == 0:
            supported_weight += note_satisfied(package)
    curve: List[CurvePoint] = []
    for rank, api in enumerate(order, start=1):
        for package in users.get(api, ()):
            requirement_count[package] -= 1
            if requirement_count[package] == 0:
                supported_weight += note_satisfied(package)
        curve.append(CurvePoint(
            rank, api, supported_weight / total_weight))
    return curve


def stages(curve: Sequence[CurvePoint],
           thresholds: Sequence[float] = (0.011, 0.10, 0.50, 0.90, 1.0),
           samples_per_stage: int = 10) -> List[Stage]:
    """Cut the curve into Table 4's implementation stages.

    Stage *k* ends at the first point whose completeness reaches
    ``thresholds[k]`` (the paper's 1.1% / ~10% / ~50% / ~90% / 100%).
    """
    result: List[Stage] = []
    start = 1
    for number, threshold in enumerate(thresholds, start=1):
        end_point = None
        for point in curve:
            if point.n_apis >= start and point.completeness >= threshold:
                end_point = point
                break
        if end_point is None:
            end_point = curve[-1] if curve else None
        if end_point is None:
            break
        sample = tuple(
            point.api for point in curve
            if start <= point.n_apis <= end_point.n_apis
        )[:samples_per_stage]
        result.append(Stage(
            number=number, start=start, end=end_point.n_apis,
            completeness=end_point.completeness, sample_apis=sample))
        start = end_point.n_apis + 1
        if start > len(curve):
            break
    return result


def first_rank_reaching(curve: Sequence[CurvePoint],
                        completeness: float) -> Optional[int]:
    """The N at which the curve first reaches ``completeness``."""
    for point in curve:
        if point.completeness >= completeness:
            return point.n_apis
    return None


def inverted_cdf(importance: Mapping[str, float]) -> List[float]:
    """Figure 2's presentation: importance sorted descending."""
    return [value for _, value in ranked(importance)]
