"""Importance ranking and the incremental implementation path (§3.2).

Implements the greedy strategy behind Figure 3 and Table 4: order APIs
by importance, then measure weighted completeness as the top-N set
grows.  The resulting curve tells a system builder what the next most
valuable API is and how much of a typical installation each
implementation stage unlocks.

The curve runs on the interned substrate: per-package requirement
counts come from mask popcounts, the api -> users index is the
dataset's cached id index, and the dependency condensation
(:class:`repro.dataset.CondensedDependencyGraph`) is built once per
dataset and reused across curve calls — only the cheap per-run
counters (:class:`repro.dataset.SupportTracker`) are fresh.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional, Sequence, Tuple

from ..dataset.core import FootprintsLike, as_dataset
from ..dataset.graph import CondensedDependencyGraph, SupportTracker
from ..packages.popcon import PopularityContest
from ..packages.repository import Repository
from .importance import ranked


class _SupportTracker(SupportTracker):
    """Backwards-compatible alias: build graph + tracker in one shot.

    The implementation moved to :mod:`repro.dataset.graph`, split into
    the immutable condensation and the per-run counters; this shim
    keeps the old ``(universe, repository, assumed)`` constructor for
    existing callers.
    """

    def __init__(self, universe, repository: Repository,
                 assumed) -> None:
        super().__init__(CondensedDependencyGraph(universe, repository,
                                                  assumed))


@dataclass(frozen=True)
class CurvePoint:
    """One point on the Figure 3 curve."""

    n_apis: int
    api: str                 # the API added at this step
    completeness: float


@dataclass(frozen=True)
class Stage:
    """One row of Table 4."""

    number: int
    start: int               # first rank in this stage (1-based)
    end: int                 # last rank
    completeness: float
    sample_apis: Tuple[str, ...]


def completeness_curve(footprints: FootprintsLike,
                       popcon: Optional[PopularityContest] = None,
                       repository: Optional[Repository] = None,
                       dimension: str = "syscall",
                       importance: Optional[Mapping[str, float]] = None,
                       ignore_empty: bool = True,
                       ) -> List[CurvePoint]:
    """Weighted completeness after adding each next-most-important API.

    APIs are added in decreasing weighted importance; ties (the large
    100%-importance head) are broken by unweighted importance, so the
    calls every binary needs come first — this is what makes the
    minimal "hello world" set appear at the head of the curve (§3.2).
    Packages with an empty footprint are excluded (see
    :func:`repro.metrics.completeness.weighted_completeness`).

    Runs incrementally: per package, how many required APIs are still
    missing (a mask popcount); per dependency-graph component, how many
    members and dependencies are still unsupported — so the whole curve
    costs O(APIs + packages + dependency edges) instead of re-running
    the dependency fixed point at every rank.
    """
    dataset = as_dataset(footprints, popcon, repository)
    popcon = dataset._require_popcon()
    repository = dataset.repository
    space = dataset.space
    packages = dataset.packages
    weights = dataset.weights
    universe_ids = dataset.universe_ids(dimension, ignore_empty)

    if importance is None:
        # Empty-in-dimension packages use no APIs, so the table over
        # the filtered universe equals the table over everything.
        importance = dataset.importance_table(dimension)
    usage = dataset.usage_table(dimension, ignore_empty=ignore_empty)
    order = sorted(importance,
                   key=lambda api: (-importance[api],
                                    -usage.get(api, 0.0), api))

    requirement_count = list(dataset.bit_counts(dimension))
    users = dataset.users_index(dimension)

    total_weight = sum(weights[i] for i in universe_ids)
    if total_weight == 0:
        return []

    tracker = (None if repository is None
               else dataset.condensed_graph(
                   dimension, ignore_empty,
                   assume_trivial=True).tracker())

    supported_weight = 0.0

    def note_satisfied(package: str) -> float:
        if tracker is None:
            return dataset.weight_of(package)
        return sum(dataset.weight_of(p)
                   for p in tracker.mark_satisfied(package))

    for i in universe_ids:
        if requirement_count[i] == 0:
            supported_weight += note_satisfied(packages[i])
    curve: List[CurvePoint] = []
    for rank, api in enumerate(order, start=1):
        try:
            api_id = space.id_of(dimension, api)
        except KeyError:
            api_id = None         # universe-extended API nobody uses
        if api_id is not None:
            for pkg_id in users[api_id]:
                requirement_count[pkg_id] -= 1
                if requirement_count[pkg_id] == 0:
                    supported_weight += note_satisfied(
                        packages[pkg_id])
        curve.append(CurvePoint(
            rank, api, supported_weight / total_weight))
    return curve


def stages(curve: Sequence[CurvePoint],
           thresholds: Sequence[float] = (0.011, 0.10, 0.50, 0.90, 1.0),
           samples_per_stage: int = 10) -> List[Stage]:
    """Cut the curve into Table 4's implementation stages.

    Stage *k* ends at the first point whose completeness reaches
    ``thresholds[k]`` (the paper's 1.1% / ~10% / ~50% / ~90% / 100%).
    """
    result: List[Stage] = []
    start = 1
    for number, threshold in enumerate(thresholds, start=1):
        end_point = None
        for point in curve:
            if point.n_apis >= start and point.completeness >= threshold:
                end_point = point
                break
        if end_point is None:
            end_point = curve[-1] if curve else None
        if end_point is None:
            break
        sample = tuple(
            point.api for point in curve
            if start <= point.n_apis <= end_point.n_apis
        )[:samples_per_stage]
        result.append(Stage(
            number=number, start=start, end=end_point.n_apis,
            completeness=end_point.completeness, sample_apis=sample))
        start = end_point.n_apis + 1
        if start > len(curve):
            break
    return result


def first_rank_reaching(curve: Sequence[CurvePoint],
                        completeness: float) -> Optional[int]:
    """The N at which the curve first reaches ``completeness``."""
    for point in curve:
        if point.completeness >= completeness:
            return point.n_apis
    return None


def inverted_cdf(importance: Mapping[str, float]) -> List[float]:
    """Figure 2's presentation: importance sorted descending."""
    return [value for _, value in ranked(importance)]
