"""Importance ranking and the incremental implementation path (§3.2).

Implements the greedy strategy behind Figure 3 and Table 4: order APIs
by importance, then measure weighted completeness as the top-N set
grows.  The resulting curve tells a system builder what the next most
valuable API is and how much of a typical installation each
implementation stage unlocks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

from ..analysis.footprint import Footprint
from ..packages.popcon import PopularityContest
from ..packages.repository import Repository
from .completeness import close_over_dependencies
from .importance import DIMENSIONS, ranked


@dataclass(frozen=True)
class CurvePoint:
    """One point on the Figure 3 curve."""

    n_apis: int
    api: str                 # the API added at this step
    completeness: float


@dataclass(frozen=True)
class Stage:
    """One row of Table 4."""

    number: int
    start: int               # first rank in this stage (1-based)
    end: int                 # last rank
    completeness: float
    sample_apis: Tuple[str, ...]


def completeness_curve(footprints: Mapping[str, Footprint],
                       popcon: PopularityContest,
                       repository: Optional[Repository] = None,
                       dimension: str = "syscall",
                       importance: Optional[Mapping[str, float]] = None,
                       ignore_empty: bool = True,
                       ) -> List[CurvePoint]:
    """Weighted completeness after adding each next-most-important API.

    APIs are added in decreasing weighted importance; ties (the large
    100%-importance head) are broken by unweighted importance, so the
    calls every binary needs come first — this is what makes the
    minimal "hello world" set appear at the head of the curve (§3.2).
    Packages with an empty footprint are excluded (see
    :func:`repro.metrics.completeness.weighted_completeness`).

    Runs in O(APIs + packages) by tracking, per package, how many of
    its required APIs are still missing.
    """
    select = DIMENSIONS[dimension]
    trivially_supported = {pkg for pkg, fp in footprints.items()
                           if not select(fp)}
    if ignore_empty:
        footprints = {pkg: fp for pkg, fp in footprints.items()
                      if select(fp)}
    if importance is None:
        from .importance import importance_table
        importance = importance_table(footprints, popcon, dimension)
    from .unweighted import unweighted_importance_table
    usage = unweighted_importance_table(footprints, dimension)
    order = sorted(importance,
                   key=lambda api: (-importance[api],
                                    -usage.get(api, 0.0), api))

    requirement_count: Dict[str, int] = {}
    users: Dict[str, List[str]] = {}
    for package, footprint in footprints.items():
        needs = select(footprint)
        requirement_count[package] = len(needs)
        for api in needs:
            users.setdefault(api, []).append(package)

    total_weight = sum(popcon.install_probability(p) for p in footprints)
    if total_weight == 0:
        return []

    satisfied = {p for p, count in requirement_count.items()
                 if count == 0}
    curve: List[CurvePoint] = []
    for rank, api in enumerate(order, start=1):
        for package in users.get(api, ()):
            requirement_count[package] -= 1
            if requirement_count[package] == 0:
                satisfied.add(package)
        supported = satisfied
        if repository is not None:
            supported = close_over_dependencies(
                set(satisfied), repository,
                assume_supported=trivially_supported)
        weight = sum(popcon.install_probability(p) for p in supported)
        curve.append(CurvePoint(rank, api, weight / total_weight))
    return curve


def stages(curve: Sequence[CurvePoint],
           thresholds: Sequence[float] = (0.011, 0.10, 0.50, 0.90, 1.0),
           samples_per_stage: int = 10) -> List[Stage]:
    """Cut the curve into Table 4's implementation stages.

    Stage *k* ends at the first point whose completeness reaches
    ``thresholds[k]`` (the paper's 1.1% / ~10% / ~50% / ~90% / 100%).
    """
    result: List[Stage] = []
    start = 1
    for number, threshold in enumerate(thresholds, start=1):
        end_point = None
        for point in curve:
            if point.n_apis >= start and point.completeness >= threshold:
                end_point = point
                break
        if end_point is None:
            end_point = curve[-1] if curve else None
        if end_point is None:
            break
        sample = tuple(
            point.api for point in curve
            if start <= point.n_apis <= end_point.n_apis
        )[:samples_per_stage]
        result.append(Stage(
            number=number, start=start, end=end_point.n_apis,
            completeness=end_point.completeness, sample_apis=sample))
        start = end_point.n_apis + 1
        if start > len(curve):
            break
    return result


def first_rank_reaching(curve: Sequence[CurvePoint],
                        completeness: float) -> Optional[int]:
    """The N at which the curve first reaches ``completeness``."""
    for point in curve:
        if point.completeness >= completeness:
            return point.n_apis
    return None


def inverted_cdf(importance: Mapping[str, float]) -> List[float]:
    """Figure 2's presentation: importance sorted descending."""
    return [value for _, value in ranked(importance)]
