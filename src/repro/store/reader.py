"""Snapshot reader: mmap-backed, lazily materialized datasets.

Opening a ``.rsnap`` does O(header + name tables) work: the file is
mapped read-only, both CRCs are verified (a sequential pass at memory
bandwidth — the cost the cold path avoids is building millions of
Python objects, not reading bytes), and only the package list and the
six interner tables are decoded eagerly, because every query needs
name→id resolution.  Everything per-package stays bytes until touched:

* a dimension's mask column materializes on the first metric query
  over that dimension (``int.from_bytes`` per row, straight off the
  map);
* a package's :class:`repro.analysis.footprint.Footprint` materializes
  on first ``dataset[name]`` access;
* ``bitsets`` (the interned rows as objects) materialize only for
  code that iterates them — the mask columns above never do.

A :class:`SnapshotDataset` is a real :class:`repro.dataset.Dataset`:
same Mapping contract, same lazy caches, bit-identical metric results
(``tests/test_store_roundtrip.py`` pins all three paths — eager JSON,
mmap-lazy, and the legacy reference implementations — to equality).
"""

from __future__ import annotations

import io
import json
import mmap
import pathlib
from typing import Dict, Iterator, List, Optional, Tuple

from ..analysis.footprint import Footprint
from ..dataset.bitset import BitsetFootprint
from ..dataset.core import ApiSpace, Dataset
from ..dataset.dimensions import DIMENSION_ORDER, FOOTPRINT_FIELDS
from ..dataset.interner import ApiInterner
from ..packages.package import Package
from ..packages.popcon import PopularityContest
from ..packages.repository import Repository
from .errors import StoreLayoutError
from .format import (MAGIC, Cursor, SnapshotHeader, decode_header,
                     mask_row_bytes)


def sniff_format(head: bytes) -> str:
    """``"rsnap"`` or ``"json"`` from a file's first bytes."""
    return "rsnap" if bytes(head[:len(MAGIC)]) == MAGIC else "json"


class SnapshotDataset(Dataset):
    """A :class:`Dataset` whose per-package state lives in a snapshot.

    Construction decodes only names; masks, bitsets, and source
    footprints materialize per dimension / per package on first touch
    and are memoized in the same caches the eager class uses, so a
    warmed-up ``SnapshotDataset`` is indistinguishable from an eager
    one.  ``rebound`` (and therefore :func:`repro.dataset.as_dataset`)
    materializes everything first — the clone is a plain eager
    :class:`Dataset` with no tie to the underlying buffer.
    """

    def __init__(self, packages: Tuple[str, ...], space: ApiSpace,
                 buffer, mask_slices: Dict[str, Tuple[int, int]],
                 unresolved: Tuple[int, ...],
                 popcon: Optional[PopularityContest],
                 repository: Optional[Repository],
                 source_fingerprint: str,
                 resources: Tuple = ()) -> None:
        # Deliberately no super().__init__: the whole point is to skip
        # the eager footprint/bitset construction it performs.
        self._footprints: Dict[str, Footprint] = {}   # lazy memo
        self.packages = tuple(packages)
        self.package_index = {name: i
                              for i, name in enumerate(self.packages)}
        self.space = space
        self.popcon = popcon
        self.repository = repository
        #: The fingerprint recorded in the snapshot header — the same
        #: content address a fresh ``footprints_fingerprint`` run would
        #: produce, available without touching a single footprint.
        self.source_fingerprint = source_fingerprint
        self._buffer = buffer
        self._mask_slices = mask_slices   # dim -> (offset, row_bytes)
        self._unresolved = unresolved
        self._bitsets: Optional[List[BitsetFootprint]] = None
        # Keeps the mmap/file objects alive as long as the dataset is.
        self._resources = resources
        # Same lazy caches as Dataset.__init__.
        self._weights = None
        self._weight_by_name = None
        self._masks: Dict[str, List[int]] = {}
        self._bit_counts: Dict[str, List[int]] = {}
        self._universe_ids: Dict[Tuple[str, bool], List[int]] = {}
        self._users: Dict[str, List[List[int]]] = {}
        self._importance: Dict[str, Dict[str, float]] = {}
        self._usage: Dict[Tuple[str, bool], Dict[str, float]] = {}
        self._graphs: Dict[Tuple[str, bool, bool], object] = {}

    # --- lazy materialization -------------------------------------------

    def masks(self, dimension: str) -> List[int]:
        cached = self._masks.get(dimension)
        if cached is None:
            if dimension == "all":
                offsets = self.space.offsets
                columns = [(self.masks(dim), offsets[dim])
                           for dim in DIMENSION_ORDER]
                cached = [0] * len(self.packages)
                for column, shift in columns:
                    for i, mask in enumerate(column):
                        if mask:
                            cached[i] |= mask << shift
            else:
                offset, row_bytes = self._mask_slices[dimension]
                if row_bytes == 0:
                    cached = [0] * len(self.packages)
                else:
                    buffer = self._buffer
                    from_bytes = int.from_bytes
                    cached = [
                        from_bytes(
                            buffer[offset + i * row_bytes:
                                   offset + (i + 1) * row_bytes],
                            "little")
                        for i in range(len(self.packages))]
            self._masks[dimension] = cached
        return cached

    @property
    def bitsets(self) -> List[BitsetFootprint]:
        if self._bitsets is None:
            columns = [self.masks(dim) for dim in DIMENSION_ORDER]
            self._bitsets = [BitsetFootprint(row)
                             for row in zip(*columns)]
        return self._bitsets

    def __getitem__(self, package: str) -> Footprint:
        footprint = self._footprints.get(package)
        if footprint is None:
            index = self.package_index[package]   # KeyError = Mapping
            fields = {
                FOOTPRINT_FIELDS[dim]: frozenset(
                    self.space.interner(dim).names_of(
                        self.masks(dim)[index]))
                for dim in DIMENSION_ORDER}
            footprint = Footprint(
                unresolved_sites=self._unresolved[index], **fields)
            self._footprints[package] = footprint
        return footprint

    def __iter__(self) -> Iterator[str]:
        return iter(self.packages)

    def __len__(self) -> int:
        return len(self.packages)

    def rebound(self, popcon, repository) -> Dataset:
        # The base implementation hands our caches to a plain Dataset
        # clone; materialize them first so the clone is complete.
        for name in self.packages:
            self[name]
        _ = self.bitsets
        return super().rebound(popcon, repository)

    def __repr__(self) -> str:
        loaded = sorted(dim for dim in self._masks if dim != "all")
        return (f"SnapshotDataset({len(self.packages)} packages, "
                f"{self.space!r}, materialized={loaded or 'none'})")


# --- section decoders ----------------------------------------------------

def _decode_meta(data, header: SnapshotHeader) -> Dict:
    offset, length = header.sections[b"META"]
    try:
        meta = json.loads(bytes(data[offset:offset + length]))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise StoreLayoutError(f"META is not JSON ({exc})") from None
    if not isinstance(meta, dict) or "n_packages" not in meta:
        raise StoreLayoutError("META lacks n_packages")
    return meta


def _section_cursor(data, header: SnapshotHeader, tag: bytes) -> Cursor:
    offset, length = header.sections[tag]
    return Cursor(data[offset:offset + length], tag.decode("ascii"))


def _decode_popcon(data,
                   header: SnapshotHeader,
                   ) -> Optional[PopularityContest]:
    if b"POPC" not in header.sections:
        return None
    cursor = _section_cursor(data, header, b"POPC")
    total = cursor.u64()
    count = cursor.u32()
    counts = {}
    for _ in range(count):
        name = cursor.string()
        counts[name] = cursor.u64()
    try:
        return PopularityContest(total, counts)
    except ValueError as exc:
        raise StoreLayoutError(f"POPC: {exc}") from None


def _decode_provides(data,
                     header: SnapshotHeader) -> Dict[str, List[str]]:
    """Provides: edges from the optional PRVS section (DEPS-v2).

    Absent in pre-refactor snapshots and in snapshots of corpora
    without virtual packages — both load as degenerate AND graphs.
    """
    if b"PRVS" not in header.sections:
        return {}
    cursor = _section_cursor(data, header, b"PRVS")
    count = cursor.u32()
    provides: Dict[str, List[str]] = {}
    for _ in range(count):
        name = cursor.string()
        names = cursor.string_list()
        if name in provides:
            raise StoreLayoutError(f"PRVS: duplicate entry {name!r}")
        provides[name] = names
    return provides


def _decode_repository(data,
                       header: SnapshotHeader,
                       ) -> Optional[Repository]:
    if b"DEPS" not in header.sections:
        return None
    provides = _decode_provides(data, header)
    cursor = _section_cursor(data, header, b"DEPS")
    count = cursor.u32()
    packages = []
    for _ in range(count):
        name = cursor.string()
        category = cursor.string()
        depends = cursor.string_list()
        packages.append(Package(name, category=category,
                                depends=depends,
                                provides=provides.pop(name, [])))
    if provides:
        raise StoreLayoutError(
            f"PRVS names unknown packages: "
            f"{sorted(provides)[:5]}")
    try:
        return Repository(packages)
    except ValueError as exc:
        raise StoreLayoutError(f"DEPS: {exc}") from None


def _dataset_from_buffer(data, header: SnapshotHeader,
                         popcon: Optional[PopularityContest],
                         repository: Optional[Repository],
                         resources: Tuple) -> SnapshotDataset:
    meta = _decode_meta(data, header)
    packages = tuple(_section_cursor(data, header,
                                     b"PKGS").string_list())
    if len(packages) != meta["n_packages"]:
        raise StoreLayoutError(
            f"META says {meta['n_packages']} packages, "
            f"PKGS holds {len(packages)}")
    if len(set(packages)) != len(packages):
        raise StoreLayoutError("duplicate package names")
    itab = _section_cursor(data, header, b"ITAB")
    interners = {}
    for dim in DIMENSION_ORDER:
        names = itab.string_list()
        interner = ApiInterner(names)
        if list(interner.names) != names:
            raise StoreLayoutError(
                f"ITAB {dim}: names not in sorted id order")
        interners[dim] = interner
    space = ApiSpace(interners)
    mask_slices: Dict[str, Tuple[int, int]] = {}
    for index, dim in enumerate(DIMENSION_ORDER):
        tag = f"MSK{index}".encode("ascii")
        offset, length = header.sections[tag]
        cursor = Cursor(data[offset:offset + length],
                        tag.decode("ascii"))
        row_bytes = cursor.u32()
        if row_bytes != mask_row_bytes(space.size(dim)):
            raise StoreLayoutError(
                f"{tag.decode()}: row is {row_bytes} bytes; "
                f"universe of {space.size(dim)} needs "
                f"{mask_row_bytes(space.size(dim))}")
        expected = 4 + row_bytes * len(packages)
        if length != expected:
            raise StoreLayoutError(
                f"{tag.decode()}: {length} bytes != expected "
                f"{expected}")
        mask_slices[dim] = (offset + 4, row_bytes)
    unrs = _section_cursor(data, header, b"UNRS")
    count = unrs.u32()
    if count != len(packages):
        raise StoreLayoutError(
            f"UNRS holds {count} counts for {len(packages)} packages")
    unresolved = unrs.u64_array(count)
    if popcon is None:
        popcon = _decode_popcon(data, header)
    if repository is None:
        repository = _decode_repository(data, header)
    return SnapshotDataset(
        packages=packages, space=space, buffer=data,
        mask_slices=mask_slices, unresolved=unresolved,
        popcon=popcon, repository=repository,
        source_fingerprint=header.fingerprint, resources=resources)


# --- public loaders ------------------------------------------------------

def load_snapshot_bytes(data,
                        popcon: Optional[PopularityContest] = None,
                        repository: Optional[Repository] = None,
                        resources: Tuple = ()) -> SnapshotDataset:
    """Load a snapshot from an in-memory buffer (bytes or mmap).

    Explicit ``popcon`` / ``repository`` override the embedded POPC /
    DEPS sections — the :meth:`repro.dataset.Dataset.rebound`
    convention the engine cache and serve reload rely on.
    """
    header = decode_header(data)
    return _dataset_from_buffer(data, header, popcon, repository,
                                resources)


def load_snapshot(path,
                  popcon: Optional[PopularityContest] = None,
                  repository: Optional[Repository] = None,
                  ) -> SnapshotDataset:
    """mmap ``path`` read-only and load it lazily.

    The map (and file handle) stay referenced by the returned dataset
    and are released when it is garbage collected.  Falls back to a
    plain read for filesystems that cannot map (still lazy — the
    buffer just lives on the heap).
    """
    from .errors import StoreTruncatedError
    target = pathlib.Path(path)
    handle = open(target, "rb")
    try:
        size = target.stat().st_size
        if size == 0:
            raise StoreTruncatedError(f"{target} is empty")
        try:
            mapped = mmap.mmap(handle.fileno(), 0,
                               access=mmap.ACCESS_READ)
        except (OSError, ValueError, io.UnsupportedOperation):
            data = handle.read()
            return load_snapshot_bytes(data, popcon, repository)
    except BaseException:
        handle.close()
        raise
    try:
        return load_snapshot_bytes(mapped, popcon, repository,
                                   resources=(mapped, handle))
    except BaseException:
        mapped.close()
        handle.close()
        raise


def snapshot_info(path) -> Dict[str, object]:
    """Header-level metadata without loading the dataset.

    Validates the full integrity ladder (so the answer is
    trustworthy), then reports version, fingerprint, package count,
    and per-section sizes — the ``dataset convert`` / debugging
    surface.
    """
    data = pathlib.Path(path).read_bytes()
    header = decode_header(data)
    meta = _decode_meta(data, header)
    return {
        "format": "rsnap",
        "version": header.version,
        "fingerprint": header.fingerprint,
        "file_size": header.file_size,
        "n_packages": meta["n_packages"],
        "sections": {tag.decode("ascii"): length
                     for tag, (_, length) in
                     sorted(header.sections.items())},
        "has_popcon": b"POPC" in header.sections,
        "has_repository": b"DEPS" in header.sections,
        "has_provides": b"PRVS" in header.sections,
    }
