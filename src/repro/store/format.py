"""The ``.rsnap`` wire format: header, section table, primitives.

Layout (all integers little-endian)::

    offset 0   magic        8 bytes   b"\\x89RSNAP\\r\\n"
    offset 8   version      u32       STORE_VERSION
    offset 12  n_sections   u32
    offset 16  file_size    u64       total bytes, truncation check
    offset 24  fingerprint  64 bytes  ascii hex sha256 (codec fingerprint)
    offset 88  payload_crc  u32       crc32 of every payload byte
    offset 92  section table: n_sections x (tag 4s, offset u64, length u64)
    ...        meta_crc     u32       crc32 of header + section table
    ...        payload sections (absolute offsets, contiguous)

The magic follows the PNG convention — a high-bit first byte so text
tools never mistake the file for ASCII, then the format name, then
``\\r\\n`` so line-ending translation is detected as corruption.  The
first byte also makes one-read format sniffing trivial: a JSON dataset
snapshot starts with ``{``.

Sections (tags are 4 ASCII bytes):

======  ==================================================================
META    canonical JSON: {"n_packages": N} (+ optional corpus metadata)
PKGS    package names, input-mapping order (u32 count, len-prefixed utf8)
ITAB    six interner name tables, DIMENSION_ORDER, id (= sorted) order
MSK0-5  per-dimension masks: u32 row_bytes, then n_packages LE byte rows
UNRS    per-package unresolved_sites (u32 count, u64 each)
POPC    optional popcon: u64 total, u32 entries, (name, u64 count) each
DEPS    optional repository skeleton: (name, category, depends) per pkg
PRVS    optional Provides: edges: u32 entries, (name, provides list) each
======  ==================================================================

``DEPS`` entries carry ``a | b`` alternative syntax verbatim inside
the depends strings, so pre-refactor snapshots decode unchanged as
degenerate AND graphs; ``PRVS`` is written only when some package
declares ``Provides:`` — a flat corpus produces byte-identical files
before and after the AND-OR dependency refactor (DEPS-v2).

Integrity is two checksums: ``meta_crc`` covers the header and section
table (so a flipped offset can never be followed), ``payload_crc``
covers every payload byte (so a mid-file bit flip is caught before any
value is materialized).  ``file_size`` catches truncation without
hashing anything.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import Dict, List, Tuple

from .errors import (StoreCRCError, StoreLayoutError, StoreMagicError,
                     StoreTruncatedError, StoreVersionError)

#: First bytes of every binary snapshot; JSON snapshots start with "{".
MAGIC = b"\x89RSNAP\r\n"

#: Bump on incompatible wire-layout change.  Readers reject any other
#: version (the JSON codec is the portable migration path).
STORE_VERSION = 1

_HEADER = struct.Struct("<8sIIQ64sI")     # magic .. payload_crc
_SECTION = struct.Struct("<4sQQ")         # tag, offset, length
_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")

HEADER_SIZE = _HEADER.size
SECTION_SIZE = _SECTION.size

#: Sections every snapshot must carry (POPC / DEPS are optional).
REQUIRED_TAGS = (b"META", b"PKGS", b"ITAB", b"MSK0", b"MSK1", b"MSK2",
                 b"MSK3", b"MSK4", b"MSK5", b"UNRS")
OPTIONAL_TAGS = (b"POPC", b"DEPS", b"PRVS")

_MAX_SECTIONS = 64  # v1 defines 13; anything bigger is garbage


def crc32(data) -> int:
    return zlib.crc32(data) & 0xFFFFFFFF


def mask_row_bytes(universe_size: int) -> int:
    """Bytes per package mask row for a dimension of this many APIs."""
    return (universe_size + 7) // 8


# --- primitive encoders --------------------------------------------------

def pack_str(name: str) -> bytes:
    """u16 length + utf8 bytes (API/package names are short)."""
    encoded = name.encode("utf-8")
    if len(encoded) > 0xFFFF:
        raise ValueError(f"name too long for snapshot: {name[:40]!r}...")
    return _U16.pack(len(encoded)) + encoded


def pack_str_list(names) -> bytes:
    materialized = list(names)
    out = [_U32.pack(len(materialized))]
    out.extend(pack_str(name) for name in materialized)
    return b"".join(out)


class Cursor:
    """Bounds-checked reader over one section's bytes.

    Every overrun raises :class:`StoreLayoutError` — by the time a
    cursor runs, both CRCs have passed, so an overrun means the writer
    and reader disagree about the layout, not that the file is torn.
    """

    __slots__ = ("data", "pos", "tag")

    def __init__(self, data, tag: str) -> None:
        self.data = data
        self.pos = 0
        self.tag = tag

    def _take(self, count: int) -> bytes:
        end = self.pos + count
        if end > len(self.data):
            raise StoreLayoutError(
                f"section {self.tag}: read past end "
                f"({end} > {len(self.data)})")
        chunk = self.data[self.pos:end]
        self.pos = end
        return chunk

    def u16(self) -> int:
        return _U16.unpack(self._take(2))[0]

    def u32(self) -> int:
        return _U32.unpack(self._take(4))[0]

    def u64(self) -> int:
        return _U64.unpack(self._take(8))[0]

    def u64_array(self, count: int) -> Tuple[int, ...]:
        raw = self._take(8 * count)
        return struct.unpack(f"<{count}Q", raw)

    def string(self) -> str:
        length = self.u16()
        raw = self._take(length)
        try:
            return bytes(raw).decode("utf-8")
        except UnicodeDecodeError as exc:
            raise StoreLayoutError(
                f"section {self.tag}: bad utf-8 ({exc})") from None

    def string_list(self) -> List[str]:
        count = self.u32()
        if count > len(self.data):  # each entry is >= 2 bytes
            raise StoreLayoutError(
                f"section {self.tag}: impossible count {count}")
        return [self.string() for _ in range(count)]

    def exhausted(self) -> bool:
        return self.pos == len(self.data)


# --- header --------------------------------------------------------------

@dataclass(frozen=True)
class SnapshotHeader:
    """Decoded header + section table of one validated snapshot."""

    version: int
    file_size: int
    fingerprint: str
    payload_crc: int
    sections: Dict[bytes, Tuple[int, int]]   # tag -> (offset, length)

    @property
    def payload_start(self) -> int:
        return (HEADER_SIZE + len(self.sections) * SECTION_SIZE
                + _U32.size)


def encode_file(fingerprint: str,
                sections: List[Tuple[bytes, bytes]]) -> bytes:
    """Assemble a complete snapshot file from (tag, payload) pairs."""
    fp_bytes = fingerprint.encode("ascii")
    if len(fp_bytes) != 64:
        raise ValueError("fingerprint must be 64 ascii hex chars")
    n_sections = len(sections)
    payload_start = (HEADER_SIZE + n_sections * SECTION_SIZE
                     + _U32.size)
    table = []
    offset = payload_start
    payload_parts = []
    for tag, payload in sections:
        table.append(_SECTION.pack(tag, offset, len(payload)))
        payload_parts.append(payload)
        offset += len(payload)
    payload = b"".join(payload_parts)
    file_size = payload_start + len(payload)
    header = _HEADER.pack(MAGIC, STORE_VERSION, n_sections, file_size,
                          fp_bytes, crc32(payload))
    meta = header + b"".join(table)
    return meta + _U32.pack(crc32(meta)) + payload


def decode_header(data) -> SnapshotHeader:
    """Validate ``data`` and decode its header.

    Runs the full integrity ladder — magic, version, size, both CRCs,
    section-table sanity — and raises the matching typed
    :class:`repro.store.errors.StoreError`.  After this returns, every
    section slice is in bounds and every payload byte is checksummed:
    lazy materialization can never observe corruption.
    """
    size = len(data)
    if size < HEADER_SIZE:
        raise StoreTruncatedError(
            f"snapshot is {size} bytes; header needs {HEADER_SIZE}")
    (magic, version, n_sections, file_size, fp_bytes,
     payload_crc) = _HEADER.unpack_from(data, 0)
    if magic != MAGIC:
        raise StoreMagicError(
            f"bad magic {bytes(magic)!r}; not a .rsnap snapshot")
    if version != STORE_VERSION:
        raise StoreVersionError(
            f"snapshot version {version} != supported {STORE_VERSION}")
    if file_size != size:
        raise StoreTruncatedError(
            f"header claims {file_size} bytes, file has {size}")
    if n_sections > _MAX_SECTIONS:
        raise StoreLayoutError(f"implausible section count "
                               f"{n_sections}")
    meta_end = HEADER_SIZE + n_sections * SECTION_SIZE
    payload_start = meta_end + _U32.size
    if payload_start > size:
        raise StoreTruncatedError(
            f"section table overruns the file "
            f"({payload_start} > {size})")
    (meta_crc,) = _U32.unpack_from(data, meta_end)
    if crc32(data[:meta_end]) != meta_crc:
        raise StoreCRCError("header/section-table checksum mismatch")
    if crc32(data[payload_start:]) != payload_crc:
        raise StoreCRCError("payload checksum mismatch")
    try:
        fingerprint = bytes(fp_bytes).decode("ascii")
    except UnicodeDecodeError:  # pragma: no cover - crc catches first
        raise StoreCRCError("fingerprint is not ascii") from None
    sections: Dict[bytes, Tuple[int, int]] = {}
    for index in range(n_sections):
        tag, offset, length = _SECTION.unpack_from(
            data, HEADER_SIZE + index * SECTION_SIZE)
        tag = bytes(tag)
        if tag in sections:
            raise StoreLayoutError(f"duplicate section {tag!r}")
        if offset < payload_start or offset + length > size:
            raise StoreLayoutError(
                f"section {tag!r} [{offset}, {offset + length}) "
                f"outside payload [{payload_start}, {size})")
        sections[tag] = (offset, length)
    for tag in REQUIRED_TAGS:
        if tag not in sections:
            raise StoreLayoutError(f"missing section {tag!r}")
    return SnapshotHeader(version=version, file_size=file_size,
                          fingerprint=fingerprint,
                          payload_crc=payload_crc, sections=sections)
