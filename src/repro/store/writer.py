"""Snapshot writer: :class:`repro.dataset.Dataset` -> ``.rsnap`` bytes.

The writer serializes exactly what the JSON codec persists — interner
name tables, per-package masks, unresolved-site counts — plus two
optional sections the JSON codec treats as runtime inputs: the popcon
count vector and a skeleton of the dependency graph.  Embedding them
makes a ``.rsnap`` self-contained for serving (weights and dependency
closures reconstruct bit-exactly from integer counts and edge lists),
while explicit ``popcon=`` / ``repository=`` arguments at load time
still override, preserving the engine cache's rebind convention.

Files are published atomically (temp file + ``os.replace``) so a
crashed writer can never leave a torn snapshot that later reads as
corrupt — the same discipline as the engine cache's JSON entries.
"""

from __future__ import annotations

import json
import os
import pathlib
import struct
import tempfile
from typing import List, Optional, Tuple

from ..dataset.codec import footprints_fingerprint
from ..dataset.core import Dataset
from ..dataset.dimensions import DIMENSION_ORDER
from .format import (encode_file, mask_row_bytes, pack_str,
                     pack_str_list)

_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")


def _meta_section(dataset: Dataset) -> bytes:
    meta = {"n_packages": len(dataset.packages)}
    return json.dumps(meta, sort_keys=True,
                      separators=(",", ":")).encode("utf-8")


def _interner_section(dataset: Dataset) -> bytes:
    return b"".join(
        pack_str_list(dataset.space.interner(dim).names)
        for dim in DIMENSION_ORDER)


def _mask_section(dataset: Dataset, dimension: str) -> bytes:
    row_bytes = mask_row_bytes(dataset.space.size(dimension))
    parts = [_U32.pack(row_bytes)]
    if row_bytes:
        parts.extend(mask.to_bytes(row_bytes, "little")
                     for mask in dataset.masks(dimension))
    return b"".join(parts)


def _unresolved_section(dataset: Dataset) -> bytes:
    counts = [dataset[name].unresolved_sites
              for name in dataset.packages]
    return _U32.pack(len(counts)) + struct.pack(
        f"<{len(counts)}Q", *counts)


def _popcon_section(dataset: Dataset) -> Optional[bytes]:
    popcon = dataset.popcon
    if popcon is None:
        return None
    entries = sorted(popcon.packages())
    parts = [_U64.pack(popcon.total_installations),
             _U32.pack(len(entries))]
    for name in entries:
        parts.append(pack_str(name))
        parts.append(_U64.pack(popcon.installations(name)))
    return b"".join(parts)


def _deps_section(dataset: Dataset) -> Optional[bytes]:
    repository = dataset.repository
    if repository is None:
        return None
    packages = list(repository)
    parts = [_U32.pack(len(packages))]
    for package in packages:
        parts.append(pack_str(package.name))
        parts.append(pack_str(package.category))
        parts.append(pack_str_list(package.depends))
    return b"".join(parts)


def _provides_section(dataset: Dataset) -> Optional[bytes]:
    """Provides: edges (DEPS-v2).  Omitted when no package provides
    anything, so flat corpora keep byte-identical snapshots."""
    repository = dataset.repository
    if repository is None:
        return None
    providing = [package for package in repository if package.provides]
    if not providing:
        return None
    parts = [_U32.pack(len(providing))]
    for package in providing:
        parts.append(pack_str(package.name))
        parts.append(pack_str_list(package.provides))
    return b"".join(parts)


def snapshot_to_bytes(dataset: Dataset,
                      fingerprint: Optional[str] = None) -> bytes:
    """Encode ``dataset`` as one complete ``.rsnap`` file image.

    ``fingerprint`` defaults to the dataset's content address
    (:func:`repro.dataset.codec.footprints_fingerprint`); a dataset
    loaded from a snapshot reuses its embedded fingerprint instead of
    rehashing the corpus.
    """
    if fingerprint is None:
        fingerprint = getattr(dataset, "source_fingerprint", None)
    if fingerprint is None:
        fingerprint = footprints_fingerprint(dataset)
    sections: List[Tuple[bytes, bytes]] = [
        (b"META", _meta_section(dataset)),
        (b"PKGS", pack_str_list(dataset.packages)),
        (b"ITAB", _interner_section(dataset)),
    ]
    for index, dim in enumerate(DIMENSION_ORDER):
        sections.append((f"MSK{index}".encode("ascii"),
                         _mask_section(dataset, dim)))
    sections.append((b"UNRS", _unresolved_section(dataset)))
    popc = _popcon_section(dataset)
    if popc is not None:
        sections.append((b"POPC", popc))
    deps = _deps_section(dataset)
    if deps is not None:
        sections.append((b"DEPS", deps))
    provides = _provides_section(dataset)
    if provides is not None:
        sections.append((b"PRVS", provides))
    return encode_file(fingerprint, sections)


def write_snapshot(path, dataset: Dataset,
                   fingerprint: Optional[str] = None) -> int:
    """Atomically write ``dataset`` to ``path``; return bytes written."""
    data = snapshot_to_bytes(dataset, fingerprint)
    target = pathlib.Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=str(target.parent),
                                    suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
        os.replace(tmp_name, target)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return len(data)
