"""repro.store: zero-copy binary snapshots of the dataset substrate.

The JSON codec (:mod:`repro.dataset.codec`) is the portable
interchange format, but its cold path is O(corpus): every load parses
text, converts hex masks, and builds one frozenset per package per
dimension before the first query can run.  This package adds a
versioned, struct-packed binary format — ``.rsnap`` — whose cold open
is O(header + name tables): the file is mmap'd, integrity-checked with
two CRCs, and everything per-package stays raw bytes until a query
touches it (:class:`repro.store.SnapshotDataset`).

Contract with the JSON codec:

* ``JSON -> .rsnap -> JSON`` round-trips byte-identically;
* every metric over an mmap-loaded dataset equals the eager path (and
  the legacy ``dataset.reference`` implementations) bit for bit;
* a snapshot that fails any integrity check raises a typed
  :class:`StoreError` — never a partial Dataset — and the hierarchy
  subclasses :class:`repro.dataset.DatasetCodecError`, so existing
  corrupt-payload handling (engine-cache delete-to-miss, serve reload
  rejection) applies unchanged.

See DESIGN.md "Snapshot store" for the wire layout and the
lazy-materialization rules.
"""

from .errors import (StoreCRCError, StoreError, StoreLayoutError,
                     StoreMagicError, StoreTruncatedError,
                     StoreVersionError)
from .format import MAGIC, STORE_VERSION, decode_header
from .reader import (SnapshotDataset, load_snapshot,
                     load_snapshot_bytes, sniff_format, snapshot_info)
from .writer import snapshot_to_bytes, write_snapshot

__all__ = [
    "MAGIC",
    "STORE_VERSION",
    "SnapshotDataset",
    "StoreCRCError",
    "StoreError",
    "StoreLayoutError",
    "StoreMagicError",
    "StoreTruncatedError",
    "StoreVersionError",
    "decode_header",
    "load_snapshot",
    "load_snapshot_bytes",
    "sniff_format",
    "snapshot_info",
    "snapshot_to_bytes",
    "write_snapshot",
]
