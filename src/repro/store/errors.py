"""Typed failure taxonomy for the binary snapshot store.

Every way a ``.rsnap`` file can be unloadable gets its own exception
type, all rooted at :class:`StoreError`.  The root subclasses
:class:`repro.dataset.codec.DatasetCodecError`, so every caller that
already treats a torn JSON snapshot as "corrupt dataset payload" —
the engine cache's delete-to-miss path, the serve reload handler —
handles a torn binary snapshot identically without new plumbing.

The engine's analysis-error taxonomy maps the whole hierarchy onto
``error_class="format"`` at stage ``"load"``
(:func:`repro.engine.errors.classify_exception`): a snapshot that
fails integrity checks is bad *input*, never a partial
:class:`repro.dataset.Dataset`.
"""

from __future__ import annotations

from ..dataset.codec import DatasetCodecError


class StoreError(DatasetCodecError):
    """A binary snapshot cannot be loaded (malformed, torn, stale)."""

    #: Taxonomy bucket for :func:`repro.engine.errors.classify_exception`.
    error_class = "format"
    #: Pipeline stage the failure belongs to.
    stage = "load"


class StoreMagicError(StoreError):
    """The file does not start with the ``.rsnap`` magic bytes."""


class StoreVersionError(StoreError):
    """The snapshot was written by an incompatible format version."""


class StoreTruncatedError(StoreError):
    """The file is shorter than its header claims (torn write)."""


class StoreCRCError(StoreError):
    """A checksum mismatch: the bytes on disk are not what was written."""


class StoreLayoutError(StoreError):
    """The checksums pass but the section layout is inconsistent."""
