"""Pre-fork multi-worker serving: supervisor, workers, reload fan-out.

One CPython process cannot scale the serve layer: the metric kernels
and JSON encoding hold the GIL, so a ``ThreadingHTTPServer`` flatlines
as clients are added (BENCH_serve measured 2,836 req/s with one client
vs 2,969 with four).  The classic fix is the pre-fork model — N worker
*processes*, one listening address — and the ``.rsnap`` store makes it
nearly free here: every worker mmaps the same snapshot file, so the
corpus lives once in the page cache no matter how many workers serve
it.

Architecture::

    supervisor ── binds the address, owns worker lifecycle
        │   SIGHUP ──► fan-out: SIGHUP to every worker
        │   SIGTERM ─► graceful: SIGTERM + join every worker
        ├── worker 0 ── SnapshotHolder.from_file(dataset.rsnap)  (mmap)
        ├── worker 1 ──            ″
        └── worker N ── each: own ServeApp + ThreadingTransport,
                        own qcache/admission/registry (labelled)

Two socket arrangements, picked per platform:

* ``reuseport`` (Linux et al.) — the supervisor binds the address
  once *without* listening (reserving the port and resolving port 0),
  and every worker binds its own ``SO_REUSEPORT`` listening socket to
  the resolved address; the kernel spreads connections across the
  per-worker accept queues, and a dead worker's queue is dropped the
  moment its socket closes.
* ``inherit`` (fallback) — the supervisor binds *and listens*, and
  forked workers accept from the one inherited socket; a dead
  worker's pending connections simply wait in the shared backlog for
  a sibling (or the restarted worker) to accept them.

Crash recovery: the supervisor monitors worker processes and restarts
any that die unexpectedly, with exponential backoff that resets after
a healthy run — one poisoned request cannot turn the fleet into a
fork bomb.

Reload protocol: the cross-worker extension of the holder's RCU swap.
``reload_all()`` (wired to the supervisor's SIGHUP by the CLI) sends
SIGHUP to every worker; each worker re-reads the *same* bound source
path via :meth:`repro.serve.app.ServeApp.reload_from_source`, so
``/readyz`` fingerprint/format provenance stays identical across the
fleet, and each worker's ``/readyz`` flips not-ready only for its own
load window.  Per-worker ``/admin/reload`` is disabled (a single
worker reloading alone would desynchronize provenance).
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import socket
import sys
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..obs import MetricsRegistry, SpanTracer
from .app import ServeApp
from .server import ThreadingTransport, reuse_port_available
from .snapshot import SnapshotRegistry

#: Listen backlog for the shared (inherited) socket; deep enough that
#: a worker restart window queues connections instead of refusing.
_BACKLOG = 128


@dataclass(frozen=True)
class WorkerSettings:
    """Per-worker :class:`ServeApp` knobs (mirrors the CLI flags).

    Each worker gets its *own* result cache and admission controller
    sized from these — concurrency is per worker, so a fleet of N
    admits up to ``N * concurrency`` requests.
    """

    cache_entries: int = 1024
    cache_ttl_seconds: Optional[float] = None
    concurrency: int = 8
    max_wait_seconds: float = 0.25
    deadline_seconds: Optional[float] = 2.0


@dataclass
class _WorkerHandle:
    """Supervisor-side bookkeeping for one worker process."""

    index: int
    process: "multiprocessing.process.BaseProcess"
    ready: object  # multiprocessing.Event; set once the worker accepts
    started_at: float
    restarts: int = 0
    last_exitcode: Optional[int] = None


def default_mode() -> str:
    """The socket arrangement this platform supports best."""
    return "reuseport" if reuse_port_available() else "inherit"


def _worker_main(index: int, address, mode: str,
                 inherited: Optional[socket.socket],
                 snapshot_path: str, popcon, repository,
                 settings: WorkerSettings, quiet: bool,
                 ready=None,
                 tenants: Optional[Dict[str, str]] = None) -> None:
    """One worker process: mmap the snapshot(s), serve until SIGTERM.

    Runs only in a forked child.  The worker is a fresh serving
    universe — its own registry of holders, app, caches, metrics
    (labelled with the worker index and pid), and transport — over the
    *shared* snapshot bytes.  ``snapshot_path`` may be a ``.rsnap``,
    JSON, or ``.rser`` series file (sniffed); ``tenants`` maps extra
    tenant names to their own files.
    """
    # No reloads until the holders exist; a SIGHUP racing the boot
    # window is dropped rather than crashing the worker.
    signal.signal(signal.SIGHUP, signal.SIG_IGN)
    snapshots = SnapshotRegistry.from_files(
        snapshot_path, popcon, repository, tenants=tenants)
    label = f"{index}:{os.getpid()}"
    app = ServeApp(
        snapshots,
        registry=MetricsRegistry(),
        tracer=SpanTracer(),
        cache_entries=settings.cache_entries,
        cache_ttl_seconds=settings.cache_ttl_seconds,
        concurrency=settings.concurrency,
        max_wait_seconds=settings.max_wait_seconds,
        deadline_seconds=settings.deadline_seconds,
        allow_reload=False,  # cross-worker reloads go through SIGHUP
        metrics_labels={"worker": str(index),
                        "pid": str(os.getpid())})
    app.registry.gauge("serve.worker.index").set(float(index))
    app.registry.gauge("serve.worker.pid").set(float(os.getpid()))
    if mode == "inherit":
        transport = ThreadingTransport(app, quiet=quiet,
                                       sock=inherited, listening=True,
                                       worker_label=label)
    else:
        transport = ThreadingTransport(app, host=address[0],
                                       port=address[1], quiet=quiet,
                                       reuse_port=True,
                                       worker_label=label)

    stop = threading.Event()

    def _drain(signum, frame):  # SIGTERM and SIGINT both drain
        stop.set()

    def _reload(signum, frame):
        # Signal handlers must not block the accept loop; the holder's
        # reload lock serializes overlapping fan-outs on a thread.
        def _do() -> None:
            try:
                app.reload_from_source()
            except Exception as exc:
                # A failed load keeps the old snapshot authoritative
                # (holder guarantee); account for it and keep serving.
                app.registry.counter(
                    "serve.worker.failed_reloads").inc()
                if not quiet:
                    print(f"worker {index}: reload failed: {exc}",
                          file=sys.stderr, flush=True)
        threading.Thread(target=_do, name="repro-serve-reload",
                         daemon=True).start()

    signal.signal(signal.SIGTERM, _drain)
    signal.signal(signal.SIGINT, _drain)
    signal.signal(signal.SIGHUP, _reload)

    transport.start()
    if ready is not None:
        ready.set()  # the accept queue exists; clients may connect
    try:
        # Poll rather than block indefinitely: a process-directed
        # signal may be delivered to a serving thread, where the C
        # handler only sets a flag — the Python-level handler runs in
        # the main thread, which must wake up to notice it.  An
        # untimed Event.wait() would sleep through that forever.
        while not stop.wait(0.2):
            pass
    finally:
        # Graceful drain: stop accepting, join in-flight handlers.
        transport.stop()
    sys.exit(0)


class WorkerSupervisor:
    """Bind one address, run N serve workers over one snapshot file.

    The supervisor never serves traffic itself; it owns the address,
    the worker processes, and the two fleet-wide verbs (``stop`` and
    ``reload_all``).  See the module docstring for the architecture.
    """

    def __init__(self, snapshot_path, workers: int = 2,
                 host: str = "127.0.0.1", port: int = 0,
                 popcon=None, repository=None,
                 settings: Optional[WorkerSettings] = None,
                 tenants: Optional[Dict[str, str]] = None,
                 quiet: bool = True, mode: str = "auto",
                 backoff_base_seconds: float = 0.1,
                 backoff_cap_seconds: float = 2.0,
                 healthy_after_seconds: float = 5.0) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if mode == "auto":
            mode = default_mode()
        if mode not in ("reuseport", "inherit"):
            raise ValueError(f"unknown socket mode: {mode!r}")
        if mode == "reuseport" and not reuse_port_available():
            raise ValueError("SO_REUSEPORT is not available on this "
                             "platform; use mode='inherit'")
        if not hasattr(os, "fork"):  # pragma: no cover - non-POSIX
            raise RuntimeError("pre-fork serving requires os.fork")
        self.snapshot_path = str(snapshot_path)
        self.workers = workers
        self.mode = mode
        self.popcon = popcon
        self.repository = repository
        self.settings = settings if settings is not None \
            else WorkerSettings()
        self.tenants = dict(tenants or {})
        self.quiet = quiet
        self.backoff_base_seconds = backoff_base_seconds
        self.backoff_cap_seconds = backoff_cap_seconds
        self.healthy_after_seconds = healthy_after_seconds
        self.total_restarts = 0
        self._requested = (host, port)
        self._socket: Optional[socket.socket] = None
        self._address = None
        self._handles: Dict[int, _WorkerHandle] = {}
        self._ctx = multiprocessing.get_context("fork")
        self._stopping = threading.Event()
        self._monitor_thread: Optional[threading.Thread] = None
        self._started = False

    # --- address ---------------------------------------------------------

    @property
    def host(self) -> str:
        return self._address[0]

    @property
    def port(self) -> int:
        return self._address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # --- lifecycle -------------------------------------------------------

    def start(self) -> "WorkerSupervisor":
        """Bind, spawn every worker, and start the crash monitor."""
        if self._started:
            raise RuntimeError("supervisor already started")
        self._bind()
        self._started = True
        for index in range(self.workers):
            self._spawn(index)
        self._monitor_thread = threading.Thread(
            target=self._monitor, name="repro-serve-supervisor",
            daemon=True)
        self._monitor_thread.start()
        return self

    def _bind(self) -> None:
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        try:
            sock.setsockopt(socket.SOL_SOCKET,
                            socket.SO_REUSEADDR, 1)
            if self.mode == "reuseport":
                # Bound but never listening: reserves the port (and
                # resolves port 0) while workers own the real accept
                # queues on their own SO_REUSEPORT sockets.
                sock.setsockopt(socket.SOL_SOCKET,
                                socket.SO_REUSEPORT, 1)
                sock.bind(self._requested)
            else:
                sock.bind(self._requested)
                sock.listen(_BACKLOG)
            self._address = sock.getsockname()
            self._socket = sock
        except BaseException:
            sock.close()
            raise

    def _spawn(self, index: int, restarts: int = 0) -> None:
        inherited = self._socket if self.mode == "inherit" else None
        ready = self._ctx.Event()
        process = self._ctx.Process(
            target=_worker_main,
            args=(index, self._address, self.mode, inherited,
                  self.snapshot_path, self.popcon, self.repository,
                  self.settings, self.quiet, ready, self.tenants),
            name=f"repro-serve-worker-{index}", daemon=False)
        process.start()
        self._handles[index] = _WorkerHandle(
            index=index, process=process, ready=ready,
            started_at=time.monotonic(), restarts=restarts)

    def wait_until_ready(self, timeout: float = 30.0
                         ) -> "WorkerSupervisor":
        """Block until every worker slot has an accepting process.

        Boot is not instant — each worker must fork and map the
        snapshot before it can accept — so callers that connect right
        after :meth:`start` would race the fleet.  A worker that dies
        mid-boot is respawned by the monitor; the wait simply follows
        the slot to the fresh process until the deadline.
        """
        deadline = time.monotonic() + timeout
        for index in range(self.workers):
            while True:
                handle = self._handles.get(index)
                if handle is not None and handle.ready.is_set():
                    break
                if time.monotonic() >= deadline:
                    raise TimeoutError(
                        f"serve worker {index} was not ready after "
                        f"{timeout:.1f}s")
                time.sleep(0.05)
        return self

    def _monitor(self) -> None:
        """Restart crashed workers with capped exponential backoff."""
        while not self._stopping.is_set():
            for handle in list(self._handles.values()):
                if handle.process.is_alive() \
                        or self._stopping.is_set():
                    continue
                handle.process.join()  # reap
                handle.last_exitcode = handle.process.exitcode
                uptime = time.monotonic() - handle.started_at
                restarts = 0 if uptime >= self.healthy_after_seconds \
                    else handle.restarts + 1
                delay = min(self.backoff_cap_seconds,
                            self.backoff_base_seconds
                            * (2 ** min(restarts, 16)))
                if not self.quiet:
                    print(f"worker {handle.index} exited "
                          f"{handle.last_exitcode}; restarting in "
                          f"{delay:.2f}s", file=sys.stderr,
                          flush=True)
                if self._stopping.wait(delay):
                    return
                self.total_restarts += 1
                self._spawn(handle.index, restarts)
            self._stopping.wait(0.05)

    def reload_all(self) -> int:
        """Fan a snapshot reload out to every live worker (SIGHUP).

        Returns the number of workers signalled.  Each worker re-reads
        the supervisor's snapshot path, so after the fan-out settles
        every ``/readyz`` reports the same fingerprint and format.
        """
        signalled = 0
        for handle in self._handles.values():
            process = handle.process
            if process.is_alive() and process.pid is not None:
                try:
                    os.kill(process.pid, signal.SIGHUP)
                    signalled += 1
                except ProcessLookupError:  # lost the race with death
                    pass
        return signalled

    def stop(self, timeout: float = 10.0) -> None:
        """Graceful fleet shutdown: SIGTERM, drain, join, close."""
        self._stopping.set()
        if self._monitor_thread is not None:
            self._monitor_thread.join(timeout=timeout)
            self._monitor_thread = None
        for handle in self._handles.values():
            process = handle.process
            if process.is_alive() and process.pid is not None:
                try:
                    os.kill(process.pid, signal.SIGTERM)
                except ProcessLookupError:
                    pass
        deadline = time.monotonic() + timeout
        for handle in self._handles.values():
            process = handle.process
            process.join(timeout=max(0.1,
                                     deadline - time.monotonic()))
            if process.is_alive():  # pragma: no cover - stuck worker
                process.kill()
                process.join(timeout=5.0)
            handle.last_exitcode = process.exitcode
        if self._socket is not None:
            self._socket.close()
            self._socket = None

    def __enter__(self) -> "WorkerSupervisor":
        self.start()
        return self.wait_until_ready()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False

    # --- introspection ---------------------------------------------------

    def worker_pids(self) -> List[Optional[int]]:
        """Live worker pids by index (None for a dead/respawning slot)."""
        pids: List[Optional[int]] = []
        for index in range(self.workers):
            handle = self._handles.get(index)
            alive = handle is not None and handle.process.is_alive()
            pids.append(handle.process.pid if alive else None)
        return pids

    def stats(self) -> Dict[str, object]:
        return {
            "mode": self.mode,
            "workers": self.workers,
            "address": list(self._address) if self._address else None,
            "snapshot_path": self.snapshot_path,
            "tenants": dict(self.tenants),
            "total_restarts": self.total_restarts,
            "worker_table": [
                {"index": handle.index,
                 "pid": handle.process.pid,
                 "alive": handle.process.is_alive(),
                 "restarts": handle.restarts,
                 "last_exitcode": handle.last_exitcode}
                for handle in self._handles.values()],
        }
