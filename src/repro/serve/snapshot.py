"""RCU-style dataset snapshot holder with atomic hot reload.

The server holds one warm :class:`repro.dataset.Dataset` and must be
able to replace it — a re-analyzed corpus, a new release — without
dropping a single in-flight request.  The classic read-copy-update
discipline fits exactly:

* **Readers** call :meth:`SnapshotHolder.current` once at request
  start and use that :class:`DatasetSnapshot` for the whole request.
  The read is a single attribute load (atomic under the GIL), so it
  takes no lock and can never observe a half-swapped state; the
  garbage collector keeps the old dataset alive until the last request
  referencing it finishes.
* **The writer** (one at a time, serialized by a lock) builds the
  complete replacement off to the side — parse, decode, rebind — and
  publishes it with one reference assignment.  A failed load changes
  nothing: the old snapshot stays current and the error propagates to
  the caller.

``/readyz`` reflects the loading window: it flips to *not ready* while
a reload is in progress so load balancers stop sending **new** traffic
to an instance mid-swap, and flips back once the new snapshot is
published (or the load failed and the old one remains authoritative).
In-flight requests are never affected — readiness gates admission of
future work, not completion of current work.

Reload sources are sniffed by their leading bytes: binary ``.rsnap``
snapshots (:mod:`repro.store` — ``repro-analyze dataset convert``
output, engine-cache ``datasets/<fp>.rsnap`` entries) open via mmap
with lazy mask materialization, and JSON payloads
(``repro.dataset.codec`` — ``dataset export`` output, legacy cache
entries) take the eager decode path.  Both produce bit-identical
served responses.
"""

from __future__ import annotations

import pathlib
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..dataset.codec import (dataset_from_json, dataset_to_json,
                             footprints_fingerprint)
from ..dataset.core import Dataset
from ..store import load_snapshot, sniff_format, write_snapshot


@dataclass(frozen=True)
class DatasetSnapshot:
    """One immutable published dataset generation."""

    dataset: Dataset
    fingerprint: str
    generation: int
    loaded_at: float = field(default_factory=time.time)
    #: Where this generation came from: "memory" (built in-process),
    #: "json" (codec reload), or "rsnap" (binary snapshot reload).
    source_format: str = "memory"

    @property
    def packages(self) -> int:
        return len(self.dataset.packages)


def _annotate(snapshot: DatasetSnapshot) -> DatasetSnapshot:
    """Stamp provenance onto the dataset for ``/dataset/stats``.

    Endpoint payload builders only see the dataset, not the holder, so
    the snapshot's provenance rides along as an attribute.
    """
    snapshot.dataset.snapshot_meta = {
        "format": snapshot.source_format,
        "fingerprint": snapshot.fingerprint,
    }
    return snapshot


def _load_dataset_file(path, popcon, repository):
    """Sniff and load a snapshot file.

    Returns ``(dataset, fingerprint, source_format)``; raises on any
    corruption or I/O failure without producing a partial dataset.
    """
    source = pathlib.Path(path)
    with source.open("rb") as handle:
        head = handle.read(8)
    if sniff_format(head) == "rsnap":
        dataset = load_snapshot(source, popcon, repository)
        return dataset, dataset.source_fingerprint, "rsnap"
    text = source.read_text(encoding="utf-8")
    dataset = dataset_from_json(text, popcon, repository)
    return dataset, footprints_fingerprint(dataset), "json"


class SnapshotHolder:
    """Single-writer, many-reader holder of the current snapshot."""

    def __init__(self, dataset: Dataset,
                 fingerprint: Optional[str] = None, *,
                 source_format: str = "memory",
                 source_path: Optional[str] = None) -> None:
        if fingerprint is None:
            fingerprint = footprints_fingerprint(dataset)
        self._current = _annotate(DatasetSnapshot(
            dataset=dataset, fingerprint=fingerprint, generation=1,
            source_format=source_format))
        self._ready = True
        self._reload_lock = threading.Lock()
        #: The snapshot file generation 1 was loaded from (or the last
        #: file a reload succeeded from); ``reload_from_source`` —
        #: the cross-worker SIGHUP fan-out trigger — re-reads it.
        self.source_path = source_path
        self.reloads = 0
        self.failed_reloads = 0

    @classmethod
    def from_file(cls, path, popcon=None,
                  repository=None) -> "SnapshotHolder":
        """Boot a holder directly from a snapshot file.

        This is how pre-fork workers start: each worker of a fleet
        calls this on the same ``.rsnap`` path, so the mmap'd pages
        are shared through the page cache instead of N eager copies.
        ``popcon`` / ``repository`` follow the ``rebound`` convention
        (explicit objects override embedded sections).
        """
        dataset, fingerprint, source_format = _load_dataset_file(
            path, popcon, repository)
        return cls(dataset, fingerprint,
                   source_format=source_format,
                   source_path=str(path))

    # --- reader side ----------------------------------------------------

    def current(self) -> DatasetSnapshot:
        """The published snapshot: one atomic reference read."""
        return self._current

    def ready(self) -> bool:
        """False only inside a reload window (new traffic should wait)."""
        return self._ready

    @property
    def generation(self) -> int:
        return self._current.generation

    # --- writer side ----------------------------------------------------

    def swap_dataset(self, dataset: Dataset,
                     fingerprint: Optional[str] = None,
                     ) -> DatasetSnapshot:
        """Publish an already-built dataset as the new snapshot."""
        if fingerprint is None:
            fingerprint = footprints_fingerprint(dataset)
        with self._reload_lock:
            snapshot = _annotate(DatasetSnapshot(
                dataset=dataset, fingerprint=fingerprint,
                generation=self._current.generation + 1))
            self._current = snapshot
            self.reloads += 1
            return snapshot

    def reload_from_file(self, path) -> DatasetSnapshot:
        """Load a dataset snapshot file and publish it atomically.

        The format is sniffed from the file's first bytes: ``.rsnap``
        magic takes the mmap'd lazy path (the embedded fingerprint is
        trusted — it was content-derived at write time), anything else
        is decoded as a JSON codec payload and fingerprinted fresh.
        Popcon and repository are carried over from the current
        snapshot either way (the payloads persist only interned state —
        the :meth:`repro.dataset.Dataset.rebound` convention).
        In-flight requests keep their snapshot; ``/readyz`` reports
        not-ready for the duration of the load.  On any failure the old
        snapshot remains current, readiness is restored, and the error
        propagates.
        """
        with self._reload_lock:
            old = self._current
            self._ready = False
            try:
                dataset, fingerprint, source_format = \
                    _load_dataset_file(path, old.dataset.popcon,
                                       old.dataset.repository)
                snapshot = _annotate(DatasetSnapshot(
                    dataset=dataset, fingerprint=fingerprint,
                    generation=old.generation + 1,
                    source_format=source_format))
                self._current = snapshot
                self.source_path = str(path)
                self.reloads += 1
                return snapshot
            except Exception:
                self.failed_reloads += 1
                raise
            finally:
                self._ready = True

    def reload_from_source(self) -> DatasetSnapshot:
        """Re-read the bound snapshot path and publish it.

        The cross-worker reload protocol: the supervisor fans a SIGHUP
        out to every worker, and each worker re-reads the *same*
        source path — so fingerprint and format provenance stay
        identical across the fleet.  Raises ``RuntimeError`` when the
        holder was built in-memory and never reloaded from a file.
        """
        if self.source_path is None:
            raise RuntimeError(
                "holder has no source path bound; it was built "
                "in-memory and never (re)loaded from a file")
        return self.reload_from_file(self.source_path)

    def export_to_file(self, path, format: str = "json") -> int:
        """Write the current snapshot in a reloadable format.

        ``format`` is ``"json"`` (portable codec) or ``"binary"``
        (``.rsnap``); returns the byte count written.
        """
        snapshot = self._current
        if format == "binary":
            return write_snapshot(pathlib.Path(path), snapshot.dataset,
                                  snapshot.fingerprint)
        if format != "json":
            raise ValueError(f"unknown export format: {format!r}")
        text = dataset_to_json(snapshot.dataset)
        pathlib.Path(path).write_text(text, encoding="utf-8")
        return len(text)

    def stats(self) -> Dict[str, object]:
        snapshot = self._current
        return {
            "generation": snapshot.generation,
            "fingerprint": snapshot.fingerprint,
            "format": snapshot.source_format,
            "packages": snapshot.packages,
            "ready": self._ready,
            "reloads": self.reloads,
            "failed_reloads": self.failed_reloads,
            "source_path": self.source_path,
        }
