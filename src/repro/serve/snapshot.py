"""RCU-style snapshot holders and the multi-tenant registry.

The server holds warm published state and must be able to replace it —
a re-analyzed corpus, a new release train — without dropping a single
in-flight request.  The classic read-copy-update discipline fits
exactly:

* **Readers** call :meth:`current` once at request start and use that
  published object for the whole request.  The read is a single
  attribute load (atomic under the GIL), so it takes no lock and can
  never observe a half-swapped state; the garbage collector keeps the
  old state alive until the last request referencing it finishes.
* **The writer** (one at a time, serialized by a lock) builds the
  complete replacement off to the side — parse, decode, rebind — and
  publishes it with one reference assignment.  A failed load changes
  nothing: the old snapshot stays current and the error propagates to
  the caller.

``/readyz`` reflects the loading window: it flips to *not ready* while
a reload is in progress so load balancers stop sending **new** traffic
to an instance mid-swap, and flips back once the new snapshot is
published (or the load failed and the old one remains authoritative).
In-flight requests are never affected — readiness gates admission of
future work, not completion of current work.

Two holder flavors share that discipline via :class:`_RcuHolder`:

* :class:`SnapshotHolder` publishes one :class:`repro.dataset.Dataset`.
  Reload sources are sniffed by their leading bytes: binary ``.rsnap``
  snapshots (:mod:`repro.store`) open via mmap with lazy mask
  materialization, and JSON payloads (:mod:`repro.dataset.codec`) take
  the eager decode path.  Both produce bit-identical served responses.
* :class:`SeriesHolder` publishes a whole
  :class:`repro.series.DatasetSeries` — every release of a train at
  once — so ``?release=`` time-travel queries resolve against one
  consistent generation.

:class:`SnapshotRegistry` maps tenant names to holders.  The
``default`` tenant is what un-qualified requests hit; every holder
keeps its own RCU generation counter and reload accounting, so one
tenant's failed reload never disturbs another's published state.
"""

from __future__ import annotations

import pathlib
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, Mapping, Optional, Tuple

from ..dataset.codec import (dataset_from_json, dataset_to_json,
                             footprints_fingerprint)
from ..dataset.core import Dataset
from ..series import load_series, sniff_series
from ..store import load_snapshot, sniff_format, write_snapshot

#: Tenant name un-qualified requests resolve against.
DEFAULT_TENANT = "default"


@dataclass(frozen=True)
class DatasetSnapshot:
    """One immutable published dataset generation."""

    dataset: Dataset
    fingerprint: str
    generation: int
    loaded_at: float = field(default_factory=time.time)
    #: Where this generation came from: "memory" (built in-process),
    #: "json" (codec reload), or "rsnap" (binary snapshot reload).
    source_format: str = "memory"

    @property
    def packages(self) -> int:
        return len(self.dataset.packages)


@dataclass(frozen=True)
class SeriesSnapshot:
    """One immutable published release train generation.

    ``fingerprint`` is the series fingerprint (the hash over the whole
    release chain); individual releases keep their own content
    fingerprints in :attr:`release_fingerprints`.
    """

    series: object  # repro.series.DatasetSeries
    fingerprint: str
    generation: int
    loaded_at: float = field(default_factory=time.time)
    source_format: str = "rser"

    @property
    def n_releases(self) -> int:
        return self.series.n_releases

    @property
    def head_release(self) -> int:
        return self.series.n_releases - 1

    @property
    def packages(self) -> int:
        """Package count of the head release (no materialization)."""
        return self.series.n_packages[-1]

    @property
    def release_fingerprints(self) -> Tuple[str, ...]:
        return self.series.fingerprints

    def dataset_at(self, release: int) -> Dataset:
        """Materialize one release, stamped with its provenance.

        The stamp mirrors :func:`_annotate` but adds the release index
        so ``/dataset/stats`` answers say *which* point of the train
        they describe.
        """
        dataset = self.series.at(release)
        dataset.snapshot_meta = {
            "format": self.source_format,
            "fingerprint": self.series.fingerprints[release],
            "release": release,
        }
        return dataset


def _annotate(snapshot: DatasetSnapshot) -> DatasetSnapshot:
    """Stamp provenance onto the dataset for ``/dataset/stats``.

    Endpoint payload builders only see the dataset, not the holder, so
    the snapshot's provenance rides along as an attribute.
    """
    snapshot.dataset.snapshot_meta = {
        "format": snapshot.source_format,
        "fingerprint": snapshot.fingerprint,
    }
    return snapshot


def _load_dataset_file(path, popcon, repository):
    """Sniff and load a snapshot file.

    Returns ``(dataset, fingerprint, source_format)``; raises on any
    corruption or I/O failure without producing a partial dataset.
    """
    source = pathlib.Path(path)
    with source.open("rb") as handle:
        head = handle.read(8)
    if sniff_format(head) == "rsnap":
        dataset = load_snapshot(source, popcon, repository)
        return dataset, dataset.source_fingerprint, "rsnap"
    text = source.read_text(encoding="utf-8")
    dataset = dataset_from_json(text, popcon, repository)
    return dataset, footprints_fingerprint(dataset), "json"


class _RcuHolder:
    """Shared single-writer / many-reader publication machinery.

    Subclasses provide :meth:`_load` (path + old published state ->
    new published state) and inherit the lock-free read side, the
    ready-window bookkeeping, and the failed-reload accounting.
    """

    def __init__(self, current, source_path: Optional[str]) -> None:
        self._current = current
        self._ready = True
        self._reload_lock = threading.Lock()
        #: The file generation 1 was loaded from (or the last file a
        #: reload succeeded from); ``reload_from_source`` — the
        #: cross-worker SIGHUP fan-out trigger — re-reads it.
        self.source_path = source_path
        self.reloads = 0
        self.failed_reloads = 0

    # --- reader side ----------------------------------------------------

    def current(self):
        """The published snapshot: one atomic reference read."""
        return self._current

    def ready(self) -> bool:
        """False only inside a reload window (new traffic should wait)."""
        return self._ready

    @property
    def generation(self) -> int:
        return self._current.generation

    # --- writer side ----------------------------------------------------

    def _load(self, path, old):
        raise NotImplementedError

    def reload_from_file(self, path):
        """Load a file and publish it atomically.

        In-flight requests keep their snapshot; ``/readyz`` reports
        not-ready for the duration of the load.  On any failure the old
        snapshot remains current, readiness is restored, and the error
        propagates.
        """
        with self._reload_lock:
            old = self._current
            self._ready = False
            try:
                snapshot = self._load(path, old)
                self._current = snapshot
                self.source_path = str(path)
                self.reloads += 1
                return snapshot
            except Exception:
                self.failed_reloads += 1
                raise
            finally:
                self._ready = True

    def reload_from_source(self):
        """Re-read the bound source path and publish it.

        The cross-worker reload protocol: the supervisor fans a SIGHUP
        out to every worker, and each worker re-reads the *same*
        source path — so fingerprint and format provenance stay
        identical across the fleet.  Raises ``RuntimeError`` when the
        holder was built in-memory and never reloaded from a file.
        """
        if self.source_path is None:
            raise RuntimeError(
                "holder has no source path bound; it was built "
                "in-memory and never (re)loaded from a file")
        return self.reload_from_file(self.source_path)


class SnapshotHolder(_RcuHolder):
    """Single-writer, many-reader holder of one current dataset."""

    def __init__(self, dataset: Dataset,
                 fingerprint: Optional[str] = None, *,
                 source_format: str = "memory",
                 source_path: Optional[str] = None) -> None:
        if fingerprint is None:
            fingerprint = footprints_fingerprint(dataset)
        super().__init__(_annotate(DatasetSnapshot(
            dataset=dataset, fingerprint=fingerprint, generation=1,
            source_format=source_format)), source_path)

    @classmethod
    def from_file(cls, path, popcon=None,
                  repository=None) -> "SnapshotHolder":
        """Boot a holder directly from a snapshot file.

        This is how pre-fork workers start: each worker of a fleet
        calls this on the same ``.rsnap`` path, so the mmap'd pages
        are shared through the page cache instead of N eager copies.
        ``popcon`` / ``repository`` follow the ``rebound`` convention
        (explicit objects override embedded sections).
        """
        dataset, fingerprint, source_format = _load_dataset_file(
            path, popcon, repository)
        return cls(dataset, fingerprint,
                   source_format=source_format,
                   source_path=str(path))

    def _load(self, path, old: DatasetSnapshot) -> DatasetSnapshot:
        """Sniff + decode a snapshot file into the next generation.

        The format is sniffed from the file's first bytes: ``.rsnap``
        magic takes the mmap'd lazy path (the embedded fingerprint is
        trusted — it was content-derived at write time), anything else
        is decoded as a JSON codec payload and fingerprinted fresh.
        Popcon and repository are carried over from the current
        snapshot either way (the payloads persist only interned state —
        the :meth:`repro.dataset.Dataset.rebound` convention).
        """
        dataset, fingerprint, source_format = _load_dataset_file(
            path, old.dataset.popcon, old.dataset.repository)
        return _annotate(DatasetSnapshot(
            dataset=dataset, fingerprint=fingerprint,
            generation=old.generation + 1,
            source_format=source_format))

    def swap_dataset(self, dataset: Dataset,
                     fingerprint: Optional[str] = None,
                     ) -> DatasetSnapshot:
        """Publish an already-built dataset as the new snapshot."""
        if fingerprint is None:
            fingerprint = footprints_fingerprint(dataset)
        with self._reload_lock:
            snapshot = _annotate(DatasetSnapshot(
                dataset=dataset, fingerprint=fingerprint,
                generation=self._current.generation + 1))
            self._current = snapshot
            self.reloads += 1
            return snapshot

    def export_to_file(self, path, format: str = "json") -> int:
        """Write the current snapshot in a reloadable format.

        ``format`` is ``"json"`` (portable codec) or ``"binary"``
        (``.rsnap``); returns the byte count written.
        """
        snapshot = self._current
        if format == "binary":
            return write_snapshot(pathlib.Path(path), snapshot.dataset,
                                  snapshot.fingerprint)
        if format != "json":
            raise ValueError(f"unknown export format: {format!r}")
        text = dataset_to_json(snapshot.dataset)
        pathlib.Path(path).write_text(text, encoding="utf-8")
        return len(text)

    def stats(self) -> Dict[str, object]:
        snapshot = self._current
        return {
            "generation": snapshot.generation,
            "fingerprint": snapshot.fingerprint,
            "format": snapshot.source_format,
            "packages": snapshot.packages,
            "ready": self._ready,
            "reloads": self.reloads,
            "failed_reloads": self.failed_reloads,
            "source_path": self.source_path,
        }


class SeriesHolder(_RcuHolder):
    """Single-writer, many-reader holder of one current release train.

    Publishing the whole :class:`repro.series.DatasetSeries` as one
    generation is what makes time-travel queries consistent: a request
    that pins a generation sees the *same* chain for ``?release=0``
    and ``?release=9``, even if a reload lands mid-request.
    """

    def __init__(self, series, *,
                 source_path: Optional[str] = None) -> None:
        super().__init__(SeriesSnapshot(
            series=series, fingerprint=series.series_fingerprint,
            generation=1), source_path)

    @classmethod
    def from_file(cls, path) -> "SeriesHolder":
        """Boot a holder from a ``.rser`` file (mmap'd, lazy deltas)."""
        return cls(load_series(path), source_path=str(path))

    def _load(self, path, old: SeriesSnapshot) -> SeriesSnapshot:
        series = load_series(path)
        return SeriesSnapshot(
            series=series, fingerprint=series.series_fingerprint,
            generation=old.generation + 1)

    def stats(self) -> Dict[str, object]:
        snapshot = self._current
        return {
            "generation": snapshot.generation,
            "fingerprint": snapshot.fingerprint,
            "format": snapshot.source_format,
            "packages": snapshot.packages,
            "releases": snapshot.n_releases,
            "ready": self._ready,
            "reloads": self.reloads,
            "failed_reloads": self.failed_reloads,
            "source_path": self.source_path,
        }


def holder_from_file(path, popcon=None, repository=None):
    """Boot the right holder flavor for a file, sniffed by magic.

    ``.rser`` series files get a :class:`SeriesHolder`; everything
    else (``.rsnap`` or JSON) a :class:`SnapshotHolder`.  This is the
    one entry point the CLI and pre-fork workers need.
    """
    source = pathlib.Path(path)
    with source.open("rb") as handle:
        head = handle.read(8)
    if sniff_series(head):
        return SeriesHolder.from_file(source)
    return SnapshotHolder.from_file(source, popcon, repository)


@dataclass(frozen=True)
class ResolvedTarget:
    """What one request's tenant/release coordinates resolved to."""

    tenant: str
    holder: _RcuHolder
    snapshot: object
    fingerprint: str
    generation: int
    #: Materialized dataset for dataset-scope endpoints (None for
    #: series scope).
    dataset: Optional[Dataset] = None
    #: The release train for series-scope endpoints (None for plain
    #: snapshot tenants / dataset scope).
    series: Optional[object] = None
    #: Release index the dataset was materialized at, when the tenant
    #: serves a series (None for plain snapshot tenants).
    release: Optional[int] = None


class SnapshotRegistry:
    """Named holders behind one serve app — multi-tenant publication.

    Registration is done at boot / config time (no lock: mutation is
    not concurrent with request traffic by construction, and readers
    only ever do dict lookups on a dict that stops changing once
    serving starts).  Each holder keeps its own RCU discipline.
    """

    def __init__(self) -> None:
        self._holders: Dict[str, _RcuHolder] = {}

    @classmethod
    def of(cls, source) -> "SnapshotRegistry":
        """Adapt a holder (or pass through a registry) for ServeApp."""
        if isinstance(source, SnapshotRegistry):
            return source
        registry = cls()
        registry.add(DEFAULT_TENANT, source)
        return registry

    @classmethod
    def from_files(cls, path, popcon=None, repository=None,
                   tenants: Optional[Mapping[str, str]] = None,
                   ) -> "SnapshotRegistry":
        """Boot a registry: ``path`` as default plus named tenants."""
        registry = cls()
        registry.add(DEFAULT_TENANT,
                     holder_from_file(path, popcon, repository))
        for name, tenant_path in (tenants or {}).items():
            registry.add(name, holder_from_file(tenant_path))
        return registry

    def add(self, name: str, holder) -> None:
        if not name or not all(
                ch.isalnum() or ch in "._-" for ch in name):
            raise ValueError(
                f"invalid tenant name {name!r}: use letters, digits, "
                "'.', '_' or '-'")
        if name in self._holders:
            raise ValueError(f"tenant {name!r} already registered")
        self._holders[name] = holder

    def get(self, tenant: Optional[str] = None) -> _RcuHolder:
        name = DEFAULT_TENANT if tenant is None else tenant
        try:
            return self._holders[name]
        except KeyError:
            raise ValueError(
                f"unknown tenant {name!r}; serving "
                f"{sorted(self._holders)}") from None

    def names(self):
        return sorted(self._holders)

    def items(self) -> Iterator[Tuple[str, _RcuHolder]]:
        return iter(sorted(self._holders.items()))

    def ready(self) -> bool:
        return all(holder.ready()
                   for holder in self._holders.values())

    @property
    def generation(self) -> int:
        """The default tenant's generation (single-tenant shorthand)."""
        return self.get().generation

    def resolve(self, tenant: Optional[str] = None,
                release=None, scope: str = "dataset") -> ResolvedTarget:
        """Pin one tenant's current snapshot and pick the query subject.

        ``release`` is the raw ``?release=`` query value (string or
        int).  All coordinate errors raise ``ValueError`` — the serve
        layer maps that to a 400 ``bad_request`` envelope:

        * unknown tenant,
        * series scope against a plain snapshot tenant,
        * ``release=`` against a plain snapshot tenant,
        * a release index outside the train.
        """
        name = DEFAULT_TENANT if tenant is None else tenant
        holder = self.get(name)
        snapshot = holder.current()
        is_series = isinstance(snapshot, SeriesSnapshot)
        if scope == "series":
            if not is_series:
                raise ValueError(
                    f"tenant {name!r} serves a single snapshot; "
                    "series queries need a release train")
            return ResolvedTarget(
                tenant=name, holder=holder, snapshot=snapshot,
                fingerprint=snapshot.fingerprint,
                generation=snapshot.generation,
                series=snapshot.series)
        if scope != "dataset":
            raise ValueError(f"unknown endpoint scope {scope!r}")
        if not is_series:
            if release is not None:
                raise ValueError(
                    f"tenant {name!r} serves a single snapshot; "
                    "release= is not supported")
            return ResolvedTarget(
                tenant=name, holder=holder, snapshot=snapshot,
                fingerprint=snapshot.fingerprint,
                generation=snapshot.generation,
                dataset=snapshot.dataset)
        if release is None:
            index = snapshot.head_release
        else:
            try:
                index = int(release)
            except (TypeError, ValueError):
                raise ValueError(
                    f"release must be a release index, "
                    f"got {release!r}") from None
        dataset = snapshot.dataset_at(index)  # ValueError if unknown
        return ResolvedTarget(
            tenant=name, holder=holder, snapshot=snapshot,
            fingerprint=snapshot.series.fingerprints[index],
            generation=snapshot.generation,
            dataset=dataset, release=index)

    def reload_from_source(self) -> Dict[str, object]:
        """SIGHUP fan-in: re-read every source-bound tenant.

        Attempts *all* tenants even if one fails (partial progress is
        better than none for the fleet), then re-raises the first
        failure so the caller's failed-reload accounting fires.
        Raises ``RuntimeError`` when no tenant has a source path.
        """
        sourced = [(name, holder) for name, holder in self.items()
                   if holder.source_path is not None]
        if not sourced:
            raise RuntimeError(
                "holder has no source path bound; it was built "
                "in-memory and never (re)loaded from a file")
        published: Dict[str, object] = {}
        first_error: Optional[Exception] = None
        for name, holder in sourced:
            try:
                published[name] = holder.reload_from_source()
            except Exception as exc:  # noqa: BLE001 — keep fleet going
                if first_error is None:
                    first_error = exc
        if first_error is not None:
            raise first_error
        return published

    def stats(self) -> Dict[str, Dict[str, object]]:
        return {name: holder.stats() for name, holder in self.items()}
