"""Framework-free request core: routing, codec, envelope, pipeline.

:class:`ServeApp` is the whole server minus the sockets — it maps a
:class:`Request` to a :class:`Response` deterministically, which is
what makes the serving layer testable (and hammerable) without HTTP.
:mod:`repro.serve.server` adapts it onto ``ThreadingHTTPServer``.

Request lifecycle for a query endpoint::

    route -> admission slot -> deadline start -> snapshot pin
          -> normalize params -> result cache probe
          -> [miss: compute payload under a span] -> envelope -> JSON

Every response body is canonical JSON (sorted keys, compact
separators) carrying a versioned schema::

    {"schema": "repro.serve", "version": 1, "endpoint": ...,
     "fingerprint": ..., "generation": ..., "cached": ...,
     "data": {...}}

and errors use the same envelope with ``"error"`` in place of
``"data"``, its ``class`` drawn from the serve request taxonomy
(:mod:`repro.serve.endpoints`) or, for failures escaping the metric
kernels, the engine's analysis taxonomy
(:func:`repro.engine.errors.classify_exception`) — the server speaks
one error language from the HTTP edge down to the decoder.

Observability: every request runs under a ``serve.request`` span
(endpoint, status, and cache outcome as attributes, cache misses with
a nested ``serve.compute`` span) and feeds the registry —
``serve.requests`` / per-endpoint counters, ``serve.request_seconds``
/ per-endpoint latency histograms, qcache and admission counters —
which ``GET /metrics`` exposes in the Prometheus text format via the
same :func:`repro.obs.render_metrics` the CLI exporter uses.
"""

from __future__ import annotations

import json
import math
import time
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

from ..engine.errors import AnalysisError, classify_exception
from ..obs import MetricsRegistry, SpanTracer, render_metrics
from .admission import (AdmissionController, Deadline,
                        DeadlineExceededError, OverloadedError)
from .endpoints import (ENDPOINTS, Endpoint, BadRequestError,
                        MethodNotAllowedError, NotFoundError,
                        ServeRequestError)
from .qcache import QueryCache, canonical_query_key
from .snapshot import (DEFAULT_TENANT, SeriesSnapshot,
                       SnapshotRegistry)

#: Bump when the response envelope shape changes.
SERVE_SCHEMA = "repro.serve"
SERVE_SCHEMA_VERSION = 1


def canonical_json(payload: Any) -> bytes:
    """The one JSON encoding every response uses.

    Sorted keys + compact separators + no NaN: a given payload object
    has exactly one serialization, which is what lets the parity suite
    compare served bytes against direct library calls.
    """
    return json.dumps(payload, sort_keys=True,
                      separators=(",", ":"),
                      allow_nan=False).encode("utf-8")


@dataclass
class Request:
    """One decoded HTTP request, transport-independent."""

    method: str
    path: str
    query: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""
    headers: Dict[str, str] = field(default_factory=dict)

    def json_body(self) -> Optional[Dict[str, Any]]:
        """The parsed JSON body, or None when there is no body."""
        if not self.body:
            return None
        try:
            data = json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise BadRequestError(f"request body is not valid JSON: "
                                  f"{exc}") from None
        if not isinstance(data, dict):
            raise BadRequestError("request body must be a JSON object")
        return data


@dataclass
class Response:
    """One response: status, body, and transport headers."""

    status: int
    body: bytes
    content_type: str = "application/json"
    headers: Dict[str, str] = field(default_factory=dict)

    @classmethod
    def json(cls, status: int, payload: Any,
             headers: Optional[Dict[str, str]] = None) -> "Response":
        return cls(status=status, body=canonical_json(payload) + b"\n",
                   headers=dict(headers or {}))

    @classmethod
    def text(cls, status: int, text: str) -> "Response":
        return cls(status=status, body=text.encode("utf-8"),
                   content_type="text/plain; version=0.0.4; "
                                "charset=utf-8")

    def json_payload(self) -> Any:
        """Decode the body back to data (test convenience)."""
        return json.loads(self.body.decode("utf-8"))


_STATUS_FOR_ANALYSIS_CLASS = {
    # A metric kernel raising the analysis taxonomy means the *input*
    # (not the server) was bad or the budget ran out.
    "format": 422, "decode": 422, "resolution": 422,
    "timeout": 504, "internal": 500,
}


class ServeApp:
    """The request pipeline over published snapshots.

    ``source`` is a single holder (:class:`SnapshotHolder` or
    :class:`SeriesHolder`, registered as the ``default`` tenant) or a
    pre-built :class:`SnapshotRegistry`.  Requests pick their tenant
    with ``?tenant=`` and — against a series tenant — their release
    with ``?release=`` (defaulting to the head release); series-scope
    endpoints (``/v1/trend/*``, ``/v1/release/diff``,
    ``/v1/series/stats``) see the whole release train.
    """

    def __init__(self, source,
                 registry: Optional[MetricsRegistry] = None,
                 tracer: Optional[SpanTracer] = None,
                 cache_entries: int = 1024,
                 cache_ttl_seconds: Optional[float] = None,
                 concurrency: int = 8,
                 max_wait_seconds: float = 0.25,
                 deadline_seconds: Optional[float] = 2.0,
                 allow_reload: bool = True,
                 metrics_labels: Optional[Dict[str, str]] = None,
                 ) -> None:
        self.snapshots = SnapshotRegistry.of(source)
        #: Constant labels stamped on every ``/metrics`` sample — the
        #: pre-fork supervisor sets ``{"worker": ..., "pid": ...}`` so
        #: scrapes from different workers stay distinguishable.
        self.metrics_labels = dict(metrics_labels or {})
        self.registry = registry if registry is not None \
            else MetricsRegistry()
        self.tracer = tracer if tracer is not None else SpanTracer()
        self.qcache = QueryCache(max_entries=cache_entries,
                                 ttl_seconds=cache_ttl_seconds)
        self.admission = AdmissionController(
            slots=concurrency, max_wait_seconds=max_wait_seconds)
        self.deadline_seconds = deadline_seconds
        self.allow_reload = allow_reload
        self.started_at = time.time()
        # Exact-match routing tables: (path -> {method -> endpoint}).
        self._routes: Dict[str, Dict[str, Endpoint]] = {}
        for endpoint in ENDPOINTS:
            self._routes.setdefault(endpoint.path, {})[
                endpoint.method] = endpoint

    @property
    def holder(self):
        """The default tenant's holder (single-tenant shorthand)."""
        return self.snapshots.get()

    # --- entry point ----------------------------------------------------

    def handle(self, request: Request) -> Response:
        """Map one request to one response.  Never raises."""
        self.registry.counter("serve.requests").inc()
        start = time.perf_counter()
        try:
            response = self._dispatch(request)
        except Exception as exc:  # pragma: no cover - last-ditch guard
            response = self._error_response(request, exc)
        seconds = time.perf_counter() - start
        self.registry.histogram("serve.request_seconds").observe(
            seconds)
        self.registry.counter(
            f"serve.responses.{response.status // 100}xx").inc()
        return response

    # --- routing --------------------------------------------------------

    def _dispatch(self, request: Request) -> Response:
        path = request.path
        if path == "/healthz":
            return self._healthz(request)
        if path == "/readyz":
            return self._readyz(request)
        if path == "/metrics":
            return self._metrics(request)
        if path == "/":
            return self._index(request)
        if path == "/admin/reload":
            return self._reload(request)
        methods = self._routes.get(path)
        try:
            if methods is None:
                raise NotFoundError(f"no route for {path!r}")
            endpoint = methods.get(request.method)
            if endpoint is None:
                raise MethodNotAllowedError(
                    f"{path!r} supports "
                    f"{', '.join(sorted(methods))}, "
                    f"not {request.method}")
            return self._query(request, endpoint)
        except Exception as exc:
            return self._error_response(request, exc)

    # --- system endpoints (no admission: probes must stay live) ---------

    def _healthz(self, request: Request) -> Response:
        """Liveness: the process is up and routing requests."""
        return Response.json(200, {
            "status": "ok",
            "uptime_seconds": round(time.time() - self.started_at, 3),
        })

    def _readyz(self, request: Request) -> Response:
        """Readiness: flips to 503 while any tenant reloads.

        The top-level keys describe the default tenant (so
        single-tenant consumers keep their shape); series tenants add
        release provenance, and additional tenants get their own block
        under ``"tenants"``.
        """
        if not self.snapshots.ready():
            return Response.json(503, {"status": "loading",
                                       "ready": False})
        snapshot = self.snapshots.get().current()
        payload: Dict[str, Any] = {
            "status": "ok", "ready": True,
            "generation": snapshot.generation,
            "fingerprint": snapshot.fingerprint,
            "format": snapshot.source_format,
            "packages": snapshot.packages,
        }
        if isinstance(snapshot, SeriesSnapshot):
            payload["releases"] = snapshot.n_releases
            payload["head_release"] = snapshot.head_release
            payload["release_fingerprints"] = list(
                snapshot.release_fingerprints)
        extra = [name for name in self.snapshots.names()
                 if name != DEFAULT_TENANT]
        if extra:
            tenants: Dict[str, Any] = {}
            for name, holder in self.snapshots.items():
                current = holder.current()
                block: Dict[str, Any] = {
                    "generation": current.generation,
                    "fingerprint": current.fingerprint,
                    "format": current.source_format,
                }
                if isinstance(current, SeriesSnapshot):
                    block["releases"] = current.n_releases
                tenants[name] = block
            payload["tenants"] = tenants
        return Response.json(200, payload)

    def _metrics(self, request: Request) -> Response:
        """Prometheus text scrape of the serve registry."""
        self._export_gauges()
        return Response.text(200, render_metrics(
            self.registry, labels=self.metrics_labels))

    def _export_gauges(self) -> None:
        """Publish point-in-time stats as gauges before a scrape."""
        gauge = self.registry.gauge
        for name, value in self.qcache.stats().items():
            if isinstance(value, (int, float)) and value is not None:
                gauge(f"serve.qcache.{name}").set(value)
        for name, value in self.admission.stats().items():
            gauge(f"serve.admission.{name}").set(value)
        holder = self.holder.stats()
        gauge("serve.snapshot.generation").set(holder["generation"])
        gauge("serve.snapshot.packages").set(holder["packages"])
        gauge("serve.snapshot.reloads").set(holder["reloads"])
        gauge("serve.snapshot.failed_reloads").set(
            holder["failed_reloads"])
        gauge("serve.snapshot.ready").set(1.0 if holder["ready"]
                                          else 0.0)
        if "releases" in holder:
            gauge("serve.snapshot.releases").set(holder["releases"])
        for name, stats in self.snapshots.stats().items():
            if name == DEFAULT_TENANT:
                continue
            prefix = f"serve.tenant.{name}"
            gauge(f"{prefix}.generation").set(stats["generation"])
            gauge(f"{prefix}.reloads").set(stats["reloads"])
            gauge(f"{prefix}.failed_reloads").set(
                stats["failed_reloads"])
            gauge(f"{prefix}.ready").set(1.0 if stats["ready"]
                                         else 0.0)

    def _index(self, request: Request) -> Response:
        """Self-describing endpoint listing."""
        return Response.json(200, {
            "schema": SERVE_SCHEMA,
            "version": SERVE_SCHEMA_VERSION,
            "endpoints": [
                {"name": e.name, "method": e.method, "path": e.path,
                 "summary": e.summary} for e in ENDPOINTS],
            "system": ["/healthz", "/readyz", "/metrics",
                       "/admin/reload"],
        })

    def _reload(self, request: Request) -> Response:
        """POST /admin/reload {"path": ..., "tenant"?: ...}."""
        try:
            if request.method != "POST":
                raise MethodNotAllowedError(
                    "/admin/reload supports POST only")
            if not self.allow_reload:
                raise ServeRequestError("snapshot reload is disabled")
            body = request.json_body()
            if body is None or not isinstance(body.get("path"), str):
                raise BadRequestError(
                    'reload needs a JSON body {"path": "<snapshot>"}')
            tenant = body.get("tenant")
            if tenant is not None and not isinstance(tenant, str):
                raise BadRequestError("tenant must be a string")
            snapshot = self.reload_from_path(body["path"],
                                             tenant=tenant)
            payload = {
                "schema": SERVE_SCHEMA,
                "version": SERVE_SCHEMA_VERSION,
                "generation": snapshot.generation,
                "fingerprint": snapshot.fingerprint,
                "packages": snapshot.packages,
            }
            if tenant is not None:
                payload["tenant"] = tenant
            return Response.json(200, payload)
        except Exception as exc:
            return self._error_response(request, exc)

    def reload_from_path(self, path, tenant: Optional[str] = None):
        """Hot-swap one tenant's snapshot from ``path``.

        Used by both ``POST /admin/reload`` and the worker-side SIGHUP
        handler, so cache invalidation and accounting cannot drift
        between the two reload triggers.
        """
        holder = self.snapshots.get(tenant)
        before = holder.current()
        with self.tracer.span("serve.reload", path=str(path)):
            snapshot = holder.reload_from_file(path)
        if snapshot.fingerprint == before.fingerprint:
            # Same corpus reloaded from a different source: the
            # fingerprint-keyed cache can't tell the generations
            # apart, but provenance payloads (/dataset/stats)
            # changed — drop the stale entries explicitly.
            self.qcache.clear()
        self.registry.counter("serve.reloads").inc()
        return snapshot

    def reload_from_source(self) -> Dict[str, Any]:
        """Reload every source-bound tenant (SIGHUP fan-in).

        Attempts all tenants even if one fails, then re-raises the
        first failure so worker-side failed-reload accounting fires;
        raises ``RuntimeError`` when no tenant has a bound source.
        """
        sourced = [(name, holder)
                   for name, holder in self.snapshots.items()
                   if holder.source_path is not None]
        if not sourced:
            raise RuntimeError(
                "holder has no source path bound; nothing to reload")
        published: Dict[str, Any] = {}
        first_error: Optional[Exception] = None
        for name, holder in sourced:
            try:
                published[name] = self.reload_from_path(
                    holder.source_path, tenant=name)
            except Exception as exc:  # noqa: BLE001 — keep fleet going
                if first_error is None:
                    first_error = exc
        if first_error is not None:
            raise first_error
        return published

    # --- the query pipeline ---------------------------------------------

    def _query(self, request: Request,
               endpoint: Endpoint) -> Response:
        try:
            slot = self.admission.slot()
        except OverloadedError as exc:
            return self._error_response(request, exc)
        with slot:
            deadline = Deadline(self.deadline_seconds)
            with self.tracer.span(
                    "serve.request", endpoint=endpoint.name) as span:
                try:
                    response = self._answer(request, endpoint,
                                            deadline, span)
                except Exception as exc:
                    response = self._error_response(request, exc)
                span.attrs["status"] = response.status
            self.registry.counter(
                f"serve.endpoint.{endpoint.name}.requests").inc()
            return response

    def _answer(self, request: Request, endpoint: Endpoint,
                deadline: Deadline, span) -> Response:
        # RCU pin: tenant coordinates resolve to one published
        # snapshot (and, for series tenants, one release) read once
        # and held for the whole request.
        target = self.snapshots.resolve(
            tenant=request.query.get("tenant"),
            release=request.query.get("release"),
            scope=endpoint.scope)
        params = endpoint.normalize(request.query,
                                    request.json_body())
        deadline.check("normalize")
        # The release-resolved fingerprint keys the cache, so two
        # releases of one series — or two tenants sharing a corpus —
        # can never collide on an entry.
        key = canonical_query_key(
            f"{target.tenant}:{target.fingerprint}",
            endpoint.name, params)
        payload = self.qcache.get(key) if endpoint.cacheable else None
        cached = payload is not None
        span.attrs["cached"] = cached
        if cached:
            self.registry.counter("serve.qcache.hit").inc()
        else:
            if endpoint.cacheable:
                self.registry.counter("serve.qcache.miss").inc()
            subject = (target.series if endpoint.scope == "series"
                       else target.dataset)
            start = time.perf_counter()
            with self.tracer.span("serve.compute",
                                  endpoint=endpoint.name):
                payload = endpoint.payload(subject, params)
            self.registry.histogram(
                f"serve.endpoint.{endpoint.name}.compute_seconds"
            ).observe(time.perf_counter() - start)
            deadline.check("compute")
            if endpoint.cacheable:
                self.qcache.put(key, payload)
        envelope = {
            "schema": SERVE_SCHEMA,
            "version": SERVE_SCHEMA_VERSION,
            "endpoint": endpoint.name,
            "fingerprint": target.fingerprint,
            "generation": target.generation,
            "cached": cached,
            "data": payload,
        }
        if target.release is not None:
            envelope["release"] = target.release
        if target.tenant != DEFAULT_TENANT:
            envelope["tenant"] = target.tenant
        deadline.check("encode")
        return Response.json(200, envelope)

    # --- error envelope -------------------------------------------------

    def _error_response(self, request: Request,
                        exc: Exception) -> Response:
        status, error_class = self._classify(exc)
        headers: Dict[str, str] = {}
        if isinstance(exc, OverloadedError):
            # The documented floor is one whole second; ``int()``
            # truncation would turn a sub-second wait hint into
            # ``Retry-After: 0`` (an immediate-retry stampede).
            headers["Retry-After"] = str(max(
                1, math.ceil(exc.retry_after)))
            self.registry.counter("serve.admission.shed").inc()
        self.registry.counter("serve.errors").inc()
        envelope = {
            "schema": SERVE_SCHEMA,
            "version": SERVE_SCHEMA_VERSION,
            "error": {
                "status": status,
                "class": error_class,
                "type": type(exc).__name__,
                "message": str(exc) or type(exc).__name__,
            },
        }
        return Response.json(status, envelope, headers=headers)

    @staticmethod
    def _classify(exc: Exception) -> Tuple[int, str]:
        """(HTTP status, error class) for any escaping exception."""
        if isinstance(exc, ServeRequestError):
            return exc.status, exc.error_class
        if isinstance(exc, OverloadedError):
            return 429, "overloaded"
        if isinstance(exc, DeadlineExceededError):
            return 504, "deadline"
        if isinstance(exc, (ValueError, KeyError, TypeError)):
            # Library-level rejection of the query's inputs (unknown
            # dimension, dataset built without popcon, ...).
            return 400, "bad_request"
        # Everything else speaks the engine's taxonomy, including
        # AnalysisError subclasses raised by the kernels themselves.
        fault = classify_exception(exc, stage="serve")
        return (_STATUS_FOR_ANALYSIS_CLASS.get(fault.error_class, 500),
                fault.error_class)
