"""Admission control: bounded concurrency, bounded wait, deadlines.

A long-lived server over an in-process dataset has exactly one scarce
resource: CPU time in the metric kernels.  Unbounded admission turns a
burst into an ever-growing queue where every request eventually times
out; the controller here instead holds a fixed number of execution
slots and lets a request wait *briefly* for one — past that it is shed
with 429 + ``Retry-After`` while the health endpoints stay responsive.

The per-request :class:`Deadline` complements the gate: a request that
*was* admitted but whose computation overruns its budget stops at the
next checkpoint and reports 504, so one pathological query cannot
occupy a slot indefinitely.
"""

from __future__ import annotations

import math
import threading
import time
from typing import Callable, Dict, Optional


class OverloadedError(Exception):
    """Every slot busy and the bounded wait elapsed: shed the request."""

    def __init__(self, retry_after: float, slots: int) -> None:
        super().__init__(
            f"all {slots} execution slots busy; retry in "
            f"~{retry_after:.1f}s")
        self.retry_after = retry_after
        self.slots = slots


class DeadlineExceededError(Exception):
    """The request overran its per-request compute budget."""

    def __init__(self, budget_seconds: float, stage: str) -> None:
        super().__init__(
            f"deadline of {budget_seconds * 1000:.0f}ms exceeded "
            f"at stage {stage!r}")
        self.budget_seconds = budget_seconds
        self.stage = stage


class Deadline:
    """A per-request compute budget with explicit checkpoints.

    Endpoints call :meth:`check` between phases (parse, compute,
    encode); a ``None`` budget disables every check.  Cooperative by
    design — Python offers no safe preemption — so the guarantee is
    "stops at the next checkpoint", not "stops instantly".
    """

    __slots__ = ("budget_seconds", "_expires_at", "_clock")

    def __init__(self, budget_seconds: Optional[float],
                 clock: Callable[[], float] = time.monotonic) -> None:
        self.budget_seconds = budget_seconds
        self._clock = clock
        self._expires_at = (None if budget_seconds is None
                            else clock() + budget_seconds)

    def remaining(self) -> Optional[float]:
        if self._expires_at is None:
            return None
        return self._expires_at - self._clock()

    def expired(self) -> bool:
        remaining = self.remaining()
        return remaining is not None and remaining <= 0

    def check(self, stage: str = "compute") -> None:
        if self.expired():
            raise DeadlineExceededError(self.budget_seconds, stage)


class _Slot:
    """Context manager pairing one acquired slot with its release."""

    __slots__ = ("_controller",)

    def __init__(self, controller: "AdmissionController") -> None:
        self._controller = controller

    def __enter__(self) -> "_Slot":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._controller._release()
        return False


class AdmissionController:
    """Semaphore-gated concurrency limit with a bounded wait."""

    def __init__(self, slots: int = 8,
                 max_wait_seconds: float = 0.25) -> None:
        if slots < 1:
            raise ValueError("slots must be >= 1")
        if max_wait_seconds < 0:
            raise ValueError("max_wait_seconds must be >= 0")
        self.slots = slots
        self.max_wait_seconds = max_wait_seconds
        self._semaphore = threading.BoundedSemaphore(slots)
        self._lock = threading.Lock()
        self._in_flight = 0
        self._peak_in_flight = 0
        self.admitted = 0
        self.rejected = 0

    def slot(self) -> _Slot:
        """Acquire an execution slot or raise :class:`OverloadedError`.

        The wait is bounded by ``max_wait_seconds``; a shed request is
        told to come back after roughly one wait window (never less
        than a whole second, so naive clients that floor the header to
        an integer still back off).
        """
        if not self._semaphore.acquire(timeout=self.max_wait_seconds):
            with self._lock:
                self.rejected += 1
            retry_after = max(1.0,
                              math.ceil(self.max_wait_seconds))
            raise OverloadedError(retry_after, self.slots)
        with self._lock:
            self.admitted += 1
            self._in_flight += 1
            if self._in_flight > self._peak_in_flight:
                self._peak_in_flight = self._in_flight
        return _Slot(self)

    def _release(self) -> None:
        with self._lock:
            self._in_flight -= 1
        self._semaphore.release()

    @property
    def in_flight(self) -> int:
        with self._lock:
            return self._in_flight

    def stats(self) -> Dict[str, float]:
        with self._lock:
            return {
                "slots": self.slots,
                "max_wait_seconds": self.max_wait_seconds,
                "in_flight": self._in_flight,
                "peak_in_flight": self._peak_in_flight,
                "admitted": self.admitted,
                "rejected": self.rejected,
            }
