"""Bounded LRU+TTL cache of served query results.

Every query endpoint is a pure function of ``(dataset fingerprint,
endpoint name, canonicalized parameters)`` — the dataset is immutable
behind the RCU snapshot holder, so a result computed once is valid for
as long as that snapshot is current.  The cache therefore keys on the
fingerprint, which makes hot-reload invalidation automatic: a new
snapshot has a new fingerprint, so every stale entry simply stops
being looked up and ages out of the LRU order.

Two bounds keep the cache honest under a production workload:

* **entries** — a hard LRU capacity, so a scan over distinct queries
  (e.g. per-API ``change_impact`` sweeps) cannot grow memory without
  limit;
* **TTL** — an optional time-to-live, for deployments that want a
  ceiling on how long any answer, however hot, is served without
  recomputation.

All operations take one lock; values are stored as opaque objects and
never copied, so callers must treat cached payloads as immutable
(the serve layer does — payload dicts are built fresh per computation
and only ever serialized afterwards).
"""

from __future__ import annotations

import json
import threading
import time
from collections import OrderedDict
from typing import Any, Callable, Dict, Mapping, Optional, Tuple


def canonical_query_key(fingerprint: str, endpoint: str,
                        params: Mapping[str, Any]) -> str:
    """The cache key for one query against one dataset snapshot.

    ``params`` must already be *normalized* by the endpoint (defaults
    filled in, order-insensitive API lists sorted and deduplicated) —
    canonicalization here is purely structural: keys are emitted
    sorted, with compact separators, so two dicts with equal contents
    produce identical keys regardless of insertion order.
    """
    blob = json.dumps(params, sort_keys=True, separators=(",", ":"))
    return f"{fingerprint}|{endpoint}|{blob}"


class QueryCache:
    """Thread-safe bounded LRU with optional per-entry TTL."""

    def __init__(self, max_entries: int = 1024,
                 ttl_seconds: Optional[float] = None,
                 clock: Callable[[], float] = time.monotonic) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise ValueError("ttl_seconds must be positive (or None)")
        self.max_entries = max_entries
        self.ttl_seconds = ttl_seconds
        self.clock = clock
        self._lock = threading.Lock()
        # key -> (stored_at, value); insertion order is LRU order with
        # the most recently used entry last.
        self._entries: "OrderedDict[str, Tuple[float, Any]]" = \
            OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.expirations = 0

    def get(self, key: str) -> Optional[Any]:
        """The cached value, or None on a miss (absent or expired)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            stored_at, value = entry
            if (self.ttl_seconds is not None
                    and self.clock() - stored_at >= self.ttl_seconds):
                del self._entries[key]
                self.expirations += 1
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: str, value: Any) -> None:
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = (self.clock(), value)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> int:
        with self._lock:
            count = len(self._entries)
            self._entries.clear()
            return count

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> Dict[str, float]:
        """Counter snapshot (consistent: taken under the lock)."""
        with self._lock:
            lookups = self.hits + self.misses
            return {
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "ttl_seconds": self.ttl_seconds,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "expirations": self.expirations,
                "lookups": lookups,
                "hit_rate": self.hits / lookups if lookups else 0.0,
            }
