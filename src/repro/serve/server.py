"""HTTP transport for :class:`repro.serve.app.ServeApp`.

A deliberately thin adapter over the standard library's
``ThreadingHTTPServer``: the handler decodes the wire request into a
:class:`repro.serve.app.Request`, calls ``app.handle`` (which never
raises), and writes the :class:`repro.serve.app.Response` back with an
explicit ``Content-Length`` so HTTP/1.1 keep-alive works.  All policy
— routing, admission, caching, deadlines, error envelopes — lives in
the app; nothing in this module inspects paths beyond passing them on.

:class:`ServeServer` owns the listener lifecycle: ``start()`` spawns
the accept loop on a daemon thread (tests drive this), while
``serve_forever()`` runs it in the foreground for the CLI; on
``KeyboardInterrupt`` the socket closes and in-flight handler threads
are joined, then the interrupt propagates so the CLI can exit 130
without a traceback.
"""

from __future__ import annotations

import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Optional
from urllib.parse import parse_qsl, urlsplit

from .app import Request, Response, ServeApp

#: Requests advertising a larger body than this are rejected before
#: the body is read; every legitimate query body is a few KB of API
#: names, so 8 MiB is generous without inviting memory abuse.
MAX_BODY_BYTES = 8 * 1024 * 1024


class _Handler(BaseHTTPRequestHandler):
    """Wire codec: bytes in, ``app.handle``, bytes out."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-serve"
    sys_version = ""
    # The stdlib default is an *unbuffered* write file: every
    # send_header() call becomes its own TCP segment, and Nagle +
    # delayed ACK turn a sub-millisecond cached response into ~40ms.
    # Buffer the writes (handle_one_request flushes per request) and
    # disable Nagle so the flush goes out immediately.
    wbufsize = 64 * 1024
    disable_nagle_algorithm = True

    # Set per-server via the factory in ServeServer.
    app: ServeApp
    quiet: bool = True

    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        self._handle("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._handle("POST")

    def do_PUT(self) -> None:  # noqa: N802
        self._handle("PUT")

    def do_DELETE(self) -> None:  # noqa: N802
        self._handle("DELETE")

    def _handle(self, method: str) -> None:
        split = urlsplit(self.path)
        query = dict(parse_qsl(split.query, keep_blank_values=True))
        body = b""
        length_header = self.headers.get("Content-Length")
        if length_header is not None:
            try:
                length = int(length_header)
            except ValueError:
                length = -1
            if length < 0 or length > MAX_BODY_BYTES:
                self._write(Response.json(413, {
                    "error": {"status": 413, "class": "bad_request",
                              "type": "PayloadTooLarge",
                              "message": "request body too large"}}))
                self.close_connection = True
                return
            body = self.rfile.read(length)
        request = Request(method=method, path=split.path, query=query,
                          body=body,
                          headers={key: value for key, value
                                   in self.headers.items()})
        response = self.app.handle(request)
        self._write(response)

    def _write(self, response: Response) -> None:
        self.send_response(response.status)
        self.send_header("Content-Type", response.content_type)
        self.send_header("Content-Length", str(len(response.body)))
        for name, value in response.headers.items():
            self.send_header(name, value)
        self.end_headers()
        try:
            self.wfile.write(response.body)
        except (BrokenPipeError, ConnectionResetError):
            # Client went away mid-write; nothing to salvage.
            self.close_connection = True

    def log_message(self, format: str, *args) -> None:
        if not self.quiet:
            super().log_message(format, *args)


class ServeServer:
    """Listener lifecycle around one :class:`ServeApp`."""

    def __init__(self, app: ServeApp, host: str = "127.0.0.1",
                 port: int = 0, quiet: bool = True) -> None:
        self.app = app
        handler = type("BoundHandler", (_Handler,),
                       {"app": app, "quiet": quiet})
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = False  # join in-flight on stop
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` to the kernel's pick)."""
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ServeServer":
        """Run the accept loop on a background thread (for tests)."""
        if self._thread is not None:
            raise RuntimeError("server already started")
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="repro-serve-accept", daemon=True)
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop accepting, then join the accept loop and close."""
        self._httpd.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        self._httpd.server_close()

    def serve_forever(self,
                      on_ready: Optional[Callable[["ServeServer"],
                                                  None]] = None) -> None:
        """Foreground accept loop; Ctrl-C closes cleanly, then raises.

        ``on_ready`` (if given) is called just before the loop starts
        — the CLI uses it to print the bound address.
        """
        if on_ready is not None:
            on_ready(self)
        try:
            self._httpd.serve_forever(poll_interval=0.2)
        finally:
            # Runs on Ctrl-C too: the stdlib loop's own finally-block
            # has already marked itself shut down, so closing here is
            # safe and the KeyboardInterrupt propagates to the CLI,
            # which maps it to exit code 130.
            self._httpd.server_close()

    def __enter__(self) -> "ServeServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False
